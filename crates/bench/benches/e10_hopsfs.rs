//! Criterion bench for E10: metadata ops and the small-file read path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_hopsfs::load::populate;
use ee_hopsfs::{FileSystem, FsConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_hopsfs");
    for &shards in &[1usize, 16] {
        let fs = FileSystem::new(FsConfig {
            shards,
            ..FsConfig::default()
        });
        populate(&fs, 8, 4);
        group.bench_with_input(BenchmarkId::new("stat", shards), &shards, |b, _| {
            b.iter(|| fs.stat("/bench/d0003/f0001").unwrap().id)
        });
        group.bench_with_input(BenchmarkId::new("list", shards), &shards, |b, _| {
            b.iter(|| fs.list("/bench/d0003").unwrap().len())
        });
    }
    // Inline vs block read.
    let fs = FileSystem::new(FsConfig::default());
    fs.create("/small", &vec![1u8; 16 << 10]).unwrap();
    fs.create("/big", &vec![1u8; 4 << 20]).unwrap();
    group.bench_function("read_small_16KiB_inline", |b| {
        b.iter(|| fs.read("/small").unwrap().len())
    });
    group.bench_function("read_big_4MiB_blocks", |b| {
        b.iter(|| fs.read("/big").unwrap().len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
