//! Criterion bench for E11: the PROMET-lite full-year run.

use criterion::{criterion_group, criterion_main, Criterion};
use ee_datasets::landscape::LandscapeConfig;
use ee_datasets::Landscape;
use ee_food::promet::{run, PrometConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_water");
    let world = Landscape::generate(LandscapeConfig {
        size: 48,
        parcels_per_side: 6,
        ..LandscapeConfig::default()
    })
    .unwrap();
    group.bench_function("promet_year_48px", |b| {
        b.iter(|| {
            run(&world, &world.truth, PrometConfig::default())
                .unwrap()
                .runoff_mm
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
