//! Criterion bench for E12: SAR simulation, product aggregation, PCDSS.

use criterion::{criterion_group, criterion_main, Criterion};
use ee_datasets::seaice::{IceWorld, IceWorldConfig};
use ee_polar::icemap::{products_from_map, truth_masks};
use ee_polar::pcdss::encode_bundle;
use ee_util::timeline::Date;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_seaice");
    let world = IceWorld::generate(IceWorldConfig {
        size: 80,
        days: 2,
        ..IceWorldConfig::default()
    })
    .unwrap();
    group.bench_function("simulate_sar_80px", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            world
                .simulate_sar(0, Date::new(2017, 2, 10).unwrap(), seed)
                .unwrap()
                .num_bands()
        })
    });
    let (truth, lead, ridge) = truth_masks(&world, 0);
    group.bench_function("products_1km", |b| {
        b.iter(|| products_from_map(&truth, &lead, &ridge, 25).concentration.mean())
    });
    let products = products_from_map(&truth, &lead, &ridge, 10);
    group.bench_function("pcdss_encode", |b| {
        b.iter(|| encode_bundle(&products, 1_000_000).unwrap().bytes())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
