//! Criterion bench for E2: rectangular selection, indexed vs scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_bench::e2_selection::{point_store, selection_query};
use ee_rdf::exec::query;
use ee_rdf::store::IndexMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_selection");
    for &n in &[10_000usize] {
        let indexed = point_store(n, IndexMode::Full, 7);
        let q = selection_query(30.0, 30.0);
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| query(&indexed, &q).unwrap().len())
        });
        let scan = point_store(n, IndexMode::Scan, 7);
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| query(&scan, &q).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
