//! Criterion bench for E3: selection latency vs geometry complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_bench::e3_complexity::{geometry_store, GeomClass};
use ee_bench::e2_selection::selection_query;
use ee_rdf::exec::query;
use ee_rdf::store::IndexMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_complexity");
    let q = selection_query(30.0, 30.0);
    for (label, class) in [
        ("point", GeomClass::Point),
        ("polygon64", GeomClass::Polygon(64)),
        ("multipolygon64", GeomClass::MultiPolygon(64)),
    ] {
        let store = geometry_store(10_000, class, IndexMode::Full, 11);
        group.bench_with_input(BenchmarkId::new("indexed", label), &label, |b, _| {
            b.iter(|| query(&store, &q).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
