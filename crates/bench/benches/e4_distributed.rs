//! Criterion bench for E4: one synchronous training iteration priced on
//! the NIC model, per strategy and worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_bench::e4_distributed::{cluster, workload};
use ee_dl::distributed::{simulate_iteration, Strategy};
use ee_util::Rng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_distributed");
    let spec = cluster(72);
    let w = workload();
    for &workers in &[4usize, 64] {
        group.bench_with_input(
            BenchmarkId::new("allreduce", workers),
            &workers,
            |b, &n| {
                let mut rng = Rng::seed_from(1);
                b.iter(|| {
                    simulate_iteration(&spec, &w, n, Strategy::RingAllReduce, &mut rng).unwrap()
                })
            },
        );
        if workers + 4 <= spec.num_nodes() {
            group.bench_with_input(
                BenchmarkId::new("parameter_server", workers),
                &workers,
                |b, &n| {
                    let mut rng = Rng::seed_from(1);
                    b.iter(|| {
                        simulate_iteration(
                            &spec,
                            &w,
                            n,
                            Strategy::ParameterServer { servers: 4 },
                            &mut rng,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
