//! Criterion bench for E6: scene simulation + patch-cutting throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ee_bench::e6_datasets::generate_batch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_datasets");
    group.bench_function("world_scene_patches_64px", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate_batch(64, 16, seed)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
