//! Criterion bench for E7: link discovery across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_bench::e7_interlink::entity_sets;
use ee_interlink::discover::{discover, DiscoverConfig};
use ee_interlink::entity::{LinkRule, SpatialRelation};
use ee_interlink::meta::Pruning;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_interlink");
    let (src, tgt) = entity_sets(1500, 13);
    let rule = LinkRule::spatial(SpatialRelation::Intersects);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("wep", threads), &threads, |b, &t| {
            b.iter(|| {
                discover(
                    &src,
                    &tgt,
                    rule,
                    DiscoverConfig {
                        grid_cells: 96,
                        threads: t,
                        pruning: Pruning::WeightedEdge,
                    },
                )
                .unwrap()
                .links
                .len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
