//! Criterion bench for E8: federated query plans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_bench::e8_federation::{federation, JOIN_QUERY, SPATIAL_QUERY};
use ee_federation::{federated_query, FederationCatalog, Mode};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_federation");
    let endpoints = federation(1000, 3);
    let catalog = FederationCatalog::build(&endpoints);
    for (name, q) in [("join", JOIN_QUERY), ("spatial", SPATIAL_QUERY)] {
        for (plan, mode) in [("naive", Mode::Naive), ("optimized", Mode::Optimized)] {
            group.bench_with_input(
                BenchmarkId::new(plan, name),
                &mode,
                |b, &m| b.iter(|| federated_query(&endpoints, &catalog, q, m).unwrap().rows.len()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
