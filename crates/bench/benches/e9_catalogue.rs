//! Criterion bench for E9: classic vs semantic catalogue search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ee_catalogue::classic::Search;
use ee_catalogue::{ClassicCatalogue, ProductGenerator, SemanticCatalogue};
use ee_geo::Envelope;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_catalogue");
    for &n in &[5_000usize] {
        let region = Envelope::new(0.0, 0.0, 40.0, 40.0);
        let products = ProductGenerator::new(region, 2017, 5).take(n);
        let classic = ClassicCatalogue::build(products.clone());
        let mut semantic = SemanticCatalogue::new();
        for p in &products {
            semantic.ingest_product(p);
        }
        semantic.finish_ingest();
        let aoi = Envelope::new(10.0, 10.0, 12.0, 12.0);
        group.bench_with_input(BenchmarkId::new("classic_aoi", n), &n, |b, _| {
            b.iter(|| classic.search(&Search::aoi(aoi)).unwrap().len())
        });
        let q = "PREFIX eo: <http://extremeearth.eu/ont/eo#> \
                 SELECT (COUNT(?p) AS ?n) WHERE { ?p eo:footprint ?f . \
                 FILTER(geof:sfIntersects(?f, \"POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))\"^^geo:wktLiteral)) }";
        group.bench_with_input(BenchmarkId::new("semantic_geosparql", n), &n, |b, _| {
            b.iter(|| semantic.query(q).unwrap().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
