//! The experiment harness: regenerates every E1–E12 table plus the E-k0
//! kernel-throughput table.
//!
//! ```text
//! harness                 # run everything at Quick scale
//! harness --full          # the EXPERIMENTS.md scale
//! harness e2 e3 --full    # selected experiments
//! harness kernels --full  # kernel throughput; also writes BENCH_PR1.json
//! ```
//!
//! The `kernels` experiment additionally writes its numbers to
//! `BENCH_PR1.json` in the current directory.

use ee_bench::{kernels, run, Scale, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        ALL.to_vec()
    } else {
        selected.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "# ExtremeEarth-rs experiment harness ({} scale)\n",
        if scale == Scale::Full { "full" } else { "quick" }
    );
    for id in ids {
        eprintln!("[harness] running {id} ...");
        let start = std::time::Instant::now();
        if id == "kernels" {
            // Runs once; the same numbers feed the table and the JSON.
            let (tables, json) = kernels::report(scale);
            for t in tables {
                println!("{}", t.markdown());
            }
            let path = "BENCH_PR1.json";
            match std::fs::write(path, json.emit_pretty() + "\n") {
                Ok(()) => eprintln!("[harness] wrote {path}"),
                Err(e) => eprintln!("[harness] could not write {path}: {e}"),
            }
            eprintln!(
                "[harness] {id} done in {:.1}s",
                start.elapsed().as_secs_f64()
            );
            continue;
        }
        match run(id, scale) {
            Some(tables) => {
                for t in tables {
                    println!("{}", t.markdown());
                }
                eprintln!(
                    "[harness] {id} done in {:.1}s",
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!("[harness] unknown experiment {id:?}; known: {ALL:?}");
                std::process::exit(2);
            }
        }
    }
}
