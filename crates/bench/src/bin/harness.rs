//! The experiment harness: regenerates every E1–E12 table plus the E-k0
//! kernel-throughput and E-s0 serving-tier tables.
//!
//! ```text
//! harness                 # run everything at Quick scale
//! harness --list          # print the experiment ids and exit
//! harness --full          # the EXPERIMENTS.md scale
//! harness e2 e3 --full    # selected experiments
//! harness kernels --full  # kernel throughput; also writes BENCH_PR1.json
//! harness e-s0 --full     # serving tier; writes BENCH_PR2/PR4/PR5.json
//! harness e3 --threads 4  # join threads sweep up to 4; writes BENCH_PR3.json
//! harness e-k6            # top-k + BM25 sweeps; writes BENCH_PR6.json
//! harness e-w7 --quick    # durable store; writes BENCH_PR7.json
//! harness e-c8 --quick    # C10K event serve tier; writes BENCH_PR8.json
//! harness e-f9 --shards 4 # sharded scatter-gather; writes BENCH_PR9.json
//! harness e-t10 --quick   # versioned time-travel; writes BENCH_PR10.json
//! ```
//!
//! Unknown experiment ids and unknown flags are rejected up front, before
//! anything runs; `--threads` and `--shards` must be positive integers.
//! The E3 threads sweep asserts each parallel run bit-identical to
//! serial, and the E-f9 shard sweep asserts routed answers identical to
//! an unsharded reference process; both abort (non-zero exit) on
//! divergence.

use ee_bench::{
    e3_complexity, e_c8_event, e_f9_shard, e_k6_topk, e_s0_serve, e_t10, e_w7_store, kernels, run,
    Scale, ALL,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL {
            println!("{id}");
        }
        return;
    }
    // Validate flags (and pull out --threads' value) before running
    // anything.
    let mut max_threads: Option<usize> = None;
    let mut max_shards: Option<usize> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => {}
            // Quick is already the default; the explicit spelling lets
            // scripts (verify.sh's E-w7 smoke) state the scale they mean.
            "--quick" => {}
            "--threads" => {
                let Some(v) = it.next() else {
                    eprintln!("[harness] --threads needs a value, e.g. --threads 4");
                    std::process::exit(2);
                };
                match v.parse::<usize>() {
                    Ok(t) if t >= 1 => max_threads = Some(t),
                    _ => {
                        eprintln!("[harness] --threads must be a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                let Some(v) = it.next() else {
                    eprintln!("[harness] --shards needs a value, e.g. --shards 4");
                    std::process::exit(2);
                };
                match v.parse::<usize>() {
                    Ok(s) if (1..=16).contains(&s) => max_shards = Some(s),
                    _ => {
                        eprintln!("[harness] --shards must be an integer in 1..=16, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "[harness] unknown flag {other:?}; known: --full, --quick, --list, \
                     --threads N, --shards N"
                );
                std::process::exit(2);
            }
            other => positional.push(other.to_string()),
        }
    }
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let selected: Vec<String> = positional;
    let ids: Vec<&str> = if selected.is_empty() {
        ALL.to_vec()
    } else {
        selected.iter().map(|s| s.as_str()).collect()
    };
    // Validate every id before running any experiment, so a typo at the
    // end of the list doesn't waste the minutes spent on the ones before.
    for id in &ids {
        if !ALL.contains(id) {
            eprintln!("[harness] unknown experiment {id:?}; known: {ALL:?}");
            std::process::exit(2);
        }
    }
    println!(
        "# ExtremeEarth-rs experiment harness ({} scale)\n",
        if scale == Scale::Full { "full" } else { "quick" }
    );
    for id in ids {
        eprintln!("[harness] running {id} ...");
        let start = std::time::Instant::now();
        // The two bench-artifact experiments run once, feeding both the
        // printed table and their JSON file.
        let json_artifacts: Vec<(&str, ee_util::json::Json)> = match id {
            "kernels" => {
                let (tables, json) = kernels::report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR1.json", json)]
            }
            "e-s0" => {
                let (tables, json) = e_s0_serve::report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                // The streaming stage feeds its own artifact.
                let (tables, streaming_json) = e_s0_serve::streaming_report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                // The query-streaming TTFB stage does too; its internal
                // streamed-vs-collected identity check panics (non-zero
                // exit) on divergence.
                let (tables, query_json) = e_s0_serve::query_streaming_report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![
                    ("BENCH_PR2.json", json),
                    ("BENCH_PR4.json", streaming_json),
                    ("BENCH_PR5.json", query_json),
                ]
            }
            "e3" => {
                let max = max_threads.unwrap_or_else(|| {
                    ee_util::par::available_threads().clamp(1, 8)
                });
                let (tables, json) = e3_complexity::report(scale, max);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR3.json", json)]
            }
            "e-k6" => {
                // Panics inside on any top-k or BM25 identity divergence,
                // so verify.sh sees a non-zero exit.
                let (tables, json) = e_k6_topk::report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR6.json", json)]
            }
            "e-w7" => {
                // The in-bench crash-recovery check panics on any
                // divergence, so verify.sh sees a non-zero exit.
                let (tables, json) = e_w7_store::report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR7.json", json)]
            }
            "e-c8" => {
                // The in-bench stalled-reader backpressure check panics
                // on unbounded buffering, so verify.sh sees a non-zero
                // exit.
                let (tables, json) = e_c8_event::report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR8.json", json)]
            }
            "e-f9" => {
                // Launches real ee-serve shard + router processes; every
                // identity check (routed vs unsharded reference) panics
                // on divergence, so verify.sh sees a non-zero exit.
                let (tables, json) = e_f9_shard::report(scale, max_shards.unwrap_or(4));
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR9.json", json)]
            }
            "e-t10" => {
                // Every as-of identity, 304-zero-store-reads, and
                // catalogue-freshness check panics on divergence, so
                // verify.sh sees a non-zero exit.
                let (tables, json) = e_t10::report(scale);
                for t in tables {
                    println!("{}", t.markdown());
                }
                vec![("BENCH_PR10.json", json)]
            }
            _ => {
                let tables = run(id, scale).expect("id validated above");
                for t in tables {
                    println!("{}", t.markdown());
                }
                Vec::new()
            }
        };
        for (path, json) in json_artifacts {
            match std::fs::write(path, json.emit_pretty() + "\n") {
                Ok(()) => eprintln!("[harness] wrote {path}"),
                Err(e) => eprintln!("[harness] could not write {path}: {e}"),
            }
        }
        eprintln!(
            "[harness] {id} done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
}
