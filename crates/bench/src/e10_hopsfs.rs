//! E10 — filesystem metadata throughput and the small-files path.
//!
//! Paper (C5, refs \[9\], \[13\], \[17\]): HopsFS scales HDFS metadata past one
//! million ops/second by sharding it over a NewSQL database, and serves
//! small files from the metadata layer. We sweep the shard count under a
//! fixed multi-threaded load (the scaling *shape*), and tabulate the
//! round-trip cost of reads across the inline-threshold boundary.

use crate::table::{fmt_f64, Table};
use crate::Scale;
use ee_hopsfs::load::{read_cost, shard_sweep_point};
use ee_hopsfs::FsConfig;

/// Run E10.
pub fn run(scale: Scale) -> Vec<Table> {
    let (threads, ops) = match scale {
        Scale::Quick => (4usize, 2_000u64),
        Scale::Full => (8, 20_000),
    };
    let shards: Vec<usize> = match scale {
        Scale::Quick => vec![1, 4],
        Scale::Full => vec![1, 2, 4, 8, 16],
    };
    let mut t1 = Table::new(
        "E10a — metadata throughput vs shard count",
        "The HopsFS architecture: namespace operations against a sharded transactional \
         store; read-heavy industrial mix; throughput should grow with shards until \
         thread count saturates.",
        &[
            "shards",
            "ops/s",
            "relative",
            "fast-path commits",
            "2PC commits",
            "conflicts",
        ],
    );
    let mut base: Option<f64> = None;
    for &s in &shards {
        let report = shard_sweep_point(s, threads, ops, 42);
        let b = *base.get_or_insert(report.ops_per_sec);
        t1.row(vec![
            s.to_string(),
            format!("{:.0}", report.ops_per_sec),
            format!("{:.2}x", report.ops_per_sec / b),
            report.single_shard_commits.to_string(),
            report.multi_shard_commits.to_string(),
            report.conflicts.to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "E10b — small-file reads: inline (metadata layer) vs block path",
        "Ref [17] ('Size Matters'): files at or under the inline threshold (64 KiB) are \
         served entirely from the metadata store; larger files pay one datanode round \
         trip per 1 MiB block.",
        &[
            "file size",
            "metadata round trips",
            "datanode round trips",
            "total",
        ],
    );
    let config = FsConfig::default(); // 64 KiB inline, 1 MiB blocks
    for (label, size) in [
        ("1 KiB", 1 << 10),
        ("16 KiB", 16 << 10),
        ("64 KiB", 64 << 10),
        ("256 KiB", 256 << 10),
        ("1 MiB", 1 << 20),
        ("4 MiB", 4 << 20),
    ] {
        let (meta, dn) = read_cost(size, config).expect("read cost");
        t2.row(vec![
            label.into(),
            meta.to_string(),
            dn.to_string(),
            fmt_f64((meta + dn) as f64),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_help_and_small_files_skip_datanodes() {
        let tables = run(Scale::Quick);
        // More shards should not be slower (allowing wide tolerance on a
        // loaded machine, just require within 30% or better).
        let ops = |row: &Vec<String>| -> f64 { row[1].parse().unwrap() };
        let r = &tables[0].rows;
        assert!(
            ops(&r[1]) > ops(&r[0]) * 0.7,
            "4 shards at least comparable to 1: {} vs {}",
            ops(&r[1]),
            ops(&r[0])
        );
        // Small-file rows (≤ 64 KiB) have zero datanode trips.
        for row in &tables[1].rows[..3] {
            assert_eq!(row[2], "0", "{row:?}");
        }
        // 4 MiB = 4 block trips.
        assert_eq!(tables[1].rows[5][2], "4");
    }
}
