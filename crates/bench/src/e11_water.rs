//! E11 — 10 m water-availability maps for a whole watershed, full year.
//!
//! Paper (A1): "high resolution (10 m) water availability maps for the
//! agricultural area in the whole watershed, allowing a new level of
//! detail for wide-scale irrigation support", with crop-specific crop
//! variables replacing farm-level constants. We run PROMET-lite for a
//! full year and compare crop-specific against constant-Kc irrigation
//! demand.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_datasets::landscape::LandscapeConfig;
use ee_datasets::Landscape;
use ee_food::promet::{demand_by_crop, run as promet_run, PrometConfig};
use ee_util::stats::quantile;
use std::time::Instant;

/// Run E11.
pub fn run(scale: Scale) -> Vec<Table> {
    let size = match scale {
        Scale::Quick => 48usize,
        Scale::Full => 128,
    };
    let world = Landscape::generate(LandscapeConfig {
        size,
        parcels_per_side: size / 8,
        seed: 20170101,
        ..LandscapeConfig::default()
    })
    .expect("world");
    let t0 = Instant::now();
    let specific = promet_run(&world, &world.truth, PrometConfig::default()).expect("promet");
    let runtime = t0.elapsed().as_secs_f64();
    let constant = promet_run(
        &world,
        &world.truth,
        PrometConfig {
            crop_specific_kc: false,
            ..PrometConfig::default()
        },
    )
    .expect("promet baseline");

    let mut t1 = Table::new(
        "E11a — the 10 m water-availability map",
        "One full simulated year over the synthetic watershed; per-pixel soil-water \
         fraction at year end, plus basin water balance.",
        &["metric", "value"],
    );
    let pixels = size * size;
    t1.row(vec!["grid".into(), format!("{size}×{size} px @ 10 m ({pixels} pixels)")]);
    t1.row(vec!["simulated days".into(), specific.daily_basin_water.len().to_string()]);
    t1.row(vec![
        "year-end basin mean water fraction".into(),
        fmt_f64(*specific.daily_basin_water.last().expect("days ran")),
    ]);
    let wa: Vec<f64> = specific
        .summer_water_availability
        .data()
        .iter()
        .map(|&v| v as f64)
        .collect();
    t1.row(vec![
        "peak-stress map (day 235) p10 / median / p90".into(),
        format!(
            "{} / {} / {}",
            fmt_f64(quantile(&wa, 0.1).expect("non-empty")),
            fmt_f64(quantile(&wa, 0.5).expect("non-empty")),
            fmt_f64(quantile(&wa, 0.9).expect("non-empty")),
        ),
    ]);
    let min_day = specific
        .daily_basin_water
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");
    t1.row(vec![
        "driest basin day".into(),
        format!("day {} at mean fraction {}", min_day.0 + 1, fmt_f64(*min_day.1)),
    ]);
    t1.row(vec!["basin runoff".into(), format!("{:.0} mm", specific.runoff_mm)]);
    t1.row(vec!["snowfall".into(), format!("{:.0} mm", specific.snowfall_mm)]);
    t1.row(vec!["full-year runtime".into(), fmt_secs(runtime)]);

    let mut t2 = Table::new(
        "E11b — irrigation demand: crop-specific Kc vs constant Kc",
        "The A1 ablation: 'crop type specific deduction of crop variables, and thus a \
         higher degree of accuracy for each field' — the constant coefficient flattens \
         the differences between crops.",
        &["crop", "demand, crop-specific Kc (mm)", "demand, constant Kc (mm)"],
    );
    let by_specific = demand_by_crop(&world, &specific);
    let by_constant = demand_by_crop(&world, &constant);
    for (crop, demand) in &by_specific {
        let constant_demand = by_constant
            .iter()
            .find(|(c, _)| c == crop)
            .map(|(_, d)| *d)
            .unwrap_or(0.0);
        t2.row(vec![
            crop.name().into(),
            fmt_f64(*demand),
            fmt_f64(constant_demand),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_specific_spread_exceeds_constant() {
        let tables = run(Scale::Quick);
        let rows = &tables[1].rows;
        assert!(rows.len() >= 2, "at least two crops present");
        let spread = |col: usize| -> f64 {
            let vals: Vec<f64> = rows.iter().map(|r| r[col].parse().unwrap()).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        assert!(
            spread(1) > spread(2),
            "crop-specific Kc differentiates crops"
        );
    }
}
