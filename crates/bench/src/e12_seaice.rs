//! E12 — the 1 km sea-ice product suite and its delivery.
//!
//! Paper (A2): "sea ice concentration and type maps, displaying stage of
//! development (in accordance with the WMO Sea Ice Nomenclature),
//! including fraction of leads and ridges, over the Polar Regions, at a
//! resolution of 1 km or better", delivered through PCDSS "over
//! restricted communication links", with on-demand scalable processing.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_datasets::seaice::{IceWorld, IceWorldConfig};
use ee_polar::icemap::{mae, products_from_map, stage_confusion, truth_masks, IceMapper};
use ee_polar::pcdss::{encode_bundle, raw_bytes, transmission_secs};
use ee_polar::service::{nrt_cycle, NrtConfig};
use ee_util::timeline::Date;

/// Run E12.
pub fn run(scale: Scale) -> Vec<Table> {
    let (size, samples) = match scale {
        Scale::Quick => (80usize, 1500usize),
        Scale::Full => (160, 4000),
    };
    let world = IceWorld::generate(IceWorldConfig {
        size,
        days: 6,
        icebergs: 6,
        ..IceWorldConfig::default()
    })
    .expect("ice world");
    let day0 = Date::new(2017, 2, 10).expect("valid");

    // Train on days 0-2, evaluate day 5.
    let train_days: Vec<(ee_raster::Scene, ee_raster::Raster<u8>)> = (0..3)
        .map(|d| {
            (
                world
                    .simulate_sar(d, day0.plus_days(d as u32), 100 + d as u64)
                    .expect("sar"),
                world.truth(d),
            )
        })
        .collect();
    let refs: Vec<(&ee_raster::Scene, &ee_raster::Raster<u8>)> =
        train_days.iter().map(|(s, t)| (s, t)).collect();
    let mut mapper = IceMapper::train(&refs, samples, 25, 7).expect("train");
    let test_day = 5usize;
    let scene = world
        .simulate_sar(test_day, day0.plus_days(test_day as u32), 999)
        .expect("sar");
    let predicted = mapper.predict_map(&scene).expect("predict");
    let (truth, lead_mask, ridge_mask) = truth_masks(&world, test_day);

    // 1 km products from prediction and from truth.
    let factor = 25; // 40 m → 1 km
    let predicted_products = products_from_map(&predicted, &lead_mask, &ridge_mask, factor);
    let truth_products = products_from_map(&truth, &lead_mask, &ridge_mask, factor);
    let cm = stage_confusion(&predicted, &truth);
    let conc_mae = mae(
        &predicted_products.concentration,
        &truth_products.concentration,
    );
    // Stage agreement at 1 km.
    let stage_agree = predicted_products
        .stage
        .data()
        .iter()
        .zip(truth_products.stage.data())
        .filter(|(a, b)| a == b)
        .count() as f64
        / predicted_products.stage.data().len() as f64;

    let mut t1 = Table::new(
        "E12a — 1 km WMO product accuracy (held-out day)",
        "Per-pixel stage classification at 40 m, aggregated to the 1 km product grid.",
        &["metric", "value"],
    );
    t1.row(vec![
        "product grid".into(),
        format!(
            "{}×{} cells @ {} m",
            predicted_products.concentration.cols(),
            predicted_products.concentration.rows(),
            predicted_products.concentration.transform().pixel_size
        ),
    ]);
    t1.row(vec!["40 m stage accuracy (5 classes)".into(), fmt_f64(cm.accuracy())]);
    t1.row(vec!["40 m stage macro-F1".into(), fmt_f64(cm.macro_f1())]);
    t1.row(vec!["1 km concentration MAE".into(), fmt_f64(conc_mae)]);
    t1.row(vec!["1 km dominant-stage agreement".into(), fmt_f64(stage_agree)]);
    t1.row(vec![
        "mean lead fraction (truth)".into(),
        fmt_f64(truth_products.lead_fraction.mean() as f64),
    ]);
    t1.row(vec![
        "mean ridge fraction (truth)".into(),
        fmt_f64(truth_products.ridge_fraction.mean() as f64),
    ]);

    // PCDSS delivery: encode the 200 m product suite ("1 km or better"),
    // which is what actually stresses a kilobit ship link.
    let pcdss_products = products_from_map(&predicted, &lead_mask, &ridge_mask, 5);
    let mut t2 = Table::new(
        "E12b — PCDSS delivery over restricted links (200 m products)",
        "The product bundle against link budgets; when a budget cannot fit the full \
         resolution, PCDSS degrades resolution instead of failing.",
        &["budget", "bundle bytes", "downsample", "tx @ 2.4 kbps", "tx @ 64 kbps"],
    );
    let raw = raw_bytes(&pcdss_products);
    t2.row(vec![
        "raw (uncompressed f32)".into(),
        raw.to_string(),
        "1".into(),
        fmt_secs(transmission_secs(raw, 2400.0)),
        fmt_secs(transmission_secs(raw, 64_000.0)),
    ]);
    for budget in [1_000_000usize, 2_000, 600] {
        match encode_bundle(&pcdss_products, budget) {
            Ok(bundle) => {
                t2.row(vec![
                    format!("{budget} B"),
                    bundle.bytes().to_string(),
                    bundle.downsample.to_string(),
                    fmt_secs(transmission_secs(bundle.bytes(), 2400.0)),
                    fmt_secs(transmission_secs(bundle.bytes(), 64_000.0)),
                ]);
            }
            Err(_) => {
                t2.row(vec![
                    format!("{budget} B"),
                    "does not fit".into(),
                    "—".into(),
                    "—".into(),
                    "—".into(),
                ]);
            }
        }
    }

    // NRT budget.
    let mut t3 = Table::new(
        "E12c — near-real-time cycle budget",
        "Acquisition burst → downlink → on-demand processing → ship delivery, against \
         a 3-hour timeliness requirement.",
        &["nodes", "downlink", "processing", "delivery", "total", "≤ 3 h"],
    );
    for nodes in [1usize, 2, 4, 8] {
        let r = nrt_cycle(NrtConfig {
            nodes,
            ..NrtConfig::default()
        })
        .expect("nrt");
        t3.row(vec![
            nodes.to_string(),
            fmt_secs(r.downlink_secs),
            fmt_secs(r.processing_secs),
            fmt_secs(r.delivery_secs),
            fmt_secs(r.total_secs()),
            if r.meets(3.0 * 3600.0) { "yes" } else { "NO" }.into(),
        ]);
    }
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_meet_resolution_and_budgets() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 3);
        // The stage accuracy row is parseable and above chance.
        let acc: f64 = tables[0].rows[1][1].parse().unwrap();
        assert!(acc > 0.4, "stage accuracy {acc}");
        // Concentration MAE reasonable.
        let cmae: f64 = tables[0].rows[3][1].parse().unwrap();
        assert!(cmae < 0.2, "concentration MAE {cmae}");
        // The generous budget delivers at full resolution.
        assert_eq!(tables[1].rows[1][2], "1");
        // All NRT configurations meet 3 hours at the default workload.
        for row in &tables[2].rows {
            assert_eq!(row[5], "yes", "{row:?}");
        }
    }
}
