//! E1 — the information-extraction ratio.
//!
//! Paper (§1, Variety): "1 PB of Sentinel data may consist of about
//! 750,000 datasets which, when processed, about 450 TB of content
//! information and knowledge (e.g., classes of objects detected) can be
//! generated." We run the scaled pipeline — archive scenes, classify,
//! publish parcel knowledge — and report datasets and volumes.

use crate::table::{fmt_f64, Table};
use crate::Scale;
use ee_datasets::landscape::LandscapeConfig;
use ee_datasets::optics::{simulate_s2, OpticsConfig};
use ee_datasets::Landscape;
use ee_util::bytes::ByteSize;
use ee_util::timeline::Date;
use extremeearth::platform::{Platform, PlatformConfig};

/// Run E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let (size, scene_counts) = match scale {
        Scale::Quick => (48usize, vec![2usize, 4]),
        Scale::Full => (96, vec![4, 8, 16]),
    };
    let mut table = Table::new(
        "E1 — data → information & knowledge volumes",
        "Paper claim: 1 PB ≈ 750,000 datasets → ~450 TB of content information and knowledge. \
         Scaled reproduction: synthetic Sentinel-2 scenes through the extraction pipeline.",
        &[
            "scenes (datasets)",
            "input volume",
            "knowledge triples",
            "knowledge volume",
            "KB knowledge / dataset",
        ],
    );
    for &n in &scene_counts {
        let world = Landscape::generate(LandscapeConfig {
            size,
            parcels_per_side: size / 8,
            seed: 42,
            ..LandscapeConfig::default()
        })
        .expect("world generation");
        let scenes: Vec<_> = (0..n)
            .map(|i| {
                simulate_s2(
                    &world,
                    Date::from_ordinal(2017, 40 + i as u16 * 18).expect("valid doy"),
                    OpticsConfig::default(),
                    1000 + i as u64,
                )
                .expect("scene simulation")
            })
            .collect();
        let mut platform = Platform::new(PlatformConfig::default()).expect("platform");
        let report = platform
            .extract_knowledge(&format!("e1-{n}"), &world, &scenes, &world.truth)
            .expect("extraction");
        table.row(vec![
            report.datasets.to_string(),
            ByteSize(report.input_bytes).to_string(),
            report.knowledge_triples.to_string(),
            ByteSize(report.knowledge_bytes).to_string(),
            fmt_f64(report.knowledge_bytes as f64 / 1024.0 / report.datasets as f64),
        ]);
    }
    table.row(vec![
        "750,000 (paper, 1 PB)".into(),
        "1 PiB".into(),
        "—".into(),
        "450 TiB (incl. derived rasters)".into(),
        "—".into(),
    ]);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3, "two scales + the paper row");
        assert!(tables[0].markdown().contains("E1"));
    }
}
