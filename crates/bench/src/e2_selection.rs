//! E2 — rectangular spatial selections over point data.
//!
//! Paper (§1): Strabon "can only handle up to 100 GBs of point data and
//! still be able to answer simple geospatial queries (selections over a
//! rectangular area) efficiently (in a few seconds)". We measure the
//! selection latency of the indexed (Strabon-style) store against the
//! naive scan store as the point count grows — the shape that decides
//! whether "a few seconds" survives scale.

use crate::table::{fmt_secs, Table};
use crate::Scale;
use ee_rdf::exec::query;
use ee_rdf::store::IndexMode;
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::Rng;
use std::time::Instant;

/// Region side (degrees-like units).
const REGION: f64 = 100.0;

/// Build a store of `n` point features.
pub fn point_store(n: usize, mode: IndexMode, seed: u64) -> TripleStore {
    let mut store = TripleStore::new(mode);
    let mut rng = Rng::seed_from(seed);
    let geom = Term::iri("http://e/hasGeometry");
    let kind = Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    let feature = Term::iri("http://e/Feature");
    for i in 0..n {
        let s = Term::iri(format!("http://e/f{i}"));
        let x = rng.range_f64(0.0, REGION);
        let y = rng.range_f64(0.0, REGION);
        store.insert(&s, &kind, &feature);
        store.insert(&s, &geom, &Term::wkt(format!("POINT ({x} {y})")));
    }
    store.build_spatial_index();
    store
}

/// The 1%-area rectangular selection query.
pub fn selection_query(x0: f64, y0: f64) -> String {
    let side = REGION / 10.0;
    let (x1, y1) = (x0 + side, y0 + side);
    format!(
        "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE {{ \
         ?s e:hasGeometry ?g . \
         FILTER(geof:sfWithin(?g, \"POLYGON (({x0} {y0}, {x1} {y0}, {x1} {y1}, {x0} {y1}, {x0} {y0}))\"^^geo:wktLiteral)) }}"
    )
}

/// Median selection latency (seconds) over `reps` random windows, plus the
/// mean hit count.
pub fn measure(store: &TripleStore, reps: usize, seed: u64) -> (f64, f64) {
    let mut rng = Rng::seed_from(seed);
    let mut times = Vec::with_capacity(reps);
    let mut hits = 0.0;
    for _ in 0..reps {
        let x0 = rng.range_f64(0.0, REGION * 0.9);
        let y0 = rng.range_f64(0.0, REGION * 0.9);
        let q = selection_query(x0, y0);
        let t0 = Instant::now();
        let sol = query(store, &q).expect("selection query");
        times.push(t0.elapsed().as_secs_f64());
        if let Some(Term::Literal { lexical, .. }) = sol.scalar() {
            hits += lexical.parse::<f64>().unwrap_or(0.0);
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2], hits / reps as f64)
}

/// Run E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let (sizes, reps) = match scale {
        Scale::Quick => (vec![5_000usize, 20_000], 5usize),
        Scale::Full => (vec![10_000, 50_000, 200_000, 500_000], 9),
    };
    let mut table = Table::new(
        "E2 — rectangular selection latency vs point count",
        "Paper claim: a Strabon-class store answers rectangular selections over point data \
         'in a few seconds' up to ~100 GB; a naive store cannot. Three arms: triple \
         indexes with R-tree pushdown (Strabon-style), triple indexes with spatial \
         post-filtering only (the ablation), and a full scan (the naive baseline).",
        &[
            "points",
            "indexed + pushdown",
            "indexed, post-filter",
            "full scan",
            "pushdown speedup",
            "mean hits",
        ],
    );
    for &n in &sizes {
        let indexed = point_store(n, IndexMode::Full, 7);
        let (t_idx, hits) = measure(&indexed, reps, 99);
        let post = point_store(n, IndexMode::NoPushdown, 7);
        let (t_post, _) = measure(&post, reps, 99);
        let scan = point_store(n, IndexMode::Scan, 7);
        let (t_scan, _) = measure(&scan, reps, 99);
        table.row(vec![
            n.to_string(),
            fmt_secs(t_idx),
            fmt_secs(t_post),
            fmt_secs(t_scan),
            format!("{:.1}x", t_scan / t_idx.max(1e-12)),
            format!("{hits:.0}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_beats_scan() {
        let n = 20_000;
        let indexed = point_store(n, IndexMode::Full, 1);
        let scan = point_store(n, IndexMode::Scan, 1);
        let (ti, hits_i) = measure(&indexed, 3, 5);
        let (ts, hits_s) = measure(&scan, 3, 5);
        assert!((hits_i - hits_s).abs() < 1e-9, "same answers");
        assert!(hits_i > 0.0, "selections hit something");
        assert!(ts > ti, "index must win: {ts} vs {ti}");
    }

    #[test]
    fn quick_table_renders() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].rows.len(), 2);
    }
}
