//! E3 — selection latency vs geometry complexity.
//!
//! Paper (§1): "If the complexity of geometries in the dataset increases
//! (i.e., we have multi-polygons), not even the aforementioned
//! performance can be achieved for both Strabon and GraphDB." We grow the
//! per-feature vertex count from points to heavy multipolygons and watch
//! the refinement cost eat the index advantage.

use crate::table::{fmt_secs, Table};
use crate::Scale;
use ee_rdf::store::IndexMode;
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::Rng;

const REGION: f64 = 100.0;

/// The geometry classes of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeomClass {
    /// Plain points.
    Point,
    /// Single polygons with `usize` vertices.
    Polygon(usize),
    /// Multipolygons: 4 parts × `usize` vertices each.
    MultiPolygon(usize),
}

impl GeomClass {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            GeomClass::Point => "POINT".into(),
            GeomClass::Polygon(v) => format!("POLYGON ({v} vtx)"),
            GeomClass::MultiPolygon(v) => format!("MULTIPOLYGON (4 × {v} vtx)"),
        }
    }

    /// Vertex count per feature.
    pub fn vertices(&self) -> usize {
        match self {
            GeomClass::Point => 1,
            GeomClass::Polygon(v) => v + 1,
            GeomClass::MultiPolygon(v) => 4 * (v + 1),
        }
    }
}

fn regular_ring(cx: f64, cy: f64, radius: f64, vertices: usize) -> String {
    let pts: Vec<String> = (0..=vertices)
        .map(|i| {
            let theta = i as f64 / vertices as f64 * std::f64::consts::TAU;
            format!("{} {}", cx + radius * theta.cos(), cy + radius * theta.sin())
        })
        .collect();
    format!("({})", pts.join(", "))
}

/// Build a store of `n` features of the given geometry class.
pub fn geometry_store(n: usize, class: GeomClass, mode: IndexMode, seed: u64) -> TripleStore {
    let mut store = TripleStore::new(mode);
    let mut rng = Rng::seed_from(seed);
    let geom = Term::iri("http://e/hasGeometry");
    for i in 0..n {
        let s = Term::iri(format!("http://e/f{i}"));
        let cx = rng.range_f64(2.0, REGION - 2.0);
        let cy = rng.range_f64(2.0, REGION - 2.0);
        let wkt = match class {
            GeomClass::Point => format!("POINT ({cx} {cy})"),
            GeomClass::Polygon(v) => format!("POLYGON {}", {
                let ring = regular_ring(cx, cy, rng.range_f64(0.3, 1.2), v);
                format!("({ring})")
            }),
            GeomClass::MultiPolygon(v) => {
                let parts: Vec<String> = (0..4)
                    .map(|k| {
                        let dx = (k % 2) as f64 * 2.5;
                        let dy = (k / 2) as f64 * 2.5;
                        let ring =
                            regular_ring(cx + dx, cy + dy, rng.range_f64(0.3, 1.0), v);
                        format!("(({}))", &ring[1..ring.len() - 1])
                    })
                    .collect();
                format!("MULTIPOLYGON ({})", parts.join(", "))
            }
        };
        store.insert(&s, &geom, &Term::wkt(wkt));
    }
    store.build_spatial_index();
    store
}

/// Run E3.
pub fn run(scale: Scale) -> Vec<Table> {
    let (n, reps) = match scale {
        Scale::Quick => (3_000usize, 3usize),
        Scale::Full => (20_000, 7),
    };
    let classes = [
        GeomClass::Point,
        GeomClass::Polygon(8),
        GeomClass::Polygon(64),
        GeomClass::MultiPolygon(16),
        GeomClass::MultiPolygon(64),
    ];
    let mut table = Table::new(
        "E3 — selection latency vs geometry complexity",
        "Paper claim: performance degrades once geometries become multi-polygons. \
         Same rectangular selection as E2 over equal feature counts of rising complexity.",
        &[
            "geometry class",
            "vertices/feature",
            "indexed median",
            "scan median",
            "indexed slowdown vs points",
        ],
    );
    let mut point_base: Option<f64> = None;
    for class in classes {
        let indexed = geometry_store(n, class, IndexMode::Full, 11);
        let (ti, _) = crate::e2_selection::measure(&indexed, reps, 31);
        let scan = geometry_store(n, class, IndexMode::Scan, 11);
        let (ts, _) = crate::e2_selection::measure(&scan, reps, 31);
        let base = *point_base.get_or_insert(ti);
        table.row(vec![
            class.label(),
            class.vertices().to_string(),
            fmt_secs(ti),
            fmt_secs(ts),
            format!("{:.1}x", ti / base.max(1e-12)),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_increases_latency() {
        let n = 2_000;
        let pts = geometry_store(n, GeomClass::Point, IndexMode::Full, 1);
        let heavy = geometry_store(n, GeomClass::MultiPolygon(64), IndexMode::Full, 1);
        let (tp, _) = crate::e2_selection::measure(&pts, 3, 5);
        let (th, _) = crate::e2_selection::measure(&heavy, 3, 5);
        assert!(
            th > tp,
            "multipolygon refinement must cost more: {th} vs {tp}"
        );
    }

    #[test]
    fn stores_hold_valid_geometries() {
        let st = geometry_store(50, GeomClass::MultiPolygon(16), IndexMode::Full, 2);
        assert_eq!(st.dict.num_geometries(), 50, "all WKT parsed");
        let st2 = geometry_store(50, GeomClass::Polygon(8), IndexMode::Full, 2);
        assert_eq!(st2.dict.num_geometries(), 50);
    }

    #[test]
    fn quick_table_has_all_classes() {
        let t = run(Scale::Quick);
        assert_eq!(t[0].rows.len(), 5);
    }
}
