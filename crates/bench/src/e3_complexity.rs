//! E3 — selection latency vs geometry complexity, and BGP join latency
//! vs thread count.
//!
//! Paper (§1): "If the complexity of geometries in the dataset increases
//! (i.e., we have multi-polygons), not even the aforementioned
//! performance can be achieved for both Strabon and GraphDB." We grow the
//! per-feature vertex count from points to heavy multipolygons and watch
//! the refinement cost eat the index advantage.
//!
//! The second table sweeps the executor's thread count over a join-heavy
//! query on the same corpus: every run is asserted **bit-identical** to
//! the serial (t=1) answer — the parallel-joins contract — and the
//! speedup curve is written to `BENCH_PR3.json` by the harness.

use crate::table::{fmt_secs, Table};
use crate::Scale;
use ee_rdf::store::IndexMode;
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::json::Json;
use ee_util::Rng;
use std::time::Instant;

const REGION: f64 = 100.0;

/// The geometry classes of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeomClass {
    /// Plain points.
    Point,
    /// Single polygons with `usize` vertices.
    Polygon(usize),
    /// Multipolygons: 4 parts × `usize` vertices each.
    MultiPolygon(usize),
}

impl GeomClass {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            GeomClass::Point => "POINT".into(),
            GeomClass::Polygon(v) => format!("POLYGON ({v} vtx)"),
            GeomClass::MultiPolygon(v) => format!("MULTIPOLYGON (4 × {v} vtx)"),
        }
    }

    /// Vertex count per feature.
    pub fn vertices(&self) -> usize {
        match self {
            GeomClass::Point => 1,
            GeomClass::Polygon(v) => v + 1,
            GeomClass::MultiPolygon(v) => 4 * (v + 1),
        }
    }
}

fn regular_ring(cx: f64, cy: f64, radius: f64, vertices: usize) -> String {
    let pts: Vec<String> = (0..=vertices)
        .map(|i| {
            let theta = i as f64 / vertices as f64 * std::f64::consts::TAU;
            format!("{} {}", cx + radius * theta.cos(), cy + radius * theta.sin())
        })
        .collect();
    format!("({})", pts.join(", "))
}

/// Build a store of `n` features of the given geometry class.
pub fn geometry_store(n: usize, class: GeomClass, mode: IndexMode, seed: u64) -> TripleStore {
    let mut store = TripleStore::new(mode);
    let mut rng = Rng::seed_from(seed);
    let geom = Term::iri("http://e/hasGeometry");
    for i in 0..n {
        let s = Term::iri(format!("http://e/f{i}"));
        let cx = rng.range_f64(2.0, REGION - 2.0);
        let cy = rng.range_f64(2.0, REGION - 2.0);
        let wkt = match class {
            GeomClass::Point => format!("POINT ({cx} {cy})"),
            GeomClass::Polygon(v) => format!("POLYGON {}", {
                let ring = regular_ring(cx, cy, rng.range_f64(0.3, 1.2), v);
                format!("({ring})")
            }),
            GeomClass::MultiPolygon(v) => {
                let parts: Vec<String> = (0..4)
                    .map(|k| {
                        let dx = (k % 2) as f64 * 2.5;
                        let dy = (k / 2) as f64 * 2.5;
                        let ring =
                            regular_ring(cx + dx, cy + dy, rng.range_f64(0.3, 1.0), v);
                        format!("(({}))", &ring[1..ring.len() - 1])
                    })
                    .collect();
                format!("MULTIPOLYGON ({})", parts.join(", "))
            }
        };
        store.insert(&s, &geom, &Term::wkt(wkt));
    }
    store.build_spatial_index();
    store
}

/// Build the join-heavy corpus for the threads sweep: each feature gets
/// a type, a class (1-in-8 is "crop" — the selective seed pattern), a
/// name, and a heavy multipolygon geometry (4 × 33 vertices), so the
/// query below joins four patterns and then pays real per-row spatial
/// refinement — the E3 regime where the paper's engines fall over.
pub fn join_store(n: usize, seed: u64) -> TripleStore {
    let mut store = TripleStore::new(IndexMode::Full);
    let mut rng = Rng::seed_from(seed);
    let geom = Term::iri("http://e/hasGeometry");
    let kind = Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    let feature = Term::iri("http://e/Feature");
    let class = Term::iri("http://e/class");
    let name = Term::iri("http://e/name");
    let classes = [
        "crop", "forest", "water", "urban", "bare", "snow", "wetland", "shrub",
    ];
    for i in 0..n {
        let s = Term::iri(format!("http://e/f{i}"));
        let cx = rng.range_f64(2.0, REGION - 2.0);
        let cy = rng.range_f64(2.0, REGION - 2.0);
        let parts: Vec<String> = (0..4)
            .map(|k| {
                let dx = (k % 2) as f64 * 2.5;
                let dy = (k / 2) as f64 * 2.5;
                let ring = regular_ring(cx + dx, cy + dy, rng.range_f64(0.3, 1.0), 32);
                format!("(({}))", &ring[1..ring.len() - 1])
            })
            .collect();
        store.insert(&s, &kind, &feature);
        store.insert(&s, &class, &Term::string(classes[i % classes.len()]));
        store.insert(&s, &name, &Term::string(format!("feature {i}")));
        store.insert(
            &s,
            &geom,
            &Term::wkt(format!("MULTIPOLYGON ({})", parts.join(", "))),
        );
    }
    store.build_spatial_index();
    store
}

/// The threads-sweep query: seed on the selective class pattern, join
/// three more patterns per feature, then refine every candidate
/// multipolygon against a region covering a quarter of the extent.
pub fn join_query() -> String {
    let half = REGION / 2.0;
    format!(
        "PREFIX e: <http://e/> \
         SELECT ?s ?n WHERE {{ \
         ?s e:class \"crop\" . \
         ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> e:Feature . \
         ?s e:name ?n . \
         ?s e:hasGeometry ?g . \
         FILTER(geof:sfIntersects(?g, \"POLYGON ((0 0, {half} 0, {half} {half}, 0 {half}, 0 0))\"^^geo:wktLiteral)) }} \
         ORDER BY ?s"
    )
}

/// Thread counts to sweep: powers of two up to `max`, plus `max` itself.
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut out: Vec<usize> = (0..)
        .map(|i| 1usize << i)
        .take_while(|t| *t <= max)
        .collect();
    if *out.last().expect("non-empty") != max {
        out.push(max);
    }
    out
}

/// Median latency (seconds) of the join query at `threads`, plus the
/// solutions of the last run (for identity checks).
pub fn measure_join(
    store: &TripleStore,
    threads: usize,
    reps: usize,
) -> (f64, ee_rdf::exec::Solutions) {
    let q = join_query();
    let mut times = Vec::with_capacity(reps);
    let mut sol = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let s = ee_rdf::exec::query_with_threads(store, &q, threads).expect("join query");
        times.push(t0.elapsed().as_secs_f64());
        sol = Some(s);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2], sol.expect("reps >= 1"))
}

/// Run E3 with the join-speedup sweep, returning the printed tables and
/// the `BENCH_PR3.json` artifact. **Aborts** (panics) if any parallel
/// run diverges from the serial answer — the harness exit code is the
/// divergence check `verify.sh` relies on.
pub fn report(scale: Scale, max_threads: usize) -> (Vec<Table>, Json) {
    let mut tables = complexity_tables(scale);

    let (n, reps) = match scale {
        Scale::Quick => (6_000usize, 3usize),
        Scale::Full => (40_000, 7),
    };
    let store = join_store(n, 17);
    let mut table = Table::new(
        "E3b — BGP join latency vs executor threads",
        "A 4-pattern join + spatial refinement over the E3 corpus, executed by the \
         plan/batch/join pipeline at rising thread counts. Every row's answer is \
         asserted bit-identical to the serial run; speedup is t(serial) / t(threads) \
         and is bounded by the host's core count (recorded in BENCH_PR3.json).",
        &["threads", "median", "speedup vs serial", "rows"],
    );
    let sweep = thread_sweep(max_threads);
    let mut serial_time = 0.0f64;
    let mut serial_sol: Option<ee_rdf::exec::Solutions> = None;
    let mut curve = Vec::new();
    for &t in &sweep {
        let (secs, sol) = measure_join(&store, t, reps);
        match &serial_sol {
            None => {
                serial_time = secs;
                serial_sol = Some(sol.clone());
            }
            Some(base) => assert_eq!(
                *base, sol,
                "parallel executor diverged from serial at t={t}"
            ),
        }
        let speedup = serial_time / secs.max(1e-12);
        table.row(vec![
            t.to_string(),
            fmt_secs(secs),
            format!("{speedup:.2}x"),
            sol.len().to_string(),
        ]);
        curve.push(Json::obj(vec![
            ("threads", Json::Num(t as f64)),
            ("secs", Json::Num(secs)),
            ("speedup_vs_serial", Json::Num(speedup)),
            ("rows", Json::Num(sol.len() as f64)),
        ]));
    }
    tables.push(table);

    let json = Json::obj(vec![
        ("bench", Json::Str("pr3-parallel-joins".to_string())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.to_string()),
        ),
        (
            "host_threads",
            Json::Num(ee_util::par::available_threads() as f64),
        ),
        ("corpus_features", Json::Num(n as f64)),
        ("query", Json::Str(join_query())),
        ("serial_identical", Json::Bool(true)),
        ("join_speedup_curve", Json::Arr(curve)),
    ]);
    (tables, json)
}

/// Run E3 (complexity sweep only — the harness calls [`report`] to get
/// the threads table and JSON artifact as well).
pub fn run(scale: Scale) -> Vec<Table> {
    complexity_tables(scale)
}

/// The original complexity sweep.
fn complexity_tables(scale: Scale) -> Vec<Table> {
    let (n, reps) = match scale {
        Scale::Quick => (3_000usize, 3usize),
        Scale::Full => (20_000, 7),
    };
    let classes = [
        GeomClass::Point,
        GeomClass::Polygon(8),
        GeomClass::Polygon(64),
        GeomClass::MultiPolygon(16),
        GeomClass::MultiPolygon(64),
    ];
    let mut table = Table::new(
        "E3 — selection latency vs geometry complexity",
        "Paper claim: performance degrades once geometries become multi-polygons. \
         Same rectangular selection as E2 over equal feature counts of rising complexity.",
        &[
            "geometry class",
            "vertices/feature",
            "indexed median",
            "scan median",
            "indexed slowdown vs points",
        ],
    );
    let mut point_base: Option<f64> = None;
    for class in classes {
        let indexed = geometry_store(n, class, IndexMode::Full, 11);
        let (ti, _) = crate::e2_selection::measure(&indexed, reps, 31);
        let scan = geometry_store(n, class, IndexMode::Scan, 11);
        let (ts, _) = crate::e2_selection::measure(&scan, reps, 31);
        let base = *point_base.get_or_insert(ti);
        table.row(vec![
            class.label(),
            class.vertices().to_string(),
            fmt_secs(ti),
            fmt_secs(ts),
            format!("{:.1}x", ti / base.max(1e-12)),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_increases_latency() {
        let n = 2_000;
        let pts = geometry_store(n, GeomClass::Point, IndexMode::Full, 1);
        let heavy = geometry_store(n, GeomClass::MultiPolygon(64), IndexMode::Full, 1);
        let (tp, _) = crate::e2_selection::measure(&pts, 3, 5);
        let (th, _) = crate::e2_selection::measure(&heavy, 3, 5);
        assert!(
            th > tp,
            "multipolygon refinement must cost more: {th} vs {tp}"
        );
    }

    #[test]
    fn stores_hold_valid_geometries() {
        let st = geometry_store(50, GeomClass::MultiPolygon(16), IndexMode::Full, 2);
        assert_eq!(st.dict.num_geometries(), 50, "all WKT parsed");
        let st2 = geometry_store(50, GeomClass::Polygon(8), IndexMode::Full, 2);
        assert_eq!(st2.dict.num_geometries(), 50);
    }

    #[test]
    fn quick_table_has_all_classes() {
        let t = run(Scale::Quick);
        assert_eq!(t[0].rows.len(), 5);
    }

    #[test]
    fn thread_sweep_covers_powers_of_two_and_max() {
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(0), vec![1], "clamped to serial");
    }

    #[test]
    fn join_sweep_is_bit_identical_across_threads() {
        let store = join_store(1_500, 3);
        let (_, serial) = measure_join(&store, 1, 1);
        assert!(!serial.is_empty(), "join query matches something");
        for t in [2, 4, 8] {
            let (_, par) = measure_join(&store, t, 1);
            assert_eq!(serial, par, "t={t} must match serial");
        }
    }

    #[test]
    fn report_emits_threads_table_and_curve() {
        let (tables, json) = report(Scale::Quick, 2);
        let threads_table = tables.last().expect("threads table");
        assert_eq!(threads_table.rows.len(), 2, "t=1 and t=2");
        let curve = json.get("join_speedup_curve").expect("curve in artifact");
        match curve {
            Json::Arr(points) => assert_eq!(points.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
