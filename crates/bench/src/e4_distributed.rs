//! E4 — distributed training scaling: collective allreduce vs parameter
//! server.
//!
//! Paper (C1/C5): HOPS provides "distributed deep learning using
//! TensorFlow's distribution strategies, including collective allreduce
//! and parameter server", enabling training that "published deep learning
//! architectures for Copernicus satellite images" (single-GPU) cannot do.
//! Ref \[8\] adds the large-minibatch recipe. We price a ResNet-50-class
//! workload on the NIC model and report the two strategies' scaling, plus
//! the warmup ablation on real training.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_cluster::topology::ClusterSpec;
use ee_dl::data::Dataset;
use ee_dl::distributed::{
    scaling_sweep, train_data_parallel, Strategy, WorkloadSpec,
};
use ee_dl::model::mlp;
use ee_dl::optim::{LrSchedule, Sgd};
use ee_tensor::Tensor;
use ee_util::Rng;

/// The priced workload: ResNet-50-class network on a V100-class GPU with
/// 100 GbE (the fabric large-minibatch results assumed).
pub fn workload() -> WorkloadSpec {
    WorkloadSpec {
        gradient_bytes: 100_000_000,
        flops_per_sample: 8.0e9,
        batch_per_worker: 32,
        straggler_jitter: 0.05,
    }
}

/// The cluster: one rack of GPU nodes on 100 GbE.
pub fn cluster(n: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::flat(n);
    spec.node.nic_bandwidth = 12.5e9;
    spec
}

fn blobs(n: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from(seed);
    let mut xs = Vec::with_capacity(n * 2);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let cls = i % 2;
        let c = if cls == 0 { -1.0 } else { 1.0 };
        xs.push((c + rng.normal(0.0, 0.45)) as f32);
        xs.push((-c + rng.normal(0.0, 0.45)) as f32);
        ys.push(cls);
    }
    Dataset::new(Tensor::from_vec(&[n, 2], xs).expect("shape"), ys).expect("dataset")
}

/// Run E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let workers: Vec<usize> = match scale {
        Scale::Quick => vec![1, 4, 16],
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 64],
    };
    let dataset_size = match scale {
        Scale::Quick => 8_192,
        Scale::Full => 65_536,
    };
    let spec = cluster(workers.iter().max().copied().unwrap_or(1) + 8);
    let w = workload();
    let mut t1 = Table::new(
        "E4a — synchronous scaling: ring allreduce vs parameter server",
        "Simulated epoch time for a 100 MB-gradient model (32 samples/worker/step) on \
         100 GbE. The allreduce stays near-flat in communication; a single parameter \
         server serialises N gradient pushes at its NIC.",
        &[
            "workers",
            "allreduce epoch",
            "allreduce efficiency",
            "PS(1) epoch",
            "PS(1) efficiency",
            "PS(4) epoch",
        ],
    );
    let ar = scaling_sweep(&spec, &w, &workers, |_| Strategy::RingAllReduce, dataset_size, 3)
        .expect("allreduce sweep");
    let ps1 = scaling_sweep(
        &spec,
        &w,
        &workers,
        |_| Strategy::ParameterServer { servers: 1 },
        dataset_size,
        3,
    )
    .expect("ps1 sweep");
    let ps4 = scaling_sweep(
        &spec,
        &w,
        &workers,
        |_| Strategy::ParameterServer { servers: 4 },
        dataset_size,
        3,
    )
    .expect("ps4 sweep");
    for i in 0..workers.len() {
        t1.row(vec![
            workers[i].to_string(),
            fmt_secs(ar[i].epoch_time.as_secs()),
            format!("{:.0}%", ar[i].efficiency * 100.0),
            fmt_secs(ps1[i].epoch_time.as_secs()),
            format!("{:.0}%", ps1[i].efficiency * 100.0),
            fmt_secs(ps4[i].epoch_time.as_secs()),
        ]);
    }

    // E4b: the warmup ablation (ref [8]) on real gradients.
    let mut t2 = Table::new(
        "E4b — large-minibatch LR scaling with and without warmup (ref [8])",
        "8-worker data parallelism = 8× batch. Linear LR scaling needs a warmup ramp to \
         avoid early instability; we report the training loss after 1 and after 8 epochs.",
        &["schedule", "loss @ epoch 1", "loss @ epoch 8"],
    );
    let data = blobs(1024, 17);
    let base_lr = 0.4f32;
    for (name, schedule) in [
        ("constant base LR (no scaling)", LrSchedule::Constant(base_lr)),
        (
            "8x LR, no warmup",
            LrSchedule::Constant(base_lr * 8.0),
        ),
        (
            "8x LR, 2-epoch warmup",
            LrSchedule::LinearScalingWarmup {
                base: base_lr,
                scale: 8.0,
                warmup_steps: 8, // 4 steps/epoch at batch 256
            },
        ),
    ] {
        let mut model = mlp(2, 24, 2, &mut Rng::seed_from(55));
        let mut opt = Sgd::new(schedule, 0.9);
        let losses = train_data_parallel(&mut model, &data, 8, 256, &mut opt, 8, 7)
            .expect("training");
        t2.row(vec![
            name.into(),
            fmt_f64(losses[0] as f64),
            fmt_f64(*losses.last().expect("epochs ran") as f64),
        ]);
    }

    // E4c: the HOPS "parallel deep learning experiments" service —
    // hyper-parameter search campaigns priced on the cluster scheduler.
    let mut t3 = Table::new(
        "E4c — hyper-parameter search campaign makespan",
        "HOPS provides parallel deep-learning experiments (hyperparameter search). \
         A 24-trial random-search campaign (10-minute trials, 1 GPU each) on \
         clusters of growing size; plus the best configuration the search found \
         on a real validation task.",
        &["GPUs", "campaign makespan", "speedup"],
    );
    use ee_dl::search::{best, campaign_makespan, random_configs, run_search};
    use ee_util::timeline::SimDuration;
    let trials = 24usize;
    let trial_runtime = SimDuration::from_secs(600.0);
    let mut base: Option<f64> = None;
    for gpus in [1usize, 4, 8, 24] {
        let makespan = campaign_makespan(trials, trial_runtime, gpus).expect("makespan");
        let b = *base.get_or_insert(makespan.as_secs());
        t3.row(vec![
            gpus.to_string(),
            fmt_secs(makespan.as_secs()),
            format!("{:.1}x", b / makespan.as_secs()),
        ]);
    }
    // A real (small) search to show the service end: the found config.
    let data = blobs(512, 23);
    let (train, val) = data.split(0.75, 2).expect("split");
    let configs = random_configs(12, 40, 5);
    let results = run_search(&configs, &train, &val, 7).expect("search");
    let b = best(&results).expect("non-empty");
    t3.row(vec![
        "search result".into(),
        format!(
            "best of 12 random configs: hidden={}, lr={:.3}, momentum={:.2}",
            b.config.hidden, b.config.lr, b.config.momentum
        ),
        format!("val accuracy {:.3}", b.accuracy),
    ]);
    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_scales_better_than_single_ps() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 3);
        // Parse the last row: 16 workers.
        let last = tables[0].rows.last().unwrap();
        let ar_eff: f64 = last[2].trim_end_matches('%').parse().unwrap();
        let ps_eff: f64 = last[4].trim_end_matches('%').parse().unwrap();
        assert!(
            ar_eff > ps_eff,
            "allreduce efficiency {ar_eff}% vs PS {ps_eff}%"
        );
    }

    #[test]
    fn warmup_table_has_three_schedules() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[1].rows.len(), 3);
    }

    #[test]
    fn campaign_makespan_scales_with_gpus() {
        let tables = run(Scale::Quick);
        let rows = &tables[2].rows;
        // 24 trials x 10 min: 1 GPU = 240 min; 24 GPUs = 10 min.
        assert!(rows[0][1].contains("4.00 h"), "{:?}", rows[0]);
        assert!(rows[3][1].contains("10.0 min"), "{:?}", rows[3]);
        assert!(rows.last().unwrap()[2].contains("val accuracy"));
    }
}
