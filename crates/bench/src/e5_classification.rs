//! E5 — classification quality: deep/temporal/multimodal vs shallow
//! baselines, for crops and for sea ice.
//!
//! Paper (C1): two DL architectures will be developed — crop type and
//! sea-ice mapping — exploiting "the spatial, spectral, temporal and
//! multimodal properties of Sentinel data", against a state of the art of
//! single-image shallow classification.

use crate::table::{fmt_f64, Table};
use crate::Scale;
use ee_datasets::benchmark::{multimodal_pixels, pixels_from_scene, sar_pixels};
use ee_datasets::landscape::LandscapeConfig;
use ee_datasets::optics::{simulate_s2, simulate_season, OpticsConfig};
use ee_datasets::sar::{simulate_s1, SarConfig};
use ee_datasets::Landscape;
use ee_dl::baselines::{Knn, SoftmaxRegression};
use ee_dl::Dataset;
use ee_food::cropmap;
use ee_polar::icemap::{stage_confusion, IceMapper};
use ee_util::timeline::Date;

fn eval_split(data: &Dataset, seed: u64) -> (Dataset, Dataset) {
    data.split(0.7, seed).expect("split")
}

fn mlp_accuracy(train: &Dataset, test: &Dataset, seed: u64) -> (f64, f64) {
    let mut model =
        ee_dl::baselines::train_mlp_baseline(train, 48, 25, 0.1, seed).expect("mlp train");
    let d: usize = test.x.shape()[1..].iter().product();
    let flat = test.x.reshape(&[test.len(), d]).expect("flat");
    let cm = model.evaluate(&flat, &test.labels).expect("eval");
    (cm.accuracy(), cm.macro_f1())
}

/// Run E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let (size, samples) = match scale {
        Scale::Quick => (48usize, 1200usize),
        Scale::Full => (96, 4000),
    };
    let world = Landscape::generate(LandscapeConfig {
        size,
        parcels_per_side: size / 8,
        seed: 20170101,
        ..LandscapeConfig::default()
    })
    .expect("world");
    let clear = OpticsConfig {
        cloud_fraction: 0.0,
        noise_std: 0.01,
    };
    let peak = Date::from_ordinal(2017, 150).expect("valid");
    let optical = simulate_s2(&world, peak, clear, 5).expect("s2");
    let sar = simulate_s1(&world, peak, SarConfig::default(), 6).expect("s1");

    let mut t1 = Table::new(
        "E5a — crop/land-cover classification (10 classes)",
        "Per-pixel classifiers on the synthetic watershed; temporal and multimodal \
         variants exploit exactly the structure Challenge C1 names.",
        &["method", "features", "accuracy", "macro-F1"],
    );

    // Shallow baselines on single-date spectra.
    let single = pixels_from_scene(&optical, &world.truth, samples, 9).expect("pixels");
    let (train, test) = eval_split(&single, 1);
    {
        let mut lr = SoftmaxRegression::fit(&train, 150, 0.3, 2).expect("softmax");
        let cm = lr.evaluate(&test).expect("eval");
        t1.row(vec![
            "softmax regression".into(),
            "13 bands, single date".into(),
            fmt_f64(cm.accuracy()),
            fmt_f64(cm.macro_f1()),
        ]);
        let knn = Knn::fit(&train, 5).expect("knn");
        let cm = knn.evaluate(&test).expect("eval");
        t1.row(vec![
            "kNN (k=5)".into(),
            "13 bands, single date".into(),
            fmt_f64(cm.accuracy()),
            fmt_f64(cm.macro_f1()),
        ]);
        let (acc, f1) = mlp_accuracy(&train, &test, 3);
        t1.row(vec![
            "MLP".into(),
            "13 bands, single date".into(),
            fmt_f64(acc),
            fmt_f64(f1),
        ]);
    }
    // SAR-only.
    {
        let sar_data = sar_pixels(&sar, &world.truth, samples, 9).expect("sar pixels");
        let (train, test) = eval_split(&sar_data, 4);
        let (acc, f1) = mlp_accuracy(&train, &test, 5);
        t1.row(vec![
            "MLP".into(),
            "SAR only (VV, VH, ratio)".into(),
            fmt_f64(acc),
            fmt_f64(f1),
        ]);
    }
    // Multimodal.
    {
        let multi =
            multimodal_pixels(&optical, &sar, &world.truth, samples, 9).expect("multimodal");
        let (train, test) = eval_split(&multi, 6);
        let (acc, f1) = mlp_accuracy(&train, &test, 7);
        t1.row(vec![
            "MLP".into(),
            "multimodal (13 optical + 2 SAR)".into(),
            fmt_f64(acc),
            fmt_f64(f1),
        ]);
    }
    // Spatial CNN over patches (the convolutional half of C1). Patches
    // are pooled from several synthetic worlds — one scene is far too few
    // patches for a CNN, exactly the scarcity Challenge C2 exists to fix.
    {
        let patch = 8usize;
        let worlds = match scale {
            Scale::Quick => 3usize,
            Scale::Full => 6,
        };
        let mut all_x: Vec<f32> = Vec::new();
        let mut all_y: Vec<usize> = Vec::new();
        let mut width = 0usize;
        for w in 0..worlds {
            let ww = Landscape::generate(LandscapeConfig {
                size,
                parcels_per_side: size / 8,
                seed: 9000 + w as u64,
                ..LandscapeConfig::default()
            })
            .expect("world");
            let scene = simulate_s2(&ww, peak, clear, 40 + w as u64).expect("scene");
            let d = ee_datasets::benchmark::patches_from_scene(&scene, &ww.truth, patch)
                .expect("patches");
            width = d.x.shape()[1..].iter().product();
            all_x.extend_from_slice(d.x.data());
            all_y.extend_from_slice(&d.labels);
        }
        let n = all_y.len();
        let x = ee_tensor::Tensor::from_vec(&[n, 13, patch, patch], all_x).expect("shape");
        let _ = width;
        let pooled = Dataset::new(x, all_y).expect("dataset");
        let (mut train, mut test) = eval_split(&pooled, 21);
        let (mean, std) = train.feature_stats();
        train.standardize(&mean, &std);
        test.standardize(&mean, &std);
        let mut rng = ee_util::Rng::seed_from(31);
        let mut cnn = ee_dl::model::patch_cnn(13, patch, 10, &mut rng);
        let mut opt = ee_dl::optim::Adam::new(ee_dl::optim::LrSchedule::Constant(0.002));
        let epochs = match scale {
            Scale::Quick => 15,
            Scale::Full => 40,
        };
        for epoch in 0..epochs {
            for idx in ee_dl::data::BatchIter::new(train.len(), 32, 77 ^ epoch as u64) {
                let batch = train.take(&idx).expect("batch");
                cnn.compute_gradients(&batch.x, &batch.labels).expect("grads");
                opt.step(&mut cnn).expect("step");
            }
        }
        let cm = cnn.evaluate(&test.x, &test.labels).expect("eval");
        t1.row(vec![
            format!("patch CNN (2 conv blocks, {} patches)", pooled.len()),
            format!("13 bands, {patch}×{patch} patches, single date"),
            fmt_f64(cm.accuracy()),
            fmt_f64(cm.macro_f1()),
        ]);
    }
    // Temporal (the Challenge C1 architecture).
    {
        let dates: Vec<Date> = [60u16, 105, 150, 195, 240, 285]
            .iter()
            .map(|&d| Date::from_ordinal(2017, d).expect("valid"))
            .collect();
        let stack = simulate_season(&world, &dates, clear, 5).expect("season");
        let (_, cm) = cropmap::classify_landscape(&world, &stack, 8).expect("temporal");
        t1.row(vec![
            "temporal MLP (crop mapper)".into(),
            "NDVI series (6 dates) + anchors".into(),
            fmt_f64(cm.accuracy()),
            fmt_f64(cm.macro_f1()),
        ]);
    }

    // Sea ice.
    let mut t2 = Table::new(
        "E5b — sea-ice stage classification (5 WMO classes, held-out day)",
        "SAR features with texture, trained on days 0–2, evaluated on day 5.",
        &["method", "accuracy", "macro-F1", "ice/water accuracy"],
    );
    {
        let ice_world = ee_datasets::seaice::IceWorld::generate(
            ee_datasets::seaice::IceWorldConfig {
                size: size.max(64),
                days: 6,
                ..ee_datasets::seaice::IceWorldConfig::default()
            },
        )
        .expect("ice world");
        let day0 = Date::new(2017, 2, 10).expect("valid");
        let train_days: Vec<(ee_raster::Scene, ee_raster::Raster<u8>)> = (0..3)
            .map(|d| {
                (
                    ice_world
                        .simulate_sar(d, day0.plus_days(d as u32), 100 + d as u64)
                        .expect("sar"),
                    ice_world.truth(d),
                )
            })
            .collect();
        let refs: Vec<(&ee_raster::Scene, &ee_raster::Raster<u8>)> =
            train_days.iter().map(|(s, t)| (s, t)).collect();
        let mut mapper = IceMapper::train(&refs, samples, 25, 7).expect("train");
        let test_scene = ice_world
            .simulate_sar(5, day0.plus_days(5), 999)
            .expect("sar");
        let truth5 = ice_world.truth(5);
        let map = mapper.predict_map(&test_scene).expect("predict");
        let cm = stage_confusion(&map, &truth5);
        let binary = map
            .iter()
            .zip(truth5.iter())
            .filter(|((_, _, p), (_, _, t))| (*p == 0) == (*t == 0))
            .count() as f64
            / map.data().len() as f64;
        t2.row(vec![
            "MLP + texture (IceMapper)".into(),
            fmt_f64(cm.accuracy()),
            fmt_f64(cm.macro_f1()),
            fmt_f64(binary),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_beats_single_date_linear() {
        let tables = run(Scale::Quick);
        let rows = &tables[0].rows;
        let acc = |row: &Vec<String>| -> f64 { row[2].parse().unwrap() };
        let softmax = acc(&rows[0]);
        let temporal = acc(rows.last().unwrap());
        assert!(
            temporal > softmax,
            "temporal {temporal} must beat single-date softmax {softmax}"
        );
    }
}
