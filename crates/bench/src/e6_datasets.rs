//! E6 — training-dataset generation at EuroSat scale and beyond.
//!
//! Paper (C2): the largest existing benchmark is EuroSat — "13 different
//! spectral bands and 10 land cover classes with a total of 27,000
//! labeled images"; ExtremeEarth will build *million-sample* datasets by
//! "leveraging existing cartographic/thematic products". We measure
//! patch-generation throughput (to project 27 k and 1 M samples) and the
//! quality of cartography-derived weak labels under annotation noise and
//! map staleness.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_datasets::benchmark::{label_agreement, patches_from_scene, weak_label_raster};
use ee_datasets::landscape::LandscapeConfig;
use ee_datasets::optics::{simulate_s2, OpticsConfig};
use ee_datasets::Landscape;
use ee_util::timeline::Date;
use std::time::Instant;

/// Generate one world + scene and cut patches; returns (patches, seconds).
pub fn generate_batch(size: usize, patch: usize, seed: u64) -> (usize, f64) {
    let t0 = Instant::now();
    let world = Landscape::generate(LandscapeConfig {
        size,
        parcels_per_side: (size / 8).max(2),
        seed,
        ..LandscapeConfig::default()
    })
    .expect("world");
    let scene = simulate_s2(
        &world,
        Date::from_ordinal(2017, 150).expect("valid"),
        OpticsConfig::default(),
        seed,
    )
    .expect("scene");
    let ds = patches_from_scene(&scene, &world.truth, patch).expect("patches");
    (ds.len(), t0.elapsed().as_secs_f64())
}

/// Run E6.
pub fn run(scale: Scale) -> Vec<Table> {
    let (size, batches) = match scale {
        Scale::Quick => (64usize, 2usize),
        Scale::Full => (128, 4),
    };
    let patch = 16; // EuroSat patches are 64×64 at 10 m; ours are 16×16.
    let mut total_patches = 0usize;
    let mut total_secs = 0.0f64;
    for b in 0..batches {
        let (n, secs) = generate_batch(size, patch, 500 + b as u64);
        total_patches += n;
        total_secs += secs;
    }
    let rate = total_patches as f64 / total_secs.max(1e-9);
    let mut t1 = Table::new(
        "E6a — labelled-patch generation throughput (13 bands, 10 classes)",
        "EuroSat (ref [11]) holds 27,000 patches; Challenge C2 targets millions. \
         Projection from measured single-core generation throughput.",
        &["metric", "value"],
    );
    t1.row(vec!["patch size".into(), format!("{patch}×{patch} px, 13 bands")]);
    t1.row(vec!["patches generated".into(), total_patches.to_string()]);
    t1.row(vec!["throughput".into(), format!("{rate:.0} patches/s")]);
    t1.row(vec![
        "projected time, 27,000 patches (EuroSat scale)".into(),
        fmt_secs(27_000.0 / rate),
    ]);
    t1.row(vec![
        "projected time, 1,000,000 patches (C2 target)".into(),
        fmt_secs(1_000_000.0 / rate),
    ]);

    let mut t2 = Table::new(
        "E6b — weak labels from cartographic products",
        "Pixel agreement of map-derived labels with ground truth under annotation \
         noise and map staleness (crop rotation since the map was made).",
        &["annotation noise", "staleness", "label agreement"],
    );
    let world = Landscape::generate(LandscapeConfig {
        size,
        parcels_per_side: (size / 8).max(2),
        seed: 321,
        ..LandscapeConfig::default()
    })
    .expect("world");
    for (noise, stale) in [
        (0.0, 0.0),
        (0.1, 0.0),
        (0.3, 0.0),
        (0.0, 0.25),
        (0.1, 0.25),
        (0.3, 0.5),
    ] {
        let weak = weak_label_raster(&world, noise, stale, 77);
        t2.row(vec![
            format!("{:.0}%", noise * 100.0),
            format!("{:.0}%", stale * 100.0),
            fmt_f64(label_agreement(&world, &weak)),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_clean_labels_perfect() {
        let tables = run(Scale::Quick);
        // Clean cartography row agrees fully.
        let clean = &tables[1].rows[0];
        assert_eq!(clean[2], "1.000", "{clean:?}");
        // Noisier rows agree less.
        let a_clean: f64 = tables[1].rows[0][2].parse().unwrap();
        let a_noisy: f64 = tables[1].rows[2][2].parse().unwrap();
        assert!(a_noisy < a_clean);
    }
}
