//! E7 — multi-core meta-blocking for geospatial interlinking.
//!
//! Paper (C3, ref \[19\]): "the JedAI linking framework will be extended to
//! enable the scalable discovery of geospatial relations in big
//! geospatial RDF data sources", with ref \[19\] being multi-core
//! meta-blocking. We report the comparison counts of exhaustive /
//! blocked / meta-blocked discovery, the recall retained, and the
//! multi-core speedup of verification.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_interlink::discover::{discover, exhaustive, DiscoverConfig};
use ee_interlink::entity::{LinkRule, SpatialEntity, SpatialRelation};
use ee_interlink::meta::Pruning;
use ee_geo::Polygon;
use ee_util::Rng;
use std::time::Instant;

/// Generate two random polygon sets over a 100×100 region. The polygons
/// are 32-gons, so exact verification (the multi-core stage) carries real
/// per-pair cost — as it does on administrative boundaries and cadastral
/// parcels in the real datasets.
pub fn entity_sets(n: usize, seed: u64) -> (Vec<SpatialEntity>, Vec<SpatialEntity>) {
    let mut rng = Rng::seed_from(seed);
    let make = |base: u64, i: usize, rng: &mut Rng| {
        let cx = rng.range_f64(2.0, 98.0);
        let cy = rng.range_f64(2.0, 98.0);
        let r = rng.range_f64(0.3, 1.6);
        let vertices = 32;
        let pts: Vec<ee_geo::Point> = (0..vertices)
            .map(|k| {
                let theta = k as f64 / vertices as f64 * std::f64::consts::TAU;
                // Slightly irregular radius: non-convex wobble.
                let rr = r * (1.0 + 0.2 * ((k % 3) as f64 - 1.0) * 0.5);
                ee_geo::Point::new(cx + rr * theta.cos(), cy + rr * theta.sin())
            })
            .collect();
        SpatialEntity::new(
            base + i as u64,
            Polygon::from_exterior(pts).expect("ring valid").into(),
        )
    };
    (
        (0..n).map(|i| make(0, i, &mut rng)).collect(),
        (0..n).map(|i| make(1_000_000, i, &mut rng)).collect(),
    )
}

/// Run E7.
pub fn run(scale: Scale) -> Vec<Table> {
    let (n, threads) = match scale {
        Scale::Quick => (800usize, vec![1usize, 2, 4]),
        Scale::Full => (4000, vec![1, 2, 4, 8]),
    };
    let (src, tgt) = entity_sets(n, 13);
    let rule = LinkRule::spatial(SpatialRelation::Intersects);

    // Comparisons table.
    let truth = exhaustive(&src, &tgt, rule);
    let blocked = discover(
        &src,
        &tgt,
        rule,
        DiscoverConfig {
            grid_cells: 96,
            threads: 1,
            pruning: Pruning::None,
        },
    )
    .expect("blocked");
    let meta = discover(
        &src,
        &tgt,
        rule,
        DiscoverConfig {
            grid_cells: 96,
            threads: 1,
            pruning: Pruning::WeightedEdge,
        },
    )
    .expect("meta");
    let mut t1 = Table::new(
        "E7a — comparisons and recall per stage",
        "Equigrid blocking is lossless; Jaccard-weighted edge pruning (meta-blocking) \
         trades a little recall for most of the remaining comparisons.",
        &["stage", "comparisons", "vs exhaustive", "links found", "recall"],
    );
    t1.row(vec![
        "exhaustive".into(),
        truth.comparisons.to_string(),
        "100%".into(),
        truth.links.len().to_string(),
        "1.000".into(),
    ]);
    t1.row(vec![
        "blocking".into(),
        blocked.comparisons.to_string(),
        format!(
            "{:.2}%",
            blocked.comparisons as f64 / truth.comparisons as f64 * 100.0
        ),
        blocked.links.len().to_string(),
        fmt_f64(blocked.recall_against(&truth.links)),
    ]);
    t1.row(vec![
        "meta-blocking (WEP)".into(),
        meta.comparisons.to_string(),
        format!(
            "{:.2}%",
            meta.comparisons as f64 / truth.comparisons as f64 * 100.0
        ),
        meta.links.len().to_string(),
        fmt_f64(meta.recall_against(&truth.links)),
    ]);

    // Multi-core speedup.
    let mut t2 = Table::new(
        "E7b — multi-core verification speedup",
        format!(
            "Wall-clock of meta-blocked discovery vs verification threads (ref [19]'s \
             multi-core meta-blocking). This host exposes {} core(s); speedup is bounded \
             by that, and cross-thread result identity is unit-tested separately.",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ),
        &["threads", "wall time", "speedup"],
    );
    let mut base: Option<f64> = None;
    for &t in &threads {
        // Median of 3 runs.
        let mut times = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let _ = discover(
                &src,
                &tgt,
                rule,
                DiscoverConfig {
                    grid_cells: 96,
                    threads: t,
                    pruning: Pruning::WeightedEdge,
                },
            )
            .expect("discover");
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = times[1];
        let b = *base.get_or_insert(median);
        t2.row(vec![
            t.to_string(),
            fmt_secs(median),
            format!("{:.2}x", b / median),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_shrink_comparisons() {
        let tables = run(Scale::Quick);
        let rows = &tables[0].rows;
        let comp = |i: usize| -> usize { rows[i][1].parse().unwrap() };
        assert!(comp(1) < comp(0) / 10, "blocking cuts >90%");
        assert!(comp(2) < comp(1), "meta-blocking cuts further");
        let recall: f64 = rows[1][4].parse().unwrap();
        assert!((recall - 1.0).abs() < 1e-9, "blocking lossless");
    }
}
