//! E8 — federated query answering over distributed geospatial sources.
//!
//! Paper (C3, ref \[3\]): "the engine Semagrow will be extended so that it
//! can manage efficiently federations of big geospatial data sources and
//! answer extreme geospatial analytical queries." We compare the
//! optimised plan (source selection + bind joins) against the naive
//! broadcast baseline on requests, transfer and latency.

use crate::table::{fmt_secs, Table};
use crate::Scale;
use ee_federation::{federated_query, Endpoint, FederationCatalog, Mode};
use ee_rdf::store::IndexMode;
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::Rng;
use std::time::Instant;

/// Build a federation: a crops source, an ice source (different spatial
/// extent), and a names source, `n` features each.
pub fn federation(n: usize, seed: u64) -> Vec<Endpoint> {
    let mut rng = Rng::seed_from(seed);
    let mut crops = TripleStore::new(IndexMode::Full);
    let mut names = TripleStore::new(IndexMode::Full);
    let t = |s: &str| Term::iri(format!("http://e/{s}"));
    for i in 0..n {
        let f = t(&format!("field{i}"));
        let crop = if rng.chance(0.4) { "wheat" } else { "maize" };
        crops.insert(&f, &t("cropType"), &Term::string(crop));
        let x = rng.range_f64(0.0, 50.0);
        let y = rng.range_f64(0.0, 10.0);
        crops.insert(&f, &t("hasGeom"), &Term::wkt(format!("POINT ({x} {y})")));
        names.insert(&f, &t("name"), &Term::string(format!("Field {i}")));
    }
    crops.build_spatial_index();
    let mut ice = TripleStore::new(IndexMode::Full);
    for i in 0..n {
        let f = t(&format!("floe{i}"));
        ice.insert(&f, &t("iceType"), &Term::string("first-year"));
        let x = rng.range_f64(0.0, 50.0);
        let y = rng.range_f64(75.0, 85.0);
        ice.insert(&f, &t("hasGeom"), &Term::wkt(format!("POINT ({x} {y})")));
    }
    ice.build_spatial_index();
    vec![
        Endpoint::new("crops", crops),
        Endpoint::new("ice", ice),
        Endpoint::new("names", names),
    ]
}

/// The benchmark query: wheat fields joined to their names.
pub const JOIN_QUERY: &str = "PREFIX e: <http://e/> SELECT ?f ?n WHERE { \
    ?f e:cropType \"wheat\" . ?f e:name ?n }";

/// The spatial query: features in a box that only the crops extent covers.
pub const SPATIAL_QUERY: &str = "PREFIX e: <http://e/> SELECT ?f WHERE { \
    ?f e:hasGeom ?g . \
    FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 50 0, 50 10, 0 10, 0 0))\"^^geo:wktLiteral)) }";

/// Run E8.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = match scale {
        Scale::Quick => 500usize,
        Scale::Full => 5000,
    };
    let endpoints = federation(n, 3);
    let catalog = FederationCatalog::build(&endpoints);
    let mut table = Table::new(
        "E8 — federated query: Semagrow-style optimisation vs naive broadcast",
        "Source selection drops irrelevant endpoints (by predicate and by spatial \
         extent); bind joins ship bindings instead of pulling whole tables.",
        &[
            "query",
            "plan",
            "requests",
            "triples transferred",
            "rows",
            "latency",
        ],
    );
    for (name, q) in [("join", JOIN_QUERY), ("spatial", SPATIAL_QUERY)] {
        for (plan, mode) in [("naive", Mode::Naive), ("optimized", Mode::Optimized)] {
            let t0 = Instant::now();
            let report = federated_query(&endpoints, &catalog, q, mode).expect("query");
            let secs = t0.elapsed().as_secs_f64();
            table.row(vec![
                name.into(),
                plan.into(),
                report.total_requests.to_string(),
                report.triples_transferred.to_string(),
                report.rows.len().to_string(),
                fmt_secs(secs),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_transfers_less_and_agrees() {
        let tables = run(Scale::Quick);
        let rows = &tables[0].rows;
        // join query: rows 0 (naive) and 1 (optimized).
        let transferred = |i: usize| -> u64 { rows[i][3].parse().unwrap() };
        let count = |i: usize| -> usize { rows[i][4].parse().unwrap() };
        assert_eq!(count(0), count(1), "same answers");
        assert!(transferred(1) < transferred(0), "bind join transfers less");
        // spatial query: rows 2/3.
        assert_eq!(count(2), count(3));
        let requests = |i: usize| -> u64 { rows[i][2].parse().unwrap() };
        assert!(requests(3) < requests(2), "source selection saves requests");
    }
}
