//! E9 — catalogue scaling and the semantic iceberg query.
//!
//! Paper (C4): semantic catalogues "scaling to trillions of metadata
//! records" that answer questions like the Norske Øer iceberg count —
//! which "currently cannot be answered" by classic catalogues. We scale
//! the product count (laptop-scaled stand-in for "trillions"), measure
//! classic AOI search and semantic GeoSPARQL search, and time the
//! two-step iceberg question itself.

use crate::table::{fmt_secs, Table};
use crate::Scale;
use ee_catalogue::classic::Search;
use ee_catalogue::{ClassicCatalogue, ProductGenerator, SemanticCatalogue};
use ee_geo::{Envelope, Point, Polygon};
use ee_util::timeline::Date;
use ee_util::Rng;
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Run E9.
pub fn run(scale: Scale) -> Vec<Table> {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![2_000, 10_000],
        Scale::Full => vec![10_000, 50_000, 200_000],
    };
    let region = Envelope::new(0.0, 0.0, 40.0, 40.0);
    let mut t1 = Table::new(
        "E9a — catalogue search latency vs archive size",
        "Classic = AOI + attribute search on the R-tree index. Semantic = the same \
         selection as GeoSPARQL over the RDF store (plus everything else it can do).",
        &[
            "products",
            "classic AOI search",
            "semantic GeoSPARQL search",
            "triples held",
        ],
    );
    for &n in &sizes {
        let products = ProductGenerator::new(region, 2017, 5).take(n);
        let classic = ClassicCatalogue::build(products.clone());
        let mut semantic = SemanticCatalogue::new();
        for p in &products {
            semantic.ingest_product(p);
        }
        semantic.finish_ingest();
        let mut rng = Rng::seed_from(17);
        let mut classic_times = Vec::new();
        let mut semantic_times = Vec::new();
        for _ in 0..7 {
            let x = rng.range_f64(0.0, 38.0);
            let y = rng.range_f64(0.0, 38.0);
            let aoi = Envelope::new(x, y, x + 2.0, y + 2.0);
            let t0 = Instant::now();
            let hits = classic.search(&Search::aoi(aoi)).expect("classic search");
            classic_times.push(t0.elapsed().as_secs_f64());
            let wkt = format!(
                "POLYGON (({x} {y}, {x1} {y}, {x1} {y1}, {x} {y1}, {x} {y}))",
                x1 = x + 2.0,
                y1 = y + 2.0
            );
            let q = format!(
                "PREFIX eo: <http://extremeearth.eu/ont/eo#> \
                 SELECT (COUNT(?p) AS ?n) WHERE {{ ?p eo:footprint ?f . \
                 FILTER(geof:sfIntersects(?f, \"{wkt}\"^^geo:wktLiteral)) }}"
            );
            let t0 = Instant::now();
            let sol = semantic.query(&q).expect("semantic search");
            semantic_times.push(t0.elapsed().as_secs_f64());
            let semantic_count: usize = match sol.scalar() {
                Some(ee_rdf::term::Term::Literal { lexical, .. }) => {
                    lexical.parse().unwrap_or(0)
                }
                _ => 0,
            };
            assert_eq!(hits.len(), semantic_count, "catalogues agree");
        }
        t1.row(vec![
            n.to_string(),
            fmt_secs(median(classic_times)),
            fmt_secs(median(semantic_times)),
            semantic.len().to_string(),
        ]);
    }

    // The iceberg question at fixed knowledge size.
    let mut t2 = Table::new(
        "E9b — the Norske Øer iceberg question",
        "Two SPARQL steps over extracted knowledge: max-extent observation of the year, \
         then a spatial count of the icebergs embedded in it. The classic catalogue has \
         no API for this question at all.",
        &["knowledge records", "answer (icebergs)", "latency"],
    );
    let mut rng = Rng::seed_from(23);
    for &bergs in match scale {
        Scale::Quick => &[200usize, 1000][..],
        Scale::Full => &[1000, 5000, 20000][..],
    } {
        let mut cat = SemanticCatalogue::new();
        // Twelve monthly extents, max in July.
        for m in 1..=12u32 {
            let s = if m == 7 { 30.0 } else { 10.0 + m as f64 };
            cat.add_feature_extent(
                "NorskeOerIceBarrier",
                Date::new(2017, m, 15).expect("valid"),
                &Polygon::rectangle(0.0, 0.0, s, s),
            );
        }
        for b in 0..bergs {
            let m = rng.range(1, 13) as u32;
            let p = Point::new(rng.range_f64(0.0, 40.0), rng.range_f64(0.0, 40.0));
            cat.add_iceberg_observation(b as u32, Date::new(2017, m, 15).expect("valid"), p);
        }
        cat.finish_ingest();
        let t0 = Instant::now();
        let (count, _) = cat
            .iceberg_question("NorskeOerIceBarrier", 2017)
            .expect("question");
        let secs = t0.elapsed().as_secs_f64();
        t2.row(vec![cat.len().to_string(), count.to_string(), fmt_secs(secs)]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogues_agree_and_question_answers() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        // The iceberg answers are positive.
        for row in &tables[1].rows {
            let n: usize = row[1].parse().unwrap();
            assert!(n > 0, "some icebergs in the July maximum: {row:?}");
        }
    }
}
