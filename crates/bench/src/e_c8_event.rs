//! E-c8 — the event-driven serve tier at C10K connection counts.
//!
//! The thread-pool baseline (PR 2's architecture) pins one worker per
//! live connection, so a few thousand mostly-idle keep-alive clients
//! starve it no matter how cheap each request is. This experiment
//! measures the poll-driven event tier against that baseline over real
//! localhost sockets, all inside one process (client fleet and server
//! share the fd budget — two fds per connection):
//!
//! 1. **Connection sweep** — an open-loop fleet of N keep-alive
//!    connections at a fixed, modest arrival rate (the fleet is mostly
//!    idle by construction). Reports p50/p99 latency from the scheduled
//!    arrival tick and the process-RSS delta per connection. The 10k
//!    point is capped to what the fd limit allows and the cap is
//!    reported rather than hidden.
//! 2. **Thread-pool baseline** — the same fleet against the threaded
//!    architecture with its worker pool and admission watermark: the
//!    pool pins onto the first few connections and the rest are shed or
//!    starved.
//! 3. **Stalled reader** — a client that opens a large chunked stream,
//!    reads a few KiB and then stops reading mid-stream while an
//!    open-loop fleet keeps the server busy. The pull-based body
//!    contract means the server must stop calling `next_chunk` once the
//!    send buffer fills, so process RSS must stay flat (asserted — a
//!    buffer-the-world regression panics and fails the harness).
//!
//! [`report`] returns the tables plus the JSON value the harness writes
//! to `BENCH_PR8.json`.

use crate::table::Table;
use crate::Scale;
use ee_serve::loadgen::{run_open_loop, OpenLoopPlan, OpenLoopReport};
use ee_serve::{start, AppState, DataConfig, ServerConfig, ServerKind};
use ee_util::json::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Resident set size of this process, from `/proc/self/status`.
fn rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else {
        format!("{:.2} ms", us as f64 / 1_000.0)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b < 1024 * 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    }
}

fn event_config(conns: usize) -> ServerConfig {
    ServerConfig {
        kind: ServerKind::Event,
        workers: 2,
        event_shards: 2,
        max_connections: conns + 64,
        queue_watermark: 256,
        deadline: Duration::from_secs(10),
        // The fleet is mostly idle on purpose: parked connections must
        // survive the whole window.
        idle_timeout: Duration::from_secs(120),
        debug_routes: true,
        ..ServerConfig::default()
    }
}

struct SweepPoint {
    conns: usize,
    capped_from: Option<usize>,
    report: OpenLoopReport,
    rss_delta: u64,
    bytes_per_conn: u64,
}

/// Stage 1: the open-loop fleet sweep against the event server.
fn sweep(
    state: &Arc<AppState>,
    points: &[(usize, Option<usize>)],
    rate_per_sec: f64,
    duration: Duration,
    rss_base: u64,
) -> Vec<SweepPoint> {
    let targets = vec!["/healthz".to_string(), "/query?x=12&y=34".to_string()];
    let mut out = Vec::new();
    for &(conns, capped_from) in points {
        let server = start(event_config(conns), Arc::clone(state)).expect("start event server");
        let report = run_open_loop(
            server.addr,
            &targets,
            &OpenLoopPlan {
                conns,
                rate_per_sec,
                duration,
                timeout: Duration::from_secs(20),
            },
        );
        // RSS while the fleet is still at full strength, against the
        // experiment-start baseline. Client and server live in this one
        // process, so the delta covers both ends of every connection.
        let rss_delta = rss_bytes().saturating_sub(rss_base);
        let bytes_per_conn = if report.conns_open == 0 {
            0
        } else {
            rss_delta / report.conns_open as u64
        };
        server.shutdown();
        out.push(SweepPoint {
            conns,
            capped_from,
            report,
            rss_delta,
            bytes_per_conn,
        });
    }
    out
}

/// Stage 2: the same fleet against the thread-pool architecture.
fn baseline(
    state: &Arc<AppState>,
    conns: usize,
    rate_per_sec: f64,
    duration: Duration,
) -> (OpenLoopReport, usize) {
    let workers = 8;
    let server = start(
        ServerConfig {
            kind: ServerKind::Threaded,
            workers,
            queue_watermark: 64,
            max_connections: conns + 64,
            deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        Arc::clone(state),
    )
    .expect("start threaded server");
    let report = run_open_loop(
        server.addr,
        &["/healthz".to_string()],
        &OpenLoopPlan {
            conns,
            rate_per_sec,
            duration,
            timeout: Duration::from_secs(20),
        },
    );
    server.shutdown();
    (report, workers)
}

struct StallResult {
    stream_bytes: u64,
    rss_growth: u64,
    concurrent: OpenLoopReport,
}

/// Stage 3: a reader that stalls mid-stream while an open-loop fleet
/// keeps the server honest. Panics (failing the harness) if the server
/// buffers the stalled stream instead of applying backpressure.
fn stalled_reader(state: &Arc<AppState>, scale: Scale) -> StallResult {
    let (chunks, bytes) = match scale {
        Scale::Quick => (20_000u64, 4_096u64),
        Scale::Full => (50_000, 8_192),
    };
    let stream_bytes = chunks * bytes;
    let server = start(event_config(256), Arc::clone(state)).expect("start event server");

    let mut stalled = TcpStream::connect(server.addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stalled,
        "GET /debug/stream?chunks={chunks}&bytes={bytes}&ms=0 HTTP/1.1\r\nhost: b\r\n\r\n"
    )
    .unwrap();
    stalled.flush().unwrap();
    // Read just past the head so the stream is live, then stop reading.
    let mut first = [0u8; 4096];
    let mut got = 0;
    while got < first.len() {
        match stalled.read(&mut first[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => panic!("stream never started: {e}"),
        }
    }
    let rss0 = rss_bytes();

    // The stall window doubles as a health check: the fleet's latency
    // shows whether the stalled stream is costing anyone else anything.
    let concurrent = run_open_loop(
        server.addr,
        &["/healthz".to_string()],
        &OpenLoopPlan {
            conns: 32,
            rate_per_sec: 200.0,
            duration: Duration::from_millis(700),
            timeout: Duration::from_secs(10),
        },
    );
    let rss_growth = rss_bytes().saturating_sub(rss0);
    assert!(
        rss_growth < 64 * 1024 * 1024,
        "stalled {stream_bytes}-byte stream grew RSS by {rss_growth} bytes: \
         the server is buffering instead of applying backpressure"
    );
    assert!(
        concurrent.ok > 0 && concurrent.errors == 0,
        "server unhealthy during the stall: {concurrent:?}"
    );
    drop(stalled);
    server.shutdown();
    StallResult {
        stream_bytes,
        rss_growth,
        concurrent,
    }
}

/// Run E-c8 and return the tables plus the `BENCH_PR8.json` value.
pub fn report(scale: Scale) -> (Vec<Table>, Json) {
    let (data, wanted, rate, duration, baseline_conns): (_, &[usize], f64, Duration, usize) =
        match scale {
            Scale::Quick => (
                DataConfig::tiny(),
                &[64, 256],
                200.0,
                Duration::from_millis(800),
                128,
            ),
            Scale::Full => (
                DataConfig::tiny(),
                &[1_000, 5_000, 10_000],
                400.0,
                Duration::from_secs(4),
                1_000,
            ),
        };
    let state = Arc::new(AppState::build(data));

    // Two fds per connection (client + server end) in this one process;
    // cap the sweep to the fd budget and say so instead of failing.
    let fd_limit = ee_util::poll::raise_nofile_limit(64 * 1024).unwrap_or(1024);
    let usable = (fd_limit.saturating_sub(640) / 2) as usize;
    let points: Vec<(usize, Option<usize>)> = wanted
        .iter()
        .map(|&p| {
            if p > usable {
                (usable, Some(p))
            } else {
                (p, None)
            }
        })
        .collect();

    let rss_base = rss_bytes();
    let sweep_points = sweep(&state, &points, rate, duration, rss_base);
    let (base_report, base_workers) = baseline(&state, baseline_conns, rate, duration);
    let stall = stalled_reader(&state, scale);

    let mut t1 = Table::new(
        "E-c8a — open-loop fleet vs the event server",
        format!(
            "N mostly-idle keep-alive connections, {rate:.0} req/s aggregate arrival \
             rate; 2 event shards, 2 workers, fd limit {fd_limit}. Latency is measured \
             from the scheduled arrival tick; RSS Δ covers client and server ends of \
             every connection (one process)."
        ),
        &[
            "conns", "open", "alive", "ok", "missed", "p50", "p99", "RSS Δ", "bytes/conn",
        ],
    );
    for p in &sweep_points {
        let conns = match p.capped_from {
            Some(w) => format!("{} (fd-capped from {w})", p.conns),
            None => p.conns.to_string(),
        };
        t1.row(vec![
            conns,
            p.report.conns_open.to_string(),
            p.report.conns_alive.to_string(),
            p.report.ok.to_string(),
            p.report.missed_ticks.to_string(),
            fmt_us(p.report.p50_us),
            fmt_us(p.report.p99_us),
            fmt_bytes(p.rss_delta),
            fmt_bytes(p.bytes_per_conn),
        ]);
    }

    let mut t2 = Table::new(
        "E-c8b — the thread-pool baseline under the same fleet",
        format!(
            "{baseline_conns} keep-alive connections against the threaded architecture \
             ({base_workers} pool workers, watermark 64): the pool pins onto its first \
             connections, the watermark sheds a batch with 503, and the rest starve — \
             the C10K failure mode the event tier exists to remove."
        ),
        &["arch", "conns", "alive", "ok", "non-2xx", "missed", "p99"],
    );
    t2.row(vec![
        "threaded".into(),
        baseline_conns.to_string(),
        base_report.conns_alive.to_string(),
        base_report.ok.to_string(),
        base_report.other.to_string(),
        base_report.missed_ticks.to_string(),
        fmt_us(base_report.p99_us),
    ]);
    if let Some(ev) = sweep_points.iter().find(|p| p.conns >= baseline_conns / 2) {
        t2.row(vec![
            "event".into(),
            ev.conns.to_string(),
            ev.report.conns_alive.to_string(),
            ev.report.ok.to_string(),
            ev.report.other.to_string(),
            ev.report.missed_ticks.to_string(),
            fmt_us(ev.report.p99_us),
        ]);
    }

    let mut t3 = Table::new(
        "E-c8c — stalled reader mid-stream",
        format!(
            "One client opens a {}-byte chunked stream, reads 4 KiB and stops; a \
             32-connection fleet runs alongside. The pull-based contract keeps RSS \
             flat (the server stops pulling chunks once the send buffer fills) and \
             the fleet's p99 unaffected.",
            stall.stream_bytes
        ),
        &["stream bytes", "RSS growth while stalled", "fleet ok", "fleet p99"],
    );
    t3.row(vec![
        stall.stream_bytes.to_string(),
        fmt_bytes(stall.rss_growth),
        stall.concurrent.ok.to_string(),
        fmt_us(stall.concurrent.p99_us),
    ]);

    let point_json = |p: &SweepPoint| {
        Json::obj(vec![
            ("conns", Json::Num(p.conns as f64)),
            (
                "fd_capped_from",
                match p.capped_from {
                    Some(w) => Json::Num(w as f64),
                    None => Json::Null,
                },
            ),
            ("conns_open", Json::Num(p.report.conns_open as f64)),
            ("conns_alive", Json::Num(p.report.conns_alive as f64)),
            ("sent", Json::Num(p.report.sent as f64)),
            ("ok", Json::Num(p.report.ok as f64)),
            ("other", Json::Num(p.report.other as f64)),
            ("errors", Json::Num(p.report.errors as f64)),
            ("missed_ticks", Json::Num(p.report.missed_ticks as f64)),
            ("p50_us", Json::Num(p.report.p50_us as f64)),
            ("p95_us", Json::Num(p.report.p95_us as f64)),
            ("p99_us", Json::Num(p.report.p99_us as f64)),
            ("rss_delta_bytes", Json::Num(p.rss_delta as f64)),
            ("bytes_per_conn", Json::Num(p.bytes_per_conn as f64)),
        ])
    };
    let json = Json::obj(vec![
        ("experiment", Json::Str("e-c8".into())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.into()),
        ),
        ("fd_limit", Json::Num(fd_limit as f64)),
        ("rate_per_sec", Json::Num(rate)),
        ("duration_ms", Json::Num(duration.as_millis() as f64)),
        (
            "server",
            Json::obj(vec![
                ("event_shards", Json::Num(2.0)),
                ("workers", Json::Num(2.0)),
            ]),
        ),
        (
            "sweep",
            Json::Arr(sweep_points.iter().map(point_json).collect()),
        ),
        (
            "threaded_baseline",
            Json::obj(vec![
                ("workers", Json::Num(base_workers as f64)),
                ("conns", Json::Num(baseline_conns as f64)),
                ("conns_open", Json::Num(base_report.conns_open as f64)),
                ("conns_alive", Json::Num(base_report.conns_alive as f64)),
                ("sent", Json::Num(base_report.sent as f64)),
                ("ok", Json::Num(base_report.ok as f64)),
                ("other", Json::Num(base_report.other as f64)),
                ("errors", Json::Num(base_report.errors as f64)),
                ("missed_ticks", Json::Num(base_report.missed_ticks as f64)),
                ("p99_us", Json::Num(base_report.p99_us as f64)),
            ]),
        ),
        (
            "stalled_reader",
            Json::obj(vec![
                ("stream_bytes", Json::Num(stall.stream_bytes as f64)),
                ("rss_growth_bytes", Json::Num(stall.rss_growth as f64)),
                ("fleet_ok", Json::Num(stall.concurrent.ok as f64)),
                ("fleet_p99_us", Json::Num(stall.concurrent.p99_us as f64)),
            ]),
        ),
    ]);
    (vec![t1, t2, t3], json)
}

/// Run E-c8, discarding the JSON (the `run(id, scale)` registry shape).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_holds_the_fleet_and_bounds_memory() {
        let (tables, json) = report(Scale::Quick);
        assert_eq!(tables.len(), 3);
        let text = json.emit();
        assert!(text.contains("\"p99_us\""), "{text}");
        assert!(text.contains("\"bytes_per_conn\""), "{text}");
        let v = ee_util::json::parse(&text).unwrap();
        let sweep = v.get("sweep").and_then(Json::as_arr).unwrap();
        assert_eq!(sweep.len(), 2);
        for p in sweep {
            let open = p.get("conns_open").and_then(Json::as_f64).unwrap();
            let alive = p.get("conns_alive").and_then(Json::as_f64).unwrap();
            let conns = p.get("conns").and_then(Json::as_f64).unwrap();
            assert_eq!(open, conns, "event server admits the whole fleet");
            assert_eq!(alive, conns, "nothing reaped or dropped: {p:?}");
            assert_eq!(p.get("errors").and_then(Json::as_f64), Some(0.0));
            assert!(p.get("ok").and_then(Json::as_f64).unwrap() > 0.0);
        }
        // The baseline starves the same fleet the event tier holds.
        let base = v.get("threaded_baseline").unwrap();
        let alive = base.get("conns_alive").and_then(Json::as_f64).unwrap();
        assert!(
            alive < 128.0,
            "thread pool should shed/starve most of the fleet: {alive}"
        );
        let growth = v
            .get("stalled_reader")
            .and_then(|s| s.get("rss_growth_bytes"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(growth < 64.0 * 1024.0 * 1024.0);
    }
}
