//! E-f9 — one logical dataset served by N real shard processes behind
//! the scatter-gather router tier.
//!
//! Unlike every other serve experiment, nothing here runs in-process:
//! the harness launches actual `ee-serve` binaries — N shard processes
//! (`--shard-index I --shard-count N`) plus one `--router` process — on
//! localhost, exactly the deployment the README quickstart describes.
//! Three stages:
//!
//! 1. **Identity** — for each N in the sweep, the router's `/query`
//!    answers are checked against a single unsharded reference process:
//!    COUNT answers must be byte-identical, row answers must contain
//!    exactly the same solution set (the router emits rows in canonical
//!    sorted order; the reference is sorted the same way before
//!    comparison), and a `LIMIT n` query must return exactly
//!    min(n, total) rows — the canonical prefix of the reference
//!    answer. Per-shard COUNTs must sum to the full count with
//!    every shard holding a strict, non-empty slice (N > 1). Any
//!    violation panics, so the harness exits non-zero; the verdict is
//!    machine-checked into `BENCH_PR9.json` as `"sharded_identical"`.
//! 2. **Throughput sweep** — an open-loop fleet drives the router at
//!    each N with a mix of scatter (`/query`) and forward (`/tiles`)
//!    targets, reporting p50/p99 from the scheduled arrival tick.
//! 3. **Slow shard** — shard 0 is restarted with the fault injector
//!    armed (`EE_SERVE_SLOW_EVERY` / `EE_SERVE_SLOW_MS`): every 5th
//!    query execution sleeps well past the hedge trigger. The router's
//!    hedged duplicates keep the fleet's admitted p99 far below the
//!    per-shard deadline; the run asserts hedges fired and the p99
//!    bound held.
//!
//! [`report`] returns the tables plus the JSON the harness writes to
//! `BENCH_PR9.json`.

use crate::table::Table;
use crate::Scale;
use ee_serve::http::{read_response, ClientResponse};
use ee_serve::loadgen::{run_open_loop, OpenLoopPlan, OpenLoopReport};
use ee_util::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

/// The router process's per-shard deadline (`ScatterConfig::default`),
/// the bound the slow-shard stage holds p99 under.
const SHARD_DEADLINE_MS: u64 = 1_500;

/// Locate the `ee-serve` binary next to the running harness (same
/// target directory), or via `EE_SERVE_BIN`.
pub fn find_serve_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("EE_SERVE_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..3 {
        let candidate = dir.join("ee-serve");
        if candidate.is_file() {
            return Some(candidate);
        }
        dir = dir.parent()?.to_path_buf();
    }
    None
}

/// One supervised `ee-serve` child process; killed on drop. The stdout
/// pipe is kept open for the child's lifetime so a late write can never
/// hit a closed pipe.
struct ServeProc {
    child: Child,
    addr: SocketAddr,
    _stdout: BufReader<ChildStdout>,
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Launch `ee-serve` with `args`/`envs` on an ephemeral port and wait
/// for its `LISTENING <addr>` announcement.
fn spawn_serve(bin: &PathBuf, scale: Scale, args: &[String], envs: &[(&str, String)]) -> ServeProc {
    let mut cmd = Command::new(bin);
    cmd.args(args)
        .env("EE_SERVE_ADDR", "127.0.0.1:0")
        .env_remove("EE_SERVE_DATA_DIR")
        .env_remove("EE_SERVE_BACKENDS")
        .env_remove("EE_SERVE_WRITABLE")
        .env_remove("EE_SERVE_SLOW_EVERY")
        .env_remove("EE_SERVE_SLOW_MS")
        .env_remove("EE_SERVE_TINY")
        // Pin the worker pool so the hedging stage behaves the same on a
        // 1-core CI box as on a laptop: the fault injector's sleeps must
        // not serialise the whole shard.
        .env("EE_SERVE_WORKERS", "4")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if scale == Scale::Quick {
        cmd.env("EE_SERVE_TINY", "1");
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {bin:?}: {e}"));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                if let Some(a) = line.trim_end().strip_prefix("LISTENING ") {
                    break a.parse().unwrap_or_else(|e| panic!("bad addr {a:?}: {e}"));
                }
            }
            _ => {
                let _ = child.kill();
                panic!("ee-serve exited before announcing its address");
            }
        }
    };
    ServeProc {
        child,
        addr,
        _stdout: reader,
    }
}

/// N shard processes plus the router over them.
fn spawn_fleet(
    bin: &PathBuf,
    scale: Scale,
    n: usize,
    slow_shard0: Option<(u64, u64)>,
) -> (Vec<ServeProc>, ServeProc) {
    let shards: Vec<ServeProc> = (0..n)
        .map(|i| {
            let mut envs: Vec<(&str, String)> = Vec::new();
            if i == 0 {
                if let Some((every, ms)) = slow_shard0 {
                    envs.push(("EE_SERVE_SLOW_EVERY", every.to_string()));
                    envs.push(("EE_SERVE_SLOW_MS", ms.to_string()));
                }
            }
            spawn_serve(
                bin,
                scale,
                &[
                    "--shard-index".into(),
                    i.to_string(),
                    "--shard-count".into(),
                    n.to_string(),
                ],
                &envs,
            )
        })
        .collect();
    let backends: Vec<String> = shards.iter().map(|s| s.addr.to_string()).collect();
    let router = spawn_serve(
        bin,
        scale,
        &["--router".into(), backends.join(",")],
        &[],
    );
    (shards, router)
}

/// One blocking GET against a process.
fn get(addr: SocketAddr, target: &str) -> ClientResponse {
    let mut s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut r = BufReader::new(s.try_clone().expect("clone"));
    write!(
        s,
        "GET {target} HTTP/1.1\r\nhost: b\r\nconnection: close\r\n\r\n"
    )
    .unwrap();
    s.flush().unwrap();
    read_response(&mut r).expect("response")
}

fn count_target() -> String {
    let sparql =
        "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g }";
    format!("/query?sparql={}", sparql.replace(' ', "%20"))
}

fn rows_target() -> String {
    let sparql = "PREFIX e: <http://e/> SELECT ?s ?g WHERE { ?s e:hasGeometry ?g }";
    format!("/query?limit=100000&sparql={}", sparql.replace(' ', "%20"))
}

/// How many rows the LIMIT-capped identity query asks for.
const LIMIT_N: usize = 5;

fn limit_target() -> String {
    let sparql = format!(
        "PREFIX e: <http://e/> SELECT ?s ?g WHERE {{ ?s e:hasGeometry ?g }} LIMIT {LIMIT_N}"
    );
    format!("/query?limit=100000&sparql={}", sparql.replace(' ', "%20"))
}

/// Parse a `/query` body into (rows-as-emitted-bytes, count).
fn parse_rows(body: &[u8]) -> (Vec<String>, u64) {
    let text = std::str::from_utf8(body).expect("UTF-8 query body");
    let v = ee_util::json::parse(text).expect("valid query JSON");
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .expect("rows array")
        .iter()
        .map(Json::emit)
        .collect();
    let count = v.get("count").and_then(Json::as_u64).expect("count");
    (rows, count)
}

/// The integer a single-row COUNT body carries.
fn parse_count(body: &[u8]) -> u64 {
    let (rows, _) = parse_rows(body);
    assert_eq!(rows.len(), 1, "COUNT returns one row: {rows:?}");
    let row = ee_util::json::parse(&rows[0]).expect("row JSON");
    row.as_arr().expect("row array")[0]
        .as_str()
        .expect("lexical")
        .parse()
        .expect("integer count")
}

/// The value of a plain `name value` counter in Prometheus text.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{name} not found in /metrics"))
}

struct SweepPoint {
    shards: usize,
    per_shard_counts: Vec<u64>,
    count_identical: bool,
    rows_identical: bool,
    limit_identical: bool,
    report: OpenLoopReport,
}

/// Stages 1+2 for one N: identity against the reference, then the
/// open-loop sweep.
fn run_point(
    bin: &PathBuf,
    scale: Scale,
    n: usize,
    ref_count_body: &[u8],
    ref_rows_sorted: &(Vec<String>, u64),
    rate: f64,
    duration: Duration,
) -> SweepPoint {
    let (shards, router) = spawn_fleet(bin, scale, n, None);

    // Identity: COUNT through the router is byte-identical to the
    // unsharded reference (sums of per-shard counts serialize back to
    // the very same bytes).
    let routed_count = get(router.addr, &count_target());
    assert_eq!(routed_count.status, 200, "routed COUNT failed");
    let count_identical = routed_count.body == ref_count_body;
    assert!(
        count_identical,
        "shards={n}: routed COUNT diverged from the unsharded reference: {} vs {}",
        String::from_utf8_lossy(&routed_count.body),
        String::from_utf8_lossy(ref_count_body),
    );

    // Identity: the routed row set equals the reference row set (the
    // router emits canonically sorted rows; sort the reference the same
    // way).
    let routed_rows = get(router.addr, &rows_target());
    assert_eq!(routed_rows.status, 200, "routed row query failed");
    let (routed, routed_total) = parse_rows(&routed_rows.body);
    let rows_identical = routed == ref_rows_sorted.0 && routed_total == ref_rows_sorted.1;
    assert!(
        rows_identical,
        "shards={n}: routed rows diverged ({} rows/total {routed_total} vs {} rows/total {})",
        routed.len(),
        ref_rows_sorted.0.len(),
        ref_rows_sorted.1,
    );

    // Identity: a routed `LIMIT n` query returns exactly min(n, total)
    // rows — the canonical sorted prefix of the unsharded answer (the
    // router strips the clause from the scattered text and re-applies
    // the cap after the merge), with the count capped the same way.
    let routed_limited = get(router.addr, &limit_target());
    assert_eq!(routed_limited.status, 200, "routed LIMIT query failed");
    let (limited, limited_count) = parse_rows(&routed_limited.body);
    let want = LIMIT_N.min(ref_rows_sorted.0.len());
    let expect_rows = &ref_rows_sorted.0[..want];
    let limit_identical = limited == expect_rows && limited_count == want as u64;
    assert!(
        limit_identical,
        "shards={n}: routed LIMIT {LIMIT_N} diverged: {} rows / count {limited_count}, \
         expected the {want}-row canonical prefix of the reference",
        limited.len(),
    );

    // Partitioning: per-shard counts are non-empty strict slices that
    // sum to the whole.
    let per_shard_counts: Vec<u64> = shards
        .iter()
        .map(|s| parse_count(&get(s.addr, &count_target()).body))
        .collect();
    let full = parse_count(ref_count_body);
    assert_eq!(
        per_shard_counts.iter().sum::<u64>(),
        full,
        "shards={n}: per-shard counts must sum to the full count"
    );
    if n > 1 {
        for (i, &c) in per_shard_counts.iter().enumerate() {
            assert!(
                c > 0 && c < full,
                "shard {i}/{n} holds {c} of {full} subjects — not a strict slice"
            );
        }
    }

    // Throughput: open-loop fleet over scatter and forward targets.
    let targets = vec![count_target(), "/tiles/0/0/0".to_string()];
    let report = run_open_loop(
        router.addr,
        &targets,
        &OpenLoopPlan {
            conns: 16,
            rate_per_sec: rate,
            duration,
            timeout: Duration::from_secs(10),
        },
    );
    drop(shards);
    drop(router);
    SweepPoint {
        shards: n,
        per_shard_counts,
        count_identical,
        rows_identical,
        limit_identical,
        report,
    }
}

struct SlowResult {
    slow_every: u64,
    slow_ms: u64,
    hedged_total: u64,
    partial_total: u64,
    report: OpenLoopReport,
}

/// Stage 3: shard 0 armed with the fault injector; the hedged retries
/// must keep the fleet's p99 under the per-shard deadline.
fn slow_shard(bin: &PathBuf, scale: Scale, rate: f64, duration: Duration) -> SlowResult {
    let (slow_every, slow_ms) = (5u64, 800u64);
    let (shards, router) = spawn_fleet(bin, scale, 2, Some((slow_every, slow_ms)));
    let targets = vec![count_target()];
    let report = run_open_loop(
        router.addr,
        &targets,
        &OpenLoopPlan {
            conns: 8,
            rate_per_sec: rate,
            duration,
            timeout: Duration::from_secs(10),
        },
    );
    let metrics = get(router.addr, "/metrics");
    let text = String::from_utf8(metrics.body).expect("metrics text");
    let hedged_total = scrape_counter(&text, "ee_route_hedged_total");
    let partial_total = scrape_counter(&text, "ee_route_partial_total");
    drop(shards);
    drop(router);
    assert!(
        hedged_total > 0,
        "no hedged request fired against a shard sleeping {slow_ms} ms every \
         {slow_every}th query"
    );
    assert!(
        report.p99_us < SHARD_DEADLINE_MS * 1_000,
        "hedging failed to keep admitted p99 ({} µs) under the {SHARD_DEADLINE_MS} ms \
         per-shard deadline",
        report.p99_us
    );
    SlowResult {
        slow_every,
        slow_ms,
        hedged_total,
        partial_total,
        report,
    }
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else {
        format!("{:.2} ms", us as f64 / 1_000.0)
    }
}

/// Run E-f9 and return the tables plus the `BENCH_PR9.json` value.
/// `max_shards` caps the sweep (the harness `--shards` flag); the sweep
/// doubles 1, 2, 4, … up to it.
pub fn report(scale: Scale, max_shards: usize) -> (Vec<Table>, Json) {
    assert!(max_shards >= 1, "--shards must be at least 1");
    let bin = find_serve_binary().expect(
        "ee-serve binary not found next to the harness (build it with \
         `cargo build -p ee-serve`, or point EE_SERVE_BIN at it)",
    );
    let (rate, duration, slow_duration) = match scale {
        Scale::Quick => (60.0, Duration::from_millis(800), Duration::from_millis(1_500)),
        Scale::Full => (120.0, Duration::from_secs(3), Duration::from_secs(4)),
    };
    let mut ns = vec![1usize];
    while ns.last().copied().unwrap_or(1) * 2 <= max_shards {
        ns.push(ns.last().unwrap() * 2);
    }

    // The unsharded reference process anchors every identity check.
    let reference = spawn_serve(&bin, scale, &[], &[]);
    let ref_count = get(reference.addr, &count_target());
    assert_eq!(ref_count.status, 200, "reference COUNT failed");
    let ref_rows_resp = get(reference.addr, &rows_target());
    assert_eq!(ref_rows_resp.status, 200, "reference row query failed");
    let (mut ref_rows, ref_total) = parse_rows(&ref_rows_resp.body);
    ref_rows.sort_unstable();
    let ref_rows_sorted = (ref_rows, ref_total);
    drop(reference);

    let points: Vec<SweepPoint> = ns
        .iter()
        .map(|&n| {
            run_point(
                &bin,
                scale,
                n,
                &ref_count.body,
                &ref_rows_sorted,
                rate,
                duration,
            )
        })
        .collect();
    // ~10 req/s keeps the slow shard's 4-worker pool unsaturated: every
    // 5th execution sleeps 800 ms, so ~2 slow/s × 0.8 s ≈ 2 busy workers
    // (hedged duplicates land on the spare ones and answer fast).
    let slow = slow_shard(&bin, scale, 10.0, slow_duration);
    let sharded_identical = points
        .iter()
        .all(|p| p.count_identical && p.rows_identical && p.limit_identical);

    let mut t1 = Table::new(
        "E-f9a — N shard processes behind the router",
        format!(
            "Real `ee-serve` processes on localhost: N shards plus one router, \
             open-loop fleet of 16 connections at {rate:.0} req/s over scatter \
             (`/query` COUNT) and forward (`/tiles`) targets. Identity: routed \
             answers (COUNT, full rows, and a `LIMIT {LIMIT_N}` cap) vs one \
             unsharded reference process ({ref_total} subjects)."
        ),
        &[
            "shards", "per-shard subjects", "ok", "errors", "p50", "p99", "identical",
        ],
    );
    for p in &points {
        let split = p
            .per_shard_counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" / ");
        t1.row(vec![
            p.shards.to_string(),
            split,
            p.report.ok.to_string(),
            p.report.errors.to_string(),
            fmt_us(p.report.p50_us),
            fmt_us(p.report.p99_us),
            (p.count_identical && p.rows_identical && p.limit_identical).to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "E-f9b — slow shard vs hedged requests",
        format!(
            "2 shards; shard 0 sleeps {} ms on every {}th query execution — past the \
             router's {} ms hedge trigger, under its {SHARD_DEADLINE_MS} ms per-shard \
             deadline. Hedged duplicates answer from the fast path, holding the \
             fleet's admitted p99 far below the deadline.",
            slow.slow_ms, slow.slow_every, 150
        ),
        &["hedged", "partial", "ok", "errors", "p50", "p99", "deadline"],
    );
    t2.row(vec![
        slow.hedged_total.to_string(),
        slow.partial_total.to_string(),
        slow.report.ok.to_string(),
        slow.report.errors.to_string(),
        fmt_us(slow.report.p50_us),
        fmt_us(slow.report.p99_us),
        format!("{SHARD_DEADLINE_MS} ms"),
    ]);

    let point_json = |p: &SweepPoint| {
        Json::obj(vec![
            ("shards", Json::Num(p.shards as f64)),
            (
                "per_shard_subjects",
                Json::Arr(
                    p.per_shard_counts
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            ("count_identical", Json::Bool(p.count_identical)),
            ("rows_identical", Json::Bool(p.rows_identical)),
            ("limit_identical", Json::Bool(p.limit_identical)),
            ("sent", Json::Num(p.report.sent as f64)),
            ("ok", Json::Num(p.report.ok as f64)),
            ("errors", Json::Num(p.report.errors as f64)),
            ("p50_us", Json::Num(p.report.p50_us as f64)),
            ("p99_us", Json::Num(p.report.p99_us as f64)),
        ])
    };
    let json = Json::obj(vec![
        ("experiment", Json::Str("e-f9".into())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.into()),
        ),
        ("subjects", Json::Num(ref_total as f64)),
        ("sweep", Json::Arr(points.iter().map(point_json).collect())),
        (
            "slow_shard",
            Json::obj(vec![
                ("slow_every", Json::Num(slow.slow_every as f64)),
                ("slow_ms", Json::Num(slow.slow_ms as f64)),
                ("deadline_ms", Json::Num(SHARD_DEADLINE_MS as f64)),
                ("hedged_total", Json::Num(slow.hedged_total as f64)),
                ("partial_total", Json::Num(slow.partial_total as f64)),
                ("ok", Json::Num(slow.report.ok as f64)),
                ("errors", Json::Num(slow.report.errors as f64)),
                ("p50_us", Json::Num(slow.report.p50_us as f64)),
                ("p99_us", Json::Num(slow.report.p99_us as f64)),
            ]),
        ),
        ("sharded_identical", Json::Bool(sharded_identical)),
    ]);
    (vec![t1, t2], json)
}

/// Run E-f9 with the default 4-shard sweep, discarding the JSON (the
/// `run(id, scale)` registry shape).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale, 4).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_checks_identity_across_real_processes() {
        // `cargo test -p ee-bench` alone doesn't build the ee-serve
        // binary; skip (the workspace-level run and verify.sh do).
        if find_serve_binary().is_none() {
            eprintln!("skipping: ee-serve binary not built");
            return;
        }
        let (tables, json) = report(Scale::Quick, 2);
        assert_eq!(tables.len(), 2);
        let text = json.emit_pretty();
        assert!(
            text.contains("\"sharded_identical\": true"),
            "the exact text verify.sh greps for must be present: {text}"
        );
        let v = ee_util::json::parse(&text).unwrap();
        assert_eq!(v.get("sharded_identical"), Some(&Json::Bool(true)));
        let sweep = v.get("sweep").and_then(Json::as_arr).unwrap();
        assert_eq!(sweep.len(), 2, "N = 1, 2");
        let hedged = v
            .get("slow_shard")
            .and_then(|s| s.get("hedged_total"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(hedged >= 1.0);
    }
}
