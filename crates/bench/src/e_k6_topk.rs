//! E-k6 — top-k fast paths and BM25-ranked catalogue search.
//!
//! Two sweeps, both with machine-checked identity:
//!
//! * **Top-k**: `ORDER BY ?v LIMIT k` over a value corpus of `n` rows,
//!   executed through the bounded-heap fast path
//!   ([`ee_rdf::exec::execute_plan`], which routes `FastPath::TopK`)
//!   versus the forced full-sort baseline
//!   ([`ee_rdf::exec::execute_plan_baseline`]). Every (n, k) point
//!   asserts the two row sets **bit-identical** — and identical to a
//!   third run drained through the streaming API — then records median
//!   latency and the executor's peak-resident-row high-water mark. The
//!   fast path should win on both axes once k ≪ n: O(n log k)
//!   comparisons against O(n log n), and O(k) resident rows against
//!   O(n).
//! * **BM25**: ranked catalogue search through the inverted index
//!   ([`ee_catalogue::Bm25Index`]) versus the exhaustive scan scorer
//!   ([`ee_catalogue::ScanSearcher`]) over the same synthetic archive,
//!   asserting identical hit lists (scores are accumulated in the same
//!   term order, so equality is exact, not approximate) and recording
//!   per-query median latency for both.
//!
//! The harness writes the whole thing to `BENCH_PR6.json`;
//! `scripts/verify.sh` greps for `"topk_identical": true`.

use crate::table::{fmt_secs, Table};
use crate::Scale;
use ee_catalogue::{Bm25Index, ProductGenerator, ScanSearcher};
use ee_geo::Envelope;
use ee_rdf::exec::{execute_plan, execute_plan_baseline, stream_plan_opts, Solutions};
use ee_rdf::plan::{FastPath, Plan};
use ee_rdf::store::IndexMode;
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::json::Json;
use ee_util::Rng;
use std::sync::Arc;
use std::time::Instant;

/// Build the order-by corpus: `n` subjects each carrying one integer
/// `e:value` drawn from a range wide enough that duplicates are rare but
/// present (ties exercise the seq tie-break in the heap comparator).
pub fn value_store(n: usize, seed: u64) -> TripleStore {
    let mut store = TripleStore::new(IndexMode::Full);
    let mut rng = Rng::seed_from(seed);
    let value = Term::iri("http://e/value");
    for i in 0..n {
        let s = Term::iri(format!("http://e/r{i}"));
        store.insert(&s, &value, &Term::integer(rng.range(0, (n / 2).max(2)) as i64));
    }
    store
}

/// The sweep query: project subject + value, order by value, keep `k`.
pub fn topk_query(k: usize) -> String {
    format!(
        "PREFIX e: <http://e/> SELECT ?s ?v WHERE {{ ?s e:value ?v }} ORDER BY ?v LIMIT {k}"
    )
}

/// Execute `plan` with fast paths on (`fast = true`) or forced off,
/// returning the rows, the executor's peak resident rows, and the
/// wall-clock seconds of this single run.
fn run_once(
    store: &TripleStore,
    plan: &Arc<Plan>,
    threads: usize,
    fast: bool,
) -> (Solutions, u64, f64) {
    let t0 = Instant::now();
    let mut core =
        stream_plan_opts(store, Arc::clone(plan), threads, fast).expect("plan executes");
    let mut rows = Vec::new();
    while let Some(batch) = core.next_batch(store) {
        rows.extend(batch);
    }
    let secs = t0.elapsed().as_secs_f64();
    let peak = core.peak_resident_rows();
    (
        Solutions {
            vars: core.vars().to_vec(),
            rows,
        },
        peak,
        secs,
    )
}

/// Median of ≥1 raw timings.
fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// One sweep point: median latency and peak resident rows for the fast
/// path and the full-sort baseline, with the identity checks inside.
/// **Panics** on any divergence — the harness exit code is the contract.
pub fn measure_topk(
    store: &TripleStore,
    k: usize,
    threads: usize,
    reps: usize,
) -> TopKPoint {
    let q = ee_rdf::parser::parse_query(&topk_query(k)).expect("query parses");
    let plan = Arc::new(ee_rdf::plan::plan(store, &q).expect("query plans"));
    assert_eq!(
        plan.fast_path(),
        FastPath::TopK,
        "the sweep query must route through the bounded heap"
    );
    let mut fast_times = Vec::with_capacity(reps);
    let mut sort_times = Vec::with_capacity(reps);
    let mut fast_peak = 0u64;
    let mut sort_peak = 0u64;
    let mut fast_rows = None;
    for _ in 0..reps.max(1) {
        let (sol, peak, secs) = run_once(store, &plan, threads, true);
        fast_times.push(secs);
        fast_peak = peak;
        fast_rows = Some(sol);
        let (sol, peak, secs) = run_once(store, &plan, threads, false);
        sort_times.push(secs);
        sort_peak = peak;
        let fast = fast_rows.as_ref().expect("just set");
        assert_eq!(
            *fast, sol,
            "top-k heap diverged from full sort at k={k}"
        );
    }
    // Cross-check against the collect wrappers too: the public API the
    // serving tier calls must agree with the streams drained above.
    let via_fast = execute_plan(store, &plan, threads).expect("fast collect");
    let via_slow = execute_plan_baseline(store, &plan, threads).expect("baseline collect");
    let fast = fast_rows.expect("reps >= 1");
    assert_eq!(via_fast, fast, "execute_plan diverged from drained stream");
    assert_eq!(via_slow, fast, "execute_plan_baseline diverged");
    TopKPoint {
        k,
        rows: fast.len(),
        topk_secs: median(fast_times),
        full_sort_secs: median(sort_times),
        topk_peak_rows: fast_peak,
        full_sort_peak_rows: sort_peak,
    }
}

/// One measured (n, k) point of the top-k sweep.
#[derive(Debug, Clone)]
pub struct TopKPoint {
    /// The LIMIT.
    pub k: usize,
    /// Rows actually returned (`min(k, n)`).
    pub rows: usize,
    /// Median seconds through the bounded heap.
    pub topk_secs: f64,
    /// Median seconds through the forced full sort.
    pub full_sort_secs: f64,
    /// Executor peak resident rows, heap path.
    pub topk_peak_rows: u64,
    /// Executor peak resident rows, full-sort path.
    pub full_sort_peak_rows: u64,
}

/// The BM25 stage: build both searchers over `n_products`, run the query
/// set through each, assert identical hits, and report median per-query
/// latency. **Panics** on divergence.
pub fn measure_bm25(n_products: usize, reps: usize) -> Bm25Point {
    let region = Envelope::new(0.0, 0.0, 40.0, 40.0);
    let products = ProductGenerator::new(region, 2017, 0xb25).take(n_products);
    let t0 = Instant::now();
    let index = Bm25Index::build_products(&products);
    let index_build_secs = t0.elapsed().as_secs_f64();
    let scan = ScanSearcher::build(products.iter().map(|p| p.search_text()));
    let queries = [
        "sentinel-2 surface reflectance clear sky",
        "radar ground range detected winter",
        "ocean colour full resolution",
        "single look complex january",
        "level-1c scattered clouds summer",
        "sentinel-1 c-band autumn",
    ];
    let k = 10;
    let mut index_times = Vec::new();
    let mut scan_times = Vec::new();
    for _ in 0..reps.max(1) {
        for q in queries {
            let t0 = Instant::now();
            let via_index = index.search(q, k);
            index_times.push(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let via_scan = scan.search(q, k);
            scan_times.push(t0.elapsed().as_secs_f64());
            assert_eq!(
                via_index, via_scan,
                "BM25 index diverged from the scan scorer on {q:?}"
            );
            assert!(!via_index.is_empty(), "query {q:?} must match something");
        }
    }
    Bm25Point {
        products: n_products,
        queries: queries.len(),
        index_build_secs,
        index_p50_secs: median(index_times),
        scan_p50_secs: median(scan_times),
    }
}

/// One measured corpus size of the BM25 stage.
#[derive(Debug, Clone)]
pub struct Bm25Point {
    /// Products indexed.
    pub products: usize,
    /// Distinct queries in the set.
    pub queries: usize,
    /// Seconds to build the inverted index.
    pub index_build_secs: f64,
    /// Median per-query seconds through the index.
    pub index_p50_secs: f64,
    /// Median per-query seconds through the exhaustive scan.
    pub scan_p50_secs: f64,
}

/// Run E-k6, returning the printed tables and the `BENCH_PR6.json`
/// artifact. Identity failures panic, so a bad heap or scorer makes the
/// harness exit non-zero.
pub fn report(scale: Scale) -> (Vec<Table>, Json) {
    let threads = ee_util::par::available_threads();
    let (n, ks, reps, bm25_sizes) = match scale {
        Scale::Quick => (
            20_000usize,
            vec![1usize, 10, 100, 1_000],
            3usize,
            vec![2_000usize, 10_000],
        ),
        Scale::Full => (
            200_000,
            vec![1, 10, 100, 1_000, 10_000],
            5,
            vec![10_000, 50_000],
        ),
    };

    let store = value_store(n, 0x6e6);
    let mut topk_table = Table::new(
        "E-k6a — ORDER BY ?v LIMIT k: bounded heap vs full sort",
        "The same prepared plan executed through the top-k fast path (per-chunk \
         bounded heaps merged in fixed order) and through the forced global sort. \
         Rows are asserted bit-identical every repetition; peak-resident rows is \
         the executor's high-water mark, the memory side of the win.",
        &[
            "rows n",
            "k",
            "top-k median",
            "full-sort median",
            "speedup",
            "top-k peak rows",
            "full-sort peak rows",
        ],
    );
    let mut sweep_json = Vec::new();
    for &k in &ks {
        let p = measure_topk(&store, k, threads, reps);
        let speedup = p.full_sort_secs / p.topk_secs.max(1e-12);
        topk_table.row(vec![
            n.to_string(),
            k.to_string(),
            fmt_secs(p.topk_secs),
            fmt_secs(p.full_sort_secs),
            format!("{speedup:.2}x"),
            p.topk_peak_rows.to_string(),
            p.full_sort_peak_rows.to_string(),
        ]);
        sweep_json.push(Json::obj(vec![
            ("n", Json::Num(n as f64)),
            ("k", Json::Num(k as f64)),
            ("rows", Json::Num(p.rows as f64)),
            ("topk_secs", Json::Num(p.topk_secs)),
            ("full_sort_secs", Json::Num(p.full_sort_secs)),
            ("speedup", Json::Num(speedup)),
            ("topk_peak_rows", Json::Num(p.topk_peak_rows as f64)),
            (
                "full_sort_peak_rows",
                Json::Num(p.full_sort_peak_rows as f64),
            ),
        ]));
    }

    let mut bm25_table = Table::new(
        "E-k6b — ranked catalogue search: BM25 index vs exhaustive scan",
        "Top-10 ranked retrieval over the synthetic product archive through the \
         inverted index and through the full-scan scorer. Hit lists (doc ids \
         *and* scores) are asserted identical — both accumulate f64 partial \
         scores in the same deduplicated query-term order.",
        &[
            "products",
            "index build",
            "index p50/query",
            "scan p50/query",
            "speedup",
        ],
    );
    let mut bm25_json = Vec::new();
    for &size in &bm25_sizes {
        let p = measure_bm25(size, reps);
        let speedup = p.scan_p50_secs / p.index_p50_secs.max(1e-12);
        bm25_table.row(vec![
            size.to_string(),
            fmt_secs(p.index_build_secs),
            fmt_secs(p.index_p50_secs),
            fmt_secs(p.scan_p50_secs),
            format!("{speedup:.2}x"),
        ]);
        bm25_json.push(Json::obj(vec![
            ("products", Json::Num(p.products as f64)),
            ("queries", Json::Num(p.queries as f64)),
            ("index_build_secs", Json::Num(p.index_build_secs)),
            ("index_p50_secs", Json::Num(p.index_p50_secs)),
            ("scan_p50_secs", Json::Num(p.scan_p50_secs)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let json = Json::obj(vec![
        ("bench", Json::Str("pr6-topk-ranked".to_string())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.to_string()),
        ),
        (
            "host_threads",
            Json::Num(ee_util::par::available_threads() as f64),
        ),
        // Both flags are load-bearing: reaching this point means every
        // per-point assert above passed.
        ("topk_identical", Json::Bool(true)),
        ("bm25_identical", Json::Bool(true)),
        ("topk_sweep", Json::Arr(sweep_json)),
        ("bm25_ranked", Json::Arr(bm25_json)),
    ]);
    (vec![topk_table, bm25_table], json)
}

/// Run E-k6 (tables only; the harness calls [`report`] for the artifact).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_point_is_identical_and_bounded() {
        // n must exceed the executor's per-pull row budget or the first
        // pull drains the whole corpus and the peaks tie.
        let store = value_store(10_000, 9);
        let p = measure_topk(&store, 25, 2, 1);
        assert_eq!(p.rows, 25);
        assert!(
            p.topk_peak_rows < p.full_sort_peak_rows,
            "heap must hold fewer rows: {} vs {}",
            p.topk_peak_rows,
            p.full_sort_peak_rows
        );
        assert_eq!(p.full_sort_peak_rows, 10_000, "sort drains everything");
    }

    #[test]
    fn k_past_n_still_agrees() {
        let store = value_store(200, 3);
        let p = measure_topk(&store, 5_000, 1, 1);
        assert_eq!(p.rows, 200, "LIMIT past n returns everything");
    }

    #[test]
    fn bm25_point_measures_both_searchers() {
        let p = measure_bm25(400, 1);
        assert_eq!(p.products, 400);
        assert!(p.index_p50_secs > 0.0 && p.scan_p50_secs > 0.0);
    }

    #[test]
    fn report_emits_tables_and_artifact() {
        let (tables, json) = report(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 4, "four k points at quick scale");
        assert_eq!(json.get("topk_identical"), Some(&Json::Bool(true)));
        assert_eq!(json.get("bm25_identical"), Some(&Json::Bool(true)));
    }
}
