//! E-s0 — the serving tier under closed-loop load.
//!
//! The paper's engines answer batch experiments (E2, E9, E12…); this
//! experiment measures them behind `ee-serve` as network services, over
//! real localhost sockets:
//!
//! 1. **Cold vs warm cache** — per route, the p50 of first-touch
//!    requests (engine does the work) against repeats of the same
//!    requests (sharded-LRU replay).
//! 2. **Concurrency sweep** — closed-loop clients in
//!    connection-per-request mode against a deliberately small worker
//!    pool and admission watermark, reporting throughput, latency
//!    percentiles, 503 shed counts, and the p99 over *admitted*
//!    requests (which must stay bounded while overloaded).
//!
//! [`report`] returns the tables plus a JSON value the harness writes to
//! `BENCH_PR2.json`.

use crate::table::Table;
use crate::Scale;
use ee_serve::loadgen::{self, ConnMode, LoadPlan};
use ee_serve::{start, AppState, DataConfig, ServerConfig};
use ee_util::json::Json;
use std::sync::Arc;
use std::time::Duration;

/// Microseconds pretty-printer (µs under 1 ms, ms above).
fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else {
        format!("{:.2} ms", us as f64 / 1_000.0)
    }
}

/// Distinct request targets per route. Every target is a real route on
/// the engines; distinct parameters defeat the cache (cold), repeats
/// hit it (warm).
fn route_targets(state: &AppState, per_route: usize) -> Vec<(&'static str, Vec<String>)> {
    let grid = (per_route as f64).sqrt().ceil() as usize;
    let step = ee_serve::state::REGION / (grid as f64 + 1.0);
    let query: Vec<String> = (0..per_route)
        .map(|i| {
            let (gx, gy) = (i % grid, i / grid);
            format!(
                "/query?x0={:.2}&y0={:.2}&side=10",
                gx as f64 * step,
                gy as f64 * step
            )
        })
        .collect();
    let catalogue: Vec<String> = (0..per_route)
        .map(|i| {
            let (gx, gy) = (i % grid, i / grid);
            // The archive region is (0,0)..(40,40).
            let (x, y) = (gx as f64 * 36.0 / grid as f64, gy as f64 * 36.0 / grid as f64);
            format!(
                "/catalogue/search?minx={x:.2}&miny={y:.2}&maxx={:.2}&maxy={:.2}",
                x + 4.0,
                y + 4.0
            )
        })
        .collect();
    let mut tiles = Vec::new();
    'outer: for (level, r) in state.pyramid.iter().enumerate() {
        let tr = r.rows().div_ceil(state.tile_size);
        let tc = r.cols().div_ceil(state.tile_size);
        for row in 0..tr {
            for col in 0..tc {
                tiles.push(format!("/tiles/{level}/{row}/{col}"));
                if tiles.len() >= per_route {
                    break 'outer;
                }
            }
        }
    }
    let budgets = [1_000_000usize, 100_000, 50_000, 20_000, 10_000];
    let ice: Vec<String> = ee_serve::state::ICE_REGIONS
        .iter()
        .flat_map(|r| budgets.iter().map(move |b| format!("/ice/{r}?budget={b}")))
        .take(per_route)
        .collect();
    vec![
        ("query", query),
        ("catalogue", catalogue),
        ("tiles", tiles),
        ("ice", ice),
    ]
}

struct ColdWarm {
    route: &'static str,
    targets: usize,
    cold_p50_us: u64,
    warm_p50_us: u64,
    warm_hit_rate: f64,
}

/// Stage 1: cold vs warm per route on an uncontended server.
fn cold_warm(state: &Arc<AppState>, per_route: usize) -> Vec<ColdWarm> {
    let mut out = Vec::new();
    for (route, targets) in route_targets(state, per_route) {
        // Fresh server per route: cold really is cold.
        let server = start(
            ServerConfig {
                workers: 4,
                queue_watermark: 256,
                ..ServerConfig::default()
            },
            Arc::clone(state),
        )
        .expect("start server");
        let cold = loadgen::run(
            server.addr,
            &targets,
            &LoadPlan {
                clients: 1,
                requests_per_client: targets.len(),
                mode: ConnMode::KeepAlive,
                timeout: Duration::from_secs(30),
            },
        );
        let warm = loadgen::run(
            server.addr,
            &targets,
            &LoadPlan {
                clients: 1,
                requests_per_client: targets.len() * 3,
                mode: ConnMode::KeepAlive,
                timeout: Duration::from_secs(30),
            },
        );
        let warm_hit_rate = if warm.ok == 0 {
            0.0
        } else {
            warm.cache_hits as f64 / warm.ok as f64
        };
        out.push(ColdWarm {
            route,
            targets: targets.len(),
            cold_p50_us: cold.p50_us,
            warm_p50_us: warm.p50_us,
            warm_hit_rate,
        });
        server.shutdown();
    }
    out
}

struct SweepPoint {
    clients: usize,
    report: loadgen::LoadReport,
    cache_hit_pct: f64,
}

/// Stage 2: closed-loop concurrency sweep in connection-per-request
/// mode against a small pool (watermark + workers are the saturation
/// point; past it the server must shed with 503).
fn sweep(
    state: &Arc<AppState>,
    client_counts: &[usize],
    requests_per_client: usize,
) -> (Vec<SweepPoint>, usize, usize) {
    let workers = 4;
    let watermark = 8;
    let mut targets = Vec::new();
    for (_, t) in route_targets(state, 16) {
        targets.extend(t);
    }
    let mut points = Vec::new();
    for &clients in client_counts {
        // Fresh server per point: queue, cache and counters start clean.
        let server = start(
            ServerConfig {
                workers,
                queue_watermark: watermark,
                deadline: Duration::from_secs(2),
                ..ServerConfig::default()
            },
            Arc::clone(state),
        )
        .expect("start server");
        let report = loadgen::run(
            server.addr,
            &targets,
            &LoadPlan {
                clients,
                requests_per_client,
                mode: ConnMode::PerRequest,
                timeout: Duration::from_secs(30),
            },
        );
        let cache_hit_pct = 100.0 * server.cache().hit_rate();
        server.shutdown();
        points.push(SweepPoint {
            clients,
            report,
            cache_hit_pct,
        });
    }
    (points, workers, watermark)
}

/// Run E-s0 and return the tables plus the `BENCH_PR2.json` value.
pub fn report(scale: Scale) -> (Vec<Table>, Json) {
    let (data, per_route, client_counts, requests_per_client): (_, usize, &[usize], usize) =
        match scale {
            Scale::Quick => (DataConfig::tiny(), 9, &[1, 2, 4, 8, 24], 25),
            Scale::Full => (DataConfig::default(), 16, &[1, 2, 4, 8, 16, 32, 64], 60),
        };
    let state = Arc::new(AppState::build(data));

    let cw = cold_warm(&state, per_route);
    let mut t1 = Table::new(
        "E-s0a — response cache, cold vs warm (p50 per route)",
        "Single keep-alive client; cold = first touch of each distinct target \
         (engine executes), warm = repeats of the same targets (sharded-LRU replay).",
        &["route", "targets", "cold p50", "warm p50", "speedup", "warm hit rate"],
    );
    for c in &cw {
        let speedup = if c.warm_p50_us == 0 {
            f64::INFINITY
        } else {
            c.cold_p50_us as f64 / c.warm_p50_us as f64
        };
        t1.row(vec![
            format!("/{}", c.route),
            c.targets.to_string(),
            fmt_us(c.cold_p50_us),
            fmt_us(c.warm_p50_us),
            format!("{speedup:.1}x"),
            format!("{:.0}%", 100.0 * c.warm_hit_rate),
        ]);
    }

    let (points, workers, watermark) = sweep(&state, client_counts, requests_per_client);
    let mut t2 = Table::new(
        "E-s0b — closed-loop concurrency sweep (mixed routes)",
        format!(
            "Connection-per-request clients over localhost; {workers} workers, admission \
             watermark {watermark}. Past ~{} in-flight connections the server sheds with \
             503 + Retry-After while the p99 of admitted requests stays bounded.",
            workers + watermark
        ),
        &[
            "clients", "ok", "503", "504", "req/s", "p50", "p95", "p99", "admitted p99",
            "cache hit",
        ],
    );
    for p in &points {
        let r = &p.report;
        t2.row(vec![
            p.clients.to_string(),
            r.ok.to_string(),
            r.rejected.to_string(),
            r.expired.to_string(),
            format!("{:.0}", r.throughput()),
            fmt_us(r.p50_us),
            fmt_us(r.p95_us),
            fmt_us(r.p99_us),
            fmt_us(r.admitted_p99_us),
            format!("{:.0}%", p.cache_hit_pct),
        ]);
    }

    let json = Json::obj(vec![
        ("experiment", Json::Str("e-s0".into())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.into()),
        ),
        (
            "server",
            Json::obj(vec![
                ("workers", Json::Num(workers as f64)),
                ("queue_watermark", Json::Num(watermark as f64)),
                ("deadline_ms", Json::Num(2_000.0)),
            ]),
        ),
        (
            "cold_warm",
            Json::Arr(
                cw.iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("route", Json::Str(c.route.into())),
                            ("targets", Json::Num(c.targets as f64)),
                            ("cold_p50_us", Json::Num(c.cold_p50_us as f64)),
                            ("warm_p50_us", Json::Num(c.warm_p50_us as f64)),
                            ("warm_hit_rate", Json::Num(c.warm_hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sweep",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        let r = &p.report;
                        Json::obj(vec![
                            ("clients", Json::Num(p.clients as f64)),
                            ("ok", Json::Num(r.ok as f64)),
                            ("rejected_503", Json::Num(r.rejected as f64)),
                            ("expired_504", Json::Num(r.expired as f64)),
                            ("errors", Json::Num(r.errors as f64)),
                            ("throughput_rps", Json::Num(r.throughput())),
                            ("p50_us", Json::Num(r.p50_us as f64)),
                            ("p95_us", Json::Num(r.p95_us as f64)),
                            ("p99_us", Json::Num(r.p99_us as f64)),
                            ("admitted_p99_us", Json::Num(r.admitted_p99_us as f64)),
                            ("cache_hit_pct", Json::Num(p.cache_hit_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    (vec![t1, t2], json)
}

/// Stage 3 — the streaming response path under load.
///
/// A dedicated state whose level-0 tile is far larger than anything the
/// earlier stages serve (and, at full scale, larger than the old 1 MiB
/// response buffer cap, which made this request unanswerable before the
/// streaming path existed). The server's per-entry cache cap is set to
/// zero so every request re-encodes and streams chunked end-to-end; the
/// interesting numbers are the time-to-first-byte percentiles — the
/// first chunk leaves while the rest of the tile is still being encoded
/// — against the full-transfer latency.
///
/// Returns the table plus the JSON value the harness writes to
/// `BENCH_PR4.json`.
pub fn streaming_report(scale: Scale) -> (Vec<Table>, Json) {
    let (scene, clients, requests_per_client) = match scale {
        Scale::Quick => (192usize, 2usize, 8usize),
        Scale::Full => (640, 4, 16),
    };
    let state = Arc::new(AppState::build(DataConfig {
        points: 500,
        products: 100,
        scene_size: scene,
        tile_size: scene,
        ice_size: 32,
        seed: 2019,
        shard: None,
    }));
    let tile_bytes = 40 + scene * scene * 4;
    let server = start(
        ServerConfig {
            workers: 4,
            queue_watermark: 64,
            deadline: Duration::from_secs(30),
            // Nothing fits in the response cache: every request takes
            // the chunked streaming path and is counted uncacheable.
            cache_max_body_bytes: 0,
            ..ServerConfig::default()
        },
        Arc::clone(&state),
    )
    .expect("start server");
    let report = loadgen::run(
        server.addr,
        &["/tiles/0/0/0".to_string()],
        &LoadPlan {
            clients,
            requests_per_client,
            mode: ConnMode::KeepAlive,
            timeout: Duration::from_secs(60),
        },
    );
    let uncacheable = server
        .metrics()
        .stream_uncacheable
        .load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown();

    let mut t = Table::new(
        "E-s0c — streaming a large tile (chunked transfer)",
        format!(
            "{clients} keep-alive clients pulling a {tile_bytes}-byte level-0 tile; the \
             cache's per-entry cap is 0 so every request streams. TTFB stops at the \
             response head, latency at the last chunk.",
        ),
        &[
            "tile bytes", "ok", "ttfb p50", "ttfb p95", "ttfb p99", "p50", "p99", "MB/s",
        ],
    );
    let mbps = if report.wall.as_secs_f64() == 0.0 {
        0.0
    } else {
        (report.ok as f64 * tile_bytes as f64) / report.wall.as_secs_f64() / 1e6
    };
    t.row(vec![
        tile_bytes.to_string(),
        report.ok.to_string(),
        fmt_us(report.ttfb_p50_us),
        fmt_us(report.ttfb_p95_us),
        fmt_us(report.ttfb_p99_us),
        fmt_us(report.p50_us),
        fmt_us(report.p99_us),
        format!("{mbps:.0}"),
    ]);

    let json = Json::obj(vec![
        ("experiment", Json::Str("e-s0-streaming".into())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.into()),
        ),
        ("tile_bytes", Json::Num(tile_bytes as f64)),
        ("clients", Json::Num(clients as f64)),
        ("ok", Json::Num(report.ok as f64)),
        ("errors", Json::Num(report.errors as f64)),
        ("ttfb_p50_us", Json::Num(report.ttfb_p50_us as f64)),
        ("ttfb_p95_us", Json::Num(report.ttfb_p95_us as f64)),
        ("ttfb_p99_us", Json::Num(report.ttfb_p99_us as f64)),
        ("p50_us", Json::Num(report.p50_us as f64)),
        ("p99_us", Json::Num(report.p99_us as f64)),
        ("throughput_rps", Json::Num(report.throughput())),
        ("transfer_mb_per_s", Json::Num(mbps)),
        ("stream_uncacheable_total", Json::Num(uncacheable as f64)),
    ]);
    (vec![t], json)
}

/// Stage 4 — TTFB of a large un-ordered `/query` as the result set grows.
///
/// Non-aggregate spatial SELECTs over windows of increasing side stream
/// through the pull-based executor. Time-to-first-byte must stay roughly
/// flat in result-set size — the first [`ee_rdf::exec::STREAM_BATCH_ROWS`]
/// batch is produced after O(batch) probe work — where the pre-pipeline
/// executor materialised the full join before the first byte, making
/// TTFB linear. For every window the streamed rows are checked
/// bit-identical to the collect path at t ∈ {1, 4} (a divergence panics,
/// failing the harness), and the executor's own instrumentation records
/// rows touched before the first batch plus the peak resident row count.
///
/// Returns the table plus the JSON value the harness writes to
/// `BENCH_PR5.json`.
pub fn query_streaming_report(scale: Scale) -> (Vec<Table>, Json) {
    let (points, clients, requests_per_client) = match scale {
        Scale::Quick => (2_000usize, 2usize, 6usize),
        Scale::Full => (20_000, 4, 12),
    };
    let state = Arc::new(AppState::build(DataConfig {
        points,
        products: 50,
        scene_size: 64,
        tile_size: 32,
        ice_size: 16,
        seed: 2019,
        shard: None,
    }));
    let region = ee_serve::state::REGION;
    // Window sides selecting ~1.5%, 6%, 25% and 100% of the features.
    let sides = [region / 8.0, region / 4.0, region / 2.0, region];
    let sparql_for = |side: f64| {
        format!(
            "PREFIX e: <http://e/> SELECT ?s ?g WHERE {{ ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, {side} 0, {side} {side}, 0 {side}, 0 0))\"^^geo:wktLiteral)) }}"
        )
    };
    let server = start(
        ServerConfig {
            workers: 4,
            queue_watermark: 64,
            deadline: Duration::from_secs(30),
            // Nothing is cached: every request runs the executor and
            // streams its chunked body end-to-end.
            cache_max_body_bytes: 0,
            ..ServerConfig::default()
        },
        Arc::clone(&state),
    )
    .expect("start server");

    let mut t = Table::new(
        "E-s0d — streamed /query TTFB vs result-set size",
        format!(
            "{clients} keep-alive clients streaming a non-aggregate spatial SELECT over \
             {points} features; window side grows the result set ~64×. With the \
             pull-based executor the first chunk leaves after O(batch) probe work, so \
             TTFB stays flat while full-transfer latency grows with the rows.",
        ),
        &[
            "window", "rows", "touched@first", "peak rows", "ttfb p50", "ttfb p99", "p50",
            "p99",
        ],
    );
    let mut windows = Vec::new();
    for side in sides {
        let sparql = sparql_for(side);
        // Executor-level instrumentation: rows of probe work before the
        // first batch, and the resident-row high-water mark.
        let q = ee_rdf::parser::parse_query(&sparql).expect("parse");
        let plan = ee_rdf::plan::plan(&state.store(), &q).expect("plan");
        let mut core = ee_rdf::exec::stream_plan(&state.store(), &plan, 1).expect("stream");
        let mut rows = 0usize;
        let mut touched_first = 0u64;
        let mut peak_first = 0u64;
        while let Some(b) = core.next_batch(&state.store()) {
            if rows == 0 {
                touched_first = core.rows_touched();
                peak_first = core.peak_resident_rows();
            }
            rows += b.len();
        }
        // Identity gate: streamed ≡ collected at t ∈ {1, 4}. A mismatch
        // panics, which fails the harness (and the verify stage).
        for threads in [1usize, 4] {
            let collected =
                ee_rdf::exec::query_with_threads(&state.store(), &sparql, threads)
                    .expect("collect");
            let streamed = ee_rdf::exec::SolutionStream::new(&state.store(), &plan, threads)
                .expect("stream")
                .collect();
            assert_eq!(
                streamed, collected,
                "streamed vs collected diverged (threads={threads}, side={side})"
            );
            assert_eq!(rows, collected.len(), "drain count (threads={threads})");
        }
        // Wire-level TTFB under closed-loop load.
        let target = format!("/query?limit={points}&sparql={}", sparql.replace(' ', "%20"));
        let report = loadgen::run(
            server.addr,
            &[target],
            &LoadPlan {
                clients,
                requests_per_client,
                mode: ConnMode::KeepAlive,
                timeout: Duration::from_secs(60),
            },
        );
        t.row(vec![
            format!("{side:.1}²"),
            rows.to_string(),
            touched_first.to_string(),
            peak_first.to_string(),
            fmt_us(report.ttfb_p50_us),
            fmt_us(report.ttfb_p99_us),
            fmt_us(report.p50_us),
            fmt_us(report.p99_us),
        ]);
        windows.push(Json::obj(vec![
            ("window_side", Json::Num(side)),
            ("rows", Json::Num(rows as f64)),
            ("rows_touched_first_batch", Json::Num(touched_first as f64)),
            ("peak_resident_rows", Json::Num(peak_first as f64)),
            ("ok", Json::Num(report.ok as f64)),
            ("errors", Json::Num(report.errors as f64)),
            ("ttfb_p50_us", Json::Num(report.ttfb_p50_us as f64)),
            ("ttfb_p95_us", Json::Num(report.ttfb_p95_us as f64)),
            ("ttfb_p99_us", Json::Num(report.ttfb_p99_us as f64)),
            ("p50_us", Json::Num(report.p50_us as f64)),
            ("p99_us", Json::Num(report.p99_us as f64)),
        ]));
    }
    server.shutdown();

    let json = Json::obj(vec![
        ("experiment", Json::Str("e-s0-query-streaming".into())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.into()),
        ),
        ("points", Json::Num(points as f64)),
        (
            "stream_batch_rows",
            Json::Num(ee_rdf::exec::STREAM_BATCH_ROWS as f64),
        ),
        ("identity_checked_threads", Json::Str("1,4".into())),
        ("windows", Json::Arr(windows)),
    ]);
    (vec![t], json)
}

/// Run E-s0, discarding the JSON (the `run(id, scale)` registry shape).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_streaming_report_streams_every_request() {
        let (tables, json) = streaming_report(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let md = tables[0].markdown();
        assert!(md.contains("147496"), "192×192 f32 tile + header: {md}");
        let text = json.emit();
        assert!(text.contains("\"ttfb_p50_us\""), "{text}");
        let v = ee_util::json::parse(&text).unwrap();
        let ok = v.get("ok").and_then(Json::as_f64).unwrap();
        assert!(ok >= 16.0, "2 clients × 8 requests: {text}");
        let uncacheable = v
            .get("stream_uncacheable_total")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(uncacheable >= ok, "every request bypassed the cache");
    }

    #[test]
    fn quick_query_streaming_report_pipelines_and_stays_identical() {
        let (tables, json) = query_streaming_report(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let text = json.emit();
        let v = ee_util::json::parse(&text).unwrap();
        assert_eq!(
            v.get("experiment").and_then(Json::as_str),
            Some("e-s0-query-streaming")
        );
        let windows = v.get("windows").and_then(Json::as_arr).unwrap();
        assert_eq!(windows.len(), 4);
        let rows: Vec<f64> = windows
            .iter()
            .map(|w| w.get("rows").and_then(Json::as_f64).unwrap())
            .collect();
        assert!(
            rows.windows(2).all(|p| p[0] <= p[1]),
            "result set grows with the window: {rows:?}"
        );
        assert!(rows[3] >= 1_900.0, "full window selects every feature: {rows:?}");
        // The pipelining claim: even the full-region window produced its
        // first batch after O(batch) probe work, not O(result).
        for w in windows {
            let touched = w
                .get("rows_touched_first_batch")
                .and_then(Json::as_f64)
                .unwrap();
            assert!(
                touched <= 8.0 * ee_rdf::exec::STREAM_BATCH_ROWS as f64,
                "first batch touched {touched} rows"
            );
            let ok = w.get("ok").and_then(Json::as_f64).unwrap();
            assert!(ok >= 12.0, "2 clients × 6 requests: {text}");
        }
    }

    #[test]
    fn quick_report_has_both_tables_and_sane_numbers() {
        let (tables, json) = report(Scale::Quick);
        assert_eq!(tables.len(), 2);
        let md0 = tables[0].markdown();
        assert!(md0.contains("/query") && md0.contains("/tiles"), "{md0}");
        let md1 = tables[1].markdown();
        assert!(md1.contains("24"), "top concurrency present: {md1}");
        let text = json.emit();
        assert!(text.contains("\"cold_warm\""));
        assert!(text.contains("\"sweep\""));
    }
}
