//! E-t10 — versioned commits and time travel over real sockets.
//!
//! Two stages against in-process `ee-serve` servers on localhost:
//!
//! 1. **As-of identity** — a writable server takes a sequence of
//!    committed updates, recording the head commit id after each. For
//!    every recorded commit `G`, the live server's `?asOf=G` answer is
//!    checked against a *replayed* server: a fresh store that applied
//!    only the updates up through `G`, queried at head. Row multisets
//!    (canonically sorted — the as-of overlay may enumerate in a
//!    different order) and counts must match, and because commit ids
//!    are content-derived hash chains, the replayed server's head id
//!    must equal `G` itself. Any divergence panics, so the harness
//!    exits non-zero; the verdict lands in `BENCH_PR10.json` as
//!    `"asof_identical"`.
//! 2. **Versioned-read caching** — interleaving writes with reads, the
//!    pinned `?asOf=` entry must keep serving cache hits across commits
//!    while the head entry misses after every write (hit rates are
//!    reported side by side). A conditional request against the
//!    unchanged commit id must come back `304` with **zero** store
//!    reads (`ee_serve_store_reads_total` scraped before and after),
//!    and a ranked catalogue search must reflect a committed
//!    `eo:searchText` document on the very next request — never a
//!    stale cached ranking.
//!
//! [`report`] returns the tables plus the JSON the harness writes to
//! `BENCH_PR10.json`.

use crate::table::Table;
use crate::Scale;
use ee_serve::http::{read_response, ClientResponse};
use ee_serve::{start, AppState, DataConfig, ServerConfig};
use ee_util::json::Json;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn writable_server() -> ee_serve::ServerHandle {
    let mut s = AppState::build(DataConfig::tiny());
    s.writable = true;
    start(
        ServerConfig {
            workers: 2,
            queue_watermark: 16,
            deadline: Duration::from_secs(10),
            ..ServerConfig::default()
        },
        Arc::new(s),
    )
    .expect("start server")
}

/// One blocking request with optional extra headers.
fn request(addr: SocketAddr, method: &str, target: &str, headers: &[(&str, &str)], body: &str) -> ClientResponse {
    let mut s = TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect {addr}: {e}"));
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut r = BufReader::new(s.try_clone().expect("clone"));
    let mut extra = String::new();
    for (k, v) in headers {
        extra.push_str(&format!("{k}: {v}\r\n"));
    }
    write!(
        s,
        "{method} {target} HTTP/1.1\r\nhost: b\r\nconnection: close\r\n{extra}\
         content-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    s.flush().unwrap();
    read_response(&mut r).expect("response")
}

fn get(addr: SocketAddr, target: &str) -> ClientResponse {
    request(addr, "GET", target, &[], "")
}

fn post_update(addr: SocketAddr, sparql: &str) -> ClientResponse {
    let resp = request(addr, "POST", "/update", &[], sparql);
    assert_eq!(
        resp.status,
        200,
        "update failed: {}",
        String::from_utf8_lossy(&resp.body)
    );
    resp
}

fn json_of(resp: &ClientResponse) -> Json {
    ee_util::json::parse(std::str::from_utf8(&resp.body).expect("UTF-8 body")).expect("JSON body")
}

/// The head commit id `/healthz` reports (16 lowercase hex digits).
fn head_commit(addr: SocketAddr) -> String {
    json_of(&get(addr, "/healthz"))
        .get("commit")
        .and_then(Json::as_str)
        .expect("healthz reports the head commit id")
        .to_string()
}

/// Parse a `/query` body into (sorted row emissions, count).
fn sorted_rows(resp: &ClientResponse) -> (Vec<String>, u64) {
    let v = json_of(resp);
    let mut rows: Vec<String> = v
        .get("rows")
        .and_then(Json::as_arr)
        .expect("rows array")
        .iter()
        .map(Json::emit)
        .collect();
    rows.sort_unstable();
    let count = v.get("count").and_then(Json::as_u64).expect("count");
    (rows, count)
}

/// The value of a plain `name value` counter in Prometheus text.
fn scrape_counter(addr: SocketAddr, name: &str) -> u64 {
    let resp = get(addr, "/metrics");
    let text = std::str::from_utf8(&resp.body).expect("metrics text");
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{name} not found in /metrics"))
}

/// The committed update sequence Part 1 replays: inserts, a delete, and
/// a re-insert of a previously deleted triple (the overlay must
/// resurrect it). `n_commits` takes a prefix, padded with generated
/// inserts when longer than the base script.
fn update_script(n_commits: usize) -> Vec<String> {
    let base = [
        "INSERT DATA { <http://e/va> <http://e/vp> \"one\" . \
         <http://e/va> <http://e/vp> \"two\" }"
            .to_string(),
        "INSERT DATA { <http://e/vb> <http://e/vp> \"three\" }".to_string(),
        "DELETE DATA { <http://e/va> <http://e/vp> \"one\" }".to_string(),
        "INSERT DATA { <http://e/va> <http://e/vp> \"one\" . \
         <http://e/vb> <http://e/vp> \"four\" }"
            .to_string(),
    ];
    let mut out: Vec<String> = base.into_iter().take(n_commits).collect();
    for i in out.len()..n_commits {
        out.push(format!(
            "INSERT DATA {{ <http://e/vc> <http://e/vp> \"extra {i}\" }}"
        ));
    }
    out
}

fn query_target(as_of: Option<&str>) -> String {
    let sparql = "SELECT ?s ?o WHERE { ?s <http://e/vp> ?o }".replace(' ', "%20");
    match as_of {
        Some(id) => format!("/query?sparql={sparql}&asOf={id}"),
        None => format!("/query?sparql={sparql}"),
    }
}

struct AsOfPoint {
    commit: String,
    rows: usize,
    replay_rows: usize,
    identical: bool,
    replay_head_matches: bool,
}

/// Stage 1: every commit's as-of view vs the replayed store's head.
fn as_of_identity(n_commits: usize) -> (Vec<AsOfPoint>, bool, bool) {
    let live = writable_server();
    let script = update_script(n_commits);
    let mut commits = Vec::with_capacity(script.len());
    for update in &script {
        post_update(live.addr, update);
        commits.push(head_commit(live.addr));
    }

    let mut points = Vec::with_capacity(commits.len());
    for (i, commit) in commits.iter().enumerate() {
        let pinned = get(live.addr, &query_target(Some(commit)));
        assert_eq!(
            pinned.status, 200,
            "asOf={commit} failed: {}",
            String::from_utf8_lossy(&pinned.body)
        );
        assert_eq!(
            pinned.header("x-commit"),
            Some(commit.as_str()),
            "the versioned response must echo the pinned commit id"
        );
        let (rows, count) = sorted_rows(&pinned);

        // Replay: a fresh server applies only the prefix, queried at
        // head.
        let replay = writable_server();
        for update in &script[..=i] {
            post_update(replay.addr, update);
        }
        let replay_head = head_commit(replay.addr);
        let head_resp = get(replay.addr, &query_target(None));
        assert_eq!(head_resp.status, 200);
        let (replay_rows, replay_count) = sorted_rows(&head_resp);
        replay.shutdown();

        let identical = rows == replay_rows && count == replay_count;
        let replay_head_matches = &replay_head == commit;
        assert!(
            identical,
            "commit {commit}: as-of view ({} rows, count {count}) diverged from the \
             replayed store ({} rows, count {replay_count})",
            rows.len(),
            replay_rows.len(),
        );
        assert!(
            replay_head_matches,
            "commit {commit}: the replayed chain ended at {replay_head} — commit ids \
             must be content-derived"
        );
        points.push(AsOfPoint {
            commit: commit.clone(),
            rows: rows.len(),
            replay_rows: replay_rows.len(),
            identical,
            replay_head_matches,
        });
    }
    live.shutdown();
    let all_identical = points.iter().all(|p| p.identical);
    let all_heads = points.iter().all(|p| p.replay_head_matches);
    (points, all_identical, all_heads)
}

struct CacheRun {
    rounds: usize,
    versioned_hits: usize,
    head_hits: usize,
    conditional_304: bool,
    store_reads_during_304: u64,
    catalogue_fresh: bool,
}

/// Stage 2: pinned versioned entries vs head entries under a write
/// load, the 304-with-zero-store-reads contract, and catalogue
/// freshness after a `searchText` commit.
fn cache_behaviour(rounds: usize) -> CacheRun {
    let server = writable_server();
    let addr = server.addr;
    post_update(addr, "INSERT DATA { <http://e/va> <http://e/vp> \"pinned\" }");
    let pinned_commit = head_commit(addr);
    let pinned_target = query_target(Some(&pinned_commit));
    let head_target = query_target(None);

    // Prime both entries, then interleave writes with reads.
    let primed = get(addr, &pinned_target);
    assert_eq!(primed.status, 200);
    let etag = primed.header("etag").expect("versioned etag").to_string();
    get(addr, &head_target);
    let mut versioned_hits = 0usize;
    let mut head_hits = 0usize;
    for i in 0..rounds {
        post_update(
            addr,
            &format!("INSERT DATA {{ <http://e/w{i}> <http://e/vp> \"w{i}\" }}"),
        );
        if get(addr, &pinned_target).header("x-cache") == Some("HIT") {
            versioned_hits += 1;
        }
        if get(addr, &head_target).header("x-cache") == Some("HIT") {
            head_hits += 1;
        }
    }
    assert_eq!(
        versioned_hits, rounds,
        "every versioned read after priming must hit the pinned cache entry"
    );
    assert_eq!(
        head_hits, 0,
        "every head read lands on a fresh commit id, so none may hit"
    );

    // The metrics scrape itself must not read the store, or the delta
    // below would be meaningless.
    let a = scrape_counter(addr, "ee_serve_store_reads_total");
    let b = scrape_counter(addr, "ee_serve_store_reads_total");
    assert_eq!(a, b, "scraping /metrics must not take store read guards");

    // Conditional request against the unchanged commit id: 304 out of
    // the cache, zero store reads.
    let before = scrape_counter(addr, "ee_serve_store_reads_total");
    let cond = request(addr, "GET", &pinned_target, &[("if-none-match", &etag)], "");
    let after = scrape_counter(addr, "ee_serve_store_reads_total");
    let conditional_304 = cond.status == 304 && cond.body.is_empty();
    let store_reads_during_304 = after - before;
    assert!(conditional_304, "expected 304, got {}", cond.status);
    assert_eq!(
        store_reads_during_304, 0,
        "a 304 against an unchanged commit id must not touch the store"
    );

    // Catalogue freshness: the ranked search must see a committed
    // searchText document on the very next request.
    let cat = "/catalogue/search?mode=ranked&q=polynya&k=5";
    let count_of = |resp: &ClientResponse| {
        json_of(resp).get("count").and_then(Json::as_f64).unwrap()
    };
    let empty = get(addr, cat);
    assert_eq!(empty.status, 200);
    let before_count = count_of(&empty);
    get(addr, cat); // cache the pre-write ranking
    post_update(
        addr,
        "INSERT DATA { <http://e/doc-e-t10> \
         <http://extremeearth.eu/ont/eo#searchText> \
         \"polynya extent time series\" }",
    );
    let fresh = get(addr, cat);
    let catalogue_fresh = count_of(&fresh) == before_count + 1.0;
    assert!(
        catalogue_fresh,
        "ranked search served a stale ranking after a searchText commit"
    );
    server.shutdown();
    CacheRun {
        rounds,
        versioned_hits,
        head_hits,
        conditional_304,
        store_reads_during_304,
        catalogue_fresh,
    }
}

/// Run E-t10 and return the tables plus the `BENCH_PR10.json` value.
pub fn report(scale: Scale) -> (Vec<Table>, Json) {
    let (n_commits, rounds) = match scale {
        Scale::Quick => (4usize, 4usize),
        Scale::Full => (8, 16),
    };
    let (points, asof_identical, heads_match) = as_of_identity(n_commits);
    let cache = cache_behaviour(rounds);

    let mut t1 = Table::new(
        "E-t10a — as-of views vs replayed stores",
        format!(
            "A writable server takes {n_commits} committed updates; for every \
             recorded commit id G, its `?asOf=G` answer is checked against a fresh \
             server that replayed only the updates up through G and queried head. \
             Row multisets and counts must match, and the replayed chain must end \
             at G itself (commit ids are content-derived)."
        ),
        &["commit", "as-of rows", "replay rows", "identical", "head = G"],
    );
    for p in &points {
        t1.row(vec![
            p.commit.clone(),
            p.rows.to_string(),
            p.replay_rows.to_string(),
            p.identical.to_string(),
            p.replay_head_matches.to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "E-t10b — versioned-read caching under writes",
        format!(
            "{} write rounds, each followed by one pinned `?asOf=` read and one \
             head read of the same query. Pinned entries name immutable history, \
             so they survive every commit; head entries land on a fresh commit id \
             each round. A conditional request against the unchanged commit id \
             revalidates as 304 without taking a single store read guard.",
            cache.rounds
        ),
        &[
            "reads",
            "versioned hits",
            "head hits",
            "304",
            "store reads in 304",
            "catalogue fresh",
        ],
    );
    t2.row(vec![
        cache.rounds.to_string(),
        cache.versioned_hits.to_string(),
        cache.head_hits.to_string(),
        cache.conditional_304.to_string(),
        cache.store_reads_during_304.to_string(),
        cache.catalogue_fresh.to_string(),
    ]);

    let point_json = |p: &AsOfPoint| {
        Json::obj(vec![
            ("commit", Json::Str(p.commit.clone())),
            ("rows", Json::Num(p.rows as f64)),
            ("replay_rows", Json::Num(p.replay_rows as f64)),
            ("identical", Json::Bool(p.identical)),
            ("replay_head_matches", Json::Bool(p.replay_head_matches)),
        ])
    };
    let json = Json::obj(vec![
        ("experiment", Json::Str("e-t10".into())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.into()),
        ),
        ("commits", Json::Num(n_commits as f64)),
        ("sweep", Json::Arr(points.iter().map(point_json).collect())),
        ("asof_identical", Json::Bool(asof_identical)),
        ("replayed_head_ids_match", Json::Bool(heads_match)),
        ("cache_rounds", Json::Num(cache.rounds as f64)),
        (
            "versioned_hit_rate",
            Json::Num(cache.versioned_hits as f64 / cache.rounds as f64),
        ),
        (
            "head_hit_rate",
            Json::Num(cache.head_hits as f64 / cache.rounds as f64),
        ),
        ("conditional_304", Json::Bool(cache.conditional_304)),
        (
            "store_reads_during_304",
            Json::Num(cache.store_reads_during_304 as f64),
        ),
        ("catalogue_fresh_after_write", Json::Bool(cache.catalogue_fresh)),
    ]);
    (vec![t1, t2], json)
}

/// Run E-t10, discarding the JSON (the `run(id, scale)` registry shape).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_machine_checks_the_asof_identity() {
        let (tables, json) = report(Scale::Quick);
        assert_eq!(tables.len(), 2);
        let text = json.emit_pretty();
        assert!(
            text.contains("\"asof_identical\": true"),
            "the exact text verify.sh greps for must be present: {text}"
        );
        let v = ee_util::json::parse(&text).unwrap();
        assert_eq!(v.get("asof_identical"), Some(&Json::Bool(true)));
        assert_eq!(v.get("replayed_head_ids_match"), Some(&Json::Bool(true)));
        assert_eq!(v.get("conditional_304"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("store_reads_during_304").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            v.get("versioned_hit_rate").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(v.get("head_hit_rate").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            v.get("catalogue_fresh_after_write"),
            Some(&Json::Bool(true))
        );
        let sweep = v.get("sweep").and_then(Json::as_arr).unwrap();
        assert_eq!(sweep.len(), 4);
    }
}
