//! E-w7 — durable mutable triple store: cold-start and write-while-serve.
//!
//! Three stages, all against the `ee-rdf` storage subsystem behind
//! `POST /update`:
//!
//! * **Cold start** (`E-w7a`): one synthetic triple set loaded three
//!   ways — [`ee_rdf::storage::Store::bulk_load`] (build plus spatial
//!   index plus snapshot write, no per-triple WAL records), a cold
//!   N-Triples rebuild (export → parse → re-index, no snapshot), and
//!   [`ee_rdf::storage::Store::open`] over the snapshot just written.
//!   Snapshot open skips tokenising and re-sorting, so it should beat
//!   the rebuild; the JSON records both times plus bulk-load
//!   triples/sec.
//! * **Write-while-serve** (`E-w7b`): a reader issuing the E2-style
//!   rectangular selection through [`ee_serve::AppState::prepared_query`]
//!   — first alone, then with a concurrent writer committing
//!   single-triple updates through [`ee_serve::AppState::commit_update`]
//!   as fast as they apply. Reports read p50/p99 for both phases and
//!   commit p50/p99, quantifying what a live write load costs the
//!   read path (each commit also drops the prepared-plan cache, so the
//!   contended numbers include replanning).
//! * **Recovery check**: a seeded commit sequence whose WAL is torn
//!   mid-final-record and reopened; the recovered triple set must be
//!   bit-identical to the last fully-committed generation. A mismatch
//!   panics (failing the harness run); success is recorded as
//!   `"recovery_identical": true`, which `scripts/verify.sh` greps.
//!
//! Durability of every stage follows `EE_WAL_NO_SYNC` (see
//! [`ee_rdf::storage::Durability::from_env`]) — verify.sh sets it so CI
//! measures the storage layer, not the CI disk's fsync.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_rdf::parser::parse_update;
use ee_rdf::storage::{
    export_ntriples, load_ntriples, scratch_dir, Durability, Store,
};
use ee_rdf::store::{IndexMode, TripleStore};
use ee_rdf::term::Term;
use ee_rdf::update::GroundTriple;
use ee_serve::{AppState, DataConfig};
use ee_util::json::Json;
use ee_util::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A synthetic point-feature triple set of the `/query` shape: every
/// third triple carries a WKT geometry so the spatial index and the
/// snapshot's literal path both do real work.
pub fn synthetic_triples(n: usize, seed: u64) -> Vec<GroundTriple> {
    let mut rng = Rng::seed_from(seed);
    let geom = Term::iri("http://e/hasGeometry");
    let kind = Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    let feature = Term::iri("http://e/Feature");
    let label = Term::iri("http://e/label");
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let s = Term::iri(format!("http://e/f{i}"));
        out.push(match i % 3 {
            0 => {
                let x = rng.range_f64(0.0, 100.0);
                let y = rng.range_f64(0.0, 100.0);
                (s, geom.clone(), Term::wkt(format!("POINT ({x} {y})")))
            }
            1 => (s, kind.clone(), feature.clone()),
            _ => (s, label.clone(), Term::string(format!("feature {i}"))),
        });
    }
    out
}

/// Cold-start timings for one triple count.
struct ColdStart {
    triples: usize,
    bulk_load_secs: f64,
    bulk_load_tps: f64,
    rebuild_secs: f64,
    snapshot_open_secs: f64,
}

fn cold_start(n: usize, durability: Durability) -> ColdStart {
    let dir = scratch_dir("e-w7-cold");
    let (store, stats) =
        Store::bulk_load(&dir, IndexMode::Full, synthetic_triples(n, 0x57), durability, None)
            .expect("bulk load");
    let loaded = store.len();
    // The no-snapshot baseline: what a restart costs when all you have
    // is an interchange dump — parse N-Triples, re-intern, re-index.
    let text = export_ntriples(&store);
    drop(store);
    let t0 = Instant::now();
    let mut rebuilt = TripleStore::new(IndexMode::Full);
    load_ntriples(&mut rebuilt, &text).expect("rebuild parses");
    rebuilt.build_spatial_index();
    let rebuild_secs = t0.elapsed().as_secs_f64();
    assert_eq!(rebuilt.len(), loaded, "rebuild must reproduce the store");
    drop(rebuilt);

    let t0 = Instant::now();
    let reopened = Store::open_with(&dir, durability).expect("snapshot open");
    let snapshot_open_secs = t0.elapsed().as_secs_f64();
    assert_eq!(reopened.len(), loaded, "snapshot must reproduce the store");
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();

    ColdStart {
        triples: loaded,
        bulk_load_secs: stats.elapsed.as_secs_f64(),
        bulk_load_tps: stats.triples_per_sec,
        rebuild_secs,
        snapshot_open_secs,
    }
}

/// `sorted[q·(len-1)]` — exact sample percentiles over measured runs.
fn pctl(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i]
}

/// Write-while-serve numbers (all µs).
struct WriteWhileServe {
    reads: usize,
    commits: usize,
    read_only_p50_us: f64,
    read_only_p99_us: f64,
    contended_p50_us: f64,
    contended_p99_us: f64,
    commit_p50_us: f64,
    commit_p99_us: f64,
}

fn write_while_serve(scale: Scale) -> WriteWhileServe {
    let (config, reads) = match scale {
        Scale::Quick => (DataConfig::tiny(), 300usize),
        Scale::Full => (DataConfig::default(), 1_500),
    };
    let mut state = AppState::build(config);
    state.writable = true;
    let state = Arc::new(state);
    let sparql = ee_serve::state::selection_sparql(40.0, 40.0, 12.0);

    let read_phase = |label: &str| -> Vec<f64> {
        let mut lat = Vec::with_capacity(reads);
        for _ in 0..reads {
            let t0 = Instant::now();
            state.prepared_query(&sparql).expect(label);
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        lat.sort_by(f64::total_cmp);
        lat
    };

    // Phase 1: reads with no writer anywhere.
    let baseline = read_phase("read-only query");

    // Phase 2: same reads with a writer committing continuously.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut commit_lat = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let text = format!(
                    "INSERT DATA {{ <http://e/w{i}> <http://e/wrote> {i} }}"
                );
                let update = parse_update(&text).expect("writer update parses");
                let t0 = Instant::now();
                state.commit_update(&update).expect("commit");
                commit_lat.push(t0.elapsed().as_secs_f64() * 1e6);
                i += 1;
            }
            commit_lat
        })
    };
    let contended = read_phase("contended query");
    stop.store(true, Ordering::Relaxed);
    let mut commit_lat = writer.join().expect("writer thread");
    commit_lat.sort_by(f64::total_cmp);

    WriteWhileServe {
        reads,
        commits: commit_lat.len(),
        read_only_p50_us: pctl(&baseline, 0.5),
        read_only_p99_us: pctl(&baseline, 0.99),
        contended_p50_us: pctl(&contended, 0.5),
        contended_p99_us: pctl(&contended, 0.99),
        commit_p50_us: pctl(&commit_lat, 0.5),
        commit_p99_us: pctl(&commit_lat, 0.99),
    }
}

/// In-bench crash-recovery check: commit, tear the final WAL record in
/// half, reopen, demand the last fully-committed state bit-identical.
/// Panics (→ non-zero harness exit) on any divergence; returning means
/// the `recovery_identical` flag in the JSON is machine-checked truth.
fn recovery_check(durability: Durability) -> bool {
    let dir = scratch_dir("e-w7-recover");
    let mut store = Store::open_with(&dir, durability).expect("open");
    let mut rng = Rng::seed_from(0x77);
    for i in 0..6u32 {
        let text = format!(
            "INSERT DATA {{ <http://e/s{}> <http://e/p{}> <http://e/o{i}> }}",
            rng.range(0, 8),
            rng.range(0, 3),
        );
        store.commit(&parse_update(&text).expect("parse")).expect("commit");
    }
    let committed_gen = store.generation();
    let committed: Vec<(Term, Term, Term)> = triple_set(&store);
    let wal_keep = store.wal_len();
    store
        .commit(&parse_update("INSERT DATA { <http://e/final> <http://e/p> <http://e/o> }").unwrap())
        .expect("final commit");
    let wal_full = store.wal_len();
    drop(store);

    // Tear the final record in half and reopen.
    let wal_path = dir.join(ee_rdf::storage::wal::WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("wal readable");
    let cut = wal_keep as usize + (wal_full - wal_keep) as usize / 2;
    std::fs::write(&wal_path, &bytes[..cut]).expect("truncate");
    let reopened = Store::open_with(&dir, durability).expect("reopen");
    assert_eq!(
        reopened.generation(),
        committed_gen,
        "recovery must land on the last fully-committed generation"
    );
    assert_eq!(
        triple_set(&reopened),
        committed,
        "recovered triple set must be bit-identical"
    );
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
    true
}

fn triple_set(store: &Store) -> Vec<(Term, Term, Term)> {
    let mut v: Vec<(Term, Term, Term)> = store
        .triples()
        .map(|(s, p, o)| (s.clone(), p.clone(), o.clone()))
        .collect();
    v.sort();
    v
}

/// Run the full experiment, returning the printed tables plus the
/// `BENCH_PR7.json` payload.
pub fn report(scale: Scale) -> (Vec<Table>, Json) {
    let durability = Durability::from_env();
    let n = match scale {
        Scale::Quick => 30_000,
        Scale::Full => 300_000,
    };

    let cold = cold_start(n, durability);
    let mut t1 = Table::new(
        "E-w7a — cold start: snapshot open vs N-Triples rebuild",
        format!(
            "{} triples (⅓ WKT geometries). Bulk load = build + spatial index + \
             snapshot write, no per-triple WAL records. Rebuild = parse the \
             N-Triples export and re-index (the no-snapshot baseline); snapshot \
             open = decode dictionary blocks + delta-coded triple segments with \
             positional ids, skipping tokenising and re-interning.",
            cold.triples
        ),
        &["path", "time", "triples/s", "vs rebuild"],
    );
    t1.row(vec![
        "bulk load (+snapshot)".into(),
        fmt_secs(cold.bulk_load_secs),
        fmt_f64(cold.bulk_load_tps),
        "—".into(),
    ]);
    t1.row(vec![
        "cold N-Triples rebuild".into(),
        fmt_secs(cold.rebuild_secs),
        fmt_f64(cold.triples as f64 / cold.rebuild_secs.max(1e-9)),
        "1.0×".into(),
    ]);
    t1.row(vec![
        "snapshot open".into(),
        fmt_secs(cold.snapshot_open_secs),
        fmt_f64(cold.triples as f64 / cold.snapshot_open_secs.max(1e-9)),
        format!("{:.1}×", cold.rebuild_secs / cold.snapshot_open_secs.max(1e-9)),
    ]);

    let wws = write_while_serve(scale);
    let mut t2 = Table::new(
        "E-w7b — write-while-serve latency",
        format!(
            "{} E2 selection queries through the serve-tier prepared-query path, \
             read-only vs against a writer committing single-triple updates \
             continuously ({} commits landed). Commits take the exclusive store \
             lock and drop the prepared-plan cache, so the contended reads \
             include lock waits and replans.",
            wws.reads, wws.commits
        ),
        &["phase", "p50", "p99"],
    );
    let us = |v: f64| format!("{:.0} µs", v);
    t2.row(vec!["reads, no writer".into(), us(wws.read_only_p50_us), us(wws.read_only_p99_us)]);
    t2.row(vec![
        "reads, concurrent writer".into(),
        us(wws.contended_p50_us),
        us(wws.contended_p99_us),
    ]);
    t2.row(vec!["update commits".into(), us(wws.commit_p50_us), us(wws.commit_p99_us)]);

    let recovered = recovery_check(durability);

    let json = Json::obj(vec![
        ("bench", Json::Str("pr7-durable-store".to_string())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.to_string()),
        ),
        (
            "wal_fsync",
            Json::Bool(durability == Durability::Sync),
        ),
        (
            "cold_start",
            Json::obj(vec![
                ("triples", Json::Num(cold.triples as f64)),
                ("bulk_load_secs", Json::Num(cold.bulk_load_secs)),
                ("bulk_load_triples_per_sec", Json::Num(cold.bulk_load_tps)),
                ("ntriples_rebuild_secs", Json::Num(cold.rebuild_secs)),
                ("snapshot_open_secs", Json::Num(cold.snapshot_open_secs)),
                (
                    "open_speedup_vs_rebuild",
                    Json::Num(cold.rebuild_secs / cold.snapshot_open_secs.max(1e-9)),
                ),
            ]),
        ),
        (
            "write_while_serve",
            Json::obj(vec![
                ("reads", Json::Num(wws.reads as f64)),
                ("commits", Json::Num(wws.commits as f64)),
                ("read_only_p50_us", Json::Num(wws.read_only_p50_us)),
                ("read_only_p99_us", Json::Num(wws.read_only_p99_us)),
                ("with_writer_p50_us", Json::Num(wws.contended_p50_us)),
                ("with_writer_p99_us", Json::Num(wws.contended_p99_us)),
                ("commit_p50_us", Json::Num(wws.commit_p50_us)),
                ("commit_p99_us", Json::Num(wws.commit_p99_us)),
            ]),
        ),
        ("recovery_identical", Json::Bool(recovered)),
    ]);
    (vec![t1, t2], json)
}

/// Harness entry point (tables only).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_complete_and_recovery_checked() {
        let n = 3_000;
        let cold = cold_start(n, Durability::NoSync);
        assert_eq!(cold.triples, n);
        assert!(cold.bulk_load_tps > 0.0);
        assert!(cold.rebuild_secs > 0.0 && cold.snapshot_open_secs > 0.0);
        assert!(recovery_check(Durability::NoSync));
    }

    #[test]
    fn percentiles_index_sorted_samples() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(pctl(&v, 0.0), 1.0);
        assert_eq!(pctl(&v, 1.0), 10.0);
        assert_eq!(pctl(&v, 0.5), 6.0);
        assert_eq!(pctl(&[], 0.5), 0.0);
    }
}
