//! E-k0 — kernel throughput: the parallel cache-blocked compute kernels
//! against their serial references.
//!
//! Times the two hot kernels the E4/E5 experiments sit on:
//!
//! * dense matmul (512³, the shape class of the MLP layers), tiled +
//!   row-parallel vs the naive serial reference;
//! * the E5-shaped convolution batch (32×13×8×8 patches, 16 filters of
//!   3×3, pad 1), forward and backward, batch-parallel with the fast
//!   im2col vs the original per-sample shared-buffer formulation.
//!
//! Every variant here is bit-identical to its reference (proven by the
//! `parallel_identity` tests in ee-tensor); this module measures what the
//! identity costs. [`report`] also returns the numbers as a JSON value,
//! which the harness writes to `BENCH_PR1.json`.

use crate::table::{fmt_f64, fmt_secs, Table};
use crate::Scale;
use ee_tensor::kernels::{
    conv2d_backward_ref, conv2d_backward_with_threads, conv2d_forward_ref,
    conv2d_forward_with_threads,
};
use ee_tensor::matmul::{matmul_into, matmul_serial_ref};
use ee_tensor::Tensor;
use ee_util::json::Json;
use ee_util::Rng;

/// Thread counts reported per kernel.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One timed invocation.
fn time_once(f: &mut impl FnMut()) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

fn rand_vec(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.f32() - 0.5).collect()
}

struct Variant {
    label: String,
    threads: Option<usize>,
    secs: f64,
    gflops: f64,
    speedup: f64,
}

fn variant_rows(table: &mut Table, kernel: &str, variants: &[Variant]) {
    for v in variants {
        table.row(vec![
            kernel.to_string(),
            v.label.clone(),
            fmt_secs(v.secs),
            fmt_f64(v.gflops),
            format!("{:.2}x", v.speedup),
        ]);
    }
}

fn variant_json(variants: &[Variant]) -> Json {
    Json::Arr(
        variants
            .iter()
            .map(|v| {
                let mut pairs = vec![("label", Json::Str(v.label.clone()))];
                if let Some(t) = v.threads {
                    pairs.push(("threads", Json::Num(t as f64)));
                }
                pairs.push(("secs", Json::Num(v.secs)));
                pairs.push(("gflops", Json::Num(v.gflops)));
                pairs.push(("speedup_vs_serial", Json::Num(v.speedup)));
                Json::obj(pairs)
            })
            .collect(),
    )
}

/// Serial reference plus the parallel kernel at each thread count.
///
/// Measurements are interleaved round-robin (serial, t=1, t=2, ... per
/// round, minimum over rounds) so a transiently slow machine window —
/// frequency scaling, a noisy neighbour — degrades every variant alike
/// instead of skewing whichever one it landed on.
fn sweep(
    reps: usize,
    flops: f64,
    mut serial: impl FnMut(),
    mut parallel: impl FnMut(usize),
) -> Vec<Variant> {
    // Untimed warm-up (also pre-faults output pages).
    serial();
    for &t in &THREADS {
        parallel(t);
    }
    let mut best = [f64::INFINITY; 1 + THREADS.len()];
    for _ in 0..reps {
        best[0] = best[0].min(time_once(&mut serial));
        for (i, &t) in THREADS.iter().enumerate() {
            best[1 + i] = best[1 + i].min(time_once(&mut || parallel(t)));
        }
    }
    let base = best[0];
    let mut out = vec![Variant {
        label: "serial-ref".to_string(),
        threads: None,
        secs: base,
        gflops: flops / base / 1e9,
        speedup: 1.0,
    }];
    for (i, &t) in THREADS.iter().enumerate() {
        let secs = best[1 + i];
        out.push(Variant {
            label: format!("parallel t={t}"),
            threads: Some(t),
            secs,
            gflops: flops / secs / 1e9,
            speedup: base / secs,
        });
    }
    out
}

/// Run the kernel benchmarks; returns the markdown table and the same
/// numbers as a JSON document for `BENCH_PR1.json`.
pub fn report(scale: Scale) -> (Vec<Table>, Json) {
    let reps = match scale {
        Scale::Quick => 5,
        Scale::Full => 25,
    };
    let mut rng = Rng::seed_from(0xBE7C);

    // Matmul: 512³, the shape class of the E4 MLP layers.
    let (m, k, n) = (512, 512, 512);
    let a = rand_vec(&mut rng, m * k);
    let b = rand_vec(&mut rng, k * n);
    let mut out_serial = vec![0.0f32; m * n];
    let mut out_par = vec![0.0f32; m * n];
    let mm_flops = 2.0 * (m * k * n) as f64;
    let mm = sweep(
        reps,
        mm_flops,
        || matmul_serial_ref(&a, &b, &mut out_serial, m, k, n),
        |t| matmul_into(&a, &b, &mut out_par, m, k, n, t),
    );

    // Convolution: the E5 sea-ice patch batch. 32 patches of 13 bands at
    // 8×8, 16 filters of 3×3, pad 1 → rows = 13*9 = 117, OH*OW = 64.
    let (cn, cc, ch, cw, cf, ck, pad) = (32, 13, 8, 8, 16, 3, 1);
    let x = Tensor::from_vec(&[cn, cc, ch, cw], rand_vec(&mut rng, cn * cc * ch * cw)).unwrap();
    let weight = Tensor::from_vec(&[cf, cc, ck, ck], rand_vec(&mut rng, cf * cc * ck * ck)).unwrap();
    let bias = Tensor::from_vec(&[cf], rand_vec(&mut rng, cf)).unwrap();
    let rows = cc * ck * ck;
    let ohw = ch * cw; // pad 1, 3×3 → same spatial size
    let fwd_flops = 2.0 * (cn * cf * rows * ohw) as f64;
    let fwd = sweep(
        reps,
        fwd_flops,
        || {
            conv2d_forward_ref(&x, &weight, &bias, pad).unwrap();
        },
        |t| {
            conv2d_forward_with_threads(&x, &weight, &bias, pad, t).unwrap();
        },
    );

    let dout = Tensor::from_vec(&[cn, cf, ch, cw], rand_vec(&mut rng, cn * cf * ohw)).unwrap();
    // dW (A·colsᵀ) and dcols (Wᵀ·dout) are each a full matmul per sample.
    let bwd_flops = 4.0 * (cn * cf * rows * ohw) as f64;
    let bwd = sweep(
        reps,
        bwd_flops,
        || {
            conv2d_backward_ref(&x, &weight, &dout, pad).unwrap();
        },
        |t| {
            conv2d_backward_with_threads(&x, &weight, &dout, pad, t).unwrap();
        },
    );

    let mut table = Table::new(
        "E-k0 — kernel throughput (parallel cache-blocked vs serial reference)",
        "The hot kernels under E4/E5, rebuilt on the ee-util parallel runtime. \
         Every parallel variant is bit-identical to serial-ref; speedup is \
         time(serial-ref) / time(variant). Worker counts are adaptive: a \
         kernel clamps to fewer workers when the problem is too small to \
         amortise thread spawn, so t=N rows converge for small shapes.",
        &["kernel", "variant", "time", "GFLOP/s", "speedup"],
    );
    variant_rows(&mut table, &format!("matmul {m}x{k}x{n}"), &mm);
    variant_rows(
        &mut table,
        &format!("conv2d fwd {cn}x{cc}x{ch}x{cw} f{cf} k{ck} p{pad}"),
        &fwd,
    );
    variant_rows(
        &mut table,
        &format!("conv2d bwd {cn}x{cc}x{ch}x{cw} f{cf} k{ck} p{pad}"),
        &bwd,
    );

    let json = Json::obj(vec![
        ("bench", Json::Str("pr1-kernels".to_string())),
        (
            "scale",
            Json::Str(if scale == Scale::Full { "full" } else { "quick" }.to_string()),
        ),
        (
            "host_threads",
            Json::Num(ee_util::par::available_threads() as f64),
        ),
        (
            "matmul",
            Json::obj(vec![
                ("m", Json::Num(m as f64)),
                ("k", Json::Num(k as f64)),
                ("n", Json::Num(n as f64)),
                ("flops", Json::Num(mm_flops)),
                ("variants", variant_json(&mm)),
            ]),
        ),
        (
            "conv2d_forward",
            Json::obj(vec![
                ("batch", Json::Num(cn as f64)),
                ("channels", Json::Num(cc as f64)),
                ("hw", Json::Num(ch as f64)),
                ("filters", Json::Num(cf as f64)),
                ("kernel", Json::Num(ck as f64)),
                ("pad", Json::Num(pad as f64)),
                ("flops", Json::Num(fwd_flops)),
                ("variants", variant_json(&fwd)),
            ]),
        ),
        (
            "conv2d_backward",
            Json::obj(vec![
                ("batch", Json::Num(cn as f64)),
                ("channels", Json::Num(cc as f64)),
                ("hw", Json::Num(ch as f64)),
                ("filters", Json::Num(cf as f64)),
                ("kernel", Json::Num(ck as f64)),
                ("pad", Json::Num(pad as f64)),
                ("flops", Json::Num(bwd_flops)),
                ("variants", variant_json(&bwd)),
            ]),
        ),
    ]);
    (vec![table], json)
}

/// Experiment-suite entry point (drops the JSON half of [`report`]).
pub fn run(scale: Scale) -> Vec<Table> {
    report(scale).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_positivity() {
        let (tables, json) = report(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // serial-ref + 4 thread counts, for 3 kernels.
        assert_eq!(t.rows.len(), 3 * (1 + THREADS.len()));
        for section in ["matmul", "conv2d_forward", "conv2d_backward"] {
            let variants = json
                .get(section)
                .and_then(|s| s.get("variants"))
                .and_then(Json::as_arr)
                .unwrap();
            assert_eq!(variants.len(), 1 + THREADS.len());
            for v in variants {
                assert!(v.get("gflops").unwrap().as_f64().unwrap() > 0.0);
                assert!(v.get("speedup_vs_serial").unwrap().as_f64().unwrap() > 0.0);
            }
        }
        // The document parses back from its own emission.
        let text = json.emit_pretty();
        ee_util::json::parse(&text).unwrap();
    }
}
