#![warn(missing_docs)]
//! The experiment suite E1–E12: every quantitative claim the paper makes,
//! regenerated at laptop scale.
//!
//! Each experiment module exposes a `run(scale) -> Vec<Table>` used by the
//! `harness` binary, which prints the EXPERIMENTS.md tables. Two extra
//! experiments ride along: [`kernels`] (`E-k0`) times the parallel compute
//! kernels against their serial references (writes `BENCH_PR1.json`), and
//! [`e_s0_serve`] (`E-s0`) load-tests the `ee-serve` serving tier over real
//! sockets (writes `BENCH_PR2.json`). [`e_w7_store`] (`E-w7`) measures
//! the durable store's cold-start, write-while-serve latency, and crash
//! recovery (writes `BENCH_PR7.json`). [`e_c8_event`] (`E-c8`) measures
//! the event-driven serve tier holding thousands of mostly-idle
//! keep-alive connections against the thread-pool baseline (writes
//! `BENCH_PR8.json`). [`e_f9_shard`] (`E-f9`) launches N real `ee-serve`
//! shard processes behind the scatter-gather router and checks routed
//! answers byte-for-byte against an unsharded reference (writes
//! `BENCH_PR9.json`). [`e_t10`] (`E-t10`) machine-checks versioned
//! `?asOf=` reads against replayed stores and measures the pinned
//! versioned-read cache under writes (writes `BENCH_PR10.json`). The
//! [`table::Table`] type renders GitHub-flavoured markdown.

pub mod table;

pub mod e_c8_event;
pub mod e_f9_shard;
pub mod e_k6_topk;
pub mod e_s0_serve;
pub mod e_t10;
pub mod e_w7_store;
pub mod kernels;

pub mod e1_extraction;
pub mod e2_selection;
pub mod e3_complexity;
pub mod e4_distributed;
pub mod e5_classification;
pub mod e6_datasets;
pub mod e7_interlink;
pub mod e8_federation;
pub mod e9_catalogue;
pub mod e10_hopsfs;
pub mod e11_water;
pub mod e12_seaice;

/// How large to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment (CI and the test suite).
    Quick,
    /// The scale used to produce EXPERIMENTS.md.
    Full,
}

/// All experiment ids in order.
pub const ALL: [&str; 19] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "kernels", "e-s0",
    "e-k6", "e-w7", "e-c8", "e-f9", "e-t10",
];

/// Run one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<Vec<table::Table>> {
    match id {
        "e1" => Some(e1_extraction::run(scale)),
        "e2" => Some(e2_selection::run(scale)),
        "e3" => Some(e3_complexity::run(scale)),
        "e4" => Some(e4_distributed::run(scale)),
        "e5" => Some(e5_classification::run(scale)),
        "e6" => Some(e6_datasets::run(scale)),
        "e7" => Some(e7_interlink::run(scale)),
        "e8" => Some(e8_federation::run(scale)),
        "e9" => Some(e9_catalogue::run(scale)),
        "e10" => Some(e10_hopsfs::run(scale)),
        "e11" => Some(e11_water::run(scale)),
        "e12" => Some(e12_seaice::run(scale)),
        "kernels" => Some(kernels::run(scale)),
        "e-s0" => Some(e_s0_serve::run(scale)),
        "e-k6" => Some(e_k6_topk::run(scale)),
        "e-w7" => Some(e_w7_store::run(scale)),
        "e-c8" => Some(e_c8_event::run(scale)),
        "e-f9" => Some(e_f9_shard::run(scale)),
        "e-t10" => Some(e_t10::run(scale)),
        _ => None,
    }
}
