//! Markdown result tables.

/// A result table with a title, a caption tying it to the paper's claim,
/// headers and string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment/table title (e.g. `E2 — spatial selection scaling`).
    pub title: String,
    /// What paper claim this regenerates.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            caption: caption.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in {}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        if !self.caption.is_empty() {
            out.push_str(&format!("{}\n\n", self.caption));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

/// Format a float with sensible precision for a table cell.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Format a duration in seconds adaptively.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.1} µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("E0 — demo", "a caption", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("t", "", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(0.1234), "0.123");
        assert_eq!(fmt_f64(0.0001), "1.00e-4");
        assert_eq!(fmt_secs(7200.0), "2.00 h");
        assert_eq!(fmt_secs(90.0), "1.5 min");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(2.5e-5), "25.0 µs");
    }
}
