//! BM25 ranked retrieval over product search text.
//!
//! The classic catalogue answers "which products intersect this box with
//! these attribute filters"; this module answers "which products best
//! match these words" — the ranked-search half of the paper's catalogue
//! story, exposed by `ee-serve` as `mode=ranked` on `/catalogue/search`.
//!
//! Two searchers share one scoring function:
//!
//! * [`Bm25Index`] — an inverted index: a term dictionary, one postings
//!   list `(doc, tf)` per term in ascending doc order, and per-document
//!   lengths. A query walks only the postings of its terms and keeps the
//!   top k in a bounded heap, so cost is O(matching postings + m log k),
//!   independent of corpus size for selective terms.
//! * [`ScanSearcher`] — the brute-force reference: every query walks
//!   every document. O(docs × terms) per query, kept as the correctness
//!   oracle (tests and the E-k6 harness assert exact equality) and as the
//!   latency baseline BM25 is measured against.
//!
//! ## Scoring
//!
//! The classic Okapi form with `k1 = 1.2`, `b = 0.75`:
//!
//! ```text
//! score(D, Q) = Σ_t∈Q  idf(t) · tf(t,D)·(k1+1) / (tf(t,D) + k1·(1 − b + b·|D|/avgdl))
//! idf(t)      = ln( (N − df(t) + 0.5) / (df(t) + 0.5) + 1 )
//! ```
//!
//! The `+ 1` inside the log keeps idf strictly positive, so every
//! matching posting contributes a positive score. Query terms are
//! deduplicated in first-appearance order and both searchers accumulate
//! per-document scores in that same term order, which makes their f64
//! sums — not just their rankings — bit-identical.
//!
//! ## Tokenisation
//!
//! [`tokenize`]: split on every non-alphanumeric character, drop empty
//! fragments, lowercase. `"Sentinel-2 MSIL2A"` → `["sentinel", "2",
//! "msil2a"]`. No stemming, no stop words — the corpus vocabulary is
//! controlled (see `Product::search_text`).
//!
//! Ties are broken by ascending document id under `f64::total_cmp`, so a
//! ranking is a strict total order and top-k equals the full ranking
//! truncated — the same partition-independence argument the SPARQL top-k
//! path relies on.

use crate::product::Product;
use std::collections::{BinaryHeap, HashMap};

/// BM25 term-frequency saturation constant.
pub const K1: f64 = 1.2;
/// BM25 length-normalisation constant.
pub const B: f64 = 0.75;

/// Lowercased alphanumeric tokens of `text`, in order.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// One ranked result: a document index (into the corpus the searcher was
/// built from) and its BM25 score.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the document in build order.
    pub doc: u32,
    /// BM25 score (strictly positive: only matching documents are hits).
    pub score: f64,
}

/// Max-heap entry whose root is the **worst** retained hit: lower score
/// is greater, and on (bitwise) equal scores the higher doc id is
/// greater. A bounded heap of these keeps exactly the k best hits.
struct WorstFirst {
    score: f64,
    doc: u32,
}

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for WorstFirst {}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn push_bounded(heap: &mut BinaryHeap<WorstFirst>, e: WorstFirst, k: usize) {
    if heap.len() < k {
        heap.push(e);
    } else if let Some(worst) = heap.peek() {
        if e.cmp(worst) == std::cmp::Ordering::Less {
            heap.pop();
            heap.push(e);
        }
    }
}

fn drain_best(heap: BinaryHeap<WorstFirst>) -> Vec<Hit> {
    // into_sorted_vec is ascending under WorstFirst's order, i.e.
    // best-first: score descending, doc ascending on ties.
    heap.into_sorted_vec()
        .into_iter()
        .map(|e| Hit {
            doc: e.doc,
            score: e.score,
        })
        .collect()
}

/// Query terms deduplicated in first-appearance order — the accumulation
/// order both searchers share.
fn query_terms(query: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for t in tokenize(query) {
        if !out.contains(&t) {
            out.push(t);
        }
    }
    out
}

fn idf(n_docs: usize, df: usize) -> f64 {
    ((n_docs as f64 - df as f64 + 0.5) / (df as f64 + 0.5) + 1.0).ln()
}

fn bm25_term(idf: f64, tf: f64, doc_len: f64, avg_len: f64) -> f64 {
    idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * doc_len / avg_len))
}

/// The inverted index. Build once over the corpus, query many times —
/// and maintain incrementally: [`Bm25Index::upsert`] /
/// [`Bm25Index::remove`] keep single-document writes from forcing a
/// full rebuild (the catalogue analogue of the triple store's write
/// path). All scoring statistics (N, df, document length, average
/// length) are maintained from integer totals, so an incrementally
/// maintained index scores **bit-identically** to one rebuilt from
/// scratch over the same live documents.
pub struct Bm25Index {
    dict: HashMap<String, u32>,
    /// Per term: `(doc, tf)` pairs in ascending doc order. Only live
    /// documents appear, so df is each list's length.
    postings: Vec<Vec<(u32, u32)>>,
    /// Per slot: token count (0 for dead slots).
    doc_len: Vec<u32>,
    /// Per slot: does it currently hold a document?
    live: Vec<bool>,
    /// Per slot: its `(term id, tf)` pairs, for O(|doc|·log df) removal.
    doc_terms: Vec<Vec<(u32, u32)>>,
    n_live: usize,
    total_len: u64,
    avg_len: f64,
}

impl Bm25Index {
    /// Index an iterator of document texts; document ids are assigned in
    /// iteration order.
    pub fn build<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut idx = Bm25Index {
            dict: HashMap::new(),
            postings: Vec::new(),
            doc_len: Vec::new(),
            live: Vec::new(),
            doc_terms: Vec::new(),
            n_live: 0,
            total_len: 0,
            avg_len: 1.0,
        };
        for text in texts {
            idx.upsert(idx.doc_len.len(), text.as_ref());
        }
        idx
    }

    /// Index the [`Product::search_text`] of every product, in order.
    pub fn build_products(products: &[Product]) -> Self {
        Self::build(products.iter().map(|p| p.search_text()))
    }

    /// Insert or replace the document in slot `doc`. `doc` may be at
    /// most the current slot count (equal appends a new slot —
    /// [`Bm25Index::build`] is a sequence of appends).
    pub fn upsert(&mut self, doc: usize, text: &str) {
        assert!(
            doc <= self.doc_len.len(),
            "upsert slot {doc} out of range (slots: {})",
            self.doc_len.len()
        );
        if doc == self.doc_len.len() {
            self.doc_len.push(0);
            self.live.push(false);
            self.doc_terms.push(Vec::new());
        } else if self.live[doc] {
            self.remove(doc);
        }
        let tokens = tokenize(text);
        let n_tokens = tokens.len() as u32;
        // Per-term counts in first-appearance order (assigns term ids in
        // the same order a from-scratch build would).
        let mut counts: Vec<(u32, u32)> = Vec::new();
        for tok in tokens {
            let tid = *self.dict.entry(tok).or_insert_with(|| {
                self.postings.push(Vec::new());
                (self.postings.len() - 1) as u32
            });
            match counts.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, tf)) => *tf += 1,
                None => counts.push((tid, 1)),
            }
        }
        let doc_id = doc as u32;
        for &(tid, tf) in &counts {
            let list = &mut self.postings[tid as usize];
            // Ascending doc order; an append (the build path) hits the
            // end immediately.
            let at = list.partition_point(|&(d, _)| d < doc_id);
            list.insert(at, (doc_id, tf));
        }
        self.doc_terms[doc] = counts;
        self.doc_len[doc] = n_tokens;
        self.live[doc] = true;
        self.n_live += 1;
        self.total_len += u64::from(n_tokens);
        self.recompute_avg();
    }

    /// Remove the document in slot `doc`; `true` when one was there.
    /// Slot ids of other documents do not shift. (Dictionary entries
    /// whose postings become empty are kept; they contribute nothing to
    /// any score.)
    pub fn remove(&mut self, doc: usize) -> bool {
        if doc >= self.doc_len.len() || !self.live[doc] {
            return false;
        }
        let doc_id = doc as u32;
        for (tid, _) in std::mem::take(&mut self.doc_terms[doc]) {
            let list = &mut self.postings[tid as usize];
            if let Ok(at) = list.binary_search_by_key(&doc_id, |&(d, _)| d) {
                list.remove(at);
            }
        }
        self.live[doc] = false;
        self.n_live -= 1;
        self.total_len -= u64::from(self.doc_len[doc]);
        self.doc_len[doc] = 0;
        self.recompute_avg();
        true
    }

    /// Maintain `avg_len` from the integer totals — the same division a
    /// from-scratch build performs, hence bit-identical.
    fn recompute_avg(&mut self) {
        self.avg_len = if self.n_live == 0 {
            1.0
        } else {
            self.total_len as f64 / self.n_live as f64
        };
    }

    /// Number of live (searchable) documents.
    pub fn len(&self) -> usize {
        self.n_live
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_live == 0
    }

    /// Number of distinct terms in the dictionary (including terms only
    /// dead documents used — the dictionary never shrinks).
    pub fn vocabulary(&self) -> usize {
        self.dict.len()
    }

    /// The k best documents for `query`, best first (score descending,
    /// doc id ascending on score ties). Only documents matching at least
    /// one query term appear; fewer than k hits means fewer matches.
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for term in query_terms(query) {
            let Some(&tid) = self.dict.get(&term) else {
                continue;
            };
            let posts = &self.postings[tid as usize];
            let idf = idf(self.len(), posts.len());
            for &(doc, tf) in posts {
                let s = bm25_term(
                    idf,
                    tf as f64,
                    self.doc_len[doc as usize] as f64,
                    self.avg_len,
                );
                *acc.entry(doc).or_insert(0.0) += s;
            }
        }
        // The (score, doc) order is strict, so the top-k set is unique
        // and the hash map's iteration order cannot leak into the result.
        let mut heap = BinaryHeap::new();
        for (doc, score) in acc {
            push_bounded(&mut heap, WorstFirst { score, doc }, k);
        }
        drain_best(heap)
    }
}

/// The linear-scan reference searcher: tokenised documents, no index.
/// Every query walks the whole corpus. Same scoring, same tie-break —
/// [`Bm25Index::search`] must agree with it exactly.
pub struct ScanSearcher {
    tokens: Vec<Vec<String>>,
    avg_len: f64,
}

impl ScanSearcher {
    /// Tokenise an iterator of document texts.
    pub fn build<I, S>(texts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let tokens: Vec<Vec<String>> = texts
            .into_iter()
            .map(|t| tokenize(t.as_ref()))
            .collect();
        let total: u64 = tokens.iter().map(|t| t.len() as u64).sum();
        let avg_len = if tokens.is_empty() {
            1.0
        } else {
            total as f64 / tokens.len() as f64
        };
        ScanSearcher { tokens, avg_len }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Brute-force BM25 top-k: same contract as [`Bm25Index::search`].
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let qterms = query_terms(query);
        // Document frequency per query term, by full scan.
        let dfs: Vec<usize> = qterms
            .iter()
            .map(|t| self.tokens.iter().filter(|d| d.contains(t)).count())
            .collect();
        let idfs: Vec<f64> = dfs.iter().map(|&df| idf(self.len(), df)).collect();
        let mut heap = BinaryHeap::new();
        for (doc, tokens) in self.tokens.iter().enumerate() {
            let mut score = 0.0;
            let mut matched = false;
            for (term, &idf) in qterms.iter().zip(&idfs) {
                let tf = tokens.iter().filter(|t| *t == term).count();
                if tf > 0 {
                    matched = true;
                    score += bm25_term(idf, tf as f64, tokens.len() as f64, self.avg_len);
                }
            }
            if matched {
                push_bounded(
                    &mut heap,
                    WorstFirst {
                        score,
                        doc: doc as u32,
                    },
                    k,
                );
            }
        }
        drain_best(heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::ProductGenerator;
    use ee_geo::Envelope;

    fn corpus() -> Vec<String> {
        let mut g = ProductGenerator::new(Envelope::new(20.0, 35.0, 30.0, 42.0), 2017, 11);
        g.take(300).iter().map(|p| p.search_text()).collect()
    }

    #[test]
    fn tokenizer_splits_and_lowercases() {
        assert_eq!(
            tokenize("Sentinel-2 MSIL2A, (july)"),
            vec!["sentinel", "2", "msil2a", "july"]
        );
        assert!(tokenize("  --  ").is_empty());
    }

    #[test]
    fn index_matches_linear_scan_exactly() {
        let docs = corpus();
        let idx = Bm25Index::build(&docs);
        let scan = ScanSearcher::build(&docs);
        assert_eq!(idx.len(), scan.len());
        let queries = [
            "sentinel-2 surface reflectance",
            "radar ground range detected winter",
            "clear sky july",
            "overcast",
            "sentinel",       // matches every doc
            "nosuchterm",     // matches none
            "olci ocean colour",
            "cell e22 n31 summer",
        ];
        for q in queries {
            for k in [1usize, 3, 10, 500] {
                let a = idx.search(q, k);
                let b = scan.search(q, k);
                assert_eq!(a, b, "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn scores_are_ordered_and_deterministic() {
        let docs = corpus();
        let idx = Bm25Index::build(&docs);
        let hits = idx.search("sentinel-2 clear sky", 25);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].doc < w[1].doc),
                "hits must be strictly ordered: {w:?}"
            );
        }
        // Two builds, two searches: identical bits.
        let again = Bm25Index::build(&docs).search("sentinel-2 clear sky", 25);
        assert_eq!(hits, again);
    }

    #[test]
    fn topk_is_truncated_full_ranking() {
        let docs = corpus();
        let idx = Bm25Index::build(&docs);
        let full = idx.search("optical multispectral scattered clouds", docs.len());
        for k in [1usize, 2, 7, 50] {
            assert_eq!(idx.search("optical multispectral scattered clouds", k), full[..k.min(full.len())]);
        }
    }

    #[test]
    fn selective_terms_rank_above_common_ones() {
        let docs = vec![
            "sentinel common common common".to_string(),
            "sentinel rare".to_string(),
            "sentinel common".to_string(),
        ];
        let idx = Bm25Index::build(&docs);
        let hits = idx.search("rare", 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1);
        // A rare term outranks a common one for the doc containing both.
        let hits = idx.search("sentinel rare", 3);
        assert_eq!(hits[0].doc, 1, "doc with the rare term first");
    }

    #[test]
    fn empty_query_and_empty_corpus() {
        let idx = Bm25Index::build(corpus());
        assert!(idx.search("", 10).is_empty());
        assert!(idx.search("nosuchterm whatsoever", 10).is_empty());
        let empty = Bm25Index::build(Vec::<String>::new());
        assert!(empty.is_empty());
        assert!(empty.search("anything", 10).is_empty());
        assert_eq!(idx.search("sentinel", 0).len(), 0, "k = 0 keeps nothing");
    }

    #[test]
    fn incremental_maintenance_matches_rebuild_bit_for_bit() {
        // Mutate an index with upserts/removes, rebuild a second index
        // from scratch over the resulting live corpus, and require the
        // exact same scores (f64 bits) and the same ranked documents.
        let mut docs = corpus();
        let mut idx = Bm25Index::build(&docs);

        // Replace one doc's text, append a new doc, remove two docs
        // (one of them the replaced one’s neighbour), re-add one.
        idx.upsert(5, "sentinel-1 radar interferometric wide swath dusk");
        docs[5] = "sentinel-1 radar interferometric wide swath dusk".into();
        let appended = "brand new olci ocean colour scene overcast".to_string();
        idx.upsert(docs.len(), &appended);
        docs.push(appended);
        assert!(idx.remove(7));
        assert!(!idx.remove(7), "second remove is a no-op");
        assert!(idx.remove(120));
        idx.upsert(120, "resurrected acquisition clear sky summer");
        docs[120] = "resurrected acquisition clear sky summer".into();

        // The live corpus: every doc except slot 7.
        let live: Vec<(usize, &String)> = docs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 7)
            .collect();
        let rebuilt = Bm25Index::build(live.iter().map(|(_, t)| t.as_str()));
        assert_eq!(idx.len(), rebuilt.len());

        let queries = [
            "sentinel radar wide swath",
            "olci ocean colour overcast",
            "clear sky summer",
            "sentinel", // matches everything: exercises ties + shifts
            "resurrected dusk",
        ];
        for q in queries {
            for k in [1usize, 5, 50, docs.len()] {
                let a = idx.search(q, k);
                let b = rebuilt.search(q, k);
                // Slot ids differ (the rebuild compacts slot 7 away);
                // compare by document text. The id shift is monotone,
                // so tie order by id is preserved too.
                let a_key: Vec<(u64, &str)> = a
                    .iter()
                    .map(|h| (h.score.to_bits(), docs[h.doc as usize].as_str()))
                    .collect();
                let b_key: Vec<(u64, &str)> = b
                    .iter()
                    .map(|h| (h.score.to_bits(), live[h.doc as usize].1.as_str()))
                    .collect();
                assert_eq!(a_key, b_key, "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn upsert_remove_edge_cases() {
        let mut idx = Bm25Index::build(Vec::<String>::new());
        assert!(!idx.remove(0), "empty index");
        idx.upsert(0, "alpha beta alpha");
        assert_eq!(idx.len(), 1);
        let hits = idx.search("alpha", 10);
        assert_eq!(hits.len(), 1);
        // Replacing in place changes the scored terms.
        idx.upsert(0, "gamma");
        assert!(idx.search("alpha", 10).is_empty());
        assert_eq!(idx.search("gamma", 10).len(), 1);
        // Removing the only doc empties the index but keeps the slot.
        assert!(idx.remove(0));
        assert!(idx.is_empty());
        assert!(idx.search("gamma", 10).is_empty());
        // The slot can be refilled.
        idx.upsert(0, "delta");
        assert_eq!(idx.search("delta", 10).len(), 1);
    }

    #[test]
    fn product_search_text_is_deterministic_and_tokenful() {
        let mut g = ProductGenerator::new(Envelope::new(20.0, 35.0, 30.0, 42.0), 2017, 5);
        let p = g.next_product();
        assert_eq!(p.search_text(), p.search_text());
        let toks = tokenize(&p.search_text());
        assert!(toks.contains(&"sentinel".to_string()));
        assert!(toks.iter().any(|t| t == "winter" || t == "spring" || t == "summer" || t == "autumn"));
    }
}
