//! The classic catalogue: AOI + parameter search over product metadata.
//!
//! This is what the Copernicus Open Access Hub offers today. It is fast —
//! R-tree over footprints plus attribute filters — but it knows nothing
//! about the *content* of the products; the semantic questions of C4 are
//! out of its reach by construction (its API has no notion of detected
//! objects).

use crate::product::Product;
use crate::CatalogueError;
use ee_geo::{Envelope, RTree};
use ee_util::timeline::Date;

/// Search parameters (all optional except the AOI).
#[derive(Debug, Clone)]
pub struct Search {
    /// Area of interest.
    pub aoi: Envelope,
    /// Earliest sensing date (inclusive).
    pub from: Option<Date>,
    /// Latest sensing date (inclusive).
    pub to: Option<Date>,
    /// Mission filter (`S1` / `S2` / `S3`).
    pub mission: Option<String>,
    /// Product-type filter.
    pub product_type: Option<String>,
    /// Maximum cloud cover percent.
    pub max_cloud: Option<f64>,
}

impl Search {
    /// A pure AOI search.
    pub fn aoi(aoi: Envelope) -> Self {
        Self {
            aoi,
            from: None,
            to: None,
            mission: None,
            product_type: None,
            max_cloud: None,
        }
    }
}

/// The classic catalogue index.
pub struct ClassicCatalogue {
    products: Vec<Product>,
    rtree: RTree<usize>,
}

impl ClassicCatalogue {
    /// Build from a product list (bulk load).
    pub fn build(products: Vec<Product>) -> Self {
        let items: Vec<(Envelope, usize)> = products
            .iter()
            .enumerate()
            .map(|(i, p)| (p.envelope(), i))
            .collect();
        Self {
            products,
            rtree: RTree::bulk_load(items),
        }
    }

    /// Incremental ingest.
    pub fn insert(&mut self, product: Product) {
        let i = self.products.len();
        self.rtree.insert(product.envelope(), i);
        self.products.push(product);
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// All indexed products, in ingest order. Document id `i` in a
    /// [`crate::Bm25Index`] built over this slice refers to
    /// `products()[i]`, which is how the serving tier maps ranked hits
    /// back to product records.
    pub fn products(&self) -> &[Product] {
        &self.products
    }

    /// True if no products are indexed.
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }

    /// Run a search; returns matching products sorted by sensing date.
    pub fn search(&self, search: &Search) -> Result<Vec<&Product>, CatalogueError> {
        if search.aoi.is_empty() {
            return Err(CatalogueError::BadSearch("empty AOI".into()));
        }
        if let (Some(f), Some(t)) = (search.from, search.to) {
            if f > t {
                return Err(CatalogueError::BadSearch("from after to".into()));
            }
        }
        let aoi_geom: ee_geo::Geometry = search.aoi.to_polygon().into();
        let mut hits: Vec<&Product> = self
            .rtree
            .search(&search.aoi)
            .into_iter()
            .map(|&i| &self.products[i])
            .filter(|p| {
                // Refine the bbox hit with the exact footprint polygon.
                let footprint: ee_geo::Geometry = p.polygon().into();
                if !ee_geo::algorithms::intersects(&footprint, &aoi_geom) {
                    return false;
                }
                let d = p.sensing_date();
                search.from.map(|f| d >= f).unwrap_or(true)
                    && search.to.map(|t| d <= t).unwrap_or(true)
                    && search
                        .mission
                        .as_ref()
                        .map(|m| &p.mission == m)
                        .unwrap_or(true)
                    && search
                        .product_type
                        .as_ref()
                        .map(|t| &p.product_type == t)
                        .unwrap_or(true)
                    && search
                        .max_cloud
                        .map(|c| p.cloud_cover <= c)
                        .unwrap_or(true)
            })
            .collect();
        hits.sort_by_key(|p| (p.sensing_year, p.sensing_doy, p.id.clone()));
        Ok(hits)
    }

    /// Total archive volume in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.products.iter().map(|p| p.size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::ProductGenerator;

    fn catalogue(n: usize) -> ClassicCatalogue {
        let mut g = ProductGenerator::new(Envelope::new(0.0, 0.0, 10.0, 10.0), 2017, 3);
        ClassicCatalogue::build(g.take(n))
    }

    #[test]
    fn aoi_search_prunes() {
        let cat = catalogue(500);
        let small = cat
            .search(&Search::aoi(Envelope::new(2.0, 2.0, 2.5, 2.5)))
            .unwrap();
        let all = cat
            .search(&Search::aoi(Envelope::new(-1.0, -1.0, 12.0, 12.0)))
            .unwrap();
        assert_eq!(all.len(), 500);
        assert!(small.len() < all.len());
        assert!(!small.is_empty(), "1-degree tiles over a 10-degree region");
        for p in &small {
            assert!(p.envelope().intersects(&Envelope::new(2.0, 2.0, 2.5, 2.5)));
        }
    }

    #[test]
    fn attribute_filters() {
        let cat = catalogue(500);
        let mut s = Search::aoi(Envelope::new(0.0, 0.0, 10.0, 10.0));
        s.mission = Some("S2".into());
        s.max_cloud = Some(20.0);
        let hits = cat.search(&s).unwrap();
        assert!(!hits.is_empty());
        for p in &hits {
            assert_eq!(p.mission, "S2");
            assert!(p.cloud_cover <= 20.0);
        }
        s.product_type = Some("MSIL2A".into());
        for p in cat.search(&s).unwrap() {
            assert_eq!(p.product_type, "MSIL2A");
        }
    }

    #[test]
    fn date_range_filter_and_order() {
        let cat = catalogue(500);
        let mut s = Search::aoi(Envelope::new(0.0, 0.0, 10.0, 10.0));
        s.from = Some(Date::new(2017, 6, 1).unwrap());
        s.to = Some(Date::new(2017, 6, 30).unwrap());
        let hits = cat.search(&s).unwrap();
        assert!(!hits.is_empty());
        for p in &hits {
            let (m, _) = p.sensing_date().month_day();
            assert_eq!(m, 6);
        }
        // Sorted by date.
        for w in hits.windows(2) {
            assert!(w[0].sensing_date() <= w[1].sensing_date());
        }
    }

    #[test]
    fn bad_searches_rejected() {
        let cat = catalogue(10);
        assert!(cat.search(&Search::aoi(Envelope::empty())).is_err());
        let mut s = Search::aoi(Envelope::new(0.0, 0.0, 1.0, 1.0));
        s.from = Some(Date::new(2017, 7, 1).unwrap());
        s.to = Some(Date::new(2017, 6, 1).unwrap());
        assert!(cat.search(&s).is_err());
    }

    #[test]
    fn incremental_insert() {
        let mut cat = catalogue(100);
        let before = cat.len();
        let mut g = ProductGenerator::new(Envelope::new(0.0, 0.0, 10.0, 10.0), 2017, 99);
        cat.insert(g.next_product());
        assert_eq!(cat.len(), before + 1);
        assert!(cat.total_bytes() > 0);
    }
}
