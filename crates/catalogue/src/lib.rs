#![warn(missing_docs)]
//! The EO data catalogue — classic and semantic (Challenge C4).
//!
//! "Currently, Copernicus data catalogues allow a user to access data by
//! drawing an area of interest on the map and specifying search
//! parameters such as sensing date, mission, satellite platform, product
//! type" — that is [`classic`]. The challenge is the *semantic* catalogue
//! ([`semantic`]) that "will expose the knowledge hidden in Sentinel
//! satellite images" and answer questions like *"How many icebergs were
//! embedded in the Norske Øer Ice Barrier at its maximum extent in
//! 2017?"* — implemented here end-to-end over the `ee-rdf` engine,
//! including that exact query ([`SemanticCatalogue::iceberg_question`]).
//!
//! [`product`] holds the product-metadata model and a synthetic metadata
//! generator used to scale the E9 experiments ("trillions of metadata
//! records", scaled to this machine).

pub mod bm25;
pub mod classic;
pub mod product;
pub mod semantic;

pub use bm25::{Bm25Index, ScanSearcher};
pub use classic::ClassicCatalogue;
pub use product::{Product, ProductGenerator};
pub use semantic::SemanticCatalogue;

/// Errors from the catalogue layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogueError {
    /// Query failure bubbled up from the RDF engine.
    Query(String),
    /// Malformed search parameters.
    BadSearch(String),
}

impl From<ee_rdf::RdfError> for CatalogueError {
    fn from(e: ee_rdf::RdfError) -> Self {
        CatalogueError::Query(e.to_string())
    }
}

impl std::fmt::Display for CatalogueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogueError::Query(m) => write!(f, "catalogue query error: {m}"),
            CatalogueError::BadSearch(m) => write!(f, "bad search: {m}"),
        }
    }
}

impl std::error::Error for CatalogueError {}
