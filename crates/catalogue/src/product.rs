//! Product metadata and the synthetic metadata generator.

use ee_geo::{Envelope, Point, Polygon};
use ee_util::json::Json;
use ee_util::timeline::Date;
use ee_util::Rng;

/// A Copernicus-like product record.
#[derive(Debug, Clone, PartialEq)]
pub struct Product {
    /// Product identifier, e.g. `S2A_MSIL1C_2017182_T34SGH_0042`.
    pub id: String,
    /// Mission (`S1` / `S2` / `S3`).
    pub mission: String,
    /// Platform unit (`S2A`, `S2B`, ...).
    pub platform: String,
    /// Product type (`GRD`, `SLC`, `MSIL1C`, `MSIL2A`, `OLCI`).
    pub product_type: String,
    /// Sensing date.
    pub sensing_year: i32,
    /// Sensing day-of-year.
    pub sensing_doy: u16,
    /// Scene footprint corners (closed ring, lon/lat degrees).
    pub footprint: Vec<(f64, f64)>,
    /// Cloud cover percent (optical products; 0 for SAR).
    pub cloud_cover: f64,
    /// Payload size in bytes.
    pub size_bytes: u64,
}

impl Product {
    /// Sensing date as a [`Date`].
    pub fn sensing_date(&self) -> Date {
        Date::from_ordinal(self.sensing_year, self.sensing_doy).expect("valid at construction")
    }

    /// Footprint as a polygon.
    pub fn polygon(&self) -> Polygon {
        Polygon::from_exterior(
            self.footprint
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .expect("footprint validated at construction")
    }

    /// Footprint bounding box.
    pub fn envelope(&self) -> Envelope {
        self.polygon().envelope()
    }

    /// The synthesised "title + description" that the ranked (BM25)
    /// catalogue search indexes: the product id, mission/platform/type
    /// vocabulary, instrument and processing-level words, month and
    /// season, a cloud-cover bucket for optical products, and a coarse 1°
    /// grid cell from the footprint anchor. A pure function of the
    /// metadata, so index builds are reproducible and queries like
    /// "sentinel-2 surface reflectance july clear" have real signal.
    pub fn search_text(&self) -> String {
        const MONTHS: [&str; 12] = [
            "january", "february", "march", "april", "may", "june", "july", "august",
            "september", "october", "november", "december",
        ];
        let (month, _) = self.sensing_date().month_day();
        let season = match month {
            12 | 1 | 2 => "winter",
            3..=5 => "spring",
            6..=8 => "summer",
            _ => "autumn",
        };
        let (family, instrument) = match self.mission.as_str() {
            "S1" => ("sentinel-1", "radar sar c-band"),
            "S2" => ("sentinel-2", "optical multispectral msi"),
            _ => ("sentinel-3", "ocean colour olci"),
        };
        let level = match self.product_type.as_str() {
            "GRD" => "ground range detected",
            "SLC" => "single look complex",
            "MSIL1C" => "level-1c top-of-atmosphere",
            "MSIL2A" => "level-2a surface reflectance",
            _ => "full resolution",
        };
        let cloud = if self.mission == "S1" {
            "all-weather"
        } else if self.cloud_cover < 10.0 {
            "clear sky"
        } else if self.cloud_cover < 40.0 {
            "scattered clouds"
        } else if self.cloud_cover < 75.0 {
            "cloudy"
        } else {
            "overcast"
        };
        let (ax, ay) = self.footprint.first().copied().unwrap_or((0.0, 0.0));
        format!(
            "{} {family} {} {} {instrument} {level} {} {season} {cloud} cell e{} n{}",
            self.id,
            self.platform,
            self.product_type,
            MONTHS[(month as usize - 1).min(11)],
            ax.floor() as i64,
            ay.floor() as i64,
        )
    }

    /// Serialise to a JSON value ([`ee_util::json`]).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("mission", Json::Str(self.mission.clone())),
            ("platform", Json::Str(self.platform.clone())),
            ("product_type", Json::Str(self.product_type.clone())),
            ("sensing_year", Json::Num(self.sensing_year as f64)),
            ("sensing_doy", Json::Num(self.sensing_doy as f64)),
            (
                "footprint",
                Json::Arr(
                    self.footprint
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                        .collect(),
                ),
            ),
            ("cloud_cover", Json::Num(self.cloud_cover)),
            ("size_bytes", Json::Num(self.size_bytes as f64)),
        ])
    }

    /// Parse a product back from the JSON shape produced by [`Self::to_json`].
    pub fn from_json(v: &Json) -> Result<Product, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
        };
        let footprint = v
            .get("footprint")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing or non-array field `footprint`".to_string())?
            .iter()
            .map(|pt| {
                let pair = pt.as_arr().filter(|p| p.len() == 2);
                match pair {
                    Some(p) => match (p[0].as_f64(), p[1].as_f64()) {
                        (Some(x), Some(y)) => Ok((x, y)),
                        _ => Err("non-numeric footprint coordinate".to_string()),
                    },
                    None => Err("footprint entry is not a [x, y] pair".to_string()),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Product {
            id: str_field("id")?,
            mission: str_field("mission")?,
            platform: str_field("platform")?,
            product_type: str_field("product_type")?,
            sensing_year: num_field("sensing_year")? as i32,
            sensing_doy: num_field("sensing_doy")? as u16,
            footprint,
            cloud_cover: num_field("cloud_cover")?,
            size_bytes: num_field("size_bytes")? as u64,
        })
    }
}

/// Deterministic synthetic product-stream generator: tiles along orbit
/// tracks over a configurable region, with realistic mission mix.
pub struct ProductGenerator {
    rng: Rng,
    region: Envelope,
    year: i32,
    counter: u64,
}

impl ProductGenerator {
    /// Products over `region` sensed during `year`.
    pub fn new(region: Envelope, year: i32, seed: u64) -> Self {
        Self {
            rng: Rng::seed_from(seed),
            region,
            year,
            counter: 0,
        }
    }

    /// Generate the next product record.
    pub fn next_product(&mut self) -> Product {
        let rng = &mut self.rng;
        self.counter += 1;
        let (mission, platform, product_type, size, cloud) = match rng.below(10) {
            0..=3 => (
                "S1",
                if rng.chance(0.5) { "S1A" } else { "S1B" },
                if rng.chance(0.7) { "GRD" } else { "SLC" },
                rng.range(800, 4200) as u64 * 1_000_000,
                0.0,
            ),
            4..=8 => (
                "S2",
                if rng.chance(0.5) { "S2A" } else { "S2B" },
                if rng.chance(0.6) { "MSIL1C" } else { "MSIL2A" },
                rng.range(500, 900) as u64 * 1_000_000,
                rng.range_f64(0.0, 100.0),
            ),
            _ => (
                "S3",
                "S3A",
                "OLCI",
                rng.range(300, 700) as u64 * 1_000_000,
                rng.range_f64(0.0, 100.0),
            ),
        };
        let doy = rng.range(1, 366) as u16;
        // A tile footprint ~1° on a side, jittered inside the region.
        let w = self.region.width().min(1.0);
        let h = self.region.height().min(1.0);
        let x0 = rng.range_f64(self.region.min_x, (self.region.max_x - w).max(self.region.min_x + 1e-9));
        let y0 = rng.range_f64(self.region.min_y, (self.region.max_y - h).max(self.region.min_y + 1e-9));
        // Slight parallelogram skew like real orbit tiles.
        let skew = rng.range_f64(-0.08, 0.08);
        let footprint = vec![
            (x0, y0),
            (x0 + w, y0 + skew),
            (x0 + w + skew, y0 + h + skew),
            (x0 + skew, y0 + h),
            (x0, y0),
        ];
        Product {
            id: format!(
                "{platform}_{product_type}_{}{doy:03}_{:06}",
                self.year, self.counter
            ),
            mission: mission.to_string(),
            platform: platform.to_string(),
            product_type: product_type.to_string(),
            sensing_year: self.year,
            sensing_doy: doy,
            footprint,
            cloud_cover: cloud,
            size_bytes: size,
        }
    }

    /// Generate `n` products.
    pub fn take(&mut self, n: usize) -> Vec<Product> {
        (0..n).map(|_| self.next_product()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> ProductGenerator {
        ProductGenerator::new(Envelope::new(20.0, 35.0, 30.0, 42.0), 2017, 7)
    }

    #[test]
    fn products_are_valid() {
        let mut g = generator();
        let batch = g.take(200);
        assert_eq!(batch.len(), 200);
        for p in &batch {
            assert!(p.sensing_date().year() == 2017);
            assert!(!p.polygon().exterior.points.is_empty());
            assert!(p.envelope().intersects(&Envelope::new(19.0, 34.0, 32.0, 44.0)));
            assert!((0.0..=100.0).contains(&p.cloud_cover));
            assert!(p.size_bytes > 0);
            if p.mission == "S1" {
                assert_eq!(p.cloud_cover, 0.0, "SAR has no cloud figure");
            }
        }
        // Unique ids.
        let ids: std::collections::HashSet<&String> = batch.iter().map(|p| &p.id).collect();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn mission_mix_is_realistic() {
        let mut g = generator();
        let batch = g.take(2000);
        let s1 = batch.iter().filter(|p| p.mission == "S1").count();
        let s2 = batch.iter().filter(|p| p.mission == "S2").count();
        let s3 = batch.iter().filter(|p| p.mission == "S3").count();
        assert!(s1 > 500 && s2 > 700 && s3 > 80, "mix {s1}/{s2}/{s3}");
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generator().take(50);
        let b = generator().take(50);
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip() {
        let p = generator().next_product();
        let text = p.to_json().emit();
        let back = Product::from_json(&ee_util::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn json_rejects_malformed_records() {
        assert!(Product::from_json(&ee_util::json::parse("{}").unwrap()).is_err());
        let mut v = generator().next_product().to_json();
        if let ee_util::json::Json::Obj(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "footprint");
        }
        assert!(Product::from_json(&v).is_err());
    }
}
