//! The semantic catalogue: product metadata *and* extracted knowledge as
//! linked data, queryable with GeoSPARQL.
//!
//! This is Challenge C4's deliverable: the catalogue "will expose the
//! knowledge hidden in Sentinel satellite images and related data sets,
//! and will allow a user to ask sophisticated queries such as 'How many
//! icebergs were embedded in the Norske Øer Ice Barrier at its maximum
//! extent in 2017?'". [`SemanticCatalogue::iceberg_question`] answers
//! exactly that question in two SPARQL steps (max-extent observation,
//! then a spatial count restricted to its footprint and date).

use crate::product::Product;
use crate::CatalogueError;
use ee_geo::{algorithms, Geometry, Point, Polygon};
use ee_rdf::exec::{query, Solutions};
use ee_rdf::store::IndexMode;
use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use ee_util::timeline::Date;

/// The catalogue vocabulary namespace.
pub const EO: &str = "http://extremeearth.eu/ont/eo#";

fn eo(local: &str) -> Term {
    Term::iri(format!("{EO}{local}"))
}

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// The semantic catalogue.
pub struct SemanticCatalogue {
    store: TripleStore,
    obs_counter: u64,
}

impl Default for SemanticCatalogue {
    fn default() -> Self {
        Self::new()
    }
}

impl SemanticCatalogue {
    /// An empty semantic catalogue (indexed store).
    pub fn new() -> Self {
        Self {
            store: TripleStore::new(IndexMode::Full),
            obs_counter: 0,
        }
    }

    /// The underlying store (read access for federation experiments).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Number of triples held.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Rebuild the spatial index after a batch ingest.
    pub fn finish_ingest(&mut self) {
        self.store.build_spatial_index();
    }

    /// Insert an arbitrary knowledge triple. Pipelines use this to publish
    /// extracted knowledge that has no dedicated ingest helper.
    pub fn insert_raw(&mut self, s: &Term, p: &Term, o: &Term) {
        self.store.insert(s, p, o);
    }

    /// Ingest one product's metadata.
    pub fn ingest_product(&mut self, p: &Product) {
        let subject = Term::iri(format!("{EO}product/{}", p.id));
        let t = Term::iri(RDF_TYPE);
        self.store.insert(&subject, &t, &eo("Product"));
        self.store
            .insert(&subject, &eo("mission"), &Term::string(&p.mission));
        self.store
            .insert(&subject, &eo("platform"), &Term::string(&p.platform));
        self.store
            .insert(&subject, &eo("productType"), &Term::string(&p.product_type));
        self.store
            .insert(&subject, &eo("sensingDate"), &Term::date(p.sensing_date()));
        self.store
            .insert(&subject, &eo("cloudCover"), &Term::double(p.cloud_cover));
        let geom: Geometry = p.polygon().into();
        self.store
            .insert(&subject, &eo("footprint"), &Term::geometry(&geom));
    }

    /// Record a detected iceberg at a position on a date.
    pub fn add_iceberg_observation(&mut self, berg_id: u32, date: Date, position: Point) {
        let subject = Term::iri(format!("{EO}iceberg/{berg_id}/{}", date.iso()));
        let t = Term::iri(RDF_TYPE);
        self.store.insert(&subject, &t, &eo("Iceberg"));
        self.store
            .insert(&subject, &eo("bergId"), &Term::integer(berg_id as i64));
        self.store
            .insert(&subject, &eo("observedOn"), &Term::date(date));
        let geom: Geometry = position.into();
        self.store
            .insert(&subject, &eo("position"), &Term::geometry(&geom));
    }

    /// Record a named ice feature's extent observation (e.g. the Norske
    /// Øer Ice Barrier on a date). Its area is precomputed and stored so
    /// "maximum extent" is an ORDER BY away.
    pub fn add_feature_extent(&mut self, feature: &str, date: Date, extent: &Polygon) {
        let f = Term::iri(format!("{EO}feature/{feature}"));
        let t = Term::iri(RDF_TYPE);
        self.store.insert(&f, &t, &eo("IceFeature"));
        self.obs_counter += 1;
        let obs = Term::iri(format!("{EO}obs/{}", self.obs_counter));
        self.store.insert(&f, &eo("observation"), &obs);
        self.store.insert(&obs, &eo("date"), &Term::date(date));
        let geom: Geometry = extent.clone().into();
        self.store.insert(&obs, &eo("extent"), &Term::geometry(&geom));
        self.store.insert(
            &obs,
            &eo("extentArea"),
            &Term::double(algorithms::polygon_area(extent)),
        );
    }

    /// Run any SPARQL query against the catalogue.
    pub fn query(&self, sparql: &str) -> Result<Solutions, CatalogueError> {
        Ok(query(&self.store, sparql)?)
    }

    /// The paper's marquee question: how many icebergs were embedded in
    /// `feature` at its maximum extent in `year`? Two steps: find the
    /// max-area extent observation of the year, then count the icebergs
    /// observed on that date whose position lies within that extent.
    pub fn iceberg_question(
        &self,
        feature: &str,
        year: i32,
    ) -> Result<(usize, Date), CatalogueError> {
        let q1 = format!(
            "PREFIX eo: <{EO}> \
             SELECT ?w ?d ?a WHERE {{ \
               <{EO}feature/{feature}> eo:observation ?o . \
               ?o eo:extent ?w ; eo:date ?d ; eo:extentArea ?a . \
               FILTER(?d >= \"{year}-01-01\"^^xsd:date && ?d <= \"{year}-12-31\"^^xsd:date) \
             }} ORDER BY DESC(?a) LIMIT 1"
        );
        let sol = self.query(&q1)?;
        let row = sol
            .rows
            .first()
            .ok_or_else(|| CatalogueError::Query(format!("no {year} observations of {feature}")))?;
        let (Some(Term::Literal { lexical: wkt, .. }), Some(Term::Literal { lexical: date, .. })) =
            (&row[0], &row[1])
        else {
            return Err(CatalogueError::Query("malformed observation".into()));
        };
        let max_date = {
            let mut parts = date.split('-');
            let y: i32 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(year);
            let m: u32 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            let d: u32 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            Date::new(y, m, d).ok_or_else(|| CatalogueError::Query("bad date".into()))?
        };
        let q2 = format!(
            "PREFIX eo: <{EO}> \
             SELECT (COUNT(?b) AS ?n) WHERE {{ \
               ?b a eo:Iceberg ; eo:observedOn \"{date}\"^^xsd:date ; eo:position ?p . \
               FILTER(geof:sfWithin(?p, \"{wkt}\"^^geo:wktLiteral)) \
             }}"
        );
        let sol = self.query(&q2)?;
        let count = match sol.scalar() {
            Some(Term::Literal { lexical, .. }) => lexical.parse::<usize>().unwrap_or(0),
            _ => 0,
        };
        Ok((count, max_date))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::ProductGenerator;
    use ee_geo::Envelope;

    fn d(m: u32, day: u32) -> Date {
        Date::new(2017, m, day).unwrap()
    }

    fn barrier(area_scale: f64) -> Polygon {
        Polygon::rectangle(0.0, 0.0, 10.0 * area_scale, 10.0)
    }

    #[test]
    fn product_metadata_is_queryable() {
        let mut cat = SemanticCatalogue::new();
        let mut g = ProductGenerator::new(Envelope::new(0.0, 0.0, 5.0, 5.0), 2017, 5);
        for p in g.take(50) {
            cat.ingest_product(&p);
        }
        cat.finish_ingest();
        assert!(cat.len() >= 50 * 7);
        let sol = cat
            .query(&format!(
                "PREFIX eo: <{EO}> SELECT (COUNT(?p) AS ?n) WHERE {{ ?p a eo:Product }}"
            ))
            .unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(50)));
        // Spatial + attribute search in one query — beyond the classic API.
        let sol = cat
            .query(&format!(
                "PREFIX eo: <{EO}> SELECT ?p WHERE {{ \
                 ?p a eo:Product ; eo:mission \"S2\" ; eo:cloudCover ?c ; eo:footprint ?f . \
                 FILTER(?c < 30 && geof:sfIntersects(?f, \"POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))\"^^geo:wktLiteral)) }}"
            ))
            .unwrap();
        for _ in &sol.rows {
            // existence is enough; exact count depends on the seed
        }
        assert!(sol.len() < 50);
    }

    #[test]
    fn iceberg_question_end_to_end() {
        let mut cat = SemanticCatalogue::new();
        // Barrier observed three times; maximum extent in July.
        cat.add_feature_extent("NorskeOerIceBarrier", d(2, 1), &barrier(0.5));
        cat.add_feature_extent("NorskeOerIceBarrier", d(7, 1), &barrier(1.0));
        cat.add_feature_extent("NorskeOerIceBarrier", d(11, 1), &barrier(0.7));
        // Icebergs on the max-extent date: 3 inside, 1 outside.
        cat.add_iceberg_observation(1, d(7, 1), Point::new(1.0, 1.0));
        cat.add_iceberg_observation(2, d(7, 1), Point::new(5.0, 5.0));
        cat.add_iceberg_observation(3, d(7, 1), Point::new(9.0, 9.0));
        cat.add_iceberg_observation(4, d(7, 1), Point::new(50.0, 5.0));
        // Icebergs on other dates must not count.
        cat.add_iceberg_observation(5, d(2, 1), Point::new(1.0, 1.0));
        cat.finish_ingest();
        let (count, when) = cat.iceberg_question("NorskeOerIceBarrier", 2017).unwrap();
        assert_eq!(when, d(7, 1), "July was the maximum extent");
        assert_eq!(count, 3, "three icebergs embedded at maximum extent");
    }

    #[test]
    fn iceberg_question_respects_year() {
        let mut cat = SemanticCatalogue::new();
        cat.add_feature_extent("Barrier", d(7, 1), &barrier(1.0));
        cat.add_feature_extent(
            "Barrier",
            Date::new(2016, 7, 1).unwrap(),
            &barrier(2.0), // bigger, but wrong year
        );
        cat.add_iceberg_observation(1, d(7, 1), Point::new(1.0, 1.0));
        cat.finish_ingest();
        let (count, when) = cat.iceberg_question("Barrier", 2017).unwrap();
        assert_eq!(when.year(), 2017);
        assert_eq!(count, 1);
        // A year with no observations errors cleanly.
        assert!(cat.iceberg_question("Barrier", 2019).is_err());
        assert!(cat.iceberg_question("NoSuchFeature", 2017).is_err());
    }

    #[test]
    fn scaling_ingest_smoke() {
        let mut cat = SemanticCatalogue::new();
        let mut g = ProductGenerator::new(Envelope::new(0.0, 0.0, 20.0, 20.0), 2017, 11);
        for p in g.take(1000) {
            cat.ingest_product(&p);
        }
        cat.finish_ingest();
        let sol = cat
            .query(&format!(
                "PREFIX eo: <{EO}> SELECT (COUNT(?p) AS ?n) WHERE {{ \
                 ?p a eo:Product ; eo:footprint ?f . \
                 FILTER(geof:sfIntersects(?f, \"POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))\"^^geo:wktLiteral)) }}"
            ))
            .unwrap();
        match sol.scalar() {
            Some(Term::Literal { lexical, .. }) => {
                let n: usize = lexical.parse().unwrap();
                assert!(n > 0 && n < 1000, "spatial selection pruned: {n}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
