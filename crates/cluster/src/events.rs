//! The deterministic discrete-event queue.
//!
//! [`EventQueue`] is a min-heap keyed on `(SimTime, sequence)`. The
//! sequence number makes simultaneous events pop in scheduling order, so
//! every simulation in the workspace is deterministic — the property all
//! experiment reproducibility rests on.
//!
//! The queue is generic in the event payload; simulators drive it with a
//! `while let Some((t, ev)) = q.pop()` loop and match on their own event
//! enum. That keeps ownership simple (no boxed closures capturing the
//! world) and makes simulators unit-testable event by event.

use ee_util::timeline::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A virtual-time event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now.advance(delay), event);
    }

    /// Schedule `event` at an absolute time. Panics if `at` is in the
    /// simulator's past — causality violations are always bugs.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at.as_secs(),
            self.now.as_secs()
        );
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pop the next event, advancing virtual time to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_secs(3.0), "c");
        q.schedule(SimDuration::from_secs(1.0), "a");
        q.schedule(SimDuration::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimDuration::from_secs(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5.0));
        assert_eq!(q.now(), t);
        assert!(q.pop().is_none());
    }

    #[test]
    fn relative_scheduling_compounds() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_secs(1.0), 1);
        let (_, _) = q.pop().unwrap();
        // now = 1s; +2s = 3s absolute.
        q.schedule(SimDuration::from_secs(2.0), 2);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimDuration::from_secs(2.0), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two identical runs must produce identical traces.
        let run = || {
            let mut q = EventQueue::new();
            let mut trace = Vec::new();
            q.schedule(SimDuration::from_secs(1.0), 0u32);
            while let Some((t, e)) = q.pop() {
                trace.push((t.as_nanos(), e));
                if e < 20 {
                    q.schedule(SimDuration::from_secs(0.5), e + 2);
                    q.schedule(SimDuration::from_secs(0.5), e + 1);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
