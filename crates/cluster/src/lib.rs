#![warn(missing_docs)]
//! A discrete-event simulated compute cluster.
//!
//! Challenge C5 runs the ExtremeEarth stack "in the elastic cloud
//! environment [...] with significant storage, compute and GPU resources".
//! That environment is not available here, so this crate simulates it:
//!
//! * [`topology`] — racks of nodes with CPU/GPU slots, per-device compute
//!   rates and NIC bandwidths;
//! * [`events`] — a deterministic discrete-event queue in virtual time
//!   ([`ee_util::timeline::SimTime`]);
//! * [`network`] — a store-and-forward NIC model: transfers serialise at
//!   the sender's egress and the receiver's ingress, which reproduces the
//!   central-bottleneck behaviour of parameter servers and the
//!   bandwidth-optimality of ring allreduce without a full packet-level
//!   simulation;
//! * [`scheduler`] — a YARN-like FIFO container scheduler, used by the
//!   platform layer for job placement and by the hyperparameter-search
//!   experiments.
//!
//! The deep-learning crate (`ee-dl`) drives this simulator with *real*
//! gradient payload sizes, so the E4 scaling curves combine genuine
//! arithmetic with simulated time.

pub mod events;
pub mod network;
pub mod scheduler;
pub mod topology;

pub use events::EventQueue;
pub use network::Network;
pub use topology::{ClusterSpec, NodeId, NodeSpec};

/// Errors from the cluster simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Referenced a node that does not exist.
    UnknownNode(usize),
    /// A job requested more resources than the whole cluster owns.
    Unsatisfiable {
        /// What was asked.
        requested: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ClusterError::Unsatisfiable { requested } => {
                write!(f, "request can never be satisfied: {requested}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}
