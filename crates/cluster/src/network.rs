//! Store-and-forward NIC network model.
//!
//! Each node has one egress and one ingress NIC, each a FIFO resource:
//! a transfer occupies the sender's egress and then the receiver's ingress
//! for `bytes / path_bandwidth` seconds, after a propagation `latency`.
//! Concurrent transfers between *different* node pairs proceed in parallel;
//! transfers sharing a NIC serialise.
//!
//! This is deliberately simpler than processor-sharing flow models but
//! reproduces the two behaviours the experiments need:
//!
//! * a parameter server's ingress NIC serialises the N workers' gradient
//!   pushes → aggregation time grows linearly in N (the PS bottleneck);
//! * ring allreduce's 2(N−1) steps each move `G/N` bytes between disjoint
//!   neighbour pairs in parallel → near-constant time in N.

use crate::topology::{ClusterSpec, NodeId};
use ee_util::timeline::{SimDuration, SimTime};

/// The network state: per-NIC next-free times.
#[derive(Debug, Clone)]
pub struct Network {
    spec: ClusterSpec,
    egress_free: Vec<SimTime>,
    ingress_free: Vec<SimTime>,
    bytes_moved: u64,
    transfers: u64,
}

/// Completion record of one simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// When the payload starts leaving the sender.
    pub start: SimTime,
    /// When the last byte arrives at the receiver.
    pub end: SimTime,
}

impl Transfer {
    /// End-to-end duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

impl Network {
    /// A quiet network over a cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.num_nodes();
        Self {
            spec,
            egress_free: vec![SimTime::ZERO; n],
            ingress_free: vec![SimTime::ZERO; n],
            bytes_moved: 0,
            transfers: 0,
        }
    }

    /// The cluster this network spans.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Total payload bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total transfers simulated.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Simulate sending `bytes` from `src` to `dst`, requested at `now`.
    /// Returns when the transfer starts (after queueing at the NICs) and
    /// when the last byte lands.
    pub fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> Transfer {
        assert!(src.0 < self.spec.num_nodes() && dst.0 < self.spec.num_nodes());
        let bw = self.spec.bandwidth(src, dst);
        let latency = SimDuration::from_secs(self.spec.latency(src, dst));
        let wire = SimDuration::from_secs(bytes as f64 / bw);
        // Wait for both NICs to be free, then hold both for the wire time.
        let start = now
            .max(self.egress_free[src.0])
            .max(self.ingress_free[dst.0]);
        let egress_done = start.advance(wire);
        let end = egress_done.advance(latency);
        self.egress_free[src.0] = egress_done;
        self.ingress_free[dst.0] = egress_done;
        self.bytes_moved += bytes;
        self.transfers += 1;
        Transfer { start, end }
    }

    /// The duration `bytes` would take on an idle path — the analytic
    /// lower bound, useful for tests and back-of-envelope checks.
    pub fn ideal_duration(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        let bw = self.spec.bandwidth(src, dst);
        SimDuration::from_secs(bytes as f64 / bw + self.spec.latency(src, dst))
    }

    /// Reset NIC availability (a new independent experiment phase).
    pub fn reset(&mut self) {
        self.egress_free.fill(SimTime::ZERO);
        self.ingress_free.fill(SimTime::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(ClusterSpec::flat(n))
    }

    #[test]
    fn single_transfer_matches_ideal() {
        let mut n = net(2);
        let t = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_250_000_000);
        // 1.25 GB at 1.25 GB/s = 1 s + 50 us latency.
        assert!((t.duration().as_secs() - 1.00005).abs() < 1e-9);
        assert_eq!(
            t.duration(),
            n.ideal_duration(NodeId(0), NodeId(1), 1_250_000_000)
        );
    }

    #[test]
    fn transfers_to_same_destination_serialise() {
        let mut n = net(3);
        let bytes = 1_250_000_000; // 1 s of wire time each
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(2), bytes);
        let t2 = n.send(SimTime::ZERO, NodeId(1), NodeId(2), bytes);
        // Second must queue behind the first at node 2's ingress.
        assert!(t2.start >= t1.start.advance(SimDuration::from_secs(1.0)));
        assert!(t2.end.as_secs() >= 2.0);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut n = net(4);
        let bytes = 1_250_000_000;
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let t2 = n.send(SimTime::ZERO, NodeId(2), NodeId(3), bytes);
        assert_eq!(t1.start, t2.start, "no shared NIC, no queueing");
        assert_eq!(t1.end, t2.end);
    }

    #[test]
    fn sender_egress_serialises_fanout() {
        let mut n = net(3);
        let bytes = 625_000_000; // 0.5 s each
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let t2 = n.send(SimTime::ZERO, NodeId(0), NodeId(2), bytes);
        assert!((t1.duration().as_secs() - 0.50005).abs() < 1e-9);
        assert!(t2.start >= SimTime::from_secs(0.5));
    }

    #[test]
    fn ps_ingress_is_linear_in_workers() {
        // The paper-relevant shape: N workers pushing to one server.
        let mut durations = Vec::new();
        for workers in [2usize, 4, 8] {
            let mut n = net(workers + 1);
            let g = 100_000_000u64; // 100 MB gradient
            let mut last_end = SimTime::ZERO;
            for w in 1..=workers {
                let t = n.send(SimTime::ZERO, NodeId(w), NodeId(0), g);
                last_end = last_end.max(t.end);
            }
            durations.push(last_end.as_secs());
        }
        // Doubling workers roughly doubles total ingest time.
        assert!(durations[1] / durations[0] > 1.8);
        assert!(durations[2] / durations[1] > 1.8);
    }

    #[test]
    fn ring_step_is_constant_in_workers() {
        // One ring step: node i sends G/N to node (i+1) % N, all pairs disjoint.
        for workers in [4usize, 8, 16] {
            let mut n = net(workers);
            let g = 100_000_000u64;
            let chunk = g / workers as u64;
            let mut max_end = SimTime::ZERO;
            for w in 0..workers {
                let t = n.send(SimTime::ZERO, NodeId(w), NodeId((w + 1) % workers), chunk);
                max_end = max_end.max(t.end);
            }
            // Per-step time shrinks as 1/N: total over 2(N-1) steps stays ~flat.
            let expected = chunk as f64 / 1.25e9 + 50e-6;
            assert!((max_end.as_secs() - expected).abs() < 1e-9, "N={workers}");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(2);
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        n.send(SimTime::ZERO, NodeId(1), NodeId(0), 200);
        assert_eq!(n.bytes_moved(), 300);
        assert_eq!(n.transfers(), 2);
        n.reset();
        let t = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(t.start, SimTime::ZERO, "reset clears NIC queues");
    }

    #[test]
    fn loopback_is_fast() {
        let mut n = net(2);
        let t = n.send(SimTime::ZERO, NodeId(0), NodeId(0), 1_250_000_000);
        assert!(t.duration().as_secs() < 0.02, "loopback ~100x NIC speed");
    }
}
