//! A YARN-like FIFO container scheduler over the simulated cluster.
//!
//! The platform layer (Hopsworks analogue) submits jobs that request a
//! number of containers, each with CPU/GPU demands and a runtime; the
//! scheduler places containers on nodes with free slots, queues what does
//! not fit, and releases resources as containers finish in virtual time.
//! Used by the hyperparameter-search experiments and by the NRT latency
//! budget of E12 ("processing resources will need to be on demand and
//! scalable").

use crate::events::EventQueue;
use crate::topology::{ClusterSpec, NodeId};
use crate::ClusterError;
use ee_util::timeline::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Resource demand of one container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerRequest {
    /// CPU slots needed.
    pub cpus: u32,
    /// GPU slots needed.
    pub gpus: u32,
    /// How long the container runs once started.
    pub runtime: SimDuration,
}

/// A job: a gang of identical containers. Gang scheduling is all-or-nothing
/// (as distributed training requires all workers up together).
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen identifier.
    pub name: String,
    /// Number of containers.
    pub containers: usize,
    /// Demand of each container.
    pub each: ContainerRequest,
    /// Require all containers to start simultaneously.
    pub gang: bool,
}

/// Where and when a finished job ran.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Virtual time the job was submitted.
    pub submitted: SimTime,
    /// Virtual time all containers had started.
    pub started: SimTime,
    /// Virtual time the last container finished.
    pub finished: SimTime,
    /// Nodes the containers were placed on (one entry per container).
    pub placements: Vec<NodeId>,
}

impl JobReport {
    /// Queueing delay.
    pub fn wait(&self) -> SimDuration {
        self.started.since(self.submitted)
    }

    /// End-to-end time.
    pub fn turnaround(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeFree {
    cpus: u32,
    gpus: u32,
}

enum Event {
    Submit(usize),
    Finish { job: usize, node: NodeId, cpus: u32, gpus: u32 },
}

/// The scheduler: submit jobs, then [`Scheduler::run`] to completion.
pub struct Scheduler {
    spec: ClusterSpec,
    free: Vec<NodeFree>,
    queue: EventQueue<Event>,
    jobs: Vec<JobState>,
    waiting: VecDeque<usize>,
}

struct JobState {
    request: JobRequest,
    submitted: SimTime,
    started: Option<SimTime>,
    remaining: usize,
    placements: Vec<NodeId>,
    finished: Option<SimTime>,
}

impl Scheduler {
    /// A scheduler over an idle cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        let free = spec
            .nodes()
            .map(|_| NodeFree {
                cpus: spec.node.cpu_slots,
                gpus: spec.node.gpu_slots,
            })
            .collect();
        Self {
            spec,
            free,
            queue: EventQueue::new(),
            jobs: Vec::new(),
            waiting: VecDeque::new(),
        }
    }

    /// Submit a job at virtual time `at`. Fails fast if the job could never
    /// fit even on an idle cluster.
    pub fn submit(&mut self, at: SimTime, request: JobRequest) -> Result<usize, ClusterError> {
        let node = &self.spec.node;
        if request.each.cpus > node.cpu_slots || request.each.gpus > node.gpu_slots {
            return Err(ClusterError::Unsatisfiable {
                requested: format!(
                    "container wants {}cpu/{}gpu, node has {}cpu/{}gpu",
                    request.each.cpus, request.each.gpus, node.cpu_slots, node.gpu_slots
                ),
            });
        }
        let cap = self.max_containers_idle(&request.each);
        if request.gang && request.containers > cap {
            return Err(ClusterError::Unsatisfiable {
                requested: format!(
                    "gang of {} containers, idle cluster fits {cap}",
                    request.containers
                ),
            });
        }
        let id = self.jobs.len();
        self.jobs.push(JobState {
            request,
            submitted: at,
            started: None,
            remaining: 0,
            placements: Vec::new(),
            finished: None,
        });
        self.queue.schedule_at(at, Event::Submit(id));
        Ok(id)
    }

    fn max_containers_idle(&self, each: &ContainerRequest) -> usize {
        let per_node_cpu = self
            .spec
            .node
            .cpu_slots
            .checked_div(each.cpus)
            .map(|n| n as usize)
            .unwrap_or(usize::MAX);
        let per_node_gpu = self
            .spec
            .node
            .gpu_slots
            .checked_div(each.gpus)
            .map(|n| n as usize)
            .unwrap_or(usize::MAX);
        per_node_cpu.min(per_node_gpu).saturating_mul(self.spec.num_nodes())
    }

    /// Try to place a waiting job; returns placements if it fits now.
    fn try_place(&mut self, job: usize) -> Option<Vec<NodeId>> {
        let req = &self.jobs[job].request;
        let mut free = self.free.clone();
        let mut placements = Vec::with_capacity(req.containers);
        for _ in 0..req.containers {
            // First-fit over nodes; spread is achieved by decrementing.
            let slot = free.iter().enumerate().find(|(_, f)| {
                f.cpus >= req.each.cpus && f.gpus >= req.each.gpus
            });
            match slot {
                Some((i, _)) => {
                    free[i].cpus -= req.each.cpus;
                    free[i].gpus -= req.each.gpus;
                    placements.push(NodeId(i));
                }
                None => {
                    if req.gang {
                        return None; // all-or-nothing
                    }
                    break;
                }
            }
        }
        if placements.is_empty() {
            return None;
        }
        if self.jobs[job].request.gang && placements.len() < self.jobs[job].request.containers {
            return None;
        }
        self.free = free;
        Some(placements)
    }

    fn start_containers(&mut self, job: usize, placements: Vec<NodeId>, now: SimTime) {
        let runtime = self.jobs[job].request.each.runtime;
        let (cpus, gpus) = (self.jobs[job].request.each.cpus, self.jobs[job].request.each.gpus);
        for &node in &placements {
            self.queue.schedule_at(
                now.advance(runtime),
                Event::Finish {
                    job,
                    node,
                    cpus,
                    gpus,
                },
            );
        }
        let st = &mut self.jobs[job];
        st.remaining += placements.len();
        st.placements.extend(placements);
        if st.placements.len() == st.request.containers {
            st.started.get_or_insert(now);
        }
    }

    /// Drain the FIFO queue as far as resources allow.
    fn pump(&mut self, now: SimTime) {
        while let Some(&job) = self.waiting.front() {
            match self.try_place(job) {
                Some(p) => {
                    self.waiting.pop_front();
                    let st = &self.jobs[job];
                    let missing = st.request.containers - st.placements.len();
                    let p = p.into_iter().take(missing).collect();
                    self.start_containers(job, p, now);
                }
                None => break, // strict FIFO: head-of-line blocks
            }
        }
    }

    /// Run the simulation until all submitted jobs finish; returns reports
    /// in job-id order.
    pub fn run(&mut self) -> Vec<JobReport> {
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Event::Submit(job) => {
                    self.waiting.push_back(job);
                    self.pump(now);
                }
                Event::Finish {
                    job,
                    node,
                    cpus,
                    gpus,
                } => {
                    self.free[node.0].cpus += cpus;
                    self.free[node.0].gpus += gpus;
                    let st = &mut self.jobs[job];
                    st.remaining -= 1;
                    if st.remaining == 0 && st.placements.len() == st.request.containers {
                        st.finished = Some(now);
                    }
                    self.pump(now);
                }
            }
        }
        self.jobs
            .iter()
            .map(|j| JobReport {
                name: j.request.name.clone(),
                submitted: j.submitted,
                started: j.started.expect("job started before queue drained"),
                finished: j.finished.expect("job finished before queue drained"),
                placements: j.placements.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str, containers: usize, cpus: u32, gpus: u32, secs: f64) -> JobRequest {
        JobRequest {
            name: name.into(),
            containers,
            each: ContainerRequest {
                cpus,
                gpus,
                runtime: SimDuration::from_secs(secs),
            },
            gang: true,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut s = Scheduler::new(ClusterSpec::flat(2));
        s.submit(SimTime::ZERO, req("j", 2, 8, 1, 10.0)).unwrap();
        let r = s.run();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].wait(), SimDuration::ZERO);
        assert_eq!(r[0].turnaround(), SimDuration::from_secs(10.0));
        assert_eq!(r[0].placements.len(), 2);
    }

    #[test]
    fn oversized_container_rejected() {
        let mut s = Scheduler::new(ClusterSpec::flat(2));
        assert!(matches!(
            s.submit(SimTime::ZERO, req("big", 1, 999, 0, 1.0)),
            Err(ClusterError::Unsatisfiable { .. })
        ));
    }

    #[test]
    fn oversized_gang_rejected() {
        let mut s = Scheduler::new(ClusterSpec::flat(2));
        // 2 nodes x 1 GPU = 2 GPU containers max; a gang of 3 can never run.
        assert!(s.submit(SimTime::ZERO, req("gang", 3, 1, 1, 1.0)).is_err());
    }

    #[test]
    fn fifo_queueing_when_full() {
        let mut s = Scheduler::new(ClusterSpec::flat(1));
        // Node has 1 GPU; two 1-GPU jobs must serialise.
        s.submit(SimTime::ZERO, req("a", 1, 1, 1, 5.0)).unwrap();
        s.submit(SimTime::ZERO, req("b", 1, 1, 1, 5.0)).unwrap();
        let r = s.run();
        assert_eq!(r[0].wait(), SimDuration::ZERO);
        assert_eq!(r[1].wait(), SimDuration::from_secs(5.0));
        assert_eq!(r[1].finished, SimTime::from_secs(10.0));
    }

    #[test]
    fn parallel_jobs_share_cluster() {
        let mut s = Scheduler::new(ClusterSpec::flat(4));
        s.submit(SimTime::ZERO, req("a", 2, 4, 1, 3.0)).unwrap();
        s.submit(SimTime::ZERO, req("b", 2, 4, 1, 3.0)).unwrap();
        let r = s.run();
        assert_eq!(r[0].wait(), SimDuration::ZERO);
        assert_eq!(r[1].wait(), SimDuration::ZERO, "4 nodes fit both gangs");
    }

    #[test]
    fn cpu_only_jobs_pack_within_node() {
        let mut s = Scheduler::new(ClusterSpec::flat(1));
        // 16 cpu slots: four 4-cpu containers fit at once.
        s.submit(SimTime::ZERO, req("cpu", 4, 4, 0, 2.0)).unwrap();
        let r = s.run();
        assert_eq!(r[0].wait(), SimDuration::ZERO);
        assert!(r[0].placements.iter().all(|n| n.0 == 0));
    }

    #[test]
    fn staggered_submissions() {
        let mut s = Scheduler::new(ClusterSpec::flat(1));
        s.submit(SimTime::ZERO, req("a", 1, 1, 1, 4.0)).unwrap();
        s.submit(SimTime::from_secs(1.0), req("b", 1, 1, 1, 4.0)).unwrap();
        let r = s.run();
        assert_eq!(r[1].started, SimTime::from_secs(4.0));
        assert_eq!(r[1].wait(), SimDuration::from_secs(3.0));
    }

    #[test]
    fn gang_job_waits_for_full_allocation() {
        let mut s = Scheduler::new(ClusterSpec::flat(2));
        // Occupy one GPU; the 2-GPU gang must wait for it.
        s.submit(SimTime::ZERO, req("hold", 1, 1, 1, 6.0)).unwrap();
        s.submit(SimTime::ZERO, req("gang", 2, 1, 1, 1.0)).unwrap();
        let r = s.run();
        assert_eq!(r[1].started, SimTime::from_secs(6.0), "gang is all-or-nothing");
    }
}
