//! Cluster topology: racks of nodes with compute devices and NICs.

/// Identifier of a node within a [`ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Hardware description of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// CPU cores available for containers.
    pub cpu_slots: u32,
    /// GPUs available for containers.
    pub gpu_slots: u32,
    /// Single-core CPU throughput in FLOP/s.
    pub cpu_flops: f64,
    /// Per-GPU throughput in FLOP/s.
    pub gpu_flops: f64,
    /// NIC bandwidth in bytes/s (full duplex: this rate each way).
    pub nic_bandwidth: f64,
    /// Memory in bytes.
    pub memory: u64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        // A mid-2018 cloud GPU node: 16 cores, 1 V100-ish GPU, 10 GbE.
        Self {
            cpu_slots: 16,
            gpu_slots: 1,
            cpu_flops: 5.0e10,
            gpu_flops: 1.4e13,
            nic_bandwidth: 1.25e9,
            memory: 128 * (1 << 30),
        }
    }
}

/// A whole cluster: `racks x nodes_per_rack` identical nodes.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Node hardware (homogeneous; heterogeneity is modelled by the
    /// straggler jitter in the training simulator, not the topology).
    pub node: NodeSpec,
    /// Number of racks.
    pub racks: usize,
    /// Nodes in each rack.
    pub nodes_per_rack: usize,
    /// One-way latency between nodes in the same rack, seconds.
    pub intra_rack_latency: f64,
    /// One-way latency between nodes in different racks, seconds.
    pub cross_rack_latency: f64,
    /// Bandwidth cap on cross-rack paths, bytes/s (the oversubscribed
    /// aggregation layer; `f64::INFINITY` disables the cap).
    pub cross_rack_bandwidth: f64,
}

impl ClusterSpec {
    /// A single-rack cluster of `n` default nodes — the configuration the
    /// E4/E10 sweeps use unless stated otherwise.
    pub fn flat(n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        Self {
            node: NodeSpec::default(),
            racks: 1,
            nodes_per_rack: n,
            intra_rack_latency: 50e-6,
            cross_rack_latency: 500e-6,
            cross_rack_bandwidth: f64::INFINITY,
        }
    }

    /// A multi-rack cluster.
    pub fn racked(racks: usize, nodes_per_rack: usize) -> Self {
        assert!(racks > 0 && nodes_per_rack > 0);
        Self {
            racks,
            nodes_per_rack,
            ..Self::flat(1)
        }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.racks * self.nodes_per_rack
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Rack index of a node.
    pub fn rack_of(&self, node: NodeId) -> usize {
        node.0 / self.nodes_per_rack
    }

    /// Do two nodes share a rack?
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// One-way latency between two nodes (0 for a node to itself).
    pub fn latency(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            0.0
        } else if self.same_rack(a, b) {
            self.intra_rack_latency
        } else {
            self.cross_rack_latency
        }
    }

    /// Path bandwidth between two nodes in bytes/s (NIC-limited within a
    /// rack; additionally capped by the aggregation layer across racks).
    /// A node talking to itself is memory-speed (modelled as 100x NIC).
    pub fn bandwidth(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            self.node.nic_bandwidth * 100.0
        } else if self.same_rack(a, b) {
            self.node.nic_bandwidth
        } else {
            self.node.nic_bandwidth.min(self.cross_rack_bandwidth)
        }
    }

    /// Aggregate GPU count.
    pub fn total_gpus(&self) -> u32 {
        self.num_nodes() as u32 * self.node.gpu_slots
    }

    /// Aggregate CPU slot count.
    pub fn total_cpus(&self) -> u32 {
        self.num_nodes() as u32 * self.node.cpu_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_cluster_geometry() {
        let c = ClusterSpec::flat(8);
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.nodes().count(), 8);
        assert!(c.same_rack(NodeId(0), NodeId(7)));
        assert_eq!(c.total_gpus(), 8);
        assert_eq!(c.total_cpus(), 128);
    }

    #[test]
    fn racked_cluster_geometry() {
        let c = ClusterSpec::racked(3, 4);
        assert_eq!(c.num_nodes(), 12);
        assert_eq!(c.rack_of(NodeId(0)), 0);
        assert_eq!(c.rack_of(NodeId(4)), 1);
        assert_eq!(c.rack_of(NodeId(11)), 2);
        assert!(c.same_rack(NodeId(4), NodeId(7)));
        assert!(!c.same_rack(NodeId(3), NodeId(4)));
    }

    #[test]
    fn latency_model() {
        let c = ClusterSpec::racked(2, 2);
        assert_eq!(c.latency(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(c.latency(NodeId(0), NodeId(1)), c.intra_rack_latency);
        assert_eq!(c.latency(NodeId(0), NodeId(2)), c.cross_rack_latency);
        assert!(c.latency(NodeId(0), NodeId(2)) > c.latency(NodeId(0), NodeId(1)));
    }

    #[test]
    fn bandwidth_model() {
        let mut c = ClusterSpec::racked(2, 2);
        c.cross_rack_bandwidth = 1e8;
        assert_eq!(c.bandwidth(NodeId(0), NodeId(1)), c.node.nic_bandwidth);
        assert_eq!(c.bandwidth(NodeId(0), NodeId(2)), 1e8);
        assert!(c.bandwidth(NodeId(0), NodeId(0)) > c.node.nic_bandwidth);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        ClusterSpec::flat(0);
    }
}
