#![warn(missing_docs)]
//! # ExtremeEarth-rs
//!
//! A from-scratch Rust reproduction of the system described in *"From
//! Copernicus Big Data to Extreme Earth Analytics"* (Koubarakis et al.,
//! EDBT 2019): extreme Earth analytics over Copernicus-scale data —
//! scalable deep learning for Sentinel imagery, big linked geospatial
//! data management, semantic catalogues, and the Food Security and Polar
//! applications, all on a HOPS-like data platform.
//!
//! This crate is the public façade: it re-exports every subsystem under a
//! stable name and provides the [`platform`] module — the Hopsworks-like
//! orchestration layer (Challenge C5) that wires storage (`hopsfs`),
//! compute (`cluster`), analytics (`dl`) and knowledge (`rdf`,
//! `catalogue`) together, including the end-to-end information-extraction
//! pipeline behind experiment E1 ("1 PB of Sentinel data … ~450 TB of
//! content information and knowledge").
//!
//! ## Quick start
//!
//! ```
//! use extremeearth::platform::{Platform, PlatformConfig};
//! use extremeearth::datasets::{Landscape, LandscapeConfig};
//!
//! // A platform with a 4-shard metadata store.
//! let mut platform = Platform::new(PlatformConfig::default()).unwrap();
//! // Generate a small synthetic world and archive one optical scene.
//! let world = Landscape::generate(LandscapeConfig {
//!     size: 32, parcels_per_side: 4, ..LandscapeConfig::default()
//! }).unwrap();
//! let date = extremeearth::util::timeline::Date::new(2017, 6, 15).unwrap();
//! let scene = extremeearth::datasets::optics::simulate_s2(
//!     &world, date, Default::default(), 1).unwrap();
//! let stored = platform.archive_scene("demo", &scene).unwrap();
//! assert!(stored.bytes > 0);
//! ```

pub use ee_catalogue as catalogue;
pub use ee_cluster as cluster;
pub use ee_datasets as datasets;
pub use ee_dl as dl;
pub use ee_federation as federation;
pub use ee_food as food;
pub use ee_geo as geo;
pub use ee_geotriples as geotriples;
pub use ee_hopsfs as hopsfs;
pub use ee_interlink as interlink;
pub use ee_polar as polar;
pub use ee_raster as raster;
pub use ee_rdf as rdf;
pub use ee_sextant as sextant;
pub use ee_tensor as tensor;
pub use ee_util as util;

pub mod platform;

pub use platform::{Platform, PlatformConfig};
