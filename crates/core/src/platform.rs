//! The platform layer: the Hopsworks analogue of Challenge C5.
//!
//! A [`Platform`] owns the HopsFS-analogue archive, the semantic
//! catalogue, and the simulated cluster description. Projects organise
//! the namespace (`/projects/<name>/...`); scenes are archived as
//! codec-encoded band files; the information-extraction pipeline of
//! experiment E1 runs scenes through classification and publishes the
//! resulting knowledge as linked data, reporting the volume ratios the
//! paper quotes.

use ee_catalogue::SemanticCatalogue;
use ee_cluster::topology::ClusterSpec;
use ee_datasets::{LandClass, Landscape};
use ee_hopsfs::{FileSystem, FsConfig};
use ee_raster::{codec, Scene};
use ee_rdf::term::Term;
use ee_util::bytes::ByteSize;

/// Platform-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// Storage-layer failure.
    Storage(String),
    /// Analytics failure.
    Analytics(String),
}

impl From<ee_hopsfs::FsError> for PlatformError {
    fn from(e: ee_hopsfs::FsError) -> Self {
        PlatformError::Storage(e.to_string())
    }
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Storage(m) => write!(f, "storage: {m}"),
            PlatformError::Analytics(m) => write!(f, "analytics: {m}"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Metadata-store configuration.
    pub fs: FsConfig,
    /// The (simulated) compute cluster attached to the platform.
    pub cluster: ClusterSpec,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            fs: FsConfig::default(),
            cluster: ClusterSpec::flat(8),
        }
    }
}

/// Result of archiving one scene.
#[derive(Debug, Clone)]
pub struct StoredScene {
    /// Directory path of the scene in the archive.
    pub path: String,
    /// Total encoded bytes across band files.
    pub bytes: u64,
    /// Band files written.
    pub files: usize,
}

/// The E1 information-extraction report.
#[derive(Debug, Clone)]
pub struct ExtractionReport {
    /// Scenes processed ("datasets" in the paper's terminology).
    pub datasets: usize,
    /// Raw archive bytes ingested.
    pub input_bytes: u64,
    /// Knowledge triples produced.
    pub knowledge_triples: usize,
    /// Serialised knowledge volume (N-Triples bytes).
    pub knowledge_bytes: u64,
}

impl ExtractionReport {
    /// Knowledge-to-data volume ratio (the paper's 450 TB / 1 PB ≈ 0.45,
    /// at the information level rather than the byte level).
    pub fn knowledge_ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            return 0.0;
        }
        self.knowledge_bytes as f64 / self.input_bytes as f64
    }
}

/// The platform.
pub struct Platform {
    fs: FileSystem,
    catalogue: SemanticCatalogue,
    cluster: ClusterSpec,
    archived_bytes: u64,
}

impl Platform {
    /// Boot a platform.
    pub fn new(config: PlatformConfig) -> Result<Platform, PlatformError> {
        let fs = FileSystem::new(config.fs);
        fs.mkdir_p("/projects")?;
        Ok(Platform {
            fs,
            catalogue: SemanticCatalogue::new(),
            cluster: config.cluster,
            archived_bytes: 0,
        })
    }

    /// The archive filesystem.
    pub fn fs(&self) -> &FileSystem {
        &self.fs
    }

    /// The semantic catalogue.
    pub fn catalogue(&self) -> &SemanticCatalogue {
        &self.catalogue
    }

    /// Mutable catalogue access (pipelines publish into it).
    pub fn catalogue_mut(&mut self) -> &mut SemanticCatalogue {
        &mut self.catalogue
    }

    /// The attached cluster description.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Create a project namespace; idempotent.
    pub fn create_project(&self, name: &str) -> Result<String, PlatformError> {
        let path = format!("/projects/{name}");
        self.fs.mkdir_p(&path)?;
        self.fs.mkdir_p(&format!("{path}/scenes"))?;
        self.fs.mkdir_p(&format!("{path}/knowledge"))?;
        Ok(path)
    }

    /// Archive a scene's bands as codec files under the project.
    pub fn archive_scene(
        &mut self,
        project: &str,
        scene: &Scene,
    ) -> Result<StoredScene, PlatformError> {
        let base = format!("{}/scenes/{}", self.create_project(project)?, scene.id);
        self.fs.mkdir_p(&base)?;
        let mut total = 0u64;
        let mut files = 0usize;
        for (band, raster) in scene.bands() {
            let encoded = codec::encode(raster);
            total += encoded.len() as u64;
            self.fs
                .create(&format!("{base}/{}.eert", band.name()), &encoded)?;
            files += 1;
        }
        self.archived_bytes += total;
        Ok(StoredScene {
            path: base,
            bytes: total,
            files,
        })
    }

    /// List a project's archived scenes.
    pub fn list_scenes(&self, project: &str) -> Result<Vec<String>, PlatformError> {
        Ok(self
            .fs
            .list(&format!("/projects/{project}/scenes"))?
            .into_iter()
            .map(|(name, _)| name)
            .collect())
    }

    /// The E1 pipeline: archive `stack` scenes, classify the world with
    /// the truth-trained mapper output (`crop_map`), publish per-parcel
    /// knowledge, and report the data→knowledge volume relationship.
    pub fn extract_knowledge(
        &mut self,
        project: &str,
        world: &Landscape,
        scenes: &[Scene],
        crop_map: &ee_raster::Raster<u8>,
    ) -> Result<ExtractionReport, PlatformError> {
        let mut input_bytes = 0u64;
        for scene in scenes {
            let stored = self.archive_scene(project, scene)?;
            input_bytes += stored.bytes;
        }
        // Knowledge: per-parcel classification triples, plus a per-scene
        // per-parcel NDVI observation — content information grows with the
        // number of datasets processed, as the paper's Variety figure
        // describes.
        let before = self.catalogue.len();
        let farm = "http://extremeearth.eu/ont/farm#";
        let mut knowledge_bytes = 0u64;
        let mut observation_counter = 0u64;
        for scene in scenes {
            let Ok(ndvi) = ee_raster::indices::ndvi(scene) else {
                continue; // SAR scenes carry no NDVI
            };
            // Mean NDVI per parcel for this acquisition.
            let mut sums = vec![(0.0f64, 0usize); world.parcels.len() + 1];
            for (c, r, pid) in world.parcel_map.iter() {
                if pid != 0 {
                    let cell = &mut sums[pid as usize];
                    cell.0 += ndvi.at(c, r) as f64;
                    cell.1 += 1;
                }
            }
            for parcel in &world.parcels {
                let (sum, count) = sums[parcel.id as usize];
                if count == 0 {
                    continue;
                }
                observation_counter += 1;
                let obs = Term::iri(format!("{farm}obs/{observation_counter}"));
                let triples = [
                    (
                        obs.clone(),
                        Term::iri(format!("{farm}ofParcel")),
                        Term::iri(format!("{farm}parcel/{}", parcel.id)),
                    ),
                    (
                        obs.clone(),
                        Term::iri(format!("{farm}sensedOn")),
                        Term::date(scene.sensing),
                    ),
                    (
                        obs.clone(),
                        Term::iri(format!("{farm}meanNdvi")),
                        Term::double((sum / count as f64 * 1000.0).round() / 1000.0),
                    ),
                ];
                for (s, p, o) in triples {
                    knowledge_bytes += (s.ntriples().len()
                        + p.ntriples().len()
                        + o.ntriples().len()
                        + 4) as u64;
                    self.catalogue_insert(&s, &p, &o);
                }
            }
        }
        for parcel in &world.parcels {
            // Majority mapped class over the parcel.
            let mut votes = [0u32; 10];
            for (c, r, pid) in world.parcel_map.iter() {
                if pid == parcel.id {
                    votes[crop_map.at(c, r) as usize] += 1;
                }
            }
            let mapped = votes
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .and_then(|(i, _)| LandClass::from_index(i))
                .unwrap_or(LandClass::BareSoil);
            let subject = Term::iri(format!("{farm}parcel/{}", parcel.id));
            let triples = [
                (
                    subject.clone(),
                    Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                    Term::iri(format!("{farm}Parcel")),
                ),
                (
                    subject.clone(),
                    Term::iri(format!("{farm}cropType")),
                    Term::string(mapped.name()),
                ),
                (
                    subject.clone(),
                    Term::iri("http://www.opengis.net/ont/geosparql#asWKT"),
                    Term::geometry(&parcel.polygon.clone().into()),
                ),
            ];
            for (s, p, o) in triples {
                knowledge_bytes +=
                    (s.ntriples().len() + p.ntriples().len() + o.ntriples().len() + 4) as u64;
                // Store into the catalogue's knowledge graph through its
                // public product-agnostic surface: the semantic store.
                self.catalogue_insert(&s, &p, &o);
            }
        }
        self.catalogue.finish_ingest();
        let knowledge_triples = self.catalogue.len() - before;
        Ok(ExtractionReport {
            datasets: scenes.len(),
            input_bytes,
            knowledge_triples,
            knowledge_bytes,
        })
    }

    fn catalogue_insert(&mut self, s: &Term, p: &Term, o: &Term) {
        // SemanticCatalogue does not expose raw insert; extend it here via
        // its store-compatible observation API when shapes match, else use
        // the generic path below.
        self.catalogue.insert_raw(s, p, o);
    }

    /// Total bytes archived through this platform instance.
    pub fn archive_volume(&self) -> ByteSize {
        ByteSize(self.archived_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_datasets::landscape::LandscapeConfig;
    use ee_datasets::optics::{simulate_s2, OpticsConfig};
    use ee_util::timeline::Date;

    fn world() -> Landscape {
        Landscape::generate(LandscapeConfig {
            size: 32,
            parcels_per_side: 4,
            ..LandscapeConfig::default()
        })
        .unwrap()
    }

    fn scene(world: &Landscape, seed: u64) -> Scene {
        // Distinct dates give distinct product ids.
        simulate_s2(
            world,
            Date::from_ordinal(2017, 160 + seed as u16).unwrap(),
            OpticsConfig::default(),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn projects_and_archive() {
        let mut p = Platform::new(PlatformConfig::default()).unwrap();
        let w = world();
        let s = scene(&w, 1);
        let stored = p.archive_scene("food-security", &s).unwrap();
        assert_eq!(stored.files, 13);
        assert!(stored.bytes > 0);
        let scenes = p.list_scenes("food-security").unwrap();
        assert_eq!(scenes.len(), 1);
        assert!(scenes[0].starts_with("S2_SYN_2017"), "{scenes:?}");
        // Re-archiving under another project is independent.
        p.archive_scene("polar", &s).unwrap();
        assert_eq!(p.list_scenes("polar").unwrap().len(), 1);
        assert_eq!(p.archive_volume().as_u64(), stored.bytes * 2);
    }

    #[test]
    fn extraction_report_has_paper_shape() {
        let mut p = Platform::new(PlatformConfig::default()).unwrap();
        let w = world();
        let scenes = vec![scene(&w, 1), scene(&w, 2)];
        let report = p
            .extract_knowledge("e1", &w, &scenes, &w.truth)
            .unwrap();
        assert_eq!(report.datasets, 2);
        assert!(report.input_bytes > 0);
        // 3 classification triples per parcel + 3 observation triples per
        // parcel per scene.
        assert_eq!(report.knowledge_triples, w.parcels.len() * 3 + w.parcels.len() * 3 * 2);
        assert!(report.knowledge_bytes > 0);
        // Knowledge is far smaller than pixels, but non-trivial.
        let ratio = report.knowledge_ratio();
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
        // The knowledge is queryable.
        let sol = p
            .catalogue()
            .query(
                "PREFIX farm: <http://extremeearth.eu/ont/farm#> \
                 SELECT (COUNT(?p) AS ?n) WHERE { ?p a farm:Parcel }",
            )
            .unwrap();
        assert_eq!(
            sol.scalar(),
            Some(&Term::integer(w.parcels.len() as i64))
        );
    }

    #[test]
    fn archive_duplicate_scene_errors() {
        let mut p = Platform::new(PlatformConfig::default()).unwrap();
        let w = world();
        let s = scene(&w, 1);
        p.archive_scene("proj", &s).unwrap();
        assert!(matches!(
            p.archive_scene("proj", &s),
            Err(PlatformError::Storage(_))
        ));
    }
}
