//! Training-dataset builders (Challenge C2).
//!
//! * [`patches_from_scene`] — cut a labelled scene into EuroSat-style
//!   patches (13 bands × p × p, labelled by majority ground truth);
//! * [`temporal_patches`] — the same with the time axis stacked into
//!   channels (the temporal-CNN input of Challenge C1);
//! * [`pixels_from_scene`] — per-pixel spectra for the shallow baselines;
//! * [`weak_label_raster`] — labels derived from "cartographic products"
//!   (the OSM-like parcel layer) with controllable annotation noise and
//!   staleness, reproducing how C2 builds million-sample corpora without
//!   ground surveys;
//! * [`sar_pixels`] / [`multimodal_pixels`] — SAR-only and optical+SAR
//!   fused features for the E5 modality ablation.

use crate::landclass::LandClass;
use crate::landscape::Landscape;
use crate::DataGenError;
use ee_dl::Dataset;
use ee_raster::stack::TimeStack;
use ee_raster::{Band, Raster, Scene};
use ee_tensor::Tensor;
use ee_util::Rng;

/// Majority class in a window of the truth raster.
fn majority_label(truth: &Raster<u8>, c0: usize, r0: usize, p: usize) -> u8 {
    let mut counts = [0u32; 16];
    for r in r0..r0 + p {
        for c in c0..c0 + p {
            counts[truth.at(c, r) as usize] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &n)| n)
        .map(|(i, _)| i as u8)
        .expect("non-empty")
}

/// Cut non-overlapping `p × p` patches from a scene, labelled by the
/// majority truth class. Produces `[N, bands, p, p]` features.
pub fn patches_from_scene(
    scene: &Scene,
    truth: &Raster<u8>,
    patch: usize,
) -> Result<Dataset, DataGenError> {
    if patch == 0 || scene.shape() != truth.shape() {
        return Err(DataGenError::Config("patch size 0 or truth/scene mismatch".into()));
    }
    let (cols, rows) = scene.shape();
    let bands: Vec<(Band, &Raster<f32>)> = scene.bands().collect();
    let nb = bands.len();
    let px = cols / patch;
    let py = rows / patch;
    let n = px * py;
    let mut data = Vec::with_capacity(n * nb * patch * patch);
    let mut labels = Vec::with_capacity(n);
    for ty in 0..py {
        for tx in 0..px {
            let (c0, r0) = (tx * patch, ty * patch);
            for (_, raster) in &bands {
                for r in r0..r0 + patch {
                    for c in c0..c0 + patch {
                        data.push(raster.at(c, r));
                    }
                }
            }
            labels.push(majority_label(truth, c0, r0, patch) as usize);
        }
    }
    let x = Tensor::from_vec(&[n, nb, patch, patch], data)
        .map_err(|e| DataGenError::Config(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| DataGenError::Config(e.to_string()))
}

/// Temporal patches: the scenes' bands are stacked along the channel axis
/// (`[N, scenes*bands, p, p]`). All scenes must share the grid.
pub fn temporal_patches(
    stack: &TimeStack,
    truth: &Raster<u8>,
    patch: usize,
    bands: &[Band],
) -> Result<Dataset, DataGenError> {
    let scenes = stack.scenes();
    if scenes.is_empty() {
        return Err(DataGenError::Config("empty time stack".into()));
    }
    let (cols, rows) = truth.shape();
    let px = cols / patch;
    let py = rows / patch;
    let n = px * py;
    let nb = bands.len() * scenes.len();
    let mut data = Vec::with_capacity(n * nb * patch * patch);
    let mut labels = Vec::with_capacity(n);
    for ty in 0..py {
        for tx in 0..px {
            let (c0, r0) = (tx * patch, ty * patch);
            for scene in scenes {
                for &band in bands {
                    let raster = scene.band(band)?;
                    for r in r0..r0 + patch {
                        for c in c0..c0 + patch {
                            data.push(raster.at(c, r));
                        }
                    }
                }
            }
            labels.push(majority_label(truth, c0, r0, patch) as usize);
        }
    }
    let x = Tensor::from_vec(&[n, nb, patch, patch], data)
        .map_err(|e| DataGenError::Config(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| DataGenError::Config(e.to_string()))
}

/// Sample per-pixel spectra `[N, bands]` for shallow baselines.
pub fn pixels_from_scene(
    scene: &Scene,
    truth: &Raster<u8>,
    max_samples: usize,
    seed: u64,
) -> Result<Dataset, DataGenError> {
    let (cols, rows) = scene.shape();
    let total = cols * rows;
    let mut rng = Rng::seed_from(seed);
    let take = rng.sample_indices(total, max_samples.min(total));
    let bands: Vec<(Band, &Raster<f32>)> = scene.bands().collect();
    let nb = bands.len();
    let mut data = Vec::with_capacity(take.len() * nb);
    let mut labels = Vec::with_capacity(take.len());
    for &i in &take {
        let (c, r) = (i % cols, i / cols);
        for (_, raster) in &bands {
            data.push(raster.at(c, r));
        }
        labels.push(truth.at(c, r) as usize);
    }
    let x = Tensor::from_vec(&[take.len(), nb], data)
        .map_err(|e| DataGenError::Config(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| DataGenError::Config(e.to_string()))
}

/// Per-pixel SAR features (VV, VH, VH−VV) from a SAR scene.
pub fn sar_pixels(
    scene: &Scene,
    truth: &Raster<u8>,
    max_samples: usize,
    seed: u64,
) -> Result<Dataset, DataGenError> {
    let vv = scene.band(Band::VV)?;
    let vh = scene.band(Band::VH)?;
    let (cols, rows) = scene.shape();
    let mut rng = Rng::seed_from(seed);
    let take = rng.sample_indices(cols * rows, max_samples.min(cols * rows));
    let mut data = Vec::with_capacity(take.len() * 3);
    let mut labels = Vec::with_capacity(take.len());
    for &i in &take {
        let (c, r) = (i % cols, i / cols);
        let v = vv.at(c, r);
        let h = vh.at(c, r);
        data.extend_from_slice(&[v, h, h - v]);
        labels.push(truth.at(c, r) as usize);
    }
    let x = Tensor::from_vec(&[take.len(), 3], data)
        .map_err(|e| DataGenError::Config(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| DataGenError::Config(e.to_string()))
}

/// Fused optical+SAR per-pixel features — the multimodal ablation arm.
/// Both scenes must share the grid of `truth`.
pub fn multimodal_pixels(
    optical: &Scene,
    sar: &Scene,
    truth: &Raster<u8>,
    max_samples: usize,
    seed: u64,
) -> Result<Dataset, DataGenError> {
    let (cols, rows) = truth.shape();
    let obands: Vec<(Band, &Raster<f32>)> = optical.bands().collect();
    let vv = sar.band(Band::VV)?;
    let vh = sar.band(Band::VH)?;
    let mut rng = Rng::seed_from(seed);
    let take = rng.sample_indices(cols * rows, max_samples.min(cols * rows));
    let nb = obands.len() + 2;
    let mut data = Vec::with_capacity(take.len() * nb);
    let mut labels = Vec::with_capacity(take.len());
    for &i in &take {
        let (c, r) = (i % cols, i / cols);
        for (_, raster) in &obands {
            data.push(raster.at(c, r));
        }
        // Normalise dB into a comparable range.
        data.push((vv.at(c, r) + 25.0) / 25.0);
        data.push((vh.at(c, r) + 32.0) / 25.0);
        labels.push(truth.at(c, r) as usize);
    }
    let x = Tensor::from_vec(&[take.len(), nb], data)
        .map_err(|e| DataGenError::Config(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| DataGenError::Config(e.to_string()))
}

/// Labels derived from a cartographic product instead of ground survey:
/// parcels keep their mapped class, but a `noise` fraction of parcels are
/// mislabelled (annotation error) and a `stale` fraction carry *last
/// year's* class (map staleness — crop rotation has moved on). Background
/// keeps the true class (cartography maps water/forest/urban well).
pub fn weak_label_raster(
    world: &Landscape,
    noise: f64,
    stale: f64,
    seed: u64,
) -> Raster<u8> {
    let mut rng = Rng::seed_from(seed);
    // Decide each parcel's fate once.
    let rotation = |class: LandClass, rng: &mut Rng| -> LandClass {
        // Staleness = previous crop in a simple rotation.
        match class {
            LandClass::Wheat => LandClass::Rapeseed,
            LandClass::Maize => LandClass::Wheat,
            LandClass::Rapeseed => LandClass::SugarBeet,
            LandClass::SugarBeet => LandClass::Maize,
            _ => *rng.choose(&LandClass::CROPS),
        }
    };
    let mapped: Vec<u8> = world
        .parcels
        .iter()
        .map(|p| {
            let label = if rng.chance(noise) {
                *rng.choose(&LandClass::CROPS)
            } else if rng.chance(stale) {
                rotation(p.class, &mut rng)
            } else {
                p.class
            };
            label.as_index() as u8
        })
        .collect();
    world.truth.zip_map(&world.parcel_map, |t, pid| {
        if pid == 0 {
            t
        } else {
            mapped[pid as usize - 1]
        }
    })
    .expect("same shape by construction")
}

/// Pixel agreement between a weak-label raster and the ground truth.
pub fn label_agreement(world: &Landscape, weak: &Raster<u8>) -> f64 {
    let same = world
        .truth
        .data()
        .iter()
        .zip(weak.data())
        .filter(|(a, b)| a == b)
        .count();
    same as f64 / world.truth.data().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::LandscapeConfig;
    use crate::optics::{simulate_s2, OpticsConfig};
    use crate::sar::{simulate_s1, SarConfig};
    use ee_util::timeline::Date;

    fn world() -> Landscape {
        Landscape::generate(LandscapeConfig {
            size: 64,
            parcels_per_side: 6,
            ..LandscapeConfig::default()
        })
        .unwrap()
    }

    fn clear() -> OpticsConfig {
        OpticsConfig {
            cloud_fraction: 0.0,
            noise_std: 0.005,
        }
    }

    #[test]
    fn patch_dataset_shape_and_labels() {
        let w = world();
        let s = simulate_s2(&w, Date::new(2017, 6, 15).unwrap(), clear(), 1).unwrap();
        let d = patches_from_scene(&s, &w.truth, 8).unwrap();
        assert_eq!(d.len(), 64); // (64/8)^2
        assert_eq!(d.x.shape(), &[64, 13, 8, 8]);
        assert!(d.labels.iter().all(|&l| l < 10));
        // Labels reflect the world's class mix.
        let distinct: std::collections::HashSet<usize> = d.labels.iter().copied().collect();
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn temporal_patch_channels_stack() {
        let w = world();
        let dates = [
            Date::new(2017, 4, 1).unwrap(),
            Date::new(2017, 6, 1).unwrap(),
            Date::new(2017, 8, 1).unwrap(),
        ];
        let stack = crate::optics::simulate_season(&w, &dates, clear(), 2).unwrap();
        let d = temporal_patches(&stack, &w.truth, 8, &[Band::B04, Band::B08]).unwrap();
        assert_eq!(d.x.shape(), &[64, 6, 8, 8], "3 dates x 2 bands");
    }

    #[test]
    fn pixel_dataset_samples_without_replacement() {
        let w = world();
        let s = simulate_s2(&w, Date::new(2017, 6, 15).unwrap(), clear(), 1).unwrap();
        let d = pixels_from_scene(&s, &w.truth, 500, 7).unwrap();
        assert_eq!(d.len(), 500);
        assert_eq!(d.x.shape(), &[500, 13]);
        // Asking for more than exists caps at the total.
        let all = pixels_from_scene(&s, &w.truth, 10_000, 7).unwrap();
        assert_eq!(all.len(), 64 * 64);
    }

    #[test]
    fn sar_and_multimodal_features() {
        let w = world();
        let d = Date::new(2017, 6, 15).unwrap();
        let opt = simulate_s2(&w, d, clear(), 1).unwrap();
        let sar = simulate_s1(&w, d, SarConfig::default(), 2).unwrap();
        let ds = sar_pixels(&sar, &w.truth, 300, 3).unwrap();
        assert_eq!(ds.x.shape(), &[300, 3]);
        let dm = multimodal_pixels(&opt, &sar, &w.truth, 300, 3).unwrap();
        assert_eq!(dm.x.shape(), &[300, 15]);
        // Same sampling seed → same labels (paired ablation arms).
        assert_eq!(ds.labels, dm.labels);
    }

    #[test]
    fn weak_labels_degrade_with_noise_and_staleness() {
        let w = world();
        let perfect = weak_label_raster(&w, 0.0, 0.0, 5);
        assert_eq!(label_agreement(&w, &perfect), 1.0, "clean cartography is exact");
        let noisy = weak_label_raster(&w, 0.3, 0.0, 5);
        let a_noisy = label_agreement(&w, &noisy);
        assert!(a_noisy < 1.0);
        let stale = weak_label_raster(&w, 0.0, 0.5, 5);
        let a_stale = label_agreement(&w, &stale);
        assert!(a_stale < 1.0);
        let both = weak_label_raster(&w, 0.3, 0.5, 5);
        assert!(label_agreement(&w, &both) <= a_noisy.min(a_stale) + 0.05);
    }

    #[test]
    fn weak_labels_touch_only_parcels() {
        let w = world();
        let weak = weak_label_raster(&w, 1.0, 0.0, 9);
        for (c, r, v) in w.truth.iter() {
            if w.parcel_at(c, r).is_none() {
                assert_eq!(weak.at(c, r), v, "background untouched at ({c},{r})");
            }
        }
    }

    #[test]
    fn patch_errors() {
        let w = world();
        let s = simulate_s2(&w, Date::new(2017, 6, 15).unwrap(), clear(), 1).unwrap();
        assert!(patches_from_scene(&s, &w.truth, 0).is_err());
        let other = Landscape::generate(LandscapeConfig {
            size: 32,
            parcels_per_side: 4,
            ..LandscapeConfig::default()
        })
        .unwrap();
        assert!(patches_from_scene(&s, &other.truth, 8).is_err());
    }
}
