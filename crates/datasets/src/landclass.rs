//! The land-cover taxonomy with spectral, SAR and phenological signatures.
//!
//! Ten classes (the cardinality of the EuroSat benchmark, ref \[11\]): five
//! annual crops with true phenology, plus five static cover types. The
//! per-band reflectances are plausible mid-range values for each cover at
//! full development; the simulator mixes them with bare-soil spectra by
//! the phenological canopy fraction, so class separability varies through
//! the season exactly the way real crop classification does.

use ee_raster::Band;

/// The 10 land-cover classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LandClass {
    /// Winter wheat (sown in autumn, harvested mid-summer).
    Wheat,
    /// Maize (sown late spring, harvested autumn).
    Maize,
    /// Winter rapeseed (distinct yellow-flowering spectra in spring).
    Rapeseed,
    /// Sugar beet (late canopy closure).
    SugarBeet,
    /// Permanent grassland.
    Grassland,
    /// Forest.
    Forest,
    /// Open water.
    Water,
    /// Built-up / urban.
    Urban,
    /// Bare soil / fallow.
    BareSoil,
    /// Wetland.
    Wetland,
}

impl LandClass {
    /// All classes, index order == `as_index` order.
    pub const ALL: [LandClass; 10] = [
        LandClass::Wheat,
        LandClass::Maize,
        LandClass::Rapeseed,
        LandClass::SugarBeet,
        LandClass::Grassland,
        LandClass::Forest,
        LandClass::Water,
        LandClass::Urban,
        LandClass::BareSoil,
        LandClass::Wetland,
    ];

    /// The arable crops (classes with a crop calendar).
    pub const CROPS: [LandClass; 5] = [
        LandClass::Wheat,
        LandClass::Maize,
        LandClass::Rapeseed,
        LandClass::SugarBeet,
        LandClass::Grassland,
    ];

    /// Stable dense index, 0..10.
    pub fn as_index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("in ALL")
    }

    /// Inverse of [`LandClass::as_index`].
    pub fn from_index(i: usize) -> Option<LandClass> {
        Self::ALL.get(i).copied()
    }

    /// Class name.
    pub fn name(self) -> &'static str {
        match self {
            LandClass::Wheat => "Wheat",
            LandClass::Maize => "Maize",
            LandClass::Rapeseed => "Rapeseed",
            LandClass::SugarBeet => "SugarBeet",
            LandClass::Grassland => "Grassland",
            LandClass::Forest => "Forest",
            LandClass::Water => "Water",
            LandClass::Urban => "Urban",
            LandClass::BareSoil => "BareSoil",
            LandClass::Wetland => "Wetland",
        }
    }

    /// Is this an annual crop with a calendar?
    pub fn is_crop(self) -> bool {
        Self::CROPS.contains(&self)
    }

    /// Reflectance of the *fully developed* cover in a Sentinel-2 band
    /// (0..1). Vegetation classes show the red-edge/NIR plateau; water is
    /// dark in the infrared; urban is spectrally flat and bright.
    pub fn reflectance(self, band: Band) -> f32 {
        use Band::*;
        let vegetation = |nir: f32, red: f32| match band {
            B01 => 0.03,
            B02 => 0.04,
            B03 => 0.07,
            B04 => red,
            B05 => red + 0.10,
            B06 => nir * 0.75,
            B07 => nir * 0.92,
            B08 => nir,
            B8A => nir * 1.02,
            B09 => nir * 0.35,
            B10 => 0.01,
            B11 => 0.18,
            B12 => 0.10,
            VV | VH => 0.0,
        };
        match self {
            LandClass::Wheat => vegetation(0.42, 0.05),
            LandClass::Maize => vegetation(0.48, 0.05),
            LandClass::Rapeseed => match band {
                // Flowering rapeseed is bright in green AND red.
                B03 => 0.14,
                B04 => 0.12,
                _ => vegetation(0.46, 0.12),
            },
            LandClass::SugarBeet => vegetation(0.45, 0.04),
            LandClass::Grassland => vegetation(0.38, 0.06),
            LandClass::Forest => match band {
                B11 => 0.12,
                B12 => 0.06,
                _ => vegetation(0.35, 0.035),
            },
            LandClass::Water => match band {
                B01 => 0.06,
                B02 => 0.05,
                B03 => 0.04,
                B04 => 0.02,
                _ => 0.008,
            },
            LandClass::Urban => match band {
                B01 | B02 => 0.12,
                B03 | B04 => 0.15,
                B05 | B06 | B07 => 0.17,
                B08 | B8A => 0.20,
                B09 => 0.10,
                B10 => 0.01,
                B11 => 0.25,
                B12 => 0.23,
                VV | VH => 0.0,
            },
            LandClass::BareSoil => match band {
                B01 => 0.08,
                B02 => 0.10,
                B03 => 0.13,
                B04 => 0.17,
                B05 => 0.19,
                B06 => 0.21,
                B07 => 0.22,
                B08 => 0.24,
                B8A => 0.25,
                B09 => 0.12,
                B10 => 0.01,
                B11 => 0.32,
                B12 => 0.28,
                VV | VH => 0.0,
            },
            LandClass::Wetland => match band {
                B04 => 0.04,
                B08 => 0.22,
                B11 => 0.08,
                B12 => 0.04,
                _ => vegetation(0.22, 0.04) * 0.8,
            },
        }
    }

    /// SAR backscatter (dB) for (VV, VH) at full development.
    /// Rough/volumetric targets (forest, urban) scatter strongly; calm
    /// water is a specular mirror (very low).
    pub fn backscatter_db(self) -> (f32, f32) {
        match self {
            LandClass::Wheat => (-10.0, -16.0),
            LandClass::Maize => (-8.5, -14.0),
            LandClass::Rapeseed => (-9.0, -14.5),
            LandClass::SugarBeet => (-9.5, -15.0),
            LandClass::Grassland => (-11.0, -17.0),
            LandClass::Forest => (-7.0, -12.0),
            LandClass::Water => (-22.0, -30.0),
            LandClass::Urban => (-4.0, -10.0),
            LandClass::BareSoil => (-13.0, -21.0),
            LandClass::Wetland => (-15.0, -22.0),
        }
    }

    /// Canopy fraction (0..1) at a day of year: the phenology curve.
    /// Static covers return their constant density.
    pub fn canopy(self, doy: u16) -> f32 {
        fn bell(doy: u16, emergence: f64, peak: f64, harvest: f64) -> f32 {
            let d = doy as f64;
            if d < emergence || d > harvest {
                return 0.0;
            }
            if d <= peak {
                (((d - emergence) / (peak - emergence)) as f32).powf(1.5)
            } else {
                // Senescence towards harvest.
                let t = (harvest - d) / (harvest - peak);
                (t as f32).clamp(0.0, 1.0).powf(0.7)
            }
        }
        match self {
            // Winter wheat: greens up from ~day 60, peaks ~150, harvest ~200.
            LandClass::Wheat => bell(doy, 40.0, 150.0, 205.0),
            // Maize: sown ~120, peak ~210, harvest ~280.
            LandClass::Maize => bell(doy, 125.0, 210.0, 285.0),
            // Rapeseed: early green-up, peak (flowering) ~130, harvest ~190.
            LandClass::Rapeseed => bell(doy, 35.0, 130.0, 195.0),
            // Sugar beet: sown ~100, closes late, harvested ~290.
            LandClass::SugarBeet => bell(doy, 110.0, 220.0, 300.0),
            // Grassland: green all season with mild winter dip.
            LandClass::Grassland => {
                let seasonal =
                    0.65 + 0.3 * ((doy as f32 - 190.0) * std::f32::consts::PI / 365.0).cos().abs();
                seasonal.min(0.95)
            }
            LandClass::Forest => 0.9,
            LandClass::Water | LandClass::Urban | LandClass::BareSoil => 0.0,
            LandClass::Wetland => 0.55,
        }
    }

    /// Crop coefficient Kc for evapotranspiration (PROMET-lite, ref \[10\]).
    /// Scales reference ET by development stage; FAO-56-style values.
    pub fn kc(self, doy: u16) -> f64 {
        let canopy = self.canopy(doy) as f64;
        match self {
            LandClass::Wheat => 0.3 + 0.85 * canopy,
            LandClass::Maize => 0.3 + 0.90 * canopy,
            LandClass::Rapeseed => 0.35 + 0.75 * canopy,
            LandClass::SugarBeet => 0.35 + 0.85 * canopy,
            LandClass::Grassland => 0.4 + 0.55 * canopy,
            LandClass::Forest => 1.0,
            LandClass::Water => 1.05,
            LandClass::Urban => 0.15,
            LandClass::BareSoil => 0.25,
            LandClass::Wetland => 1.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_classes_with_stable_indexes() {
        assert_eq!(LandClass::ALL.len(), 10, "EuroSat cardinality");
        for (i, c) in LandClass::ALL.iter().enumerate() {
            assert_eq!(c.as_index(), i);
            assert_eq!(LandClass::from_index(i), Some(*c));
        }
        assert_eq!(LandClass::from_index(10), None);
    }

    #[test]
    fn crops_have_calendars_statics_do_not() {
        assert!(LandClass::Wheat.is_crop());
        assert!(!LandClass::Urban.is_crop());
        assert_eq!(LandClass::Urban.canopy(180), 0.0);
        assert_eq!(LandClass::Water.canopy(10), 0.0);
    }

    #[test]
    fn wheat_phenology_shape() {
        let w = LandClass::Wheat;
        assert_eq!(w.canopy(10), 0.0, "dormant in winter");
        assert!(w.canopy(150) > 0.9, "peak in late spring");
        assert!(w.canopy(100) > 0.2 && w.canopy(100) < w.canopy(150));
        assert!(w.canopy(195) < w.canopy(150), "senescing before harvest");
        assert_eq!(w.canopy(250), 0.0, "harvested");
    }

    #[test]
    fn maize_is_later_than_wheat() {
        assert!(LandClass::Wheat.canopy(130) > 0.5);
        assert_eq!(LandClass::Maize.canopy(120), 0.0, "not yet emerged");
        assert!(LandClass::Maize.canopy(250) > 0.3);
        assert_eq!(LandClass::Wheat.canopy(250), 0.0);
    }

    #[test]
    fn spectra_are_physical() {
        for c in LandClass::ALL {
            for b in Band::S2_ALL {
                let r = c.reflectance(b);
                assert!((0.0..=1.0).contains(&r), "{c:?} {b:?} = {r}");
            }
        }
    }

    #[test]
    fn vegetation_has_red_edge() {
        for c in [LandClass::Wheat, LandClass::Forest, LandClass::Grassland] {
            let red = c.reflectance(Band::B04);
            let nir = c.reflectance(Band::B08);
            assert!(nir > 3.0 * red, "{c:?} NIR {nir} vs red {red}");
        }
        // Water absorbs NIR.
        assert!(LandClass::Water.reflectance(Band::B08) < LandClass::Water.reflectance(Band::B03));
    }

    #[test]
    fn sar_signatures_separate_key_classes() {
        let (water_vv, _) = LandClass::Water.backscatter_db();
        let (urban_vv, _) = LandClass::Urban.backscatter_db();
        let (forest_vv, forest_vh) = LandClass::Forest.backscatter_db();
        assert!(urban_vv > forest_vv && forest_vv > water_vv);
        assert!(forest_vh < forest_vv, "cross-pol is always weaker");
    }

    #[test]
    fn kc_tracks_development() {
        let kc_winter = LandClass::Wheat.kc(10);
        let kc_peak = LandClass::Wheat.kc(150);
        assert!(kc_peak > 1.0, "mid-season wheat Kc above 1: {kc_peak}");
        assert!((kc_winter - 0.3).abs() < 1e-6, "bare Kc in winter");
        assert!(LandClass::Water.kc(100) > 1.0);
        assert!(LandClass::Urban.kc(100) < 0.3);
    }
}
