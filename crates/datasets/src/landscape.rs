//! The synthetic agricultural landscape (application A1's world).
//!
//! A jittered-grid field pattern over a fractal DEM. Every pixel carries
//! ground truth: parcel id, land class, soil water capacity, elevation —
//! the truth real EO lacks, which is what lets E5/E6/E11 report accuracy.

use crate::landclass::LandClass;
use crate::DataGenError;
use ee_geo::{Point, Polygon};
use ee_raster::raster::GeoTransform;
use ee_raster::Raster;
use ee_util::noise::Fbm;
use ee_util::Rng;

/// One field parcel.
#[derive(Debug, Clone)]
pub struct Parcel {
    /// Parcel id (1-based; 0 in the parcel map means "no parcel").
    pub id: u16,
    /// The crop / cover grown.
    pub class: LandClass,
    /// Footprint polygon in world coordinates.
    pub polygon: Polygon,
    /// Sowing-date jitter in days (shifts the phenology curve).
    pub sowing_shift: i16,
}

/// Landscape generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct LandscapeConfig {
    /// Pixels per side (square world).
    pub size: usize,
    /// Pixel size in metres (10 m = Sentinel-2 resolution).
    pub pixel_m: f64,
    /// Approximate parcels per side.
    pub parcels_per_side: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LandscapeConfig {
    fn default() -> Self {
        Self {
            size: 192,
            pixel_m: 10.0,
            parcels_per_side: 12,
            seed: 20170101,
        }
    }
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct Landscape {
    /// Configuration used.
    pub config: LandscapeConfig,
    /// Elevation in metres.
    pub dem: Raster<f32>,
    /// Ground-truth class index per pixel (see [`LandClass::as_index`]).
    pub truth: Raster<u8>,
    /// Parcel id per pixel (0 = non-parcel background).
    pub parcel_map: Raster<u16>,
    /// Soil plant-available water capacity in millimetres.
    pub soil_awc: Raster<f32>,
    /// The parcels.
    pub parcels: Vec<Parcel>,
}

impl Landscape {
    /// Generate a landscape.
    pub fn generate(config: LandscapeConfig) -> Result<Landscape, DataGenError> {
        if config.size < 16 || config.parcels_per_side < 2 {
            return Err(DataGenError::Config(
                "landscape needs size >= 16 and >= 2 parcels per side".into(),
            ));
        }
        let mut rng = Rng::seed_from(config.seed);
        let n = config.size;
        let transform = GeoTransform::new(0.0, n as f64 * config.pixel_m, config.pixel_m);

        // Terrain: gentle fractal hills, 80–320 m elevation.
        let relief = Fbm::new(config.seed ^ 0x7e11, 0.015).with_octaves(5);
        let dem = Raster::from_fn(n, n, transform, |c, r| {
            (80.0 + 240.0 * relief.sample01(c as f64, r as f64)) as f32
        });

        // Soil: available water capacity correlated with (inverse) slope
        // via a separate noise field, 60–220 mm.
        let soil_noise = Fbm::new(config.seed ^ 0x5011, 0.03).with_octaves(4);
        let soil_awc = Raster::from_fn(n, n, transform, |c, r| {
            (60.0 + 160.0 * soil_noise.sample01(c as f64, r as f64)) as f32
        });

        // Landscape zoning from coarse noise: low = water/wetland, high =
        // forest/urban ridges, middle = arable land.
        let zone = Fbm::new(config.seed ^ 0x20e, 0.02).with_octaves(3);

        // Jittered-grid parcels over the arable zone.
        let cell = n / config.parcels_per_side;
        let mut parcels = Vec::new();
        let mut parcel_map: Raster<u16> = Raster::zeros(n, n, transform);
        let mut truth: Raster<u8> = Raster::zeros(n, n, transform);
        // Background classes first.
        for r in 0..n {
            for c in 0..n {
                let z = zone.sample01(c as f64, r as f64);
                let class = if z < 0.18 {
                    LandClass::Water
                } else if z < 0.26 {
                    LandClass::Wetland
                } else if z > 0.82 {
                    LandClass::Urban
                } else if z > 0.68 {
                    LandClass::Forest
                } else {
                    LandClass::BareSoil // provisional; parcels overwrite
                };
                truth.put(c, r, class.as_index() as u8);
            }
        }
        // Crop shares typical of a central-European watershed.
        let crop_weights = [0.32, 0.22, 0.14, 0.12, 0.20]; // CROPS order
        let mut next_id: u16 = 1;
        for gy in 0..config.parcels_per_side {
            for gx in 0..config.parcels_per_side {
                // Jittered parcel rectangle inside its grid cell.
                let x0 = gx * cell + rng.range(0, cell / 4 + 1);
                let y0 = gy * cell + rng.range(0, cell / 4 + 1);
                let w = cell - rng.range(0, cell / 3 + 1) - 1;
                let h = cell - rng.range(0, cell / 3 + 1) - 1;
                if w < 3 || h < 3 || x0 + w >= n || y0 + h >= n {
                    continue;
                }
                // Only place parcels on arable zone (probe the centre).
                let (cc, cr) = (x0 + w / 2, y0 + h / 2);
                let z = zone.sample01(cc as f64, cr as f64);
                if !(0.26..=0.68).contains(&z) {
                    continue;
                }
                let class = LandClass::CROPS
                    [rng.weighted_index(&crop_weights).expect("weights sum > 0")];
                let sowing_shift = rng.range(0, 21) as i16 - 10;
                // Pixel rect -> world polygon.
                let (wx0, wy1) = {
                    let p = transform.pixel_center(x0, y0);
                    (p.x - config.pixel_m / 2.0, p.y + config.pixel_m / 2.0)
                };
                let (wx1, wy0) = {
                    let p = transform.pixel_center(x0 + w - 1, y0 + h - 1);
                    (p.x + config.pixel_m / 2.0, p.y - config.pixel_m / 2.0)
                };
                let polygon = Polygon::from_exterior(vec![
                    Point::new(wx0, wy0),
                    Point::new(wx1, wy0),
                    Point::new(wx1, wy1),
                    Point::new(wx0, wy1),
                ])
                .expect("rectangle ring valid");
                for r in y0..y0 + h {
                    for c in x0..x0 + w {
                        parcel_map.put(c, r, next_id);
                        truth.put(c, r, class.as_index() as u8);
                    }
                }
                parcels.push(Parcel {
                    id: next_id,
                    class,
                    polygon,
                    sowing_shift,
                });
                next_id += 1;
            }
        }
        if parcels.is_empty() {
            return Err(DataGenError::Config(
                "no parcels landed on arable zone; adjust seed/size".into(),
            ));
        }
        Ok(Landscape {
            config,
            dem,
            truth,
            parcel_map,
            soil_awc,
            parcels,
        })
    }

    /// Class of a pixel.
    pub fn class_at(&self, col: usize, row: usize) -> LandClass {
        LandClass::from_index(self.truth.at(col, row) as usize).expect("truth stores valid indexes")
    }

    /// The parcel covering a pixel, if any.
    pub fn parcel_at(&self, col: usize, row: usize) -> Option<&Parcel> {
        match self.parcel_map.at(col, row) {
            0 => None,
            id => self.parcels.get(id as usize - 1),
        }
    }

    /// Effective day-of-year for phenology at a pixel (parcel sowing
    /// shifts move the curve).
    pub fn effective_doy(&self, col: usize, row: usize, doy: u16) -> u16 {
        match self.parcel_at(col, row) {
            Some(p) => (doy as i32 - p.sowing_shift as i32).clamp(1, 365) as u16,
            None => doy,
        }
    }

    /// Class share histogram over all pixels (index order of `ALL`).
    pub fn class_shares(&self) -> [f64; 10] {
        let mut counts = [0usize; 10];
        for v in self.truth.data() {
            counts[*v as usize] += 1;
        }
        let total = self.truth.data().len() as f64;
        let mut shares = [0.0; 10];
        for (s, c) in shares.iter_mut().zip(counts) {
            *s = c as f64 / total;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Landscape {
        Landscape::generate(LandscapeConfig::default()).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.dem, b.dem);
        assert_eq!(a.parcels.len(), b.parcels.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = world();
        let b = Landscape::generate(LandscapeConfig {
            seed: 99,
            ..LandscapeConfig::default()
        })
        .unwrap();
        assert_ne!(a.truth, b.truth);
    }

    #[test]
    fn parcels_are_consistent_with_truth() {
        let w = world();
        assert!(!w.parcels.is_empty());
        for p in &w.parcels {
            // Probe the parcel centroid pixel: class must match.
            let centroid = ee_geo::algorithms::polygon_centroid(&p.polygon);
            let (c, r) = w.truth.transform().world_to_pixel(&centroid);
            let (c, r) = (c as usize, r as usize);
            assert_eq!(w.class_at(c, r), p.class, "parcel {}", p.id);
            assert_eq!(w.parcel_at(c, r).map(|q| q.id), Some(p.id));
        }
    }

    #[test]
    fn world_has_diverse_cover() {
        let w = world();
        let shares = w.class_shares();
        let present = shares.iter().filter(|&&s| s > 0.0).count();
        assert!(present >= 6, "at least 6 of 10 classes present: {shares:?}");
        // Crops cover a substantial share of an agricultural watershed.
        let crop_share: f64 = LandClass::CROPS
            .iter()
            .map(|c| shares[c.as_index()])
            .sum();
        assert!(crop_share > 0.2, "crop share {crop_share}");
    }

    #[test]
    fn dem_and_soil_ranges() {
        let w = world();
        let (lo, hi) = w.dem.min_max();
        assert!(lo >= 80.0 && hi <= 320.0, "DEM range [{lo}, {hi}]");
        let (slo, shi) = w.soil_awc.min_max();
        assert!(slo >= 60.0 && shi <= 220.0, "AWC range [{slo}, {shi}]");
    }

    #[test]
    fn effective_doy_shifts_with_sowing() {
        let w = world();
        let p = &w.parcels[0];
        let centroid = ee_geo::algorithms::polygon_centroid(&p.polygon);
        let (c, r) = w.truth.transform().world_to_pixel(&centroid);
        let shifted = w.effective_doy(c as usize, r as usize, 150);
        assert_eq!(shifted as i32, 150 - p.sowing_shift as i32);
        // Background pixels are unshifted: find one.
        let mut bg = None;
        'outer: for r in 0..w.config.size {
            for c in 0..w.config.size {
                if w.parcel_at(c, r).is_none() {
                    bg = Some((c, r));
                    break 'outer;
                }
            }
        }
        let (c, r) = bg.expect("some background exists");
        assert_eq!(w.effective_doy(c, r, 150), 150);
    }

    #[test]
    fn config_validation() {
        assert!(Landscape::generate(LandscapeConfig {
            size: 8,
            ..LandscapeConfig::default()
        })
        .is_err());
        assert!(Landscape::generate(LandscapeConfig {
            parcels_per_side: 1,
            ..LandscapeConfig::default()
        })
        .is_err());
    }

    #[test]
    fn parcel_map_zero_is_background() {
        let w = world();
        let bg_pixels = w.parcel_map.data().iter().filter(|&&v| v == 0).count();
        assert!(bg_pixels > 0, "world is not wall-to-wall parcels");
    }
}
