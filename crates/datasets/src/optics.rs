//! The Sentinel-2 optical simulator.
//!
//! For a landscape, a date and a seed, produce a 13-band scene:
//!
//! * per-pixel reflectance = canopy-weighted mix of the class's developed
//!   spectrum and bare soil (phenology drives the seasonal signal);
//! * multiplicative terrain illumination from the DEM gradient;
//! * additive Gaussian sensor noise per band;
//! * a fractal cloud field (bright, spectrally flat) with a per-scene
//!   cloud fraction — the reason median composites exist.

use crate::landclass::LandClass;
use crate::landscape::Landscape;
use crate::DataGenError;
use ee_raster::{Band, Mission, Raster, Scene};
use ee_util::noise::Fbm;
use ee_util::timeline::Date;
use ee_util::Rng;

/// Optical simulation knobs.
#[derive(Debug, Clone, Copy)]
pub struct OpticsConfig {
    /// Fraction of the scene hidden by cloud (0..1).
    pub cloud_fraction: f64,
    /// Per-band additive noise standard deviation.
    pub noise_std: f32,
}

impl Default for OpticsConfig {
    fn default() -> Self {
        Self {
            cloud_fraction: 0.15,
            noise_std: 0.012,
        }
    }
}

/// Simulate one Sentinel-2 scene over the landscape.
pub fn simulate_s2(
    world: &Landscape,
    date: Date,
    config: OpticsConfig,
    seed: u64,
) -> Result<Scene, DataGenError> {
    let n = world.config.size;
    let transform = world.truth.transform();
    let mut rng = Rng::seed_from(seed ^ (date.ordinal() as u64) << 32 ^ date.year() as u64);
    let doy = date.ordinal();

    // Cloud mask: thresholded fBm so clouds are spatially coherent.
    let cloud_field = Fbm::new(seed ^ 0xc10d ^ date.ordinal() as u64, 0.03).with_octaves(4);
    let threshold = 1.0 - config.cloud_fraction;
    let cloudy = |c: usize, r: usize| cloud_field.sample01(c as f64, r as f64) > threshold;

    // Terrain illumination: brighter on "south-east" slopes.
    let illum = |c: usize, r: usize| -> f32 {
        let e = world.dem.at(c, r);
        let ex = world.dem.at((c + 1).min(n - 1), r);
        let ey = world.dem.at(c, (r + 1).min(n - 1));
        let dx = (ex - e) / world.config.pixel_m as f32;
        let dy = (ey - e) / world.config.pixel_m as f32;
        (1.0 + 0.35 * (dx - dy)).clamp(0.75, 1.25)
    };

    let soil = LandClass::BareSoil;
    let mut scene = Scene::new(
        format!("S2_SYN_{}_{:03}", date.year(), date.ordinal()),
        Mission::Sentinel2,
        date,
    );
    for band in Band::S2_ALL {
        let mut raster = Raster::zeros(n, n, transform);
        for r in 0..n {
            for c in 0..n {
                let value = if cloudy(c, r) {
                    // Clouds: bright, flat, slightly noisy.
                    0.65 + rng.normal(0.0, 0.03) as f32
                } else {
                    let class = world.class_at(c, r);
                    let eff_doy = world.effective_doy(c, r, doy);
                    let canopy = class.canopy(eff_doy);
                    let developed = class.reflectance(band);
                    let bare = soil.reflectance(band);
                    let mixed = canopy * developed + (1.0 - canopy) * bare;
                    // Water/urban ignore the soil mix (canopy 0 already
                    // yields bare soil, wrong for them) — use their own
                    // spectrum directly for non-crop statics.
                    let base = if class.is_crop() {
                        mixed
                    } else if class == LandClass::Forest || class == LandClass::Wetland {
                        let cf = class.canopy(eff_doy);
                        cf * developed + (1.0 - cf) * bare
                    } else {
                        developed
                    };
                    base * illum(c, r) + rng.normal(0.0, config.noise_std as f64) as f32
                };
                raster.put(c, r, value.clamp(0.0, 1.0));
            }
        }
        scene.add_band(band, raster)?;
    }
    Ok(scene)
}

/// Simulate a full season of scenes at the given dates.
pub fn simulate_season(
    world: &Landscape,
    dates: &[Date],
    config: OpticsConfig,
    seed: u64,
) -> Result<ee_raster::stack::TimeStack, DataGenError> {
    let mut stack = ee_raster::stack::TimeStack::new();
    for (i, &date) in dates.iter().enumerate() {
        let scene = simulate_s2(world, date, config, seed ^ (i as u64 * 0x9e37))?;
        stack.push(scene)?;
    }
    Ok(stack)
}

/// The standard acquisition calendar: one scene every `every` days across
/// a year (Sentinel-2's 5-day revisit would be `every = 5`).
pub fn acquisition_dates(year: i32, every: u16) -> Vec<Date> {
    assert!(every > 0);
    let mut out = Vec::new();
    let mut doy = 1u16;
    while let Some(d) = Date::from_ordinal(year, doy) {
        out.push(d);
        doy += every;
        if doy > 365 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::LandscapeConfig;
    use ee_raster::indices;

    fn world() -> Landscape {
        Landscape::generate(LandscapeConfig {
            size: 64,
            parcels_per_side: 6,
            ..LandscapeConfig::default()
        })
        .unwrap()
    }

    fn clear() -> OpticsConfig {
        OpticsConfig {
            cloud_fraction: 0.0,
            noise_std: 0.005,
        }
    }

    #[test]
    fn scene_has_13_bands_and_matches_grid() {
        let w = world();
        let s = simulate_s2(&w, Date::new(2017, 6, 15).unwrap(), clear(), 1).unwrap();
        assert_eq!(s.num_bands(), 13);
        assert_eq!(s.shape(), (64, 64));
        assert_eq!(s.footprint(), w.truth.envelope());
        assert_eq!(s.mission, Mission::Sentinel2);
    }

    #[test]
    fn simulation_is_deterministic() {
        let w = world();
        let d = Date::new(2017, 6, 15).unwrap();
        let a = simulate_s2(&w, d, clear(), 7).unwrap();
        let b = simulate_s2(&w, d, clear(), 7).unwrap();
        assert_eq!(a.band(Band::B04).unwrap(), b.band(Band::B04).unwrap());
    }

    #[test]
    fn summer_wheat_is_green_winter_is_not() {
        let w = world();
        // Find a wheat pixel.
        let mut wheat = None;
        'o: for r in 0..64 {
            for c in 0..64 {
                if w.class_at(c, r) == LandClass::Wheat {
                    wheat = Some((c, r));
                    break 'o;
                }
            }
        }
        let Some((c, r)) = wheat else {
            return; // this seed grew no wheat on a small world; fine
        };
        let summer = simulate_s2(&w, Date::new(2017, 5, 30).unwrap(), clear(), 3).unwrap();
        let winter = simulate_s2(&w, Date::new(2017, 1, 10).unwrap(), clear(), 3).unwrap();
        let ndvi_summer = indices::ndvi(&summer).unwrap().at(c, r);
        let ndvi_winter = indices::ndvi(&winter).unwrap().at(c, r);
        assert!(
            ndvi_summer > ndvi_winter + 0.15,
            "seasonal NDVI: summer {ndvi_summer} vs winter {ndvi_winter}"
        );
    }

    #[test]
    fn water_is_dark_in_nir() {
        let w = world();
        let s = simulate_s2(&w, Date::new(2017, 7, 1).unwrap(), clear(), 5).unwrap();
        let nir = s.band(Band::B08).unwrap();
        let mut water_vals = Vec::new();
        let mut veg_vals = Vec::new();
        for r in 0..64 {
            for c in 0..64 {
                match w.class_at(c, r) {
                    LandClass::Water => water_vals.push(nir.at(c, r)),
                    LandClass::Forest => veg_vals.push(nir.at(c, r)),
                    _ => {}
                }
            }
        }
        if water_vals.is_empty() || veg_vals.is_empty() {
            return;
        }
        let wm = water_vals.iter().sum::<f32>() / water_vals.len() as f32;
        let vm = veg_vals.iter().sum::<f32>() / veg_vals.len() as f32;
        assert!(vm > wm * 3.0, "forest NIR {vm} vs water {wm}");
    }

    #[test]
    fn clouds_brighten_pixels() {
        let w = world();
        let d = Date::new(2017, 6, 1).unwrap();
        let clear_scene = simulate_s2(&w, d, clear(), 11).unwrap();
        let cloudy_scene = simulate_s2(
            &w,
            d,
            OpticsConfig {
                cloud_fraction: 0.5,
                noise_std: 0.005,
            },
            11,
        )
        .unwrap();
        let clear_mean = clear_scene.band(Band::B02).unwrap().mean();
        let cloudy_mean = cloudy_scene.band(Band::B02).unwrap().mean();
        assert!(
            cloudy_mean > clear_mean + 0.1,
            "clouds raise blue-band mean: {clear_mean} → {cloudy_mean}"
        );
    }

    #[test]
    fn season_stack_orders_dates() {
        let w = world();
        let dates = acquisition_dates(2017, 30);
        assert_eq!(dates.len(), 13);
        let stack = simulate_season(&w, &dates[..4], clear(), 2).unwrap();
        assert_eq!(stack.len(), 4);
        let ds = stack.dates();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn acquisition_calendar() {
        let d5 = acquisition_dates(2017, 5);
        assert_eq!(d5.len(), 73);
        assert_eq!(d5[0], Date::new(2017, 1, 1).unwrap());
        assert_eq!(d5[1].ordinal(), 6);
    }

    #[test]
    fn reflectances_stay_in_unit_range() {
        let w = world();
        let s = simulate_s2(
            &w,
            Date::new(2017, 8, 1).unwrap(),
            OpticsConfig {
                cloud_fraction: 0.3,
                noise_std: 0.05,
            },
            13,
        )
        .unwrap();
        for (_, raster) in s.bands() {
            let (lo, hi) = raster.min_max();
            assert!(lo >= 0.0 && hi <= 1.0, "band out of range [{lo}, {hi}]");
        }
    }
}
