//! The Sentinel-1 SAR simulator.
//!
//! Backscatter per class (dB) with canopy modulation, multiplicative
//! gamma speckle (the defining SAR noise), and optional soil-moisture
//! brightening after rain. SAR sees through clouds — the reason A2's sea
//! ice service is SAR-first — so there is no cloud model here.

use crate::landscape::Landscape;
use crate::DataGenError;
use ee_raster::{Band, Mission, Raster, Scene};
use ee_util::timeline::Date;
use ee_util::Rng;

/// SAR simulation knobs.
#[derive(Debug, Clone, Copy)]
pub struct SarConfig {
    /// Number of looks (averaging) — higher = less speckle.
    pub looks: u32,
    /// Extra soil-moisture brightening in dB (0 = dry).
    pub moisture_db: f32,
}

impl Default for SarConfig {
    fn default() -> Self {
        Self {
            looks: 4,
            moisture_db: 0.0,
        }
    }
}

/// Gamma-distributed speckle with unit mean and `looks` shape, via the
/// sum of `looks` exponentials.
fn speckle(rng: &mut Rng, looks: u32) -> f64 {
    let l = looks.max(1);
    let mut acc = 0.0;
    for _ in 0..l {
        acc += rng.exponential(1.0);
    }
    acc / l as f64
}

/// Simulate one Sentinel-1 (VV, VH) scene over the landscape.
pub fn simulate_s1(
    world: &Landscape,
    date: Date,
    config: SarConfig,
    seed: u64,
) -> Result<Scene, DataGenError> {
    let n = world.config.size;
    let transform = world.truth.transform();
    let mut rng = Rng::seed_from(seed ^ 0x5a4 ^ date.ordinal() as u64);
    let doy = date.ordinal();
    let mut scene = Scene::new(
        format!("S1_SYN_{}_{:03}", date.year(), date.ordinal()),
        Mission::Sentinel1,
        date,
    );
    for (band_idx, band) in Band::S1_ALL.iter().enumerate() {
        let mut raster = Raster::zeros(n, n, transform);
        for r in 0..n {
            for c in 0..n {
                let class = world.class_at(c, r);
                let eff_doy = world.effective_doy(c, r, doy);
                let (vv, vh) = class.backscatter_db();
                let developed = if band_idx == 0 { vv } else { vh };
                // Growing canopy adds volume scattering over the bare
                // field; bare fields sit ~4 dB below developed crops.
                let base = if class.is_crop() {
                    let canopy = class.canopy(eff_doy);
                    developed - 4.0 * (1.0 - canopy)
                } else {
                    developed
                };
                let base = base + config.moisture_db;
                // Speckle is multiplicative in linear power.
                let linear = 10f64.powf(base as f64 / 10.0) * speckle(&mut rng, config.looks);
                raster.put(c, r, (10.0 * linear.log10()) as f32);
            }
        }
        scene.add_band(*band, raster)?;
    }
    Ok(scene)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landclass::LandClass;
    use crate::landscape::LandscapeConfig;

    fn world() -> Landscape {
        Landscape::generate(LandscapeConfig {
            size: 64,
            parcels_per_side: 6,
            ..LandscapeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn scene_structure() {
        let w = world();
        let s = simulate_s1(&w, Date::new(2017, 6, 1).unwrap(), SarConfig::default(), 1).unwrap();
        assert_eq!(s.num_bands(), 2);
        assert!(s.has_band(Band::VV) && s.has_band(Band::VH));
        assert_eq!(s.mission, Mission::Sentinel1);
    }

    #[test]
    fn class_means_are_separable_despite_speckle() {
        let w = world();
        let s = simulate_s1(&w, Date::new(2017, 7, 1).unwrap(), SarConfig::default(), 3).unwrap();
        let vv = s.band(Band::VV).unwrap();
        let mut by_class: std::collections::HashMap<LandClass, Vec<f32>> = Default::default();
        for r in 0..64 {
            for c in 0..64 {
                by_class.entry(w.class_at(c, r)).or_default().push(vv.at(c, r));
            }
        }
        let mean = |v: &Vec<f32>| v.iter().sum::<f32>() / v.len() as f32;
        if let (Some(water), Some(urban)) =
            (by_class.get(&LandClass::Water), by_class.get(&LandClass::Urban))
        {
            if water.len() > 20 && urban.len() > 20 {
                assert!(
                    mean(urban) > mean(water) + 10.0,
                    "urban {} vs water {}",
                    mean(urban),
                    mean(water)
                );
            }
        }
    }

    #[test]
    fn more_looks_less_speckle() {
        let w = world();
        let d = Date::new(2017, 6, 1).unwrap();
        let noisy = simulate_s1(&w, d, SarConfig { looks: 1, moisture_db: 0.0 }, 5).unwrap();
        let smooth = simulate_s1(&w, d, SarConfig { looks: 16, moisture_db: 0.0 }, 5).unwrap();
        // Compare within-class variance on the same class mask.
        let target = LandClass::Grassland;
        let var_of = |s: &Scene| {
            let vv = s.band(Band::VV).unwrap();
            let vals: Vec<f32> = (0..64)
                .flat_map(|r| (0..64).map(move |c| (c, r)))
                .filter(|&(c, r)| w.class_at(c, r) == target)
                .map(|(c, r)| vv.at(c, r))
                .collect();
            if vals.len() < 20 {
                return None;
            }
            let m = vals.iter().sum::<f32>() / vals.len() as f32;
            Some(vals.iter().map(|v| (v - m).powi(2)).sum::<f32>() / vals.len() as f32)
        };
        if let (Some(v1), Some(v16)) = (var_of(&noisy), var_of(&smooth)) {
            assert!(v16 < v1 / 2.0, "multilooking reduces variance: {v1} → {v16}");
        }
    }

    #[test]
    fn moisture_brightens() {
        let w = world();
        let d = Date::new(2017, 6, 1).unwrap();
        let dry = simulate_s1(&w, d, SarConfig::default(), 9).unwrap();
        let wet = simulate_s1(
            &w,
            d,
            SarConfig {
                moisture_db: 3.0,
                ..SarConfig::default()
            },
            9,
        )
        .unwrap();
        assert!(
            wet.band(Band::VV).unwrap().mean() > dry.band(Band::VV).unwrap().mean() + 2.0
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let w = world();
        let d = Date::new(2017, 2, 10).unwrap();
        let a = simulate_s1(&w, d, SarConfig::default(), 42).unwrap();
        let b = simulate_s1(&w, d, SarConfig::default(), 42).unwrap();
        assert_eq!(a.band(Band::VH).unwrap(), b.band(Band::VH).unwrap());
    }
}
