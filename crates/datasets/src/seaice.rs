//! The polar world of application A2: drifting sea ice with WMO
//! stage-of-development classes, leads, ridges and icebergs.
//!
//! The world is a time-indexed field: ice thickness is a fractal noise
//! field advected by a drift vector (plus meander), so consecutive days
//! are spatially coherent — the property iceberg tracking and NRT
//! compositing rely on. Ground truth at 40 m: class, concentration,
//! leads, ridges, iceberg positions with stable identities.

use crate::DataGenError;
use ee_raster::raster::GeoTransform;
use ee_raster::{Band, Mission, Raster, Scene};
use ee_util::noise::Fbm;
use ee_util::timeline::Date;
use ee_util::Rng;

/// WMO sea-ice stage-of-development classes (plus open water).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IceClass {
    /// Ice-free ocean.
    OpenWater,
    /// New ice (< 10 cm).
    NewIce,
    /// Young ice (10–30 cm).
    YoungIce,
    /// First-year ice (30–120 cm).
    FirstYearIce,
    /// Multi-year ice (> 120 cm, survived a melt season).
    MultiYearIce,
}

impl IceClass {
    /// All classes in index order.
    pub const ALL: [IceClass; 5] = [
        IceClass::OpenWater,
        IceClass::NewIce,
        IceClass::YoungIce,
        IceClass::FirstYearIce,
        IceClass::MultiYearIce,
    ];

    /// Dense index 0..5.
    pub fn as_index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("in ALL")
    }

    /// Inverse of [`IceClass::as_index`].
    pub fn from_index(i: usize) -> Option<IceClass> {
        Self::ALL.get(i).copied()
    }

    /// WMO-style name.
    pub fn name(self) -> &'static str {
        match self {
            IceClass::OpenWater => "OpenWater",
            IceClass::NewIce => "NewIce",
            IceClass::YoungIce => "YoungIce",
            IceClass::FirstYearIce => "FirstYearIce",
            IceClass::MultiYearIce => "MultiYearIce",
        }
    }

    /// Classify by thickness in metres (negative = water).
    pub fn from_thickness(m: f64) -> IceClass {
        if m <= 0.0 {
            IceClass::OpenWater
        } else if m < 0.10 {
            IceClass::NewIce
        } else if m < 0.30 {
            IceClass::YoungIce
        } else if m < 1.20 {
            IceClass::FirstYearIce
        } else {
            IceClass::MultiYearIce
        }
    }

    /// Mean (VV, VH) backscatter in dB. Deformed/old ice is rough and
    /// bright; calm water and smooth new ice are dark.
    pub fn backscatter_db(self) -> (f32, f32) {
        match self {
            IceClass::OpenWater => (-20.0, -28.0),
            IceClass::NewIce => (-17.0, -26.0),
            IceClass::YoungIce => (-14.0, -22.0),
            IceClass::FirstYearIce => (-11.0, -18.0),
            IceClass::MultiYearIce => (-7.5, -13.0),
        }
    }
}

/// An iceberg's trajectory (one position per day).
#[derive(Debug, Clone)]
pub struct Iceberg {
    /// Stable identity.
    pub id: u32,
    /// Radius in pixels (1..3).
    pub radius: f64,
    /// Pixel-space positions, indexed by day.
    pub track: Vec<(f64, f64)>,
}

/// Ice-world generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct IceWorldConfig {
    /// Pixels per side.
    pub size: usize,
    /// Pixel size in metres (40 m SAR grid).
    pub pixel_m: f64,
    /// Number of days simulated.
    pub days: usize,
    /// Mean ice cover of the region (0..1): moves the thickness offset.
    pub ice_cover: f64,
    /// Number of icebergs.
    pub icebergs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IceWorldConfig {
    fn default() -> Self {
        Self {
            size: 160,
            pixel_m: 40.0,
            days: 20,
            ice_cover: 0.65,
            icebergs: 8,
            seed: 20170201,
        }
    }
}

/// The generated polar world.
pub struct IceWorld {
    /// Configuration used.
    pub config: IceWorldConfig,
    /// Iceberg trajectories.
    pub icebergs: Vec<Iceberg>,
    thickness_noise: Fbm,
    lead_noise: Fbm,
    ridge_noise: Fbm,
    drift: (f64, f64),
    transform: GeoTransform,
    thickness_offset: f64,
}

impl IceWorld {
    /// Generate a world.
    pub fn generate(config: IceWorldConfig) -> Result<IceWorld, DataGenError> {
        if config.size < 16 || config.days == 0 {
            return Err(DataGenError::Config(
                "ice world needs size >= 16 and days >= 1".into(),
            ));
        }
        let mut rng = Rng::seed_from(config.seed);
        let drift = (rng.range_f64(0.8, 2.0), rng.range_f64(-0.8, 0.8));
        let transform = GeoTransform::new(
            0.0,
            config.size as f64 * config.pixel_m,
            config.pixel_m,
        );
        // Thickness offset calibrated so ~ice_cover of the field is > 0:
        // fBm values are bell-shaped, so take the empirical quantile of a
        // coarse sample of the actual noise field.
        let calibration_noise = Fbm::new(config.seed ^ 0x1ce, 0.02).with_octaves(5);
        let mut samples: Vec<f64> = Vec::with_capacity(64 * 64);
        for i in 0..64 {
            for j in 0..64 {
                samples.push(calibration_noise.sample01(i as f64 * 3.1, j as f64 * 3.1));
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite noise"));
        let q_index = (((1.0 - config.ice_cover) * samples.len() as f64) as usize)
            .min(samples.len() - 1);
        let thickness_offset = 1.0 - samples[q_index];
        let mut icebergs = Vec::with_capacity(config.icebergs);
        for id in 0..config.icebergs {
            let mut x = rng.range_f64(5.0, config.size as f64 - 5.0);
            let mut y = rng.range_f64(5.0, config.size as f64 - 5.0);
            // Icebergs drift with the pack plus their own slip.
            let vx = drift.0 * 0.8 + rng.range_f64(-0.3, 0.3);
            let vy = drift.1 * 0.8 + rng.range_f64(-0.3, 0.3);
            let radius = rng.range_f64(1.0, 2.5);
            let mut track = Vec::with_capacity(config.days);
            for _ in 0..config.days {
                track.push((x, y));
                x += vx + rng.normal(0.0, 0.15);
                y += vy + rng.normal(0.0, 0.15);
                // Reflect at the borders to stay in the scene.
                if x < 2.0 || x > config.size as f64 - 2.0 {
                    x = x.clamp(2.0, config.size as f64 - 2.0);
                }
                if y < 2.0 || y > config.size as f64 - 2.0 {
                    y = y.clamp(2.0, config.size as f64 - 2.0);
                }
            }
            icebergs.push(Iceberg {
                id: id as u32,
                radius,
                track,
            });
        }
        Ok(IceWorld {
            thickness_noise: Fbm::new(config.seed ^ 0x1ce, 0.02).with_octaves(5),
            lead_noise: Fbm::new(config.seed ^ 0x1ead, 0.05).with_octaves(3),
            ridge_noise: Fbm::new(config.seed ^ 0x21d6e, 0.08).with_octaves(3),
            drift,
            transform,
            thickness_offset,
            config,
            icebergs,
        })
    }

    /// The world's geotransform.
    pub fn transform(&self) -> GeoTransform {
        self.transform
    }

    fn drifted(&self, c: usize, r: usize, day: usize) -> (f64, f64) {
        // Advection: the field moves under the sensor.
        let meander = (day as f64 * 0.7).sin() * 1.5;
        (
            c as f64 + day as f64 * self.drift.0 + meander,
            r as f64 + day as f64 * self.drift.1,
        )
    }

    /// Ice thickness in metres at a pixel on a day (≤ 0 = open water).
    pub fn thickness(&self, c: usize, r: usize, day: usize) -> f64 {
        let (x, y) = self.drifted(c, r, day);
        let base = self.thickness_noise.sample01(x, y); // 0..1
        // Map so that `ice_cover` of the field is ice, up to ~2.5 m, and
        // ice slowly thickens through the freezing season.
        let season = 1.0 + 0.01 * day as f64;
        (base - (1.0 - self.thickness_offset)) * 2.5 * season
    }

    /// Is the pixel in a lead (linear opening) on that day? Only meaningful
    /// where there is ice.
    pub fn in_lead(&self, c: usize, r: usize, day: usize) -> bool {
        let (x, y) = self.drifted(c, r, day);
        // Zero-crossings of a smooth field form connected curves — leads.
        self.lead_noise.sample(x, y).abs() < 0.025
    }

    /// Is the pixel on a pressure ridge on that day?
    pub fn on_ridge(&self, c: usize, r: usize, day: usize) -> bool {
        let (x, y) = self.drifted(c, r, day);
        self.ridge_noise.sample(x, y) > 0.55 && self.thickness(c, r, day) > 0.3
    }

    /// Ground-truth class raster for a day (leads force open water).
    pub fn truth(&self, day: usize) -> Raster<u8> {
        let n = self.config.size;
        Raster::from_fn(n, n, self.transform, |c, r| {
            let t = self.thickness(c, r, day);
            let class = if t > 0.0 && self.in_lead(c, r, day) {
                IceClass::OpenWater
            } else {
                IceClass::from_thickness(t)
            };
            class.as_index() as u8
        })
    }

    /// Per-pixel ice indicator (1 = ice) for concentration aggregation.
    pub fn ice_mask(&self, day: usize) -> Raster<u8> {
        let truth = self.truth(day);
        truth.map(|v| if v == 0 { 0u8 } else { 1u8 })
    }

    /// Iceberg positions (pixel coordinates) on a day.
    pub fn iceberg_positions(&self, day: usize) -> Vec<(u32, f64, f64)> {
        self.icebergs
            .iter()
            .filter_map(|b| b.track.get(day).map(|&(x, y)| (b.id, x, y)))
            .collect()
    }

    /// Simulate the day's SAR scene (VV + VH at 40 m), with speckle,
    /// bright ridges and very bright iceberg point targets.
    pub fn simulate_sar(&self, day: usize, date: Date, seed: u64) -> Result<Scene, DataGenError> {
        let n = self.config.size;
        let mut rng = Rng::seed_from(seed ^ day as u64);
        let truth = self.truth(day);
        let bergs = self.iceberg_positions(day);
        let mut scene = Scene::new(
            format!("S1_ICE_{}_{:03}_d{day}", date.year(), date.ordinal()),
            Mission::Sentinel1,
            date,
        );
        for (bi, band) in Band::S1_ALL.iter().enumerate() {
            let mut raster = Raster::zeros(n, n, self.transform);
            for r in 0..n {
                for c in 0..n {
                    let class = IceClass::from_index(truth.at(c, r) as usize).expect("valid");
                    let (vv, vh) = class.backscatter_db();
                    let mut db = if bi == 0 { vv } else { vh };
                    if self.on_ridge(c, r, day) {
                        db += 5.0; // deformed ice is bright
                    }
                    // Wind roughening varies open water by a few dB.
                    if class == IceClass::OpenWater {
                        db += (rng.f32() - 0.5) * 2.0;
                    }
                    // Iceberg point targets.
                    for &(_, bx, by) in &bergs {
                        let d2 = (bx - c as f64).powi(2) + (by - r as f64).powi(2);
                        if d2 < 4.0 {
                            db = db.max(0.0); // very strong return
                        }
                    }
                    let linear = 10f64.powf(db as f64 / 10.0)
                        * {
                            // 4-look gamma speckle.
                            let mut acc = 0.0;
                            for _ in 0..4 {
                                acc += rng.exponential(1.0);
                            }
                            acc / 4.0
                        };
                    raster.put(c, r, (10.0 * linear.log10()) as f32);
                }
            }
            scene.add_band(*band, raster)?;
        }
        Ok(scene)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_raster::resample;

    fn world() -> IceWorld {
        IceWorld::generate(IceWorldConfig {
            size: 96,
            days: 10,
            icebergs: 5,
            ..IceWorldConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn class_taxonomy() {
        assert_eq!(IceClass::ALL.len(), 5);
        assert_eq!(IceClass::from_thickness(-0.5), IceClass::OpenWater);
        assert_eq!(IceClass::from_thickness(0.05), IceClass::NewIce);
        assert_eq!(IceClass::from_thickness(0.2), IceClass::YoungIce);
        assert_eq!(IceClass::from_thickness(0.8), IceClass::FirstYearIce);
        assert_eq!(IceClass::from_thickness(2.0), IceClass::MultiYearIce);
        for (i, c) in IceClass::ALL.iter().enumerate() {
            assert_eq!(c.as_index(), i);
        }
    }

    #[test]
    fn ice_cover_close_to_target() {
        let w = world();
        let mask = w.ice_mask(0);
        let cover = mask.data().iter().filter(|&&v| v == 1).count() as f64
            / mask.data().len() as f64;
        assert!(
            (cover - 0.65).abs() < 0.2,
            "ice cover {cover} vs target 0.65"
        );
    }

    #[test]
    fn field_is_coherent_across_days() {
        // Day-to-day truth must be similar (drift, not reshuffle).
        let w = world();
        let t0 = w.truth(0);
        let t1 = w.truth(1);
        let same = t0
            .data()
            .iter()
            .zip(t1.data())
            .filter(|(a, b)| a == b)
            .count() as f64
            / t0.data().len() as f64;
        assert!(same > 0.6, "day-to-day agreement {same}");
        // But across 9 days the field has moved visibly.
        let t9 = w.truth(9);
        let same9 = t0
            .data()
            .iter()
            .zip(t9.data())
            .filter(|(a, b)| a == b)
            .count() as f64
            / t0.data().len() as f64;
        assert!(same9 < same, "more drift over more days");
    }

    #[test]
    fn leads_exist_and_are_thin() {
        let w = world();
        let truth = w.truth(0);
        let lead_pixels = (0..96)
            .flat_map(|r| (0..96).map(move |c| (c, r)))
            .filter(|&(c, r)| w.in_lead(c, r, 0) && w.thickness(c, r, 0) > 0.0)
            .count();
        let total = 96 * 96;
        let frac = lead_pixels as f64 / total as f64;
        assert!(frac > 0.002 && frac < 0.15, "lead fraction {frac}");
        let _ = truth;
    }

    #[test]
    fn iceberg_tracks_are_continuous() {
        let w = world();
        assert_eq!(w.icebergs.len(), 5);
        for berg in &w.icebergs {
            assert_eq!(berg.track.len(), 10);
            for pair in berg.track.windows(2) {
                let d = ((pair[1].0 - pair[0].0).powi(2) + (pair[1].1 - pair[0].1).powi(2)).sqrt();
                assert!(d < 5.0, "iceberg {} jumped {d} px/day", berg.id);
            }
        }
        let p0 = w.iceberg_positions(0);
        assert_eq!(p0.len(), 5);
    }

    #[test]
    fn sar_scene_separates_ice_from_water() {
        let w = world();
        let s = w
            .simulate_sar(0, Date::new(2017, 2, 15).unwrap(), 7)
            .unwrap();
        let vv = s.band(Band::VV).unwrap();
        let truth = w.truth(0);
        let mut water = Vec::new();
        let mut myi = Vec::new();
        for (c, r, v) in truth.iter() {
            match IceClass::from_index(v as usize).unwrap() {
                IceClass::OpenWater => water.push(vv.at(c, r)),
                IceClass::MultiYearIce => myi.push(vv.at(c, r)),
                _ => {}
            }
        }
        if water.len() > 30 && myi.len() > 30 {
            let wm = water.iter().sum::<f32>() / water.len() as f32;
            let mm = myi.iter().sum::<f32>() / myi.len() as f32;
            assert!(mm > wm + 6.0, "MYI {mm} dB vs water {wm} dB");
        }
    }

    #[test]
    fn concentration_aggregates_to_1km(){
        let w = world();
        let mask = w.ice_mask(0);
        // 40 m → 1 km: factor 25.
        let conc = resample::fraction_of(&mask, 25, 1u8);
        assert_eq!(conc.shape(), (96usize.div_ceil(25), 96usize.div_ceil(25)));
        for (_, _, v) in conc.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn determinism() {
        let a = world();
        let b = world();
        assert_eq!(a.truth(3), b.truth(3));
        assert_eq!(a.iceberg_positions(3), b.iceberg_positions(3));
    }

    #[test]
    fn config_validation() {
        assert!(IceWorld::generate(IceWorldConfig {
            size: 4,
            ..IceWorldConfig::default()
        })
        .is_err());
        assert!(IceWorld::generate(IceWorldConfig {
            days: 0,
            ..IceWorldConfig::default()
        })
        .is_err());
    }
}
