//! Non-deep baselines for experiment E5: softmax (multinomial logistic)
//! regression and k-nearest-neighbours over flat feature vectors.
//!
//! The paper's claim is that deep architectures exploiting spatial,
//! spectral, temporal and multimodal structure beat shallow per-pixel
//! classifiers; these are the shallow side of that comparison.

use crate::data::Dataset;
use crate::model::{mlp, Sequential};
use crate::optim::{LrSchedule, Sgd};
use crate::DlError;
use ee_tensor::Tensor;
use ee_util::stats::ConfusionMatrix;
use ee_util::Rng;

/// Multinomial logistic regression = a single dense layer trained with
/// softmax cross-entropy. Implemented as a degenerate [`Sequential`].
pub struct SoftmaxRegression {
    model: Sequential,
}

impl SoftmaxRegression {
    /// Train on flat features `[N, D]`.
    pub fn fit(
        data: &Dataset,
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> Result<SoftmaxRegression, DlError> {
        let d: usize = data.x.shape()[1..].iter().product();
        let k = data.num_classes();
        let mut rng = Rng::seed_from(seed);
        // A 0-hidden-layer "MLP": one dense layer.
        let mut model = Sequential::new(
            vec![crate::layer::Layer::dense(d, k, &mut rng)],
            k,
        );
        let flat = data.x.reshape(&[data.len(), d])?;
        let mut opt = Sgd::new(LrSchedule::Constant(lr), 0.9);
        for _ in 0..epochs {
            model.compute_gradients(&flat, &data.labels)?;
            opt.step(&mut model)?;
        }
        Ok(SoftmaxRegression { model })
    }

    /// Evaluate on a dataset.
    pub fn evaluate(&mut self, data: &Dataset) -> Result<ConfusionMatrix, DlError> {
        let d: usize = data.x.shape()[1..].iter().product();
        let flat = data.x.reshape(&[data.len(), d])?;
        self.model.evaluate(&flat, &data.labels)
    }
}

/// Brute-force k-nearest-neighbours (Euclidean) over flat features.
pub struct Knn {
    k: usize,
    x: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Knn {
    /// "Fit" = memorise the training set.
    pub fn fit(data: &Dataset, k: usize) -> Result<Knn, DlError> {
        if k == 0 || data.is_empty() {
            return Err(DlError::Data("kNN needs k>0 and data".into()));
        }
        let d: usize = data.x.shape()[1..].iter().product();
        Ok(Knn {
            k,
            x: data.x.reshape(&[data.len(), d])?,
            labels: data.labels.clone(),
            num_classes: data.num_classes(),
        })
    }

    /// Predict one flat feature vector.
    pub fn predict_one(&self, q: &[f32]) -> usize {
        let d = self.x.shape()[1];
        debug_assert_eq!(q.len(), d);
        // Partial top-k scan: keep k best (distance, label).
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(self.k + 1);
        for i in 0..self.labels.len() {
            let row = &self.x.data()[i * d..(i + 1) * d];
            let mut dist = 0.0f32;
            for (a, b) in row.iter().zip(q) {
                let diff = a - b;
                dist += diff * diff;
            }
            let pos = best.partition_point(|(bd, _)| *bd < dist);
            if pos < self.k {
                best.insert(pos, (dist, self.labels[i]));
                best.truncate(self.k);
            }
        }
        let mut votes = vec![0usize; self.num_classes];
        for (_, y) in &best {
            votes[*y] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Evaluate on a dataset.
    pub fn evaluate(&self, data: &Dataset) -> Result<ConfusionMatrix, DlError> {
        let d: usize = data.x.shape()[1..].iter().product();
        if d != self.x.shape()[1] {
            return Err(DlError::Data("feature width mismatch".into()));
        }
        let flat = data.x.reshape(&[data.len(), d])?;
        let mut cm = ConfusionMatrix::new(self.num_classes);
        for i in 0..data.len() {
            let q = &flat.data()[i * d..(i + 1) * d];
            cm.record(data.labels[i], self.predict_one(q));
        }
        Ok(cm)
    }
}

/// Train an MLP baseline on flat features (the "spectral-only" per-pixel
/// network used in the single-modality ablation).
pub fn train_mlp_baseline(
    data: &Dataset,
    hidden: usize,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Result<Sequential, DlError> {
    let d: usize = data.x.shape()[1..].iter().product();
    let k = data.num_classes();
    let mut rng = Rng::seed_from(seed);
    let mut model = mlp(d, hidden, k, &mut rng);
    let flat = data.x.reshape(&[data.len(), d])?;
    let mut opt = Sgd::new(LrSchedule::Constant(lr), 0.9);
    for _ in 0..epochs {
        for idx in crate::data::BatchIter::new(data.len(), 64, seed) {
            let batch_x = {
                let row = d;
                let mut v = Vec::with_capacity(idx.len() * row);
                for &i in &idx {
                    v.extend_from_slice(&flat.data()[i * row..(i + 1) * row]);
                }
                Tensor::from_vec(&[idx.len(), row], v)?
            };
            let batch_y: Vec<usize> = idx.iter().map(|&i| data.labels[i]).collect();
            model.compute_gradients(&batch_x, &batch_y)?;
            opt.step(&mut model)?;
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize, seed: u64) -> Dataset {
        // Two concentric rings: linearly inseparable, kNN/MLP-friendly.
        let mut rng = Rng::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let r = if cls == 0 { 1.0 } else { 3.0 };
            let theta = rng.range_f64(0.0, std::f64::consts::TAU);
            xs.push((r * theta.cos() + rng.normal(0.0, 0.15)) as f32);
            xs.push((r * theta.sin() + rng.normal(0.0, 0.15)) as f32);
            ys.push(cls);
        }
        Dataset::new(Tensor::from_vec(&[n, 2], xs).unwrap(), ys).unwrap()
    }

    fn blob_data(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 3;
            let (cx, cy) = [(0.0, 2.0), (-2.0, -1.0), (2.0, -1.0)][cls];
            xs.push((cx + rng.normal(0.0, 0.4)) as f32);
            xs.push((cy + rng.normal(0.0, 0.4)) as f32);
            ys.push(cls);
        }
        Dataset::new(Tensor::from_vec(&[n, 2], xs).unwrap(), ys).unwrap()
    }

    #[test]
    fn softmax_regression_solves_linear_problem() {
        let data = blob_data(300, 1);
        let (train, test) = data.split(0.8, 2).unwrap();
        let mut lr = SoftmaxRegression::fit(&train, 200, 0.3, 3).unwrap();
        let cm = lr.evaluate(&test).unwrap();
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn softmax_regression_fails_nonlinear_problem() {
        let data = ring_data(400, 4);
        let (train, test) = data.split(0.8, 5).unwrap();
        let mut lr = SoftmaxRegression::fit(&train, 200, 0.3, 6).unwrap();
        let cm = lr.evaluate(&test).unwrap();
        assert!(cm.accuracy() < 0.75, "linear model cannot separate rings: {}", cm.accuracy());
    }

    #[test]
    fn knn_solves_nonlinear_problem() {
        let data = ring_data(400, 7);
        let (train, test) = data.split(0.8, 8).unwrap();
        let knn = Knn::fit(&train, 5).unwrap();
        let cm = knn.evaluate(&test).unwrap();
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn knn_k1_memorises_training_set() {
        let data = blob_data(60, 9);
        let knn = Knn::fit(&data, 1).unwrap();
        let cm = knn.evaluate(&data).unwrap();
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn knn_validates_inputs() {
        let data = blob_data(10, 10);
        assert!(Knn::fit(&data, 0).is_err());
        let knn = Knn::fit(&data, 3).unwrap();
        let wide = Dataset::new(Tensor::zeros(&[2, 5]), vec![0, 1]).unwrap();
        assert!(knn.evaluate(&wide).is_err());
    }

    #[test]
    fn mlp_baseline_beats_linear_on_rings() {
        let data = ring_data(400, 11);
        let (train, test) = data.split(0.8, 12).unwrap();
        let mut mlp = train_mlp_baseline(&train, 32, 60, 0.1, 13).unwrap();
        let d = 2;
        let flat = test.x.reshape(&[test.len(), d]).unwrap();
        let cm = mlp.evaluate(&flat, &test.labels).unwrap();
        assert!(cm.accuracy() > 0.9, "MLP accuracy {}", cm.accuracy());
    }
}
