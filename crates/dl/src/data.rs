//! In-memory labelled datasets and mini-batching.

use crate::DlError;
use ee_tensor::Tensor;
use ee_util::Rng;

/// A labelled dataset: `x` is `[N, ...]`, `labels` has one entry per row.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features (first axis is the sample axis).
    pub x: Tensor,
    /// Integer class labels.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Construct, validating the sample counts agree.
    pub fn new(x: Tensor, labels: Vec<usize>) -> Result<Self, DlError> {
        if x.shape().is_empty() || x.shape()[0] != labels.len() {
            return Err(DlError::Data(format!(
                "features have {} samples, labels {}",
                x.shape().first().copied().unwrap_or(0),
                labels.len()
            )));
        }
        Ok(Self { x, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes (max label + 1).
    pub fn num_classes(&self) -> usize {
        self.labels.iter().max().map(|m| m + 1).unwrap_or(0)
    }

    /// Take rows by index into a new dataset.
    pub fn take(&self, idx: &[usize]) -> Result<Dataset, DlError> {
        let row: usize = self.x.shape()[1..].iter().product();
        let mut data = Vec::with_capacity(idx.len() * row);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            if i >= self.len() {
                return Err(DlError::Data(format!("index {i} out of range")));
            }
            data.extend_from_slice(&self.x.data()[i * row..(i + 1) * row]);
            labels.push(self.labels[i]);
        }
        let mut shape = self.x.shape().to_vec();
        shape[0] = idx.len();
        Ok(Dataset {
            x: Tensor::from_vec(&shape, data)?,
            labels,
        })
    }

    /// Stratified train/test split: `train_frac` of each class goes to the
    /// training set, preserving class balance. Deterministic in the seed.
    pub fn split(&self, train_frac: f64, seed: u64) -> Result<(Dataset, Dataset), DlError> {
        let mut rng = Rng::seed_from(seed);
        let k = self.num_classes();
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &y) in self.labels.iter().enumerate() {
            by_class[y].push(i);
        }
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in &mut by_class {
            rng.shuffle(class);
            let cut = (class.len() as f64 * train_frac).round() as usize;
            train_idx.extend_from_slice(&class[..cut]);
            test_idx.extend_from_slice(&class[cut..]);
        }
        train_idx.sort_unstable();
        test_idx.sort_unstable();
        Ok((self.take(&train_idx)?, self.take(&test_idx)?))
    }

    /// Shard the dataset round-robin across `n` workers (data parallelism).
    pub fn shard(&self, n: usize) -> Result<Vec<Dataset>, DlError> {
        if n == 0 {
            return Err(DlError::Data("cannot shard into 0 parts".into()));
        }
        let mut parts = Vec::with_capacity(n);
        for w in 0..n {
            let idx: Vec<usize> = (w..self.len()).step_by(n).collect();
            parts.push(self.take(&idx)?);
        }
        Ok(parts)
    }

    /// Per-feature standardisation statistics `(mean, std)` over the
    /// flattened feature axis.
    pub fn feature_stats(&self) -> (Vec<f32>, Vec<f32>) {
        let row: usize = self.x.shape()[1..].iter().product();
        let n = self.len().max(1) as f32;
        let mut mean = vec![0.0f32; row];
        for i in 0..self.len() {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += self.x.data()[i * row + j];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; row];
        for i in 0..self.len() {
            for (j, v) in var.iter_mut().enumerate() {
                let d = self.x.data()[i * row + j] - mean[j];
                *v += d * d;
            }
        }
        let std: Vec<f32> = var.iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        (mean, std)
    }

    /// Standardise in place with the given statistics (from
    /// [`Dataset::feature_stats`] of the *training* set).
    pub fn standardize(&mut self, mean: &[f32], std: &[f32]) {
        let row: usize = self.x.shape()[1..].iter().product();
        assert_eq!(mean.len(), row);
        for i in 0..self.labels.len() {
            for j in 0..row {
                let v = &mut self.x.data_mut()[i * row + j];
                *v = (*v - mean[j]) / std[j];
            }
        }
    }
}

/// Deterministic shuffled mini-batch index iterator.
pub struct BatchIter {
    order: Vec<usize>,
    batch: usize,
    pos: usize,
}

impl BatchIter {
    /// Batches over `n` samples, shuffled by `seed`, of size `batch`
    /// (final partial batch included).
    pub fn new(n: usize, batch: usize, seed: u64) -> Self {
        assert!(batch > 0);
        let mut order: Vec<usize> = (0..n).collect();
        Rng::seed_from(seed).shuffle(&mut order);
        Self {
            order,
            batch,
            pos: 0,
        }
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch).min(self.order.len());
        let out = self.order[self.pos..end].to_vec();
        self.pos = end;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let x = Tensor::from_vec(
            &[n, 2],
            (0..n * 2).map(|i| i as f32).collect(),
        )
        .unwrap();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(x, labels).unwrap()
    }

    #[test]
    fn construction_validates() {
        let x = Tensor::zeros(&[3, 2]);
        assert!(Dataset::new(x.clone(), vec![0, 1]).is_err());
        assert!(Dataset::new(x, vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn take_selects_rows() {
        let d = toy(6);
        let t = d.take(&[1, 4]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.x.data(), &[2.0, 3.0, 8.0, 9.0]);
        assert_eq!(t.labels, vec![1, 1]);
        assert!(d.take(&[99]).is_err());
    }

    #[test]
    fn stratified_split_preserves_balance() {
        let d = toy(300);
        let (train, test) = d.split(0.8, 7).unwrap();
        assert_eq!(train.len() + test.len(), 300);
        for class in 0..3 {
            let tr = train.labels.iter().filter(|&&y| y == class).count();
            let te = test.labels.iter().filter(|&&y| y == class).count();
            assert_eq!(tr, 80, "class {class} train");
            assert_eq!(te, 20, "class {class} test");
        }
        // Deterministic.
        let (t2, _) = d.split(0.8, 7).unwrap();
        assert_eq!(train.labels, t2.labels);
    }

    #[test]
    fn shard_partitions_everything() {
        let d = toy(10);
        let shards = d.shard(3).unwrap();
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 10);
        assert_eq!(shards[0].len(), 4);
        assert_eq!(shards[1].len(), 3);
        assert!(d.shard(0).is_err());
    }

    #[test]
    fn standardisation_zero_mean_unit_var() {
        let mut d = toy(50);
        let (mean, std) = d.feature_stats();
        d.standardize(&mean, &std);
        let (m2, s2) = d.feature_stats();
        for m in m2 {
            assert!(m.abs() < 1e-4);
        }
        for s in s2 {
            assert!((s - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batch_iter_covers_all_indices_once() {
        let batches: Vec<Vec<usize>> = BatchIter::new(10, 3, 1).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[3].len(), 1, "final partial batch");
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_iter_is_shuffled_and_deterministic() {
        let a: Vec<usize> = BatchIter::new(100, 100, 5).next().unwrap();
        let b: Vec<usize> = BatchIter::new(100, 100, 5).next().unwrap();
        let c: Vec<usize> = BatchIter::new(100, 100, 6).next().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, (0..100).collect::<Vec<_>>(), "actually shuffled");
    }
}
