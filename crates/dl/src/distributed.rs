//! Distributed data-parallel training: collective allreduce and parameter
//! server (the two TensorFlow distribution strategies HOPS exposes,
//! Challenge C5), with real gradient math and simulated time.
//!
//! Two orthogonal pieces:
//!
//! 1. [`train_data_parallel`] executes *bit-exact* synchronous data
//!    parallelism: the global batch is sharded over `w` logical workers,
//!    each computes gradients on its shard (on real threads), gradients
//!    are averaged — the arithmetic of an allreduce — and one optimiser
//!    step updates the replicated model. A property test shows `w`-worker
//!    training equals single-worker large-batch training.
//! 2. [`simulate_iteration`] prices one synchronous iteration on the
//!    `ee-cluster` NIC model for either strategy, producing the E4
//!    scaling curves: ring allreduce moves `2(N−1)/N·G` bytes per NIC in
//!    parallel (near-constant in N), while the parameter server's ingress
//!    serialises `N·G/S` bytes (linear in N per server).

use crate::data::{BatchIter, Dataset};
use crate::model::Sequential;
use crate::optim::Sgd;
use crate::DlError;
use ee_cluster::network::Network;
use ee_cluster::topology::{ClusterSpec, NodeId};
use ee_util::timeline::{SimDuration, SimTime};
use ee_util::Rng;

/// The gradient-exchange strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Ring collective allreduce (Horovod-style, bandwidth optimal).
    RingAllReduce,
    /// Central parameter server(s) holding sharded parameters.
    ParameterServer {
        /// Number of server nodes (parameters sharded evenly).
        servers: usize,
    },
}

/// Timing of one synchronous training iteration.
#[derive(Debug, Clone, Copy)]
pub struct IterationTiming {
    /// Slowest worker's forward+backward time (the barrier).
    pub compute: SimDuration,
    /// Gradient-exchange time after the barrier.
    pub communication: SimDuration,
}

impl IterationTiming {
    /// Total iteration time.
    pub fn total(&self) -> SimDuration {
        self.compute + self.communication
    }
}

/// Workload description for the timing model.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Gradient/parameter payload in bytes (`model.gradient_bytes()`).
    pub gradient_bytes: u64,
    /// FLOPs per sample for forward+backward.
    pub flops_per_sample: f64,
    /// Per-worker mini-batch size.
    pub batch_per_worker: usize,
    /// Multiplicative straggler jitter std-dev (0 = perfectly uniform).
    pub straggler_jitter: f64,
}

/// Price one synchronous iteration of `workers` data-parallel workers on
/// the cluster. Workers occupy nodes `0..workers`; parameter servers (if
/// any) occupy the nodes after them.
pub fn simulate_iteration(
    spec: &ClusterSpec,
    workload: &WorkloadSpec,
    workers: usize,
    strategy: Strategy,
    rng: &mut Rng,
) -> Result<IterationTiming, DlError> {
    if workers == 0 {
        return Err(DlError::Config("need at least one worker".into()));
    }
    let needed = match strategy {
        Strategy::RingAllReduce => workers,
        Strategy::ParameterServer { servers } => {
            if servers == 0 {
                return Err(DlError::Config("need at least one server".into()));
            }
            workers + servers
        }
    };
    if needed > spec.num_nodes() {
        return Err(DlError::Config(format!(
            "{needed} nodes needed, cluster has {}",
            spec.num_nodes()
        )));
    }
    // Compute phase: slowest worker gates the synchronous exchange.
    let base = workload.flops_per_sample * workload.batch_per_worker as f64 / spec.node.gpu_flops;
    let mut slowest = 0.0f64;
    for _ in 0..workers {
        let jitter = (1.0 + workload.straggler_jitter * rng.gaussian().abs()).max(0.2);
        slowest = slowest.max(base * jitter);
    }
    let compute = SimDuration::from_secs(slowest);

    // Communication phase on a quiet network.
    let mut net = Network::new(spec.clone());
    let start = SimTime::ZERO;
    let comm_end = match strategy {
        Strategy::RingAllReduce => {
            if workers == 1 {
                start
            } else {
                // 2(N-1) steps of chunked exchange; each step is a barrier
                // (synchronous collective).
                let chunk = (workload.gradient_bytes / workers as u64).max(1);
                let mut step_start = start;
                for _ in 0..2 * (workers - 1) {
                    let mut step_end = step_start;
                    for w in 0..workers {
                        let t = net.send(
                            step_start,
                            NodeId(w),
                            NodeId((w + 1) % workers),
                            chunk,
                        );
                        step_end = step_end.max(t.end);
                    }
                    step_start = step_end;
                }
                step_start
            }
        }
        Strategy::ParameterServer { servers } => {
            let shard = (workload.gradient_bytes / servers as u64).max(1);
            // Push: every worker sends its gradient shard to each server.
            let mut push_done = start;
            for w in 0..workers {
                for s in 0..servers {
                    let t = net.send(start, NodeId(w), NodeId(workers + s), shard);
                    push_done = push_done.max(t.end);
                }
            }
            // Pull: servers broadcast updated shards back.
            let mut pull_done = push_done;
            for s in 0..servers {
                for w in 0..workers {
                    let t = net.send(push_done, NodeId(workers + s), NodeId(w), shard);
                    pull_done = pull_done.max(t.end);
                }
            }
            pull_done
        }
    };
    Ok(IterationTiming {
        compute,
        communication: comm_end.since(start),
    })
}

/// A full scaling sweep point: epoch time and throughput for `workers`.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Worker count.
    pub workers: usize,
    /// Simulated time for one epoch.
    pub epoch_time: SimDuration,
    /// Samples per simulated second.
    pub throughput: f64,
    /// Throughput relative to one worker, divided by `workers`
    /// (1.0 = perfect linear scaling).
    pub efficiency: f64,
}

/// Sweep worker counts for a strategy, returning one point per count.
pub fn scaling_sweep(
    spec: &ClusterSpec,
    workload: &WorkloadSpec,
    worker_counts: &[usize],
    strategy_for: impl Fn(usize) -> Strategy,
    dataset_size: usize,
    seed: u64,
) -> Result<Vec<ScalingPoint>, DlError> {
    let mut baseline: Option<f64> = None;
    let mut out = Vec::with_capacity(worker_counts.len());
    for &w in worker_counts {
        let mut rng = Rng::seed_from(seed ^ w as u64);
        let iters = dataset_size.div_ceil(workload.batch_per_worker * w);
        let mut total = SimDuration::ZERO;
        for _ in 0..iters {
            let t = simulate_iteration(spec, workload, w, strategy_for(w), &mut rng)?;
            total = total + t.total();
        }
        let throughput = dataset_size as f64 / total.as_secs().max(1e-12);
        let per_worker = throughput / w as f64;
        let eff = match baseline {
            None => {
                baseline = Some(per_worker);
                1.0
            }
            Some(b) => per_worker / b,
        };
        out.push(ScalingPoint {
            workers: w,
            epoch_time: total,
            throughput,
            efficiency: eff,
        });
    }
    Ok(out)
}

/// Exact synchronous data-parallel training of `model` on `dataset`.
///
/// Each logical worker computes gradients on its shard of every global
/// batch (on a real thread); the shard gradients are weighted-averaged
/// (allreduce arithmetic) and applied once. Returns per-epoch mean loss.
pub fn train_data_parallel(
    model: &mut Sequential,
    dataset: &Dataset,
    workers: usize,
    global_batch: usize,
    optimizer: &mut Sgd,
    epochs: usize,
    seed: u64,
) -> Result<Vec<f32>, DlError> {
    if workers == 0 || global_batch == 0 {
        return Err(DlError::Config("workers and batch must be positive".into()));
    }
    if !global_batch.is_multiple_of(workers) {
        return Err(DlError::Config(format!(
            "global batch {global_batch} not divisible by {workers} workers"
        )));
    }
    let mut losses = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for idx in BatchIter::new(dataset.len(), global_batch, seed ^ epoch as u64) {
            let batch = dataset.take(&idx)?;
            // Shard the batch contiguously across workers.
            let per = batch.len().div_ceil(workers);
            let mut shards = Vec::with_capacity(workers);
            let mut start = 0;
            while start < batch.len() {
                let end = (start + per).min(batch.len());
                shards.push(batch.take(&(start..end).collect::<Vec<_>>())?);
                start = end;
            }
            // Each worker: replicate the model, compute shard gradients.
            // `par::map` returns shard results in shard order, so the
            // weighted average below reduces in a fixed order no matter
            // which worker finishes first.
            let model_ref: &Sequential = model;
            let results: Vec<(f32, Vec<f32>, usize)> =
                ee_util::par::map(&shards, shards.len(), |_, shard| {
                    let mut replica = model_ref.clone();
                    let loss = replica
                        .compute_gradients(&shard.x, &shard.labels)
                        .expect("worker gradients");
                    (loss, replica.flat_grads(), shard.len())
                });
            // Allreduce arithmetic: sample-weighted mean of shard grads.
            let total: usize = results.iter().map(|(_, _, n)| n).sum();
            let mut avg = vec![0.0f32; model.num_params()];
            let mut loss_acc = 0.0f32;
            for (loss, grads, n) in &results {
                let wgt = *n as f32 / total as f32;
                for (a, g) in avg.iter_mut().zip(grads) {
                    *a += wgt * g;
                }
                loss_acc += wgt * loss;
            }
            model.set_flat_grads(&avg)?;
            optimizer.step(model)?;
            epoch_loss += loss_acc;
            batches += 1;
        }
        losses.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mlp;
    use crate::optim::LrSchedule;
    use ee_tensor::Tensor;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0 } else { 1.0 };
            xs.push((c + rng.normal(0.0, 0.35)) as f32);
            xs.push((-c + rng.normal(0.0, 0.35)) as f32);
            ys.push(cls);
        }
        Dataset::new(Tensor::from_vec(&[n, 2], xs).unwrap(), ys).unwrap()
    }

    fn workload() -> WorkloadSpec {
        WorkloadSpec {
            gradient_bytes: 100_000_000, // 100 MB — ResNet-50-ish
            flops_per_sample: 8.0e9,
            batch_per_worker: 32,
            straggler_jitter: 0.0,
        }
    }

    #[test]
    fn allreduce_time_stays_flat_with_workers() {
        let spec = ClusterSpec::flat(64);
        let w = workload();
        let mut rng = Rng::seed_from(1);
        let t4 = simulate_iteration(&spec, &w, 4, Strategy::RingAllReduce, &mut rng)
            .unwrap()
            .communication
            .as_secs();
        let t32 = simulate_iteration(&spec, &w, 32, Strategy::RingAllReduce, &mut rng)
            .unwrap()
            .communication
            .as_secs();
        // 2(N-1)/N → asymptote 2G/bw; ratio bounded.
        assert!(t32 / t4 < 1.6, "allreduce must be near-flat: {t4} vs {t32}");
    }

    #[test]
    fn parameter_server_time_grows_linearly() {
        let spec = ClusterSpec::flat(80);
        let w = workload();
        let mut rng = Rng::seed_from(2);
        let strat = Strategy::ParameterServer { servers: 1 };
        let t4 = simulate_iteration(&spec, &w, 4, strat, &mut rng)
            .unwrap()
            .communication
            .as_secs();
        let t32 = simulate_iteration(&spec, &w, 32, strat, &mut rng)
            .unwrap()
            .communication
            .as_secs();
        let ratio = t32 / t4;
        assert!(ratio > 6.0, "PS ingress is the bottleneck: ratio {ratio}");
    }

    #[test]
    fn more_servers_relieve_the_bottleneck() {
        let spec = ClusterSpec::flat(80);
        let w = workload();
        let mut rng = Rng::seed_from(3);
        let t1 = simulate_iteration(&spec, &w, 16, Strategy::ParameterServer { servers: 1 }, &mut rng)
            .unwrap()
            .communication
            .as_secs();
        let t4 = simulate_iteration(&spec, &w, 16, Strategy::ParameterServer { servers: 4 }, &mut rng)
            .unwrap()
            .communication
            .as_secs();
        assert!(t4 < t1 / 2.5, "sharding parameters helps: {t1} vs {t4}");
    }

    #[test]
    fn single_worker_has_no_communication() {
        let spec = ClusterSpec::flat(4);
        let w = workload();
        let mut rng = Rng::seed_from(4);
        let t = simulate_iteration(&spec, &w, 1, Strategy::RingAllReduce, &mut rng).unwrap();
        assert_eq!(t.communication, SimDuration::ZERO);
        assert!(t.compute.as_secs() > 0.0);
    }

    #[test]
    fn config_errors() {
        let spec = ClusterSpec::flat(4);
        let w = workload();
        let mut rng = Rng::seed_from(5);
        assert!(simulate_iteration(&spec, &w, 0, Strategy::RingAllReduce, &mut rng).is_err());
        assert!(simulate_iteration(&spec, &w, 8, Strategy::RingAllReduce, &mut rng).is_err());
        assert!(
            simulate_iteration(&spec, &w, 4, Strategy::ParameterServer { servers: 1 }, &mut rng)
                .is_err(),
            "4 workers + 1 server > 4 nodes"
        );
        assert!(
            simulate_iteration(&spec, &w, 2, Strategy::ParameterServer { servers: 0 }, &mut rng)
                .is_err()
        );
    }

    #[test]
    fn straggler_jitter_slows_compute() {
        let spec = ClusterSpec::flat(16);
        let mut w = workload();
        let mut rng = Rng::seed_from(6);
        let fast = simulate_iteration(&spec, &w, 16, Strategy::RingAllReduce, &mut rng)
            .unwrap()
            .compute;
        w.straggler_jitter = 0.5;
        let slow = simulate_iteration(&spec, &w, 16, Strategy::RingAllReduce, &mut rng)
            .unwrap()
            .compute;
        assert!(slow > fast, "max over jittered workers exceeds base");
    }

    #[test]
    fn scaling_sweep_shapes() {
        // Large-minibatch clusters run fast interconnects (Goyal et al.
        // used 50 Gbit/s); on 10 GbE a 100 MB gradient is comm-bound.
        let mut spec = ClusterSpec::flat(64);
        spec.node.nic_bandwidth = 12.5e9; // 100 GbE
        let w = workload();
        let points = scaling_sweep(
            &spec,
            &w,
            &[1, 4, 16],
            |_| Strategy::RingAllReduce,
            4096,
            9,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].efficiency - 1.0).abs() < 1e-9);
        assert!(points[2].throughput > points[0].throughput * 4.0, "scale-out wins");
        assert!(points[2].efficiency <= 1.01, "never super-linear here");
    }

    #[test]
    fn data_parallel_equals_single_worker_exactly() {
        // The crucial correctness property: allreduce averaging of shard
        // gradients == single-worker gradient of the whole batch.
        let data = blobs(64, 10);
        let seed_model = mlp(2, 8, 2, &mut Rng::seed_from(20));
        let mut single = seed_model.clone();
        let mut multi = seed_model;
        let mut opt1 = Sgd::new(LrSchedule::Constant(0.1), 0.9);
        let mut opt4 = Sgd::new(LrSchedule::Constant(0.1), 0.9);
        let l1 = train_data_parallel(&mut single, &data, 1, 32, &mut opt1, 3, 77).unwrap();
        let l4 = train_data_parallel(&mut multi, &data, 4, 32, &mut opt4, 3, 77).unwrap();
        for (a, b) in l1.iter().zip(&l4) {
            assert!((a - b).abs() < 1e-4, "losses {a} vs {b}");
        }
        for (p, q) in single.flat_params().iter().zip(multi.flat_params().iter()) {
            assert!((p - q).abs() < 1e-4, "params diverged: {p} vs {q}");
        }
    }

    #[test]
    fn data_parallel_trains_to_low_loss() {
        let data = blobs(256, 11);
        let mut model = mlp(2, 16, 2, &mut Rng::seed_from(21));
        let mut opt = Sgd::new(
            LrSchedule::LinearScalingWarmup {
                base: 0.05,
                scale: 4.0,
                warmup_steps: 8,
            },
            0.9,
        );
        let losses = train_data_parallel(&mut model, &data, 4, 64, &mut opt, 8, 3).unwrap();
        assert!(losses.last().unwrap() < &0.2, "final loss {:?}", losses.last());
        let cm = model.evaluate(&data.x, &data.labels).unwrap();
        assert!(cm.accuracy() > 0.95);
    }

    #[test]
    fn indivisible_batch_rejected() {
        let data = blobs(32, 12);
        let mut model = mlp(2, 4, 2, &mut Rng::seed_from(22));
        let mut opt = Sgd::new(LrSchedule::Constant(0.1), 0.0);
        assert!(train_data_parallel(&mut model, &data, 3, 32, &mut opt, 1, 1).is_err());
    }
}
