//! Network layers with stateful forward/backward caches.

use ee_tensor::kernels;
use ee_tensor::{init, Tensor};
use ee_util::Rng;

use crate::DlError;

/// A network layer. Layers cache whatever the backward pass needs during
/// `forward`, so a training step is `forward → backward → apply grads`.
#[derive(Debug, Clone)]
pub enum Layer {
    /// 2-D convolution (stride 1, symmetric zero padding).
    Conv2d {
        /// Filters `[F, C, KH, KW]`.
        weight: Tensor,
        /// Bias `[F]`.
        bias: Tensor,
        /// Zero padding.
        pad: usize,
        /// Cached input.
        cache: Option<Tensor>,
        /// Parameter gradients from the last backward.
        dweight: Tensor,
        /// Bias gradient.
        dbias: Tensor,
    },
    /// Fully connected: `[N, D] → [N, K]`.
    Dense {
        /// Weights `[D, K]`.
        weight: Tensor,
        /// Bias `[K]`.
        bias: Tensor,
        /// Cached input.
        cache: Option<Tensor>,
        /// Weight gradient.
        dweight: Tensor,
        /// Bias gradient.
        dbias: Tensor,
    },
    /// Rectified linear unit.
    Relu {
        /// Pass-through mask from the last forward.
        mask: Vec<bool>,
    },
    /// 2×2 max pooling, stride 2.
    MaxPool2 {
        /// Winner indices.
        idx: Vec<usize>,
        /// Input shape for the backward scatter.
        in_shape: Vec<usize>,
    },
    /// Collapse `[N, C, H, W] → [N, C*H*W]`.
    Flatten {
        /// Input shape for the backward reshape.
        in_shape: Vec<usize>,
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability.
        p: f32,
        /// Kept mask of the last forward.
        mask: Vec<bool>,
        /// Layer-local RNG (deterministic per seed).
        rng: Rng,
    },
}

impl Layer {
    /// A convolution layer with He initialisation.
    pub fn conv2d(in_channels: usize, filters: usize, k: usize, pad: usize, rng: &mut Rng) -> Layer {
        let fan_in = in_channels * k * k;
        Layer::Conv2d {
            weight: init::he_normal(&[filters, in_channels, k, k], fan_in, rng),
            bias: Tensor::zeros(&[filters]),
            pad,
            cache: None,
            dweight: Tensor::zeros(&[filters, in_channels, k, k]),
            dbias: Tensor::zeros(&[filters]),
        }
    }

    /// A dense layer with He initialisation.
    pub fn dense(in_features: usize, out_features: usize, rng: &mut Rng) -> Layer {
        Layer::Dense {
            weight: init::he_normal(&[in_features, out_features], in_features, rng),
            bias: Tensor::zeros(&[out_features]),
            cache: None,
            dweight: Tensor::zeros(&[in_features, out_features]),
            dbias: Tensor::zeros(&[out_features]),
        }
    }

    /// A ReLU layer.
    pub fn relu() -> Layer {
        Layer::Relu { mask: Vec::new() }
    }

    /// A 2×2 max-pool layer.
    pub fn maxpool2() -> Layer {
        Layer::MaxPool2 {
            idx: Vec::new(),
            in_shape: Vec::new(),
        }
    }

    /// A flatten layer.
    pub fn flatten() -> Layer {
        Layer::Flatten { in_shape: Vec::new() }
    }

    /// A dropout layer with its own seeded RNG.
    pub fn dropout(p: f32, seed: u64) -> Layer {
        assert!((0.0..1.0).contains(&p), "dropout p in [0,1)");
        Layer::Dropout {
            p,
            mask: Vec::new(),
            rng: Rng::seed_from(seed),
        }
    }

    /// Forward pass; `training` controls dropout behaviour.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, DlError> {
        match self {
            Layer::Conv2d {
                weight,
                bias,
                pad,
                cache,
                ..
            } => {
                let y = kernels::conv2d_forward(x, weight, bias, *pad)?;
                if training {
                    *cache = Some(x.clone());
                }
                Ok(y)
            }
            Layer::Dense {
                weight,
                bias,
                cache,
                ..
            } => {
                let y = x.matmul(weight)?;
                let mut y = y;
                let k = bias.len();
                for (i, v) in y.data_mut().iter_mut().enumerate() {
                    *v += bias.data()[i % k];
                }
                if training {
                    *cache = Some(x.clone());
                }
                Ok(y)
            }
            Layer::Relu { mask } => {
                let (y, m) = kernels::relu_forward(x);
                if training {
                    *mask = m;
                }
                Ok(y)
            }
            Layer::MaxPool2 { idx, in_shape } => {
                let (y, i) = kernels::maxpool2_forward(x);
                if training {
                    *idx = i;
                    *in_shape = x.shape().to_vec();
                }
                Ok(y)
            }
            Layer::Flatten { in_shape } => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                if training {
                    *in_shape = x.shape().to_vec();
                }
                Ok(x.reshape(&[n, rest])?)
            }
            Layer::Dropout { p, mask, rng } => {
                if !training {
                    return Ok(x.clone());
                }
                let keep = 1.0 - *p;
                let mut y = x.clone();
                let mut m = Vec::with_capacity(x.len());
                for v in y.data_mut() {
                    let keep_this = rng.chance(keep as f64);
                    m.push(keep_this);
                    // Inverted dropout: scale at train time.
                    *v = if keep_this { *v / keep } else { 0.0 };
                }
                *mask = m;
                Ok(y)
            }
        }
    }

    /// Backward pass: consumes upstream gradient, stores parameter
    /// gradients, returns the gradient w.r.t. this layer's input.
    pub fn backward(&mut self, dout: &Tensor) -> Result<Tensor, DlError> {
        match self {
            Layer::Conv2d {
                weight,
                pad,
                cache,
                dweight,
                dbias,
                ..
            } => {
                let x = cache
                    .as_ref()
                    .ok_or_else(|| DlError::Data("backward before forward".into()))?;
                let (dx, dw, db) = kernels::conv2d_backward(x, weight, dout, *pad)?;
                *dweight = dw;
                *dbias = db;
                Ok(dx)
            }
            Layer::Dense {
                weight,
                cache,
                dweight,
                dbias,
                ..
            } => {
                let x = cache
                    .as_ref()
                    .ok_or_else(|| DlError::Data("backward before forward".into()))?;
                // The cached input is usually a post-ReLU/dropout
                // activation with many structural zeros, so xᵀ has sparse
                // rows: the zero-skipping kernel wins here and stays
                // bit-identical to the dense one on finite inputs.
                *dweight = x.transpose()?.matmul_sparse(dout)?;
                let k = dout.shape()[1];
                let mut db = Tensor::zeros(&[k]);
                for (i, v) in dout.data().iter().enumerate() {
                    db.data_mut()[i % k] += v;
                }
                *dbias = db;
                Ok(dout.matmul(&weight.transpose()?)?)
            }
            Layer::Relu { mask } => Ok(kernels::relu_backward(dout, mask)),
            Layer::MaxPool2 { idx, in_shape } => {
                Ok(kernels::maxpool2_backward(dout, idx, in_shape))
            }
            Layer::Flatten { in_shape } => Ok(dout.reshape(in_shape)?),
            Layer::Dropout { p, mask, .. } => {
                let keep = 1.0 - *p;
                let mut dx = dout.clone();
                for (v, &m) in dx.data_mut().iter_mut().zip(mask.iter()) {
                    *v = if m { *v / keep } else { 0.0 };
                }
                Ok(dx)
            }
        }
    }

    /// Immutable views of this layer's parameters (possibly none).
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Conv2d { weight, bias, .. } | Layer::Dense { weight, bias, .. } => {
                vec![weight, bias]
            }
            _ => Vec::new(),
        }
    }

    /// Mutable views of this layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Conv2d { weight, bias, .. } | Layer::Dense { weight, bias, .. } => {
                vec![weight, bias]
            }
            _ => Vec::new(),
        }
    }

    /// Gradients corresponding to [`Layer::params`].
    pub fn grads(&self) -> Vec<&Tensor> {
        match self {
            Layer::Conv2d { dweight, dbias, .. } | Layer::Dense { dweight, dbias, .. } => {
                vec![dweight, dbias]
            }
            _ => Vec::new(),
        }
    }

    /// Mutable gradients (for the allreduce averaging path).
    pub fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Conv2d { dweight, dbias, .. } | Layer::Dense { dweight, dbias, .. } => {
                vec![dweight, dbias]
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_backward_shapes() {
        let mut rng = Rng::seed_from(1);
        let mut layer = Layer::dense(4, 3, &mut rng);
        let x = Tensor::full(&[2, 4], 1.0);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        let dx = layer.backward(&Tensor::full(&[2, 3], 1.0)).unwrap();
        assert_eq!(dx.shape(), &[2, 4]);
        assert_eq!(layer.grads().len(), 2);
        assert_eq!(layer.grads()[0].shape(), &[4, 3]);
    }

    #[test]
    fn dense_bias_broadcasts_over_batch() {
        let mut layer = Layer::Dense {
            weight: Tensor::zeros(&[2, 2]),
            bias: Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap(),
            cache: None,
            dweight: Tensor::zeros(&[2, 2]),
            dbias: Tensor::zeros(&[2]),
        };
        let y = layer.forward(&Tensor::zeros(&[3, 2]), false).unwrap();
        assert_eq!(y.data(), &[1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn dense_gradient_check() {
        let mut rng = Rng::seed_from(2);
        let mut layer = Layer::dense(3, 2, &mut rng);
        let x = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        let dout = Tensor::full(y.shape(), 1.0);
        let dx = layer.backward(&dout).unwrap();
        // Finite differences on the input.
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = layer.forward(&xp, false).unwrap().sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let ym = layer.forward(&xm, false).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2, "dx[{i}] {num} vs {}", dx.data()[i]);
        }
    }

    #[test]
    fn backward_before_forward_is_an_error() {
        let mut rng = Rng::seed_from(3);
        let mut layer = Layer::dense(2, 2, &mut rng);
        assert!(layer.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut layer = Layer::dropout(0.5, 7);
        let x = Tensor::full(&[10], 2.0);
        let y = layer.forward(&x, false).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_mode_scales_and_zeroes() {
        let mut layer = Layer::dropout(0.5, 7);
        let x = Tensor::full(&[1000], 1.0);
        let y = layer.forward(&x, true).unwrap();
        let kept = y.data().iter().filter(|&&v| v > 0.0).count();
        assert!((350..650).contains(&kept), "kept {kept} of 1000 at p=0.5");
        // Kept units scaled by 1/keep = 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation preserved.
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn stack_shapes_flow() {
        // conv(3→8,k3,p1) → relu → pool → flatten on an 8x8 patch.
        let mut rng = Rng::seed_from(4);
        let mut layers = vec![
            Layer::conv2d(3, 8, 3, 1, &mut rng),
            Layer::relu(),
            Layer::maxpool2(),
            Layer::flatten(),
        ];
        let mut x = Tensor::full(&[2, 3, 8, 8], 0.5);
        for l in &mut layers {
            x = l.forward(&x, true).unwrap();
        }
        assert_eq!(x.shape(), &[2, 8 * 4 * 4]);
        // And the gradient flows back to the input shape.
        let mut d = Tensor::full(x.shape(), 1.0);
        for l in layers.iter_mut().rev() {
            d = l.backward(&d).unwrap();
        }
        assert_eq!(d.shape(), &[2, 3, 8, 8]);
    }
}
