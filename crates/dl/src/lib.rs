#![warn(missing_docs)]
//! Deep learning for Copernicus imagery: layers, models, optimisers and
//! distributed scale-out training (Challenge C1 / C5).
//!
//! * [`layer`] / [`model`] — a sequential CNN stack (conv, pool, dense,
//!   ReLU, dropout, flatten) with exact backprop over the `ee-tensor`
//!   kernels. Models expose their parameters as a flat vector, which is
//!   what the distributed strategies exchange.
//! * [`optim`] — SGD with momentum and Adam, plus the *linear scaling
//!   rule with warmup* of Goyal et al. (the paper's ref \[8\], "Accurate,
//!   Large Minibatch SGD") as a learning-rate schedule.
//! * [`data`] — in-memory datasets, deterministic shuffled mini-batching,
//!   per-feature standardisation and stratified splits.
//! * [`baselines`] — softmax regression and k-NN, the non-deep baselines
//!   of experiment E5.
//! * [`distributed`] — the two distribution strategies the paper names
//!   (collective allreduce and parameter server), with *real* gradient
//!   mathematics executed per worker shard and *simulated* time from the
//!   `ee-cluster` NIC model. Experiment E4's scaling curves come from
//!   here.
//! * [`search`] — parallel hyper-parameter search (grid and random), the
//!   HOPS "parallel deep learning experiments" analogue.

pub mod baselines;
pub mod data;
pub mod distributed;
pub mod layer;
pub mod model;
pub mod optim;
pub mod search;

pub use data::Dataset;
pub use layer::Layer;
pub use model::Sequential;
pub use optim::{Adam, LrSchedule, Sgd};

/// Errors from the deep-learning layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DlError {
    /// Shape or rank error bubbled up from tensor ops.
    Tensor(ee_tensor::TensorError),
    /// Dataset construction / batching misuse.
    Data(String),
    /// Distributed-training configuration problem.
    Config(String),
}

impl From<ee_tensor::TensorError> for DlError {
    fn from(e: ee_tensor::TensorError) -> Self {
        DlError::Tensor(e)
    }
}

impl std::fmt::Display for DlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DlError::Tensor(e) => write!(f, "tensor error: {e}"),
            DlError::Data(msg) => write!(f, "data error: {msg}"),
            DlError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for DlError {}
