//! Sequential models: forward/backward across a layer stack, flat
//! parameter/gradient vectors for the distributed strategies, and
//! evaluation helpers.

use crate::layer::Layer;
use crate::DlError;
use ee_tensor::{kernels, Tensor};
use ee_util::stats::ConfusionMatrix;

/// A feed-forward stack of layers ending in `num_classes` logits.
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<Layer>,
    num_classes: usize,
}

impl Sequential {
    /// Build from layers. `num_classes` is the logit width, used by the
    /// loss and evaluation helpers.
    pub fn new(layers: Vec<Layer>, num_classes: usize) -> Self {
        Self {
            layers,
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The layers (for optimisers and the distributed averaging path).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Result<Tensor, DlError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, training)?;
        }
        Ok(cur)
    }

    /// One training step's gradient computation: forward, softmax
    /// cross-entropy, backward. Leaves parameter gradients in the layers
    /// and returns the mean loss.
    pub fn compute_gradients(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32, DlError> {
        let logits = self.forward(x, true)?;
        let (loss, dlogits) = kernels::cross_entropy(&logits, labels);
        let mut d = dlogits;
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d)?;
        }
        Ok(loss)
    }

    /// Predicted class per row.
    pub fn predict(&mut self, x: &Tensor) -> Result<Vec<usize>, DlError> {
        let logits = self.forward(x, false)?;
        Ok((0..logits.shape()[0]).map(|i| logits.argmax_row(i)).collect())
    }

    /// Evaluate on a labelled set, producing a confusion matrix.
    /// Batched to bound memory.
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> Result<ConfusionMatrix, DlError> {
        let n = x.shape()[0];
        if labels.len() != n {
            return Err(DlError::Data(format!(
                "{} labels for {} samples",
                labels.len(),
                n
            )));
        }
        let mut cm = ConfusionMatrix::new(self.num_classes);
        let batch = 256;
        let mut start = 0;
        while start < n {
            let end = (start + batch).min(n);
            let xs = x.slice_rows(start, end)?;
            let preds = self.predict(&xs)?;
            for (p, &t) in preds.iter().zip(&labels[start..end]) {
                cm.record(t, *p);
            }
            start = end;
        }
        Ok(cm)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|t| t.len())
            .sum()
    }

    /// Gradient payload size in bytes (what distributed training ships).
    pub fn gradient_bytes(&self) -> u64 {
        (self.num_params() * std::mem::size_of::<f32>()) as u64
    }

    /// Concatenate all parameter gradients into one flat vector.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Overwrite all parameter gradients from a flat vector (the inverse
    /// of [`Sequential::flat_grads`]).
    pub fn set_flat_grads(&mut self, flat: &[f32]) -> Result<(), DlError> {
        let mut offset = 0;
        for layer in &mut self.layers {
            for g in layer.grads_mut() {
                let n = g.len();
                if offset + n > flat.len() {
                    return Err(DlError::Data("flat gradient vector too short".into()));
                }
                g.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
        if offset != flat.len() {
            return Err(DlError::Data("flat gradient vector too long".into()));
        }
        Ok(())
    }

    /// Concatenate all parameters into a flat vector.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Overwrite all parameters from a flat vector.
    pub fn set_flat_params(&mut self, flat: &[f32]) -> Result<(), DlError> {
        let mut offset = 0;
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                let n = p.len();
                if offset + n > flat.len() {
                    return Err(DlError::Data("flat parameter vector too short".into()));
                }
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
        if offset != flat.len() {
            return Err(DlError::Data("flat parameter vector too long".into()));
        }
        Ok(())
    }
}

/// The crop/land-cover patch CNN of Challenge C1: two conv blocks and a
/// small dense head. `bands` input channels, `patch` pixels square.
pub fn patch_cnn(bands: usize, patch: usize, num_classes: usize, rng: &mut ee_util::Rng) -> Sequential {
    let after_pool = patch / 2 / 2;
    Sequential::new(
        vec![
            Layer::conv2d(bands, 16, 3, 1, rng),
            Layer::relu(),
            Layer::maxpool2(),
            Layer::conv2d(16, 32, 3, 1, rng),
            Layer::relu(),
            Layer::maxpool2(),
            Layer::flatten(),
            Layer::dense(32 * after_pool * after_pool, 64, rng),
            Layer::relu(),
            Layer::dense(64, num_classes, rng),
        ],
        num_classes,
    )
}

/// A small multilayer perceptron over flat feature vectors (the per-pixel
/// spectral/temporal classifier variant).
pub fn mlp(in_features: usize, hidden: usize, num_classes: usize, rng: &mut ee_util::Rng) -> Sequential {
    Sequential::new(
        vec![
            Layer::dense(in_features, hidden, rng),
            Layer::relu(),
            Layer::dense(hidden, num_classes, rng),
        ],
        num_classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    #[test]
    fn flat_roundtrip_params_and_grads() {
        let mut rng = Rng::seed_from(1);
        let mut m = mlp(4, 8, 3, &mut rng);
        let p = m.flat_params();
        assert_eq!(p.len(), m.num_params());
        assert_eq!(m.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut doubled = p.clone();
        for v in &mut doubled {
            *v *= 2.0;
        }
        m.set_flat_params(&doubled).unwrap();
        assert_eq!(m.flat_params(), doubled);
        assert!(m.set_flat_params(&p[..10]).is_err());
        // Gradients roundtrip after a step.
        let x = Tensor::full(&[2, 4], 0.5);
        m.compute_gradients(&x, &[0, 2]).unwrap();
        let g = m.flat_grads();
        assert_eq!(g.len(), m.num_params());
        m.set_flat_grads(&g).unwrap();
        assert_eq!(m.flat_grads(), g);
    }

    #[test]
    fn gradient_bytes_counts_f32() {
        let mut rng = Rng::seed_from(2);
        let m = mlp(10, 5, 2, &mut rng);
        assert_eq!(m.gradient_bytes(), (m.num_params() * 4) as u64);
    }

    #[test]
    fn loss_decreases_under_manual_sgd() {
        // Sanity: a few hand-rolled SGD steps reduce training loss.
        let mut rng = Rng::seed_from(3);
        let mut m = mlp(2, 16, 2, &mut rng);
        // Linearly separable blob data.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let cls = i % 2;
            let cx = if cls == 0 { -1.0 } else { 1.0 };
            xs.push(cx + rng.normal(0.0, 0.3) as f32);
            xs.push(cx + rng.normal(0.0, 0.3) as f32);
            ys.push(cls);
        }
        let x = Tensor::from_vec(&[64, 2], xs).unwrap();
        let first = m.compute_gradients(&x, &ys).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = m.compute_gradients(&x, &ys).unwrap();
            let grads = m.flat_grads();
            let mut params = m.flat_params();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            m.set_flat_params(&params).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} → {last}");
        // And accuracy is high.
        let cm = m.evaluate(&x, &ys).unwrap();
        assert!(cm.accuracy() > 0.9, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn patch_cnn_shapes() {
        let mut rng = Rng::seed_from(4);
        let mut m = patch_cnn(13, 8, 10, &mut rng);
        let x = Tensor::full(&[2, 13, 8, 8], 0.1);
        let logits = m.forward(&x, false).unwrap();
        assert_eq!(logits.shape(), &[2, 10]);
        let loss = m.compute_gradients(&x, &[3, 7]).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn evaluate_rejects_label_mismatch() {
        let mut rng = Rng::seed_from(5);
        let mut m = mlp(2, 4, 2, &mut rng);
        let x = Tensor::zeros(&[3, 2]);
        assert!(m.evaluate(&x, &[0, 1]).is_err());
    }

    #[test]
    fn identical_seeds_give_identical_models() {
        let m1 = mlp(3, 5, 2, &mut Rng::seed_from(9));
        let m2 = mlp(3, 5, 2, &mut Rng::seed_from(9));
        assert_eq!(m1.flat_params(), m2.flat_params());
    }
}
