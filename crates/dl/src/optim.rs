//! Optimisers and learning-rate schedules.
//!
//! [`LrSchedule::LinearScalingWarmup`] implements the rule of the paper's
//! ref \[8\] (Goyal et al., "Accurate, Large Minibatch SGD: Training
//! ImageNet in 1 Hour"): when the effective batch grows by `k` (data
//! parallelism over `k` workers), multiply the learning rate by `k`, and
//! ramp up to it linearly over a warmup period to avoid early divergence.

use crate::model::Sequential;
use crate::DlError;

/// Learning-rate schedule, evaluated per training step.
#[derive(Debug, Clone, Copy)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// Step decay: `base * gamma^(step / every)`.
    StepDecay {
        /// Initial learning rate.
        base: f32,
        /// Multiplier applied at each decay.
        gamma: f32,
        /// Steps between decays.
        every: usize,
    },
    /// Goyal et al. linear scaling with warmup: target rate is
    /// `base * scale`; during the first `warmup_steps` the rate ramps
    /// linearly from `base` to the target.
    LinearScalingWarmup {
        /// Single-worker reference rate.
        base: f32,
        /// Batch-size multiplier `k` (number of workers).
        scale: f32,
        /// Ramp length in steps.
        warmup_steps: usize,
    },
}

impl LrSchedule {
    /// The learning rate at a 0-based step index.
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { base, gamma, every } => {
                base * gamma.powi((step / every.max(1)) as i32)
            }
            LrSchedule::LinearScalingWarmup {
                base,
                scale,
                warmup_steps,
            } => {
                let target = base * scale;
                if warmup_steps == 0 || step >= warmup_steps {
                    target
                } else {
                    base + (target - base) * (step as f32 + 1.0) / warmup_steps as f32
                }
            }
        }
    }
}

/// Stochastic gradient descent with (optional) Polyak momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<f32>,
    step: usize,
}

impl Sgd {
    /// New optimiser.
    pub fn new(schedule: LrSchedule, momentum: f32) -> Self {
        Self {
            schedule,
            momentum,
            velocity: Vec::new(),
            step: 0,
        }
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Apply the model's current gradients to its parameters.
    pub fn step(&mut self, model: &mut Sequential) -> Result<(), DlError> {
        let grads = model.flat_grads();
        let mut params = model.flat_params();
        if self.velocity.len() != grads.len() {
            self.velocity = vec![0.0; grads.len()];
        }
        let lr = self.schedule.at(self.step);
        if self.momentum > 0.0 {
            for ((p, g), v) in params.iter_mut().zip(&grads).zip(&mut self.velocity) {
                *v = self.momentum * *v + g;
                *p -= lr * *v;
            }
        } else {
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= lr * g;
            }
        }
        model.set_flat_params(&params)?;
        self.step += 1;
        Ok(())
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    step: usize,
}

impl Adam {
    /// Adam with the conventional defaults.
    pub fn new(schedule: LrSchedule) -> Self {
        Self {
            schedule,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            step: 0,
        }
    }

    /// Apply the model's gradients.
    pub fn step(&mut self, model: &mut Sequential) -> Result<(), DlError> {
        let grads = model.flat_grads();
        let mut params = model.flat_params();
        if self.m.len() != grads.len() {
            self.m = vec![0.0; grads.len()];
            self.v = vec![0.0; grads.len()];
        }
        self.step += 1;
        let lr = self.schedule.at(self.step - 1);
        let b1t = 1.0 - self.beta1.powi(self.step as i32);
        let b2t = 1.0 - self.beta2.powi(self.step as i32);
        for (((p, g), m), v) in params
            .iter_mut()
            .zip(&grads)
            .zip(&mut self.m)
            .zip(&mut self.v)
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / b1t;
            let vhat = *v / b2t;
            *p -= lr * mhat / (vhat.sqrt() + self.eps);
        }
        model.set_flat_params(&params)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mlp;
    use ee_tensor::Tensor;
    use ee_util::Rng;

    fn toy_problem() -> (Sequential, Tensor, Vec<usize>) {
        let mut rng = Rng::seed_from(11);
        let m = mlp(2, 12, 2, &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..128 {
            let cls = i % 2;
            let c = if cls == 0 { -1.0 } else { 1.0 };
            xs.push(c + rng.normal(0.0, 0.4) as f32);
            xs.push(-c + rng.normal(0.0, 0.4) as f32);
            ys.push(cls);
        }
        (m, Tensor::from_vec(&[128, 2], xs).unwrap(), ys)
    }

    #[test]
    fn constant_schedule() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn step_decay_schedule() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            gamma: 0.1,
            every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn linear_scaling_warmup_ramps_to_scaled_rate() {
        // The ref [8] rule: 8 workers → 8x rate after warmup.
        let s = LrSchedule::LinearScalingWarmup {
            base: 0.1,
            scale: 8.0,
            warmup_steps: 10,
        };
        assert!(s.at(0) < 0.2, "starts near base");
        assert!((s.at(9) - 0.8).abs() < 1e-6, "ends at base*scale");
        assert_eq!(s.at(10), 0.8);
        assert_eq!(s.at(500), 0.8);
        // Monotone ramp.
        for i in 1..10 {
            assert!(s.at(i) > s.at(i - 1));
        }
        // Degenerate warmup.
        let s0 = LrSchedule::LinearScalingWarmup {
            base: 0.1,
            scale: 4.0,
            warmup_steps: 0,
        };
        assert_eq!(s0.at(0), 0.4);
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut m, x, y) = toy_problem();
        let mut opt = Sgd::new(LrSchedule::Constant(0.3), 0.0);
        let first = m.compute_gradients(&x, &y).unwrap();
        for _ in 0..40 {
            m.compute_gradients(&x, &y).unwrap();
            opt.step(&mut m).unwrap();
        }
        let last = m.compute_gradients(&x, &y).unwrap();
        assert!(last < first * 0.3, "{first} → {last}");
        assert_eq!(opt.step_count(), 40);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let (m0, x, y) = toy_problem();
        let run = |mut m: Sequential, momentum: f32| -> f32 {
            let mut opt = Sgd::new(LrSchedule::Constant(0.05), momentum);
            for _ in 0..30 {
                m.compute_gradients(&x, &y).unwrap();
                opt.step(&mut m).unwrap();
            }
            m.compute_gradients(&x, &y).unwrap()
        };
        let plain = run(m0.clone(), 0.0);
        let heavy = run(m0, 0.9);
        assert!(heavy < plain, "momentum {heavy} vs plain {plain}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (mut m, x, y) = toy_problem();
        let mut opt = Adam::new(LrSchedule::Constant(0.01));
        let first = m.compute_gradients(&x, &y).unwrap();
        for _ in 0..40 {
            m.compute_gradients(&x, &y).unwrap();
            opt.step(&mut m).unwrap();
        }
        let last = m.compute_gradients(&x, &y).unwrap();
        assert!(last < first * 0.3, "{first} → {last}");
    }

    #[test]
    fn optimizers_are_deterministic() {
        let (m, x, y) = toy_problem();
        let run = |mut m: Sequential| -> Vec<f32> {
            let mut opt = Sgd::new(LrSchedule::Constant(0.1), 0.9);
            for _ in 0..5 {
                m.compute_gradients(&x, &y).unwrap();
                opt.step(&mut m).unwrap();
            }
            m.flat_params()
        };
        assert_eq!(run(m.clone()), run(m));
    }
}
