//! Parallel hyper-parameter search — the HOPS "parallel deep learning
//! experiments (hyperparameter search)" service of Challenge C5.
//!
//! Trials are independent training runs over a grid or random sample of
//! configurations, executed on real threads; the simulated-cluster
//! scheduler ([`ee_cluster::scheduler`]) prices how long the same trial
//! set would take on an N-GPU cluster, which is what the harness reports.

use crate::data::Dataset;
use crate::model::mlp;
use crate::optim::{LrSchedule, Sgd};
use crate::DlError;
use ee_cluster::scheduler::{ContainerRequest, JobRequest, Scheduler};
use ee_cluster::topology::ClusterSpec;
use ee_util::timeline::{SimDuration, SimTime};
use ee_util::Rng;

/// One hyper-parameter configuration for the MLP family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Training epochs.
    pub epochs: usize,
}

/// Result of a trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// The configuration.
    pub config: TrialConfig,
    /// Validation accuracy.
    pub accuracy: f64,
    /// Final training loss.
    pub final_loss: f32,
}

/// Cartesian grid of configurations.
pub fn grid(hiddens: &[usize], lrs: &[f32], momenta: &[f32], epochs: usize) -> Vec<TrialConfig> {
    let mut out = Vec::with_capacity(hiddens.len() * lrs.len() * momenta.len());
    for &hidden in hiddens {
        for &lr in lrs {
            for &momentum in momenta {
                out.push(TrialConfig {
                    hidden,
                    lr,
                    momentum,
                    epochs,
                });
            }
        }
    }
    out
}

/// Random sample of `n` configurations within ranges.
pub fn random_configs(n: usize, epochs: usize, seed: u64) -> Vec<TrialConfig> {
    let mut rng = Rng::seed_from(seed);
    (0..n)
        .map(|_| TrialConfig {
            hidden: 1 << rng.range(3, 8), // 8..128
            lr: (10.0f64.powf(rng.range_f64(-2.5, -0.3))) as f32,
            momentum: rng.range_f64(0.0, 0.95) as f32,
            epochs,
        })
        .collect()
}

/// Run one trial: train an MLP on `train`, score on `val`.
pub fn run_trial(
    config: TrialConfig,
    train: &Dataset,
    val: &Dataset,
    seed: u64,
) -> Result<TrialResult, DlError> {
    let d: usize = train.x.shape()[1..].iter().product();
    let k = train.num_classes().max(val.num_classes());
    let mut rng = Rng::seed_from(seed);
    let mut model = mlp(d, config.hidden, k, &mut rng);
    let flat = train.x.reshape(&[train.len(), d])?;
    let mut opt = Sgd::new(LrSchedule::Constant(config.lr), config.momentum);
    let mut final_loss = f32::INFINITY;
    for _ in 0..config.epochs {
        final_loss = model.compute_gradients(&flat, &train.labels)?;
        opt.step(&mut model)?;
    }
    let vflat = val.x.reshape(&[val.len(), d])?;
    let cm = model.evaluate(&vflat, &val.labels)?;
    Ok(TrialResult {
        config,
        accuracy: cm.accuracy(),
        final_loss,
    })
}

/// Run all trials on real threads (bounded by the host); results keep the
/// input order. Deterministic per seed.
pub fn run_search(
    configs: &[TrialConfig],
    train: &Dataset,
    val: &Dataset,
    seed: u64,
) -> Result<Vec<TrialResult>, DlError> {
    let threads = ee_util::par::available_threads().min(configs.len()).max(1);
    let results: Vec<Result<TrialResult, DlError>> =
        ee_util::par::map(configs, threads, |i, &config| {
            run_trial(config, train, val, seed ^ (i as u64 * 0x9E37))
        });
    results.into_iter().collect()
}

/// The best trial by validation accuracy.
pub fn best(results: &[TrialResult]) -> Option<&TrialResult> {
    results.iter().max_by(|a, b| {
        a.accuracy
            .partial_cmp(&b.accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// Price a search campaign on the simulated cluster: each trial is a
/// 1-GPU container of `trial_runtime`; returns the makespan for the
/// whole campaign on a cluster of `gpus` single-GPU nodes.
pub fn campaign_makespan(
    num_trials: usize,
    trial_runtime: SimDuration,
    gpus: usize,
) -> Result<SimDuration, DlError> {
    let mut sched = Scheduler::new(ClusterSpec::flat(gpus.max(1)));
    for i in 0..num_trials {
        sched
            .submit(
                SimTime::ZERO,
                JobRequest {
                    name: format!("trial-{i}"),
                    containers: 1,
                    each: ContainerRequest {
                        cpus: 4,
                        gpus: 1,
                        runtime: trial_runtime,
                    },
                    gang: false,
                },
            )
            .map_err(|e| DlError::Config(e.to_string()))?;
    }
    let reports = sched.run();
    Ok(reports
        .iter()
        .map(|r| r.finished)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since(SimTime::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_tensor::Tensor;

    fn data(seed: u64) -> (Dataset, Dataset) {
        let mut rng = Rng::seed_from(seed);
        let n = 200;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -1.0 } else { 1.0 };
            xs.push((c + rng.normal(0.0, 0.3)) as f32);
            xs.push((c + rng.normal(0.0, 0.3)) as f32);
            ys.push(cls);
        }
        Dataset::new(Tensor::from_vec(&[n, 2], xs).unwrap(), ys)
            .unwrap()
            .split(0.75, 1)
            .unwrap()
    }

    #[test]
    fn grid_is_cartesian() {
        let g = grid(&[8, 16], &[0.1, 0.2, 0.3], &[0.0], 5);
        assert_eq!(g.len(), 6);
        assert!(g.contains(&TrialConfig {
            hidden: 16,
            lr: 0.3,
            momentum: 0.0,
            epochs: 5
        }));
    }

    #[test]
    fn random_configs_in_bounds() {
        let cfgs = random_configs(20, 3, 5);
        assert_eq!(cfgs.len(), 20);
        for c in &cfgs {
            assert!((8..=128).contains(&c.hidden));
            assert!(c.lr > 0.001 && c.lr < 0.6);
            assert!((0.0..0.95).contains(&c.momentum));
        }
        assert_eq!(random_configs(20, 3, 5), cfgs, "deterministic");
    }

    #[test]
    fn search_finds_a_good_config() {
        let (train, val) = data(3);
        let configs = grid(&[16], &[0.001, 0.3], &[0.9], 60);
        let results = run_search(&configs, &train, &val, 9).unwrap();
        assert_eq!(results.len(), 2);
        let b = best(&results).unwrap();
        assert!(b.accuracy > 0.9, "best accuracy {}", b.accuracy);
        // The tiny learning rate must do worse than the tuned one.
        assert!(results[1].accuracy >= results[0].accuracy);
    }

    #[test]
    fn search_is_deterministic() {
        let (train, val) = data(4);
        let configs = grid(&[8], &[0.1], &[0.5], 10);
        let a = run_search(&configs, &train, &val, 1).unwrap();
        let b = run_search(&configs, &train, &val, 1).unwrap();
        assert_eq!(a[0].accuracy, b[0].accuracy);
        assert_eq!(a[0].final_loss, b[0].final_loss);
    }

    #[test]
    fn makespan_scales_with_gpus() {
        let t = SimDuration::from_secs(600.0);
        let one = campaign_makespan(16, t, 1).unwrap();
        let four = campaign_makespan(16, t, 4).unwrap();
        let sixteen = campaign_makespan(16, t, 16).unwrap();
        assert_eq!(one.as_secs(), 16.0 * 600.0);
        assert_eq!(four.as_secs(), 4.0 * 600.0);
        assert_eq!(sixteen.as_secs(), 600.0);
    }
}
