//! Endpoint statistics for source selection.

use crate::endpoint::Endpoint;
use ee_geo::Envelope;
use ee_rdf::term::Term;
use std::collections::HashMap;

/// Per-endpoint statistics.
#[derive(Debug, Clone)]
pub struct EndpointStats {
    /// Triple count per predicate IRI.
    pub predicate_counts: HashMap<String, usize>,
    /// Union envelope of all geometry literals in the source.
    pub extent: Envelope,
    /// Total triples.
    pub total: usize,
}

impl EndpointStats {
    /// Does the source hold any triples with this predicate?
    pub fn has_predicate(&self, iri: &str) -> bool {
        self.predicate_counts.get(iri).copied().unwrap_or(0) > 0
    }

    /// Estimated cardinality of a predicate.
    pub fn predicate_count(&self, iri: &str) -> usize {
        self.predicate_counts.get(iri).copied().unwrap_or(0)
    }
}

/// The federation's statistics catalogue (harvested once at registration,
/// exactly as Semagrow builds its metadata from endpoint VoID/histograms).
#[derive(Debug, Clone, Default)]
pub struct FederationCatalog {
    stats: Vec<EndpointStats>,
}

impl FederationCatalog {
    /// Harvest statistics from a set of endpoints.
    pub fn build(endpoints: &[Endpoint]) -> Self {
        let stats = endpoints
            .iter()
            .map(|ep| {
                let mut predicate_counts: HashMap<String, usize> = HashMap::new();
                let mut extent = Envelope::empty();
                let mut total = 0;
                for (_, p, o) in ep.store().triples() {
                    total += 1;
                    if let Term::Iri(iri) = p {
                        *predicate_counts.entry(iri.clone()).or_insert(0) += 1;
                    }
                    if let Some(id) = ep.store().dict.id_of(o) {
                        if let Some(env) = ep.store().dict.envelope_of(id) {
                            extent = extent.union(&env);
                        }
                    }
                }
                EndpointStats {
                    predicate_counts,
                    extent,
                    total,
                }
            })
            .collect();
        Self { stats }
    }

    /// Stats for endpoint `i`.
    pub fn stats(&self, i: usize) -> &EndpointStats {
        &self.stats[i]
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when no endpoints are registered.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Which endpoints can contribute to a pattern with this predicate
    /// (None = variable predicate → all endpoints), optionally restricted
    /// to those whose spatial extent intersects `region`.
    pub fn relevant(
        &self,
        predicate: Option<&str>,
        region: Option<&Envelope>,
        spatially_bound: bool,
    ) -> Vec<usize> {
        (0..self.stats.len())
            .filter(|&i| {
                let s = &self.stats[i];
                let pred_ok = match predicate {
                    Some(iri) => s.has_predicate(iri),
                    None => s.total > 0,
                };
                let region_ok = match (region, spatially_bound) {
                    (Some(r), true) => !s.extent.is_empty() && s.extent.intersects(r),
                    _ => true,
                };
                pred_ok && region_ok
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_rdf::store::IndexMode;
    use ee_rdf::TripleStore;

    fn t(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn geo_endpoint(name: &str, x: f64) -> Endpoint {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&t("f"), &t("hasGeom"), &Term::wkt(format!("POINT ({x} 0)")));
        st.insert(&t("f"), &t("label"), &Term::string(name));
        Endpoint::new(name, st)
    }

    #[test]
    fn harvest_counts_and_extent() {
        let eps = vec![geo_endpoint("west", -10.0), geo_endpoint("east", 50.0)];
        let cat = FederationCatalog::build(&eps);
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.stats(0).total, 2);
        assert!(cat.stats(0).has_predicate("http://e/hasGeom"));
        assert!(!cat.stats(0).has_predicate("http://e/unknown"));
        assert_eq!(cat.stats(0).extent.min_x, -10.0);
        assert_eq!(cat.stats(1).extent.min_x, 50.0);
    }

    #[test]
    fn relevance_by_predicate() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&t("a"), &t("onlyHere"), &t("b"));
        let eps = vec![geo_endpoint("geo", 0.0), Endpoint::new("other", st)];
        let cat = FederationCatalog::build(&eps);
        assert_eq!(cat.relevant(Some("http://e/onlyHere"), None, false), vec![1]);
        assert_eq!(cat.relevant(Some("http://e/hasGeom"), None, false), vec![0]);
        assert_eq!(cat.relevant(None, None, false), vec![0, 1]);
    }

    #[test]
    fn relevance_by_region() {
        let eps = vec![geo_endpoint("west", -10.0), geo_endpoint("east", 50.0)];
        let cat = FederationCatalog::build(&eps);
        let west_region = Envelope::new(-20.0, -5.0, -5.0, 5.0);
        let both = cat.relevant(Some("http://e/hasGeom"), Some(&west_region), false);
        assert_eq!(both, vec![0, 1], "region ignored unless spatially bound");
        let pruned = cat.relevant(Some("http://e/hasGeom"), Some(&west_region), true);
        assert_eq!(pruned, vec![0], "east endpoint pruned by extent");
    }
}
