//! The endpoint abstraction: a named remote store with request metering.

use ee_rdf::term::Term;
use ee_rdf::TripleStore;
use std::sync::atomic::{AtomicU64, Ordering};

/// A federated data source.
pub struct Endpoint {
    /// Human-readable name (used in reports).
    pub name: String,
    store: TripleStore,
    requests: AtomicU64,
    bindings_shipped: AtomicU64,
}

impl Endpoint {
    /// Wrap a store.
    pub fn new(name: impl Into<String>, store: TripleStore) -> Self {
        Self {
            name: name.into(),
            store,
            requests: AtomicU64::new(0),
            bindings_shipped: AtomicU64::new(0),
        }
    }

    /// The underlying store (for statistics harvesting).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total bindings shipped in bind-join requests.
    pub fn bindings_shipped(&self) -> u64 {
        self.bindings_shipped.load(Ordering::Relaxed)
    }

    /// Reset meters (between experiment runs).
    pub fn reset_meters(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.bindings_shipped.store(0, Ordering::Relaxed);
    }

    /// Serve one triple-pattern request. `None` positions are wildcards.
    /// Each call counts as one remote request.
    pub fn match_pattern(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Vec<(Term, Term, Term)> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let sid = match s {
            Some(t) => match self.store.dict.id_of(t) {
                Some(id) => Some(id),
                None => return Vec::new(),
            },
            None => None,
        };
        let pid = match p {
            Some(t) => match self.store.dict.id_of(t) {
                Some(id) => Some(id),
                None => return Vec::new(),
            },
            None => None,
        };
        let oid = match o {
            Some(t) => match self.store.dict.id_of(t) {
                Some(id) => Some(id),
                None => return Vec::new(),
            },
            None => None,
        };
        let mut out = Vec::new();
        self.store.match_pattern(sid, pid, oid, &mut |(ts, tp, to)| {
            out.push((
                self.store.dict.term(ts).clone(),
                self.store.dict.term(tp).clone(),
                self.store.dict.term(to).clone(),
            ));
            true
        });
        out
    }

    /// A bind-join request: the pattern instantiated once per binding.
    /// Counts one request plus the shipped-bindings volume.
    pub fn bind_join(
        &self,
        bindings: &[Option<&Term>],
        p: Option<&Term>,
        o: Option<&Term>,
        bind_subject: bool,
    ) -> Vec<Vec<(Term, Term, Term)>> {
        self.bindings_shipped
            .fetch_add(bindings.len() as u64, Ordering::Relaxed);
        // One network round trip for the whole batch (VALUES-style), but
        // the store is probed per binding.
        self.requests.fetch_add(1, Ordering::Relaxed);
        bindings
            .iter()
            .map(|b| {
                // Decrement the double-counted per-probe request.
                let r = if bind_subject {
                    self.match_pattern(*b, p, o)
                } else {
                    self.match_pattern(None, p, *b)
                };
                self.requests.fetch_sub(1, Ordering::Relaxed);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_rdf::store::IndexMode;

    fn t(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn endpoint() -> Endpoint {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&t("a"), &t("p"), &t("b"));
        st.insert(&t("a"), &t("p"), &t("c"));
        st.insert(&t("x"), &t("q"), &t("y"));
        Endpoint::new("ep1", st)
    }

    #[test]
    fn pattern_requests_are_metered() {
        let ep = endpoint();
        let rows = ep.match_pattern(None, Some(&t("p")), None);
        assert_eq!(rows.len(), 2);
        assert_eq!(ep.requests(), 1);
        let rows = ep.match_pattern(Some(&t("x")), None, None);
        assert_eq!(rows.len(), 1);
        assert_eq!(ep.requests(), 2);
    }

    #[test]
    fn unknown_terms_return_empty_fast() {
        let ep = endpoint();
        assert!(ep.match_pattern(Some(&t("nope")), None, None).is_empty());
        assert_eq!(ep.requests(), 1, "still a request");
    }

    #[test]
    fn bind_join_ships_bindings_once() {
        let ep = endpoint();
        let a = t("a");
        let x = t("x");
        let bindings = vec![Some(&a), Some(&x)];
        let p = t("p");
        let results = ep.bind_join(&bindings, Some(&p), None, true);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 2, "a has two p-objects");
        assert_eq!(results[1].len(), 0, "x has none");
        assert_eq!(ep.requests(), 1, "batched as one round trip");
        assert_eq!(ep.bindings_shipped(), 2);
    }

    #[test]
    fn meters_reset() {
        let ep = endpoint();
        ep.match_pattern(None, None, None);
        ep.reset_meters();
        assert_eq!(ep.requests(), 0);
        assert_eq!(ep.bindings_shipped(), 0);
    }
}
