//! The federated evaluator: source selection + bind joins vs naive
//! broadcast.
//!
//! Since the engine split, federation plans against the same
//! [`ee_rdf::plan::Plan`] type as the local evaluator: [`plan_federated`]
//! builds a *logical* plan (no dictionary ids — endpoints do not share a
//! dictionary) and then rewrites it with per-pattern source assignments
//! into a [`FedPlan`]. Execution walks the plan's join order, shipping
//! each pattern to its assigned endpoints — as a bind join when the plan
//! says a join variable is already bound, as a broadcast otherwise — and
//! evaluates the plan's filters locally over the complete rows.

use crate::catalog::FederationCatalog;
use crate::endpoint::Endpoint;
use crate::FedError;
use ee_rdf::dict::Dictionary;
use ee_rdf::expr::{eval, truth, EvalCtx};
use ee_rdf::parser::{parse_query, PatternTerm, TriplePattern};
use ee_rdf::plan::Plan;
use ee_rdf::term::Term;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Federation execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Broadcast every pattern to every endpoint; join locally.
    Naive,
    /// Source selection (predicate + spatial extent) and bind joins.
    Optimized,
}

/// One solution row: variable name → term.
pub type Row = HashMap<String, Term>;

/// The result of a federated query, with the cost metrics E8 reports.
#[derive(Debug)]
pub struct FedReport {
    /// Solution rows (projected).
    pub rows: Vec<Row>,
    /// (endpoint name, requests served) pairs.
    pub requests: Vec<(String, u64)>,
    /// Sum of requests over endpoints.
    pub total_requests: u64,
    /// Total bindings shipped in bind joins.
    pub bindings_shipped: u64,
    /// Intermediate triples pulled from endpoints (transfer volume proxy).
    pub triples_transferred: u64,
}

/// A logical [`Plan`] rewritten with source assignments: for each pattern
/// (indexed as in `plan.patterns`), the endpoints it will be shipped to.
#[derive(Debug)]
pub struct FedPlan {
    /// The shared logical plan (join order, filters, region, projection).
    pub plan: Plan,
    /// Per-pattern relevant endpoint indices.
    pub sources: Vec<Vec<usize>>,
}

/// Build the federated plan: parse, plan logically through the shared
/// planner, then assign sources per pattern (the plan rewrite).
pub fn plan_federated(
    endpoints: &[Endpoint],
    catalog: &FederationCatalog,
    sparql: &str,
    mode: Mode,
) -> Result<FedPlan, FedError> {
    let q = parse_query(sparql)?;
    let plan = ee_rdf::plan::logical(&q)?;
    if !plan.optionals.is_empty() || !plan.group_by.is_empty() {
        return Err(FedError::Unsupported(
            "OPTIONAL / GROUP BY are not federated; run them at the client".into(),
        ));
    }
    if plan.has_agg {
        return Err(FedError::Unsupported("aggregates are not federated".into()));
    }
    let sources: Vec<Vec<usize>> = plan
        .patterns
        .iter()
        .map(|pattern| match mode {
            Mode::Naive => (0..endpoints.len()).collect(),
            Mode::Optimized => {
                let predicate = match &pattern.p {
                    PatternTerm::Const(Term::Iri(iri)) => Some(iri.as_str()),
                    _ => None,
                };
                // Spatial restriction applies when this pattern binds the
                // filtered geometry variable in object position.
                let spatially_bound = matches!(
                    (&pattern.o, &plan.region),
                    (PatternTerm::Var(v), Some((rv, _))) if v == rv
                );
                catalog.relevant(
                    predicate,
                    plan.region.as_ref().map(|(_, e)| e),
                    spatially_bound,
                )
            }
        })
        .collect();
    Ok(FedPlan { plan, sources })
}

/// Prepared-plan cache for the federated evaluator, mirroring the
/// serving tier's SPARQL plan cache: query text is canonicalised
/// (whitespace-collapsed) and keyed together with the execution
/// [`Mode`], because the naive and optimized rewrites assign different
/// sources to the same logical plan. Repeated queries skip parse,
/// logical planning, and source selection.
///
/// Source assignments depend on the catalog, so a cache belongs to one
/// federation: rebuild (or drop) it when endpoints or their extents
/// change.
pub struct PlanCache {
    plans: Mutex<HashMap<(String, Mode), Arc<FedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Resolve `sparql` under `mode` to a prepared [`FedPlan`], planning
    /// on miss.
    pub fn prepare(
        &self,
        endpoints: &[Endpoint],
        catalog: &FederationCatalog,
        sparql: &str,
        mode: Mode,
    ) -> Result<Arc<FedPlan>, FedError> {
        let key = (
            sparql.split_whitespace().collect::<Vec<_>>().join(" "),
            mode,
        );
        let cached = self.plans.lock().expect("plan cache lock").get(&key).cloned();
        match cached {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(p)
            }
            None => {
                let p = Arc::new(plan_federated(endpoints, catalog, sparql, mode)?);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.plans
                    .lock()
                    .expect("plan cache lock")
                    .insert(key, p.clone());
                Ok(p)
            }
        }
    }

    /// Cache statistics: `(hits, misses, entries)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.plans.lock().expect("plan cache lock").len(),
        )
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// Run a query against the federation through a [`PlanCache`]:
/// [`federated_query`] with the parse/plan/source-selection front half
/// cached across calls.
pub fn federated_query_cached(
    endpoints: &[Endpoint],
    catalog: &FederationCatalog,
    cache: &PlanCache,
    sparql: &str,
    mode: Mode,
) -> Result<FedReport, FedError> {
    let fed = cache.prepare(endpoints, catalog, sparql, mode)?;
    execute_federated(endpoints, &fed, mode)
}

/// Run a query against the federation.
pub fn federated_query(
    endpoints: &[Endpoint],
    catalog: &FederationCatalog,
    sparql: &str,
    mode: Mode,
) -> Result<FedReport, FedError> {
    let fed = plan_federated(endpoints, catalog, sparql, mode)?;
    execute_federated(endpoints, &fed, mode)
}

/// Execute a prepared federated plan.
pub fn execute_federated(
    endpoints: &[Endpoint],
    fed: &FedPlan,
    mode: Mode,
) -> Result<FedReport, FedError> {
    let plan = &fed.plan;
    for ep in endpoints {
        ep.reset_meters();
    }
    let mut triples_transferred = 0u64;
    let mut rows: Vec<Row> = vec![HashMap::new()];
    for &pi in &plan.order {
        let pattern = &plan.patterns[pi];
        rows = extend_rows(
            endpoints,
            &fed.sources[pi],
            pattern,
            rows,
            mode,
            &mut triples_transferred,
        );
        if rows.is_empty() {
            break;
        }
    }

    // The plan's filters, evaluated locally over complete rows. Only the
    // variables each filter actually references are interned.
    if !plan.filters.is_empty() {
        rows.retain(|row| {
            plan.filters.iter().all(|f| {
                let mut dict = Dictionary::new();
                let ids: HashMap<&str, u64> = f
                    .lookup
                    .iter()
                    .filter_map(|(name, _)| {
                        row.get(name).map(|t| (name.as_str(), dict.intern(t)))
                    })
                    .collect();
                let ctx = EvalCtx {
                    dict: &dict,
                    lookup: &|name: &str| ids.get(name).copied(),
                    const_geoms: &plan.const_geoms,
                };
                truth(eval(&f.expr, &ctx)) == Some(true)
            })
        });
    }

    // Projection: the plan resolved the kept names at plan time.
    let projected: Vec<Row> = if plan.star {
        rows
    } else {
        let keep: HashSet<&str> = plan.projection.iter().map(|(n, _)| n.as_str()).collect();
        rows.into_iter()
            .map(|mut row| {
                row.retain(|k, _| keep.contains(k.as_str()));
                row
            })
            .collect()
    };
    let mut out = projected;
    if plan.distinct {
        let mut seen = HashSet::new();
        out.retain(|row| {
            let mut key: Vec<(String, String)> = row
                .iter()
                .map(|(k, v)| (k.clone(), v.ntriples()))
                .collect();
            key.sort();
            seen.insert(key)
        });
    }
    if let Some(limit) = plan.limit {
        out.truncate(limit);
    }
    let requests: Vec<(String, u64)> = endpoints
        .iter()
        .map(|e| (e.name.clone(), e.requests()))
        .collect();
    let total_requests = requests.iter().map(|(_, r)| r).sum();
    let bindings_shipped = endpoints.iter().map(|e| e.bindings_shipped()).sum();
    Ok(FedReport {
        rows: out,
        requests,
        total_requests,
        bindings_shipped,
        triples_transferred,
    })
}

fn as_const<'a>(t: &'a PatternTerm, row: &'a Row) -> Option<&'a Term> {
    match t {
        PatternTerm::Const(c) => Some(c),
        PatternTerm::Var(v) => row.get(v),
    }
}

fn unify(pattern: &TriplePattern, triple: &(Term, Term, Term), row: &Row) -> Option<Row> {
    let mut out = row.clone();
    for (pt, actual) in [
        (&pattern.s, &triple.0),
        (&pattern.p, &triple.1),
        (&pattern.o, &triple.2),
    ] {
        match pt {
            PatternTerm::Const(c) => {
                if c != actual {
                    return None;
                }
            }
            PatternTerm::Var(v) => match out.get(v) {
                Some(existing) => {
                    if existing != actual {
                        return None;
                    }
                }
                None => {
                    out.insert(v.clone(), actual.clone());
                }
            },
        }
    }
    Some(out)
}

fn extend_rows(
    endpoints: &[Endpoint],
    relevant: &[usize],
    pattern: &TriplePattern,
    rows: Vec<Row>,
    mode: Mode,
    transferred: &mut u64,
) -> Vec<Row> {
    // Bind-join opportunity: optimised mode, and the subject or object
    // variable is already bound in (all) rows.
    let bind_subject = matches!(&pattern.s, PatternTerm::Var(v) if rows.iter().all(|r| r.contains_key(v)))
        && !rows.is_empty()
        && !rows[0].is_empty();
    let bind_object = matches!(&pattern.o, PatternTerm::Var(v) if rows.iter().all(|r| r.contains_key(v)))
        && !rows.is_empty()
        && !rows[0].is_empty();
    if mode == Mode::Optimized && (bind_subject || bind_object) {
        let var = match (bind_subject, &pattern.s, &pattern.o) {
            (true, PatternTerm::Var(v), _) => v.clone(),
            (false, _, PatternTerm::Var(v)) => v.clone(),
            _ => unreachable!("guarded above"),
        };
        let mut distinct: Vec<&Term> = Vec::new();
        let mut seen = HashSet::new();
        for row in &rows {
            let t = row.get(&var).expect("bound in all rows");
            if seen.insert(t.ntriples()) {
                distinct.push(t);
            }
        }
        // Per-endpoint batched probe; results indexed by the bound value.
        let mut by_value: HashMap<String, Vec<(Term, Term, Term)>> = HashMap::new();
        let p_const = match &pattern.p {
            PatternTerm::Const(c) => Some(c),
            _ => None,
        };
        for &ei in relevant {
            let bindings: Vec<Option<&Term>> = distinct.iter().map(|t| Some(*t)).collect();
            let batches = if bind_subject {
                let o_const = match &pattern.o {
                    PatternTerm::Const(c) => Some(c),
                    _ => None,
                };
                endpoints[ei].bind_join(&bindings, p_const, o_const, true)
            } else {
                endpoints[ei].bind_join(&bindings, p_const, None, false)
            };
            for (value, batch) in distinct.iter().zip(batches) {
                *transferred += batch.len() as u64;
                by_value
                    .entry(value.ntriples())
                    .or_default()
                    .extend(batch);
            }
        }
        let mut out = Vec::new();
        for row in rows {
            let key = row.get(&var).expect("bound").ntriples();
            if let Some(triples) = by_value.get(&key) {
                for t in triples {
                    if let Some(extended) = unify(pattern, t, &row) {
                        out.push(extended);
                    }
                }
            }
        }
        return out;
    }
    // Broadcast path (naive mode, or nothing bound yet).
    let template_row = Row::new();
    let s_const = as_const(&pattern.s, &template_row).cloned();
    let p_const = as_const(&pattern.p, &template_row).cloned();
    let o_const = as_const(&pattern.o, &template_row).cloned();
    let mut fetched: Vec<(Term, Term, Term)> = Vec::new();
    for &ei in relevant {
        let batch = endpoints[ei].match_pattern(s_const.as_ref(), p_const.as_ref(), o_const.as_ref());
        *transferred += batch.len() as u64;
        fetched.extend(batch);
    }
    let mut out = Vec::new();
    for row in rows {
        for t in &fetched {
            if let Some(extended) = unify(pattern, t, &row) {
                out.push(extended);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_rdf::store::IndexMode;
    use ee_rdf::TripleStore;

    fn t(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    /// Three endpoints: a crops source, an ice source, a places source.
    fn federation() -> Vec<Endpoint> {
        let mut crops = TripleStore::new(IndexMode::Full);
        for i in 0..5 {
            let f = t(&format!("field{i}"));
            crops.insert(&f, &t("cropType"), &Term::string(if i % 2 == 0 { "wheat" } else { "maize" }));
            crops.insert(
                &f,
                &t("hasGeom"),
                &Term::wkt(format!("POINT ({} 0.5)", i as f64 + 0.5)),
            );
        }
        crops.build_spatial_index();
        let mut ice = TripleStore::new(IndexMode::Full);
        for i in 0..4 {
            let f = t(&format!("floe{i}"));
            ice.insert(&f, &t("iceType"), &Term::string("first-year"));
            ice.insert(
                &f,
                &t("hasGeom"),
                &Term::wkt(format!("POINT ({} 80.5)", i as f64 + 0.5)),
            );
        }
        ice.build_spatial_index();
        let mut places = TripleStore::new(IndexMode::Full);
        for i in 0..5 {
            places.insert(
                &t(&format!("field{i}")),
                &t("name"),
                &Term::string(format!("Field {i}")),
            );
        }
        vec![
            Endpoint::new("crops", crops),
            Endpoint::new("ice", ice),
            Endpoint::new("places", places),
        ]
    }

    const QUERY: &str = "PREFIX e: <http://e/> SELECT ?f ?n WHERE { \
        ?f e:cropType \"wheat\" . ?f e:name ?n }";

    #[test]
    fn naive_and_optimized_agree() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let naive = federated_query(&eps, &cat, QUERY, Mode::Naive).unwrap();
        let opt = federated_query(&eps, &cat, QUERY, Mode::Optimized).unwrap();
        let norm = |r: &FedReport| {
            let mut v: Vec<String> = r
                .rows
                .iter()
                .map(|row| {
                    let mut kv: Vec<String> =
                        row.iter().map(|(k, t)| format!("{k}={}", t.ntriples())).collect();
                    kv.sort();
                    kv.join(",")
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&naive), norm(&opt));
        assert_eq!(naive.rows.len(), 3, "wheat fields 0, 2, 4");
    }

    #[test]
    fn optimized_sends_fewer_requests() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let naive = federated_query(&eps, &cat, QUERY, Mode::Naive).unwrap();
        let opt = federated_query(&eps, &cat, QUERY, Mode::Optimized).unwrap();
        assert!(
            opt.total_requests < naive.total_requests,
            "optimized {} vs naive {}",
            opt.total_requests,
            naive.total_requests
        );
        // The ice endpoint serves nothing in the optimised plan.
        let ice_requests = opt
            .requests
            .iter()
            .find(|(n, _)| n == "ice")
            .map(|(_, r)| *r)
            .unwrap();
        assert_eq!(ice_requests, 0, "source selection prunes the ice endpoint");
        assert!(opt.triples_transferred <= naive.triples_transferred);
    }

    #[test]
    fn bind_join_reduces_transfer() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let opt = federated_query(&eps, &cat, QUERY, Mode::Optimized).unwrap();
        assert!(opt.bindings_shipped > 0, "second pattern ran as a bind join");
        // The naive plan pulls the full name table (5 triples); the bind
        // join pulls only the wheat fields' names (3).
        let naive = federated_query(&eps, &cat, QUERY, Mode::Naive).unwrap();
        assert!(opt.triples_transferred < naive.triples_transferred);
    }

    #[test]
    fn spatial_source_selection_prunes_by_extent() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        // A geometry query over the equator region: ice (at lat ~80) is
        // irrelevant even though it has the hasGeom predicate.
        let q = "PREFIX e: <http://e/> SELECT ?f WHERE { ?f e:hasGeom ?g . \
                 FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 2, 0 2, 0 0))\"^^geo:wktLiteral)) }";
        let opt = federated_query(&eps, &cat, q, Mode::Optimized).unwrap();
        assert_eq!(opt.rows.len(), 5, "all crop fields in the region");
        let ice_requests = opt
            .requests
            .iter()
            .find(|(n, _)| n == "ice")
            .map(|(_, r)| *r)
            .unwrap();
        assert_eq!(ice_requests, 0, "extent-disjoint endpoint pruned");
        // Naive mode pays the ice endpoint anyway.
        let naive = federated_query(&eps, &cat, q, Mode::Naive).unwrap();
        assert_eq!(naive.rows.len(), 5);
        assert!(naive.requests.iter().find(|(n, _)| n == "ice").unwrap().1 > 0);
    }

    #[test]
    fn distinct_and_limit() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let q = "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?f e:cropType ?c } LIMIT 1";
        let r = federated_query(&eps, &cat, q, Mode::Optimized).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn unsupported_features_rejected() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        for q in [
            "SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r } }",
            "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }",
        ] {
            assert!(matches!(
                federated_query(&eps, &cat, q, Mode::Optimized),
                Err(FedError::Unsupported(_))
            ));
        }
    }

    #[test]
    fn empty_result_when_nothing_matches() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let q = "PREFIX e: <http://e/> SELECT ?f WHERE { ?f e:cropType \"rice\" }";
        let r = federated_query(&eps, &cat, q, Mode::Optimized).unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn plan_cache_reuses_prepared_plans() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let cache = PlanCache::new();
        let direct = federated_query(&eps, &cat, QUERY, Mode::Optimized).unwrap();
        let first = federated_query_cached(&eps, &cat, &cache, QUERY, Mode::Optimized).unwrap();
        assert_eq!(first.rows.len(), direct.rows.len());
        // Same query with different whitespace: canonicalisation hits.
        let respaced = QUERY.replace(" . ", " \n . ");
        let second =
            federated_query_cached(&eps, &cat, &cache, &respaced, Mode::Optimized).unwrap();
        assert_eq!(second.rows.len(), direct.rows.len());
        assert_eq!(cache.stats(), (1, 1, 1), "one plan, reused");
        // The mode is part of the key: naive gets its own rewrite.
        let naive = federated_query_cached(&eps, &cat, &cache, QUERY, Mode::Naive).unwrap();
        assert_eq!(naive.rows.len(), direct.rows.len());
        assert_eq!(cache.stats(), (1, 2, 2), "modes cached separately");
        // Parse errors surface through the cached path too, uncached.
        assert!(federated_query_cached(&eps, &cat, &cache, "nonsense", Mode::Naive).is_err());
        assert_eq!(cache.stats().2, 2, "failed plans are not cached");
    }

    #[test]
    fn fed_plan_exposes_source_assignments() {
        let eps = federation();
        let cat = FederationCatalog::build(&eps);
        let fed = plan_federated(&eps, &cat, QUERY, Mode::Optimized).unwrap();
        assert_eq!(fed.sources.len(), 2);
        // Pattern 0 (cropType) goes only to the crops endpoint; pattern 1
        // (name) only to places.
        assert_eq!(fed.sources[0], vec![0], "cropType → crops only");
        assert_eq!(fed.sources[1], vec![2], "name → places only");
        // The shared plan orders the two-constant pattern first.
        assert_eq!(fed.plan.order[0], 0);
        // Executing the prepared plan matches the one-shot entry point.
        let direct = federated_query(&eps, &cat, QUERY, Mode::Optimized).unwrap();
        let via_plan = execute_federated(&eps, &fed, Mode::Optimized).unwrap();
        assert_eq!(via_plan.rows.len(), direct.rows.len());
    }
}
