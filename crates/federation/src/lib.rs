#![warn(missing_docs)]
//! Federated SPARQL over distributed geospatial sources — the Semagrow
//! analogue of Challenge C3 (ref \[3\]).
//!
//! Semagrow "optimises federated SPARQL queries" over many endpoints; the
//! extension ExtremeEarth plans is managing *federations of big geospatial
//! data sources*. This crate implements that architecture:
//!
//! * [`endpoint`] — a remote-source abstraction over an `ee-rdf` store
//!   that counts the requests and bindings shipped to it (the E8 cost
//!   metrics);
//! * [`catalog`] — per-endpoint statistics harvested once: triple counts
//!   per predicate and the spatial extent of each source's geometries —
//!   the histograms source selection needs;
//! * [`exec`] — the federated evaluator. *Source selection* drops
//!   endpoints that cannot contribute to a pattern (no matching
//!   predicate, or — for spatially filtered queries — a disjoint extent);
//!   *bind joins* ship intermediate bindings so only relevant remote rows
//!   return. The naive baseline broadcasts every pattern everywhere and
//!   joins locally, which is exactly what the optimised plan beats in E8;
//! * [`remote`] — scatter-gather over HTTP shard backends: a keep-alive
//!   connection pool driving all in-flight exchanges from one poll
//!   loop, per-shard deadlines (partial results, never hangs), and
//!   hedged requests to still-pending shards past a trigger.

pub mod catalog;
pub mod endpoint;
pub mod exec;
pub mod remote;

pub use catalog::FederationCatalog;
pub use endpoint::Endpoint;
pub use remote::{select_shards, ScatterConfig, ScatterReport, ShardBackend, ShardPart, ShardPool};
pub use exec::{
    execute_federated, federated_query, federated_query_cached, plan_federated, FedPlan,
    FedReport, Mode, PlanCache,
};

/// Errors from federated evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FedError {
    /// Parse error from the query text.
    Parse(String),
    /// The query uses features outside the federated subset.
    Unsupported(String),
}

impl From<ee_rdf::RdfError> for FedError {
    fn from(e: ee_rdf::RdfError) -> Self {
        FedError::Parse(e.to_string())
    }
}

impl std::fmt::Display for FedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedError::Parse(m) => write!(f, "federated parse error: {m}"),
            FedError::Unsupported(m) => write!(f, "unsupported in federation: {m}"),
        }
    }
}

impl std::error::Error for FedError {}
