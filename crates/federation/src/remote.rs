//! Scatter-gather execution over HTTP shard backends.
//!
//! PR 8's federation layer talked to in-process [`crate::Endpoint`]s;
//! this module generalises the source-selection + gather machinery to
//! *real* `ee-serve` shard processes reached over HTTP/1.1. One
//! [`ShardPool`] fronts N backends and drives every in-flight exchange
//! from a single poll loop (the same readiness model as the event
//! server, applied client-side):
//!
//! * **keep-alive pooling** — completed keep-alive connections return to
//!   a per-shard idle list and are reused by the next scatter; a reused
//!   connection that dies before any response byte past the head arrives
//!   is retried once on a fresh connect (the shard may simply have
//!   restarted between scatters);
//! * **per-shard deadlines** — a shard that does not answer inside
//!   [`ScatterConfig::deadline`] yields `None` for its slot and flips
//!   [`ScatterReport::incomplete`]; the caller surfaces a partial
//!   result, never a hang;
//! * **hedged requests** — once [`ScatterConfig::hedge_after`] has
//!   elapsed, each still-pending shard gets one duplicate request on a
//!   fresh connection; whichever attempt completes first wins and the
//!   loser is discarded. This trims the tail a transiently slow shard
//!   would otherwise impose on every fan-out query.
//!
//! [`select_shards`] is the shard-level analogue of endpoint source
//! selection: queries whose subjects are all constants route to just
//! the owning shards of the subject-hash ring; everything else fans out
//! to all of them.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ee_rdf::parser::{parse_query, PatternTerm};
use ee_rdf::storage::ShardSpec;
use ee_util::http1::ResponseDecoder;
use ee_util::poll::{poll_fds, PollFd, POLLIN, POLLOUT};

use crate::FedError;

/// One HTTP shard backend.
#[derive(Debug, Clone)]
pub struct ShardBackend {
    /// Display name (metrics, logs).
    pub name: String,
    /// The shard's listening address.
    pub addr: SocketAddr,
}

/// Tuning for a scatter round.
#[derive(Debug, Clone)]
pub struct ScatterConfig {
    /// Per-shard answer deadline; a miss yields a `None` part.
    pub deadline: Duration,
    /// Elapsed time after which still-pending shards get a hedged
    /// duplicate request on a fresh connection.
    pub hedge_after: Duration,
}

impl Default for ScatterConfig {
    fn default() -> Self {
        ScatterConfig {
            deadline: Duration::from_millis(1500),
            hedge_after: Duration::from_millis(150),
        }
    }
}

/// One shard's completed exchange.
#[derive(Debug, Clone)]
pub struct ShardPart {
    /// Index into the pool's backend list.
    pub shard: usize,
    /// HTTP status of the winning response.
    pub status: u16,
    /// Response headers (lower-cased names), in wire order.
    pub headers: Vec<(String, String)>,
    /// De-chunked response body.
    pub body: Vec<u8>,
    /// Time from scatter start to this shard's completion.
    pub latency: Duration,
    /// The winning response came from a hedged duplicate.
    pub hedged: bool,
}

/// The outcome of one scatter round.
#[derive(Debug, Clone, Default)]
pub struct ScatterReport {
    /// One slot per requested target, in target order; `None` means the
    /// shard failed or missed its deadline.
    pub parts: Vec<Option<ShardPart>>,
    /// Hedged duplicate requests launched.
    pub hedged: u64,
    /// Stale pooled connections retried on a fresh connect.
    pub retried: u64,
    /// True when any slot is `None`.
    pub incomplete: bool,
}

/// Which shards a query must visit, given the subject-hash ring.
///
/// The shard-level analogue of endpoint source selection: when every
/// pattern subject is a constant term, only the owning shards can hold
/// matching triples, so the scatter visits just those. Any variable
/// subject fans out to all shards.
pub fn select_shards(sparql: &str, shard_count: usize) -> Result<Vec<usize>, FedError> {
    let q = parse_query(sparql).map_err(|e| FedError::Parse(e.to_string()))?;
    let spec = ShardSpec::try_new(0, shard_count)
        .ok_or_else(|| FedError::Unsupported("shard count must be >= 1".into()))?;
    let mut owners = HashSet::new();
    for p in &q.patterns {
        match &p.s {
            PatternTerm::Const(t) => {
                owners.insert(spec.owner(t));
            }
            PatternTerm::Var(_) => return Ok((0..shard_count).collect()),
        }
    }
    if owners.is_empty() {
        // No patterns at all — nothing constrains the scatter.
        return Ok((0..shard_count).collect());
    }
    let mut v: Vec<usize> = owners.into_iter().collect();
    v.sort_unstable();
    Ok(v)
}

/// Phase of one in-flight attempt.
enum AttemptState {
    Sending,
    Receiving,
}

/// One connection carrying one request to one shard.
struct Attempt {
    shard: usize,
    slot: usize,
    stream: TcpStream,
    state: AttemptState,
    sent: usize,
    decoder: ResponseDecoder,
    /// Connection came from the idle pool (eligible for one retry).
    reused: bool,
    /// This attempt is the hedged duplicate.
    hedge: bool,
}

/// A pool of keep-alive connections to N shard backends, driving all
/// in-flight exchanges of a scatter from one poll loop.
pub struct ShardPool {
    backends: Vec<ShardBackend>,
    config: ScatterConfig,
    idle: Mutex<Vec<Vec<TcpStream>>>,
}

impl ShardPool {
    /// A pool over `backends` with `config` tuning.
    pub fn new(backends: Vec<ShardBackend>, config: ScatterConfig) -> ShardPool {
        let idle = Mutex::new(backends.iter().map(|_| Vec::new()).collect());
        ShardPool {
            backends,
            config,
            idle,
        }
    }

    /// The backends, in shard-index order.
    pub fn backends(&self) -> &[ShardBackend] {
        &self.backends
    }

    /// Send `request` to every shard in `targets` and gather the
    /// responses. Returns one part per target in target order; slots for
    /// shards that failed or missed the deadline are `None` and flip
    /// `incomplete`. Never blocks past the per-shard deadline.
    pub fn scatter(&self, request: &[u8], targets: &[usize]) -> ScatterReport {
        let t0 = Instant::now();
        let mut report = ScatterReport {
            parts: vec![None; targets.len()],
            ..ScatterReport::default()
        };
        let mut done = vec![false; targets.len()];
        let mut retried = vec![false; targets.len()];
        let mut hedge_launched = vec![false; targets.len()];
        let mut attempts: Vec<Attempt> = Vec::new();
        for (slot, &shard) in targets.iter().enumerate() {
            if shard >= self.backends.len() {
                done[slot] = true; // part stays None
                continue;
            }
            match self.checkout(shard, slot) {
                Some(a) => attempts.push(a),
                None => done[slot] = true,
            }
        }
        let deadline = t0 + self.config.deadline;
        let hedge_at = t0 + self.config.hedge_after;
        while !attempts.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Hedge every still-pending shard once the trigger passes.
            if now >= hedge_at {
                let pending: Vec<(usize, usize)> = attempts
                    .iter()
                    .filter(|a| !done[a.slot] && !hedge_launched[a.slot] && !a.hedge)
                    .map(|a| (a.shard, a.slot))
                    .collect();
                for (shard, slot) in pending {
                    hedge_launched[slot] = true;
                    if let Some(mut h) = self.fresh(shard, slot) {
                        h.hedge = true;
                        report.hedged += 1;
                        attempts.push(h);
                    }
                }
            }
            let next_wake = if now < hedge_at { hedge_at } else { deadline };
            let budget = next_wake.saturating_duration_since(now).as_millis() as i32;
            let mut fds: Vec<PollFd> = attempts
                .iter()
                .map(|a| {
                    let events = match a.state {
                        AttemptState::Sending => POLLOUT,
                        AttemptState::Receiving => POLLIN,
                    };
                    PollFd::new(std::os::fd::AsRawFd::as_raw_fd(&a.stream), events)
                })
                .collect();
            if poll_fds(&mut fds, budget.max(1)).is_err() {
                break;
            }
            let mut i = 0;
            while i < attempts.len() {
                if done[attempts[i].slot] {
                    // A sibling attempt already won this shard.
                    attempts.swap_remove(i);
                    continue;
                }
                let fd = &fds[i];
                // fds and attempts are index-aligned only before the first
                // removal this round; re-derive readiness conservatively.
                let ready = fd.fd == std::os::fd::AsRawFd::as_raw_fd(&attempts[i].stream)
                    && (fd.ready(POLLIN | POLLOUT) || fd.failed());
                if !ready {
                    i += 1;
                    continue;
                }
                match Self::drive(&mut attempts[i], request) {
                    Drive::Pending => i += 1,
                    Drive::Complete => {
                        let a = attempts.swap_remove(i);
                        // swap_remove also moved an fd slot out of
                        // alignment; rebuild alignment by truncating the
                        // remaining drive pass.
                        self.finish(a, t0, &mut report, &mut done);
                        break;
                    }
                    Drive::Dead => {
                        let a = attempts.swap_remove(i);
                        if a.reused && !a.decoder.started_body() && !retried[a.slot] {
                            retried[a.slot] = true;
                            report.retried += 1;
                            if let Some(fresh) = self.fresh(a.shard, a.slot) {
                                attempts.push(fresh);
                            }
                        } else if !attempts.iter().any(|x| x.slot == a.slot) {
                            done[a.slot] = true; // part stays None
                        }
                        break;
                    }
                }
            }
            attempts.retain(|a| !done[a.slot]);
        }
        report.incomplete = report.parts.iter().any(Option::is_none);
        report
    }

    /// Checkout a connection for `shard`: pooled if available, else fresh.
    fn checkout(&self, shard: usize, slot: usize) -> Option<Attempt> {
        let pooled = self.idle.lock().unwrap()[shard].pop();
        match pooled {
            Some(stream) => Some(Attempt {
                shard,
                slot,
                stream,
                state: AttemptState::Sending,
                sent: 0,
                decoder: ResponseDecoder::new(),
                reused: true,
                hedge: false,
            }),
            None => self.fresh(shard, slot),
        }
    }

    /// A brand-new nonblocking connection to `shard`.
    fn fresh(&self, shard: usize, slot: usize) -> Option<Attempt> {
        let stream = TcpStream::connect(self.backends[shard].addr).ok()?;
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        Some(Attempt {
            shard,
            slot,
            stream,
            state: AttemptState::Sending,
            sent: 0,
            decoder: ResponseDecoder::new(),
            reused: false,
            hedge: false,
        })
    }

    /// Drive one ready attempt: flush request bytes, then read and feed
    /// the decoder.
    fn drive(a: &mut Attempt, request: &[u8]) -> Drive {
        if matches!(a.state, AttemptState::Sending) {
            while a.sent < request.len() {
                match a.stream.write(&request[a.sent..]) {
                    Ok(0) => return Drive::Dead,
                    Ok(n) => a.sent += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return Drive::Pending
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return Drive::Dead,
                }
            }
            a.state = AttemptState::Receiving;
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            match a.stream.read(&mut buf) {
                Ok(0) => return Drive::Dead,
                Ok(n) => match a.decoder.feed(&buf[..n]) {
                    Ok(Some(_)) => return Drive::Complete,
                    Ok(None) => {}
                    Err(_) => return Drive::Dead,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Drive::Pending,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Drive::Dead,
            }
        }
    }

    /// Record a completed attempt and pool its connection if reusable.
    fn finish(
        &self,
        a: Attempt,
        t0: Instant,
        report: &mut ScatterReport,
        done: &mut [bool],
    ) {
        done[a.slot] = true;
        report.parts[a.slot] = Some(ShardPart {
            shard: a.shard,
            status: a.decoder.status(),
            headers: a.decoder.headers().to_vec(),
            body: a.decoder.body(),
            latency: t0.elapsed(),
            hedged: a.hedge,
        });
        if a.decoder.is_keep_alive() {
            let mut idle = self.idle.lock().unwrap();
            // Bound the idle list: a couple of warm conns per shard is
            // plenty for a router worker.
            if idle[a.shard].len() < 4 {
                idle[a.shard].push(a.stream);
            }
        }
    }
}

enum Drive {
    Pending,
    Complete,
    Dead,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn canned_shard(body: &'static str, delay: Duration) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                std::thread::spawn(move || loop {
                    let mut buf = [0u8; 4096];
                    let n = match conn.read(&mut buf) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => n,
                    };
                    let _ = n;
                    std::thread::sleep(delay);
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\ncontent-length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    if conn.write_all(resp.as_bytes()).is_err() {
                        return;
                    }
                });
            }
        });
        addr
    }

    fn pool_of(addrs: &[SocketAddr], config: ScatterConfig) -> ShardPool {
        let backends = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| ShardBackend {
                name: format!("shard-{i}"),
                addr,
            })
            .collect();
        ShardPool::new(backends, config)
    }

    const REQ: &[u8] = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";

    #[test]
    fn scatter_gathers_every_shard_and_reuses_connections() {
        let addrs = [
            canned_shard("a", Duration::ZERO),
            canned_shard("b", Duration::ZERO),
        ];
        let pool = pool_of(&addrs, ScatterConfig::default());
        let r = pool.scatter(REQ, &[0, 1]);
        assert!(!r.incomplete);
        assert_eq!(r.parts.len(), 2);
        assert_eq!(r.parts[0].as_ref().unwrap().body, b"a");
        assert_eq!(r.parts[1].as_ref().unwrap().body, b"b");
        // Second round reuses the pooled keep-alive conns.
        let r2 = pool.scatter(REQ, &[0, 1]);
        assert!(!r2.incomplete);
        assert_eq!(r2.retried, 0);
    }

    #[test]
    fn down_shard_yields_partial_not_hang() {
        let up = canned_shard("up", Duration::ZERO);
        // Grab an address and immediately close the listener.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        let pool = pool_of(&[up, dead], ScatterConfig::default());
        let t0 = Instant::now();
        let r = pool.scatter(REQ, &[0, 1]);
        assert!(r.incomplete);
        assert!(r.parts[0].is_some());
        assert!(r.parts[1].is_none());
        assert!(t0.elapsed() < Duration::from_secs(2), "failed fast, no hang");
    }

    #[test]
    fn slow_shard_is_hedged_and_deadline_bounds_the_round() {
        // A shard whose every response takes far longer than the
        // deadline: hedging fires (counts), deadline still bounds us.
        let slow = canned_shard("slow", Duration::from_millis(500));
        let fast = canned_shard("fast", Duration::ZERO);
        let config = ScatterConfig {
            deadline: Duration::from_millis(250),
            hedge_after: Duration::from_millis(50),
        };
        let pool = pool_of(&[fast, slow], config);
        let t0 = Instant::now();
        let r = pool.scatter(REQ, &[0, 1]);
        assert!(r.parts[0].is_some());
        assert!(r.parts[1].is_none(), "slow shard misses its deadline");
        assert!(r.incomplete);
        assert!(r.hedged >= 1, "pending shard was hedged");
        assert!(t0.elapsed() < Duration::from_millis(600));
    }

    #[test]
    fn restarted_shard_triggers_stale_conn_retry() {
        // First exchange pools a keep-alive conn; then the shard
        // "restarts" (listener dropped, conn closed) and a new one takes
        // over the port. The pooled conn dies before any body byte, so
        // the scatter retries fresh and still answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = conn.read(&mut buf).unwrap();
            conn.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nv1")
                .unwrap();
            // Drop conn + listener: the "crash".
        });
        let pool = pool_of(&[addr], ScatterConfig::default());
        let r1 = pool.scatter(REQ, &[0]);
        assert_eq!(r1.parts[0].as_ref().unwrap().body, b"v1");
        h.join().unwrap();
        // Restart on the same port (retry a few times for the kernel to
        // release it; SO_REUSEADDR semantics vary).
        let mut relisten = None;
        for _ in 0..50 {
            match TcpListener::bind(addr) {
                Ok(l) => {
                    relisten = Some(l);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let listener = relisten.expect("rebind shard port");
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                let mut buf = [0u8; 4096];
                if matches!(conn.read(&mut buf), Ok(0) | Err(_)) {
                    continue;
                }
                let _ = conn.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nv2");
            }
        });
        let r2 = pool.scatter(REQ, &[0]);
        assert!(!r2.incomplete, "retry on fresh connect recovered");
        assert_eq!(r2.parts[0].as_ref().unwrap().body, b"v2");
        assert_eq!(r2.retried, 1);
    }

    #[test]
    fn constant_subjects_route_to_owner_shards_only() {
        let all = select_shards("SELECT ?s WHERE { ?s ?p ?o }", 4).unwrap();
        assert_eq!(all, vec![0, 1, 2, 3]);
        let one = select_shards(
            "SELECT ?o WHERE { <http://e/f1> <http://e/p> ?o }",
            4,
        )
        .unwrap();
        assert_eq!(one.len(), 1);
        let spec = ShardSpec::new(0, 4);
        let owner = spec.owner(&ee_rdf::Term::iri("http://e/f1"));
        assert_eq!(one, vec![owner]);
        assert!(select_shards("nonsense", 4).is_err());
        assert!(select_shards("SELECT ?s WHERE { ?s ?p ?o }", 0).is_err());
    }
}
