//! Field-boundary extraction from a classified crop map.
//!
//! Connected components (4-neighbourhood, same class) over the predicted
//! map, small-component suppression, and per-component footprint
//! polygons. The extracted fields are matched against the true parcels by
//! overlap to score boundary quality.

use ee_datasets::Landscape;
use ee_geo::{Envelope, Polygon};
use ee_raster::Raster;

/// An extracted field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Component label (1-based).
    pub id: u32,
    /// Predicted class index.
    pub class: u8,
    /// Pixel count.
    pub pixels: usize,
    /// World-space footprint (bounding polygon of the component).
    pub footprint: Polygon,
}

/// Label connected components of equal class; components smaller than
/// `min_pixels` are suppressed (label 0). Returns (labels, fields).
pub fn extract_fields(map: &Raster<u8>, min_pixels: usize) -> (Raster<u16>, Vec<Field>) {
    let (cols, rows) = map.shape();
    let mut labels: Raster<u16> = Raster::zeros(cols, rows, map.transform());
    let mut fields = Vec::new();
    let mut next_label: u16 = 1;
    let mut stack = Vec::new();
    for start_r in 0..rows {
        for start_c in 0..cols {
            if labels.at(start_c, start_r) != 0 {
                continue;
            }
            let class = map.at(start_c, start_r);
            // Flood fill.
            let mut members = Vec::new();
            stack.push((start_c, start_r));
            labels.put(start_c, start_r, u16::MAX); // visited marker
            while let Some((c, r)) = stack.pop() {
                members.push((c, r));
                let neighbours = [
                    (c.wrapping_sub(1), r),
                    (c + 1, r),
                    (c, r.wrapping_sub(1)),
                    (c, r + 1),
                ];
                for (nc, nr) in neighbours {
                    if nc < cols && nr < rows && labels.at(nc, nr) == 0 && map.at(nc, nr) == class
                    {
                        labels.put(nc, nr, u16::MAX);
                        stack.push((nc, nr));
                    }
                }
            }
            if members.len() >= min_pixels && next_label < u16::MAX {
                let label = next_label;
                next_label += 1;
                let mut env = Envelope::empty();
                for &(c, r) in &members {
                    labels.put(c, r, label);
                    let p = map.transform().pixel_center(c, r);
                    env.expand(&p);
                }
                // Pad by half a pixel so the polygon covers whole pixels.
                let half = map.transform().pixel_size / 2.0;
                let footprint = Polygon::rectangle(
                    env.min_x - half,
                    env.min_y - half,
                    env.max_x + half,
                    env.max_y + half,
                );
                fields.push(Field {
                    id: label as u32,
                    class,
                    pixels: members.len(),
                    footprint,
                });
            } else {
                for &(c, r) in &members {
                    // Reset marker: too small to be a field.
                    labels.put(c, r, 0);
                }
                // Mark visited but unlabelled pixels so we do not refill:
                // use a sentinel pass below instead. Simplest correct fix:
                // remember in a bitset.
                for &(c, r) in &members {
                    labels.put(c, r, u16::MAX - 1);
                }
            }
        }
    }
    // Clear sentinels.
    for v in labels.data_mut() {
        if *v == u16::MAX - 1 {
            *v = 0;
        }
    }
    (labels, fields)
}

/// Boundary-quality score: fraction of true parcels for which some
/// extracted field of the same class covers ≥ `overlap` of the parcel's
/// pixels.
pub fn parcel_recovery(
    world: &Landscape,
    labels: &Raster<u16>,
    fields: &[Field],
    overlap: f64,
) -> f64 {
    if world.parcels.is_empty() {
        return 0.0;
    }
    let mut recovered = 0usize;
    for parcel in &world.parcels {
        // Count, per component label, parcel pixels covered.
        let mut counts: std::collections::HashMap<u16, usize> = Default::default();
        let mut total = 0usize;
        for (c, r, pid) in world.parcel_map.iter() {
            if pid == parcel.id {
                total += 1;
                let l = labels.at(c, r);
                if l != 0 {
                    *counts.entry(l).or_insert(0) += 1;
                }
            }
        }
        let best = counts
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|(&l, &n)| (l, n));
        if let Some((label, n)) = best {
            let field = fields.iter().find(|f| f.id == label as u32);
            let class_ok = field
                .map(|f| f.class == parcel.class.as_index() as u8)
                .unwrap_or(false);
            if class_ok && n as f64 / total as f64 >= overlap {
                recovered += 1;
            }
        }
    }
    recovered as f64 / world.parcels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_raster::raster::GeoTransform;

    fn gt() -> GeoTransform {
        GeoTransform::new(0.0, 100.0, 10.0)
    }

    #[test]
    fn single_uniform_region_is_one_field() {
        let map: Raster<u8> = Raster::filled(10, 10, gt(), 3);
        let (labels, fields) = extract_fields(&map, 4);
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].pixels, 100);
        assert_eq!(fields[0].class, 3);
        assert!(labels.data().iter().all(|&l| l == 1));
    }

    #[test]
    fn two_classes_two_fields() {
        let map: Raster<u8> = Raster::from_fn(10, 10, gt(), |c, _| if c < 5 { 1 } else { 2 });
        let (_, fields) = extract_fields(&map, 4);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields.iter().map(|f| f.pixels).sum::<usize>(), 100);
    }

    #[test]
    fn diagonal_is_not_connected() {
        // Two same-class squares touching only diagonally → two fields.
        let mut map: Raster<u8> = Raster::zeros(6, 6, gt());
        for r in 0..3 {
            for c in 0..3 {
                map.put(c, r, 1);
                map.put(c + 3, r + 3, 1);
            }
        }
        let (_, fields) = extract_fields(&map, 2);
        let ones: Vec<&Field> = fields.iter().filter(|f| f.class == 1).collect();
        assert_eq!(ones.len(), 2, "4-connectivity separates diagonals");
    }

    #[test]
    fn small_specks_suppressed() {
        let mut map: Raster<u8> = Raster::filled(10, 10, gt(), 1);
        map.put(5, 5, 9); // single-pixel noise
        let (labels, fields) = extract_fields(&map, 4);
        assert_eq!(fields.len(), 1, "speck filtered");
        assert_eq!(labels.at(5, 5), 0, "speck unlabelled");
    }

    #[test]
    fn footprint_covers_component() {
        let map: Raster<u8> = Raster::from_fn(8, 8, gt(), |c, r| u8::from(c < 4 && r < 4));
        let (_, fields) = extract_fields(&map, 4);
        let f1 = fields.iter().find(|f| f.class == 1).unwrap();
        // 4x4 pixels at 10 m = 40 m square (0,60)-(40,100) in world coords.
        let env = f1.footprint.envelope();
        assert_eq!(env, Envelope::new(0.0, 60.0, 40.0, 100.0));
    }

    #[test]
    fn recovery_on_perfect_map() {
        use ee_datasets::landscape::LandscapeConfig;
        let world = ee_datasets::Landscape::generate(LandscapeConfig {
            size: 48,
            parcels_per_side: 5,
            ..LandscapeConfig::default()
        })
        .unwrap();
        // The "predicted" map is the truth itself.
        let (labels, fields) = extract_fields(&world.truth, 6);
        let recovery = parcel_recovery(&world, &labels, &fields, 0.7);
        assert!(
            recovery > 0.7,
            "perfect map recovers most parcels: {recovery}"
        );
    }
}
