//! Per-pixel crop-type classification from the seasonal time series.
//!
//! Features per pixel: NDVI at every acquisition plus red and NIR
//! reflectance at three season anchors — the temporal signature that
//! separates winter crops from summer crops (Challenge C1's "temporal
//! dimension plays a very important role").

use crate::FoodError;
use ee_datasets::{LandClass, Landscape};
use ee_dl::model::{mlp, Sequential};
use ee_dl::optim::{LrSchedule, Sgd};
use ee_dl::Dataset;
use ee_raster::stack::TimeStack;
use ee_raster::Raster;
use ee_tensor::Tensor;
use ee_util::stats::ConfusionMatrix;
use ee_util::Rng;

/// A trained per-pixel crop classifier.
pub struct CropMapper {
    model: Sequential,
    mean: Vec<f32>,
    std: Vec<f32>,
    num_dates: usize,
}

/// Per-pixel temporal feature vector: NDVI series + B04/B08 anchors.
fn pixel_features(stack: &TimeStack, col: usize, row: usize) -> Result<Vec<f32>, FoodError> {
    let ndvi = stack
        .ndvi_series(col, row)
        .map_err(|e| FoodError::Data(e.to_string()))?;
    let mut out = ndvi;
    let anchors = [0, stack.len() / 2, stack.len() - 1];
    for &a in &anchors {
        let scene = &stack.scenes()[a];
        let red = scene
            .band(ee_raster::Band::B04)
            .and_then(|r| r.get(col, row))
            .map_err(|e| FoodError::Data(e.to_string()))?;
        let nir = scene
            .band(ee_raster::Band::B08)
            .and_then(|r| r.get(col, row))
            .map_err(|e| FoodError::Data(e.to_string()))?;
        out.push(red);
        out.push(nir);
    }
    Ok(out)
}

/// Assemble a labelled pixel-feature dataset from the stack + truth.
pub fn feature_dataset(
    stack: &TimeStack,
    truth: &Raster<u8>,
    max_samples: usize,
    seed: u64,
) -> Result<Dataset, FoodError> {
    if stack.is_empty() {
        return Err(FoodError::Data("empty time stack".into()));
    }
    let (cols, rows) = truth.shape();
    let mut rng = Rng::seed_from(seed);
    let take = rng.sample_indices(cols * rows, max_samples.min(cols * rows));
    let width = stack.len() + 6;
    let mut data = Vec::with_capacity(take.len() * width);
    let mut labels = Vec::with_capacity(take.len());
    for &i in &take {
        let (c, r) = (i % cols, i / cols);
        data.extend(pixel_features(stack, c, r)?);
        labels.push(truth.at(c, r) as usize);
    }
    let x = Tensor::from_vec(&[take.len(), width], data)
        .map_err(|e| FoodError::Data(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| FoodError::Data(e.to_string()))
}

impl CropMapper {
    /// Train on a labelled sample of pixels from the stack.
    pub fn train(
        stack: &TimeStack,
        truth: &Raster<u8>,
        samples: usize,
        epochs: usize,
        seed: u64,
    ) -> Result<CropMapper, FoodError> {
        let mut data = feature_dataset(stack, truth, samples, seed)?;
        let (mean, std) = data.feature_stats();
        data.standardize(&mean, &std);
        let width = data.x.shape()[1];
        let mut rng = Rng::seed_from(seed ^ 0xc409);
        let mut model = mlp(width, 48, 10, &mut rng);
        let mut opt = Sgd::new(LrSchedule::Constant(0.15), 0.9);
        for epoch in 0..epochs {
            for idx in ee_dl::data::BatchIter::new(data.len(), 128, seed ^ epoch as u64) {
                let batch = data.take(&idx).map_err(|e| FoodError::Model(e.to_string()))?;
                model
                    .compute_gradients(&batch.x, &batch.labels)
                    .map_err(|e| FoodError::Model(e.to_string()))?;
                opt.step(&mut model).map_err(|e| FoodError::Model(e.to_string()))?;
            }
        }
        Ok(CropMapper {
            model,
            mean,
            std,
            num_dates: stack.len(),
        })
    }

    /// Predict the crop map for the whole stack extent.
    pub fn predict_map(&mut self, stack: &TimeStack) -> Result<Raster<u8>, FoodError> {
        if stack.len() != self.num_dates {
            return Err(FoodError::Model(format!(
                "mapper trained on {} dates, stack has {}",
                self.num_dates,
                stack.len()
            )));
        }
        let template = stack.scenes()[0]
            .band(ee_raster::Band::B04)
            .map_err(|e| FoodError::Data(e.to_string()))?;
        let (cols, rows) = template.shape();
        let mut out: Raster<u8> = Raster::zeros(cols, rows, template.transform());
        let width = self.num_dates + 6;
        // Batched inference over rows.
        for r in 0..rows {
            let mut data = Vec::with_capacity(cols * width);
            for c in 0..cols {
                let mut f = pixel_features(stack, c, r)?;
                for (v, (m, s)) in f.iter_mut().zip(self.mean.iter().zip(&self.std)) {
                    *v = (*v - m) / s;
                }
                data.extend(f);
            }
            let x = Tensor::from_vec(&[cols, width], data)
                .map_err(|e| FoodError::Model(e.to_string()))?;
            let preds = self
                .model
                .predict(&x)
                .map_err(|e| FoodError::Model(e.to_string()))?;
            for (c, p) in preds.into_iter().enumerate() {
                out.put(c, r, p as u8);
            }
        }
        Ok(out)
    }

    /// Evaluate a predicted map against truth.
    pub fn evaluate_map(predicted: &Raster<u8>, truth: &Raster<u8>) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(10);
        for ((_, _, p), (_, _, t)) in predicted.iter().zip(truth.iter()) {
            cm.record(t as usize, p as usize);
        }
        cm
    }
}

/// Convenience: the full A1 classification step over a landscape.
/// Returns (predicted map, accuracy matrix).
pub fn classify_landscape(
    world: &Landscape,
    stack: &TimeStack,
    seed: u64,
) -> Result<(Raster<u8>, ConfusionMatrix), FoodError> {
    let mut mapper = CropMapper::train(stack, &world.truth, 3000, 30, seed)?;
    let map = mapper.predict_map(stack)?;
    let cm = CropMapper::evaluate_map(&map, &world.truth);
    Ok((map, cm))
}

/// Majority-vote the predicted classes within each true parcel — the
/// "field-level" aggregation that turns pixel noise into per-field crop
/// types.
pub fn parcel_majority(world: &Landscape, predicted: &Raster<u8>) -> Vec<(u16, LandClass)> {
    let mut votes: std::collections::HashMap<u16, [u32; 10]> = Default::default();
    for (c, r, pid) in world.parcel_map.iter() {
        if pid != 0 {
            votes.entry(pid).or_insert([0; 10])[predicted.at(c, r) as usize] += 1;
        }
    }
    let mut out: Vec<(u16, LandClass)> = votes
        .into_iter()
        .map(|(pid, counts)| {
            let best = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i)
                .expect("non-empty");
            (pid, LandClass::from_index(best).expect("valid class index"))
        })
        .collect();
    out.sort_by_key(|(pid, _)| *pid);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_datasets::landscape::LandscapeConfig;
    use ee_datasets::optics::{simulate_season, OpticsConfig};
    use ee_util::timeline::Date;

    fn world_and_stack() -> (Landscape, TimeStack) {
        let world = Landscape::generate(LandscapeConfig {
            size: 48,
            parcels_per_side: 5,
            ..LandscapeConfig::default()
        })
        .unwrap();
        let dates: Vec<Date> = [60u16, 105, 150, 195, 240, 285]
            .iter()
            .map(|&d| Date::from_ordinal(2017, d).unwrap())
            .collect();
        let stack = simulate_season(
            &world,
            &dates,
            OpticsConfig {
                cloud_fraction: 0.0,
                noise_std: 0.008,
            },
            5,
        )
        .unwrap();
        (world, stack)
    }

    #[test]
    fn feature_width_is_dates_plus_anchors() {
        let (world, stack) = world_and_stack();
        let d = feature_dataset(&stack, &world.truth, 100, 1).unwrap();
        assert_eq!(d.x.shape(), &[100, 6 + 6]);
    }

    #[test]
    fn classifier_beats_chance_comfortably() {
        let (world, stack) = world_and_stack();
        let (map, cm) = classify_landscape(&world, &stack, 42).unwrap();
        assert_eq!(map.shape(), world.truth.shape());
        // 10 classes → chance ≈ largest class share; demand much better.
        assert!(
            cm.accuracy() > 0.7,
            "temporal classifier accuracy {}",
            cm.accuracy()
        );
        assert!(cm.kappa() > 0.5, "kappa {}", cm.kappa());
    }

    #[test]
    fn parcel_majority_cleans_pixel_noise() {
        let (world, stack) = world_and_stack();
        let (map, cm) = classify_landscape(&world, &stack, 43).unwrap();
        let fields = parcel_majority(&world, &map);
        assert_eq!(fields.len(), world.parcels.len());
        let correct = fields
            .iter()
            .filter(|(pid, class)| {
                world
                    .parcels
                    .iter()
                    .find(|p| p.id == *pid)
                    .map(|p| p.class == *class)
                    .unwrap_or(false)
            })
            .count();
        let field_acc = correct as f64 / fields.len() as f64;
        assert!(
            field_acc >= cm.accuracy() - 0.05,
            "field-level {} vs pixel-level {}",
            field_acc,
            cm.accuracy()
        );
    }

    #[test]
    fn mapper_rejects_mismatched_stack() {
        let (world, stack) = world_and_stack();
        let mut mapper = CropMapper::train(&stack, &world.truth, 500, 5, 1).unwrap();
        let shorter = stack.between(
            Date::from_ordinal(2017, 60).unwrap(),
            Date::from_ordinal(2017, 160).unwrap(),
        );
        assert!(mapper.predict_map(&shorter).is_err());
    }
}
