#![warn(missing_docs)]
//! The Food Security application (Challenge A1).
//!
//! "To develop high resolution water availability maps for agricultural
//! areas allowing a new level of detail for wide-scale irrigation
//! support. The maps will be available as linked data together with other
//! geospatial layers (e.g., OpenStreetMap, field boundaries, crop types
//! etc.)". The pipeline:
//!
//! 1. [`cropmap`] — classify crop type per pixel from the seasonal
//!    optical time series (the scalable-DL output of Challenge C1);
//! 2. [`boundaries`] — extract field boundaries from the crop map by
//!    connected-component analysis ("making it possible for the
//!    processing chains to include this information as linked data");
//! 3. [`promet`] — the PROMET-lite hydro-agroecological model (ref \[10\]):
//!    a daily snow + soil water balance at 10 m, with *crop-specific*
//!    crop coefficients taken from the predicted crop map — versus the
//!    constant-coefficient baseline A1 says was "formerly only available
//!    at farm level";
//! 4. [`linked`] — publish parcels, crop types and water availability as
//!    RDF through the GeoTriples mapping so downstream users query them
//!    with GeoSPARQL.

pub mod boundaries;
pub mod cropmap;
pub mod linked;
pub mod promet;

pub use cropmap::CropMapper;
pub use promet::{PrometConfig, PrometOutput, WeatherGenerator};

/// Errors from the Food Security pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FoodError {
    /// Data generation failed.
    Data(String),
    /// Training/inference failed.
    Model(String),
    /// Water-balance configuration problem.
    Config(String),
}

impl From<ee_datasets::DataGenError> for FoodError {
    fn from(e: ee_datasets::DataGenError) -> Self {
        FoodError::Data(e.to_string())
    }
}

impl From<ee_dl::DlError> for FoodError {
    fn from(e: ee_dl::DlError) -> Self {
        FoodError::Model(e.to_string())
    }
}

impl From<ee_raster::RasterError> for FoodError {
    fn from(e: ee_raster::RasterError) -> Self {
        FoodError::Data(e.to_string())
    }
}

impl std::fmt::Display for FoodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoodError::Data(m) => write!(f, "data error: {m}"),
            FoodError::Model(m) => write!(f, "model error: {m}"),
            FoodError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for FoodError {}
