//! Publish the A1 products as linked data.
//!
//! "The maps will be available as linked data together with other
//! geospatial layers (e.g., OpenStreetMap, field boundaries, crop types
//! etc.)" — parcels become RDF features through the GeoTriples mapping,
//! carrying crop type, area, mean water availability and irrigation
//! demand, and are then queryable with GeoSPARQL alongside anything else
//! in the store.

use crate::promet::PrometOutput;
use crate::FoodError;
use ee_datasets::Landscape;
use ee_geo::algorithms;
use ee_geotriples::features::{Feature, FeatureCollection, PropValue};
use ee_geotriples::mapping::{feature_mapping, TermType};
use ee_rdf::store::IndexMode;
use ee_rdf::TripleStore;

/// The A1 vocabulary namespace.
pub const FARM: &str = "http://extremeearth.eu/ont/farm#";

/// Build the parcel feature collection with model outputs attached.
pub fn parcel_features(
    world: &Landscape,
    crop_map: &ee_raster::Raster<u8>,
    output: &PrometOutput,
) -> Result<FeatureCollection, FoodError> {
    if crop_map.shape() != world.truth.shape() {
        return Err(FoodError::Config("crop map grid mismatch".into()));
    }
    let mut fc = FeatureCollection::new();
    for parcel in &world.parcels {
        // Aggregate model outputs over the parcel's pixels.
        let mut water = 0.0f64;
        let mut demand = 0.0f64;
        let mut votes = [0u32; 10];
        let mut count = 0usize;
        for (c, r, pid) in world.parcel_map.iter() {
            if pid == parcel.id {
                water += output.water_availability.at(c, r) as f64;
                demand += output.irrigation_demand.at(c, r) as f64;
                votes[crop_map.at(c, r) as usize] += 1;
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        let mapped_class = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)
            .map(|(i, _)| ee_datasets::LandClass::from_index(i).expect("valid"))
            .expect("non-empty");
        let area_ha = algorithms::polygon_area(&parcel.polygon) / 10_000.0;
        fc.push(
            Feature::new(parcel.polygon.clone().into())
                .with("id", PropValue::Int(parcel.id as i64))
                .with("cropType", PropValue::Str(mapped_class.name().to_string()))
                .with("areaHa", PropValue::Float(area_ha))
                .with("waterAvailability", PropValue::Float(water / count as f64))
                .with("irrigationDemandMm", PropValue::Float(demand / count as f64)),
        );
    }
    Ok(fc)
}

/// Publish the features into a fresh RDF store via the GeoTriples mapping.
pub fn publish(fc: &FeatureCollection) -> Result<TripleStore, FoodError> {
    let mapping = feature_mapping(
        &format!("{FARM}parcel/"),
        "id",
        &format!("{FARM}Parcel"),
        &[
            (&format!("{FARM}cropType"), "cropType", TermType::String),
            (&format!("{FARM}areaHa"), "areaHa", TermType::Double),
            (
                &format!("{FARM}waterAvailability"),
                "waterAvailability",
                TermType::Double,
            ),
            (
                &format!("{FARM}irrigationDemandMm"),
                "irrigationDemandMm",
                TermType::Double,
            ),
        ],
    );
    let mut store = TripleStore::new(IndexMode::Full);
    mapping
        .run_features(fc, &mut store)
        .map_err(|e| FoodError::Data(e.to_string()))?;
    store.build_spatial_index();
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promet::{run, PrometConfig};
    use ee_datasets::landscape::LandscapeConfig;

    fn pipeline() -> (Landscape, TripleStore) {
        let world = Landscape::generate(LandscapeConfig {
            size: 32,
            parcels_per_side: 4,
            ..LandscapeConfig::default()
        })
        .unwrap();
        let output = run(&world, &world.truth, PrometConfig::default()).unwrap();
        let fc = parcel_features(&world, &world.truth, &output).unwrap();
        let store = publish(&fc).unwrap();
        (world, store)
    }

    #[test]
    fn every_parcel_is_published() {
        let (world, store) = pipeline();
        let sol = ee_rdf::exec::query(
            &store,
            &format!(
                "PREFIX farm: <{FARM}> SELECT (COUNT(?p) AS ?n) WHERE {{ ?p a farm:Parcel }}"
            ),
        )
        .unwrap();
        assert_eq!(
            sol.scalar(),
            Some(&ee_rdf::term::Term::integer(world.parcels.len() as i64))
        );
    }

    #[test]
    fn irrigation_advisory_query() {
        let (_, store) = pipeline();
        // Farmers ask: which wheat parcels need > 20 mm of irrigation?
        let sol = ee_rdf::exec::query(
            &store,
            &format!(
                "PREFIX farm: <{FARM}> SELECT ?p ?d WHERE {{ \
                 ?p a farm:Parcel ; farm:cropType \"Wheat\" ; farm:irrigationDemandMm ?d . \
                 FILTER(?d > 20) }} ORDER BY DESC(?d)"
            ),
        )
        .unwrap();
        // Existence depends on weather; the query itself must be valid and
        // deterministic.
        for w in sol.rows.windows(2) {
            let get = |row: &Vec<Option<ee_rdf::term::Term>>| -> f64 {
                match &row[1] {
                    Some(ee_rdf::term::Term::Literal { lexical, .. }) => {
                        lexical.parse().unwrap_or(0.0)
                    }
                    _ => 0.0,
                }
            };
            assert!(get(&w[0]) >= get(&w[1]), "descending order");
        }
    }

    #[test]
    fn spatial_query_over_parcels() {
        let (world, store) = pipeline();
        let env = world.truth.envelope();
        let half = format!(
            "POLYGON (({} {}, {} {}, {} {}, {} {}, {} {}))",
            env.min_x, env.min_y,
            env.center().x, env.min_y,
            env.center().x, env.max_y,
            env.min_x, env.max_y,
            env.min_x, env.min_y,
        );
        let sol = ee_rdf::exec::query(
            &store,
            &format!(
                "PREFIX farm: <{FARM}> SELECT ?p WHERE {{ \
                 ?p a farm:Parcel ; geo:asWKT ?g . \
                 FILTER(geof:sfIntersects(?g, \"{half}\"^^geo:wktLiteral)) }}"
            ),
        )
        .unwrap();
        let all = ee_rdf::exec::query(
            &store,
            &format!("PREFIX farm: <{FARM}> SELECT ?p WHERE {{ ?p a farm:Parcel }}"),
        )
        .unwrap();
        assert!(!sol.is_empty());
        assert!(sol.len() < all.len(), "western half has fewer parcels than all");
    }

    #[test]
    fn feature_properties_are_physical() {
        let world = Landscape::generate(LandscapeConfig {
            size: 32,
            parcels_per_side: 4,
            ..LandscapeConfig::default()
        })
        .unwrap();
        let output = run(&world, &world.truth, PrometConfig::default()).unwrap();
        let fc = parcel_features(&world, &world.truth, &output).unwrap();
        assert_eq!(fc.len(), world.parcels.len());
        for f in &fc.features {
            match f.get("waterAvailability") {
                Some(PropValue::Float(v)) => assert!((0.0..=1.0).contains(v)),
                other => panic!("missing waterAvailability: {other:?}"),
            }
            match f.get("areaHa") {
                Some(PropValue::Float(v)) => assert!(*v > 0.0),
                other => panic!("missing areaHa: {other:?}"),
            }
        }
    }
}
