//! PROMET-lite: the hydro-agroecological water-balance model (ref \[10\])
//! at 10 m resolution over the whole watershed, full year.
//!
//! Components, per day and per pixel:
//!
//! * a deterministic **weather generator** (seasonal temperature with
//!   noise; Markov-chain rain occurrence with exponential amounts;
//!   orographic correction from the DEM);
//! * **snow**: sub-zero precipitation accumulates; degree-day melt;
//! * **evapotranspiration**: Hargreaves-style reference ET scaled by the
//!   *crop coefficient of the pixel's mapped crop* (the A1 innovation —
//!   "crop type specific deduction of crop variables") and reduced under
//!   soil-moisture stress;
//! * **soil bucket**: plant-available water per pixel (capacity from the
//!   soil map), surplus leaves as runoff.
//!
//! Outputs: the 10 m water-availability map (soil-water fraction),
//! seasonal irrigation demand per pixel, and basin runoff — compared in
//! E11 against a constant-Kc baseline.

use crate::FoodError;
use ee_datasets::{LandClass, Landscape};
use ee_raster::Raster;
use ee_util::Rng;

/// Daily weather for the watershed.
#[derive(Debug, Clone, Copy)]
pub struct DailyWeather {
    /// Mean air temperature at reference elevation, °C.
    pub temp_mean: f64,
    /// Diurnal temperature range, °C.
    pub temp_range: f64,
    /// Precipitation, mm.
    pub precip_mm: f64,
}

/// A deterministic weather generator (temperate climate).
pub struct WeatherGenerator {
    rng: Rng,
    raining: bool,
}

impl WeatherGenerator {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from(seed),
            raining: false,
        }
    }

    /// Weather for a day of year.
    pub fn day(&mut self, doy: u16) -> DailyWeather {
        let t = doy as f64;
        // Seasonal cycle: -1 °C in January, 19 °C in July (doy ~196).
        let seasonal = 9.0 + 10.0 * ((t - 196.0) * std::f64::consts::TAU / 365.0).cos();
        let temp_mean = seasonal + self.rng.normal(0.0, 2.5);
        let temp_range = (8.0 + self.rng.normal(0.0, 2.0)).clamp(2.0, 16.0);
        // Markov rain: wet days cluster.
        let p_rain = if self.raining { 0.6 } else { 0.22 };
        self.raining = self.rng.chance(p_rain);
        let precip_mm = if self.raining {
            self.rng.exponential(1.0 / 5.0) // mean 5 mm
        } else {
            0.0
        };
        DailyWeather {
            temp_mean,
            temp_range,
            precip_mm,
        }
    }
}

/// Hargreaves-style reference evapotranspiration, mm/day.
pub fn reference_et(doy: u16, temp_mean: f64, temp_range: f64) -> f64 {
    // Extraterrestrial radiation proxy for mid-latitudes, ~mm/day units,
    // peaking at the summer solstice (doy 172).
    let ra = 8.0 + 6.5 * ((doy as f64 - 172.0) * std::f64::consts::TAU / 365.0).cos();
    let et = 0.0023 * ra * (temp_mean + 17.8).max(0.0) * temp_range.max(0.0).sqrt();
    et.max(0.0)
}

/// Model configuration.
#[derive(Debug, Clone, Copy)]
pub struct PrometConfig {
    /// Year simulated.
    pub year: i32,
    /// Degree-day snowmelt factor, mm/°C/day.
    pub melt_factor: f64,
    /// Soil-moisture fraction below which ET is reduced linearly.
    pub stress_threshold: f64,
    /// Weather seed.
    pub weather_seed: u64,
    /// Use crop-specific Kc from the crop map (`false` = constant-Kc
    /// baseline, the pre-ExtremeEarth state of the art).
    pub crop_specific_kc: bool,
}

impl Default for PrometConfig {
    fn default() -> Self {
        Self {
            year: 2017,
            melt_factor: 3.0,
            stress_threshold: 0.5,
            weather_seed: 77,
            crop_specific_kc: true,
        }
    }
}

/// Model outputs.
pub struct PrometOutput {
    /// Soil-water fraction (0..1) per pixel at the end of the run —
    /// the 10 m water-availability map.
    pub water_availability: Raster<f32>,
    /// The same map captured at the *peak-stress* day (late August, day
    /// 235) — the map irrigation decisions are actually made from.
    pub summer_water_availability: Raster<f32>,
    /// Seasonal irrigation demand per pixel, mm (unmet crop ET).
    pub irrigation_demand: Raster<f32>,
    /// Mean soil-water fraction per simulated day (basin average).
    pub daily_basin_water: Vec<f64>,
    /// Total basin runoff, mm averaged over pixels.
    pub runoff_mm: f64,
    /// Total snowfall, mm averaged over pixels.
    pub snowfall_mm: f64,
}

/// Run the daily water balance for a year over the landscape, using
/// `crop_map` for the Kc lookup (normally the classifier's prediction).
pub fn run(
    world: &Landscape,
    crop_map: &Raster<u8>,
    config: PrometConfig,
) -> Result<PrometOutput, FoodError> {
    if crop_map.shape() != world.truth.shape() {
        return Err(FoodError::Config("crop map does not match the world grid".into()));
    }
    let (cols, rows) = world.truth.shape();
    let n = cols * rows;
    let mut weather = WeatherGenerator::new(config.weather_seed);
    // State per pixel.
    let mut soil: Vec<f64> = (0..n)
        .map(|i| world.soil_awc.data()[i] as f64 * 0.75) // start three-quarters full
        .collect();
    let mut snow: Vec<f64> = vec![0.0; n];
    let mut demand: Vec<f64> = vec![0.0; n];
    let mut runoff_total = 0.0f64;
    let mut snowfall_total = 0.0f64;
    let mut daily_basin_water = Vec::with_capacity(366);
    let days = if (config.year % 4 == 0 && config.year % 100 != 0) || config.year % 400 == 0 {
        366
    } else {
        365
    };
    // Precompute per-pixel elevation lapse (−0.6 °C / 100 m above 150 m).
    let lapse: Vec<f64> = world
        .dem
        .data()
        .iter()
        .map(|&e| (e as f64 - 150.0) * -0.006)
        .collect();
    let constant_kc = 0.75; // the farm-level, crop-agnostic baseline
    let mut summer_snapshot: Option<Vec<f64>> = None;
    for doy in 1..=days as u16 {
        let w = weather.day(doy);
        let et0 = reference_et(doy, w.temp_mean, w.temp_range);
        let mut basin_water = 0.0f64;
        for i in 0..n {
            let (c, r) = (i % cols, i / cols);
            let temp = w.temp_mean + lapse[i];
            let awc = world.soil_awc.data()[i] as f64;
            // Partition precipitation.
            let (rain, snowfall) = if temp < 0.0 {
                (0.0, w.precip_mm)
            } else {
                (w.precip_mm, 0.0)
            };
            snow[i] += snowfall;
            snowfall_total += snowfall;
            // Melt.
            let melt = if temp > 0.0 {
                (config.melt_factor * temp).min(snow[i])
            } else {
                0.0
            };
            snow[i] -= melt;
            // Crop coefficient from the *mapped* class.
            let class = LandClass::from_index(crop_map.at(c, r) as usize)
                .unwrap_or(LandClass::BareSoil);
            let eff_doy = world.effective_doy(c, r, doy);
            let kc = if config.crop_specific_kc {
                class.kc(eff_doy)
            } else {
                constant_kc
            };
            let et_potential = kc * et0;
            // Moisture stress.
            let fraction = (soil[i] / awc).clamp(0.0, 1.0);
            let stress = if fraction >= config.stress_threshold {
                1.0
            } else {
                fraction / config.stress_threshold
            };
            let et_actual = et_potential * stress;
            if class.is_crop() {
                demand[i] += et_potential - et_actual;
            }
            soil[i] += rain + melt - et_actual;
            if soil[i] > awc {
                runoff_total += soil[i] - awc;
                soil[i] = awc;
            }
            if soil[i] < 0.0 {
                soil[i] = 0.0;
            }
            basin_water += (soil[i] / awc).clamp(0.0, 1.0);
        }
        daily_basin_water.push(basin_water / n as f64);
        if doy == 235 {
            summer_snapshot = Some(soil.clone());
        }
    }
    let summer = summer_snapshot.unwrap_or_else(|| soil.clone());
    let transform = world.truth.transform();
    let water_availability = Raster::from_vec(
        cols,
        rows,
        transform,
        soil.iter()
            .zip(world.soil_awc.data())
            .map(|(&s, &awc)| (s / awc as f64).clamp(0.0, 1.0) as f32)
            .collect(),
    )
    .map_err(|e| FoodError::Data(e.to_string()))?;
    let irrigation_demand = Raster::from_vec(
        cols,
        rows,
        transform,
        demand.iter().map(|&d| d as f32).collect(),
    )
    .map_err(|e| FoodError::Data(e.to_string()))?;
    let summer_water_availability = Raster::from_vec(
        cols,
        rows,
        transform,
        summer
            .iter()
            .zip(world.soil_awc.data())
            .map(|(&s, &awc)| (s / awc as f64).clamp(0.0, 1.0) as f32)
            .collect(),
    )
    .map_err(|e| FoodError::Data(e.to_string()))?;
    Ok(PrometOutput {
        water_availability,
        summer_water_availability,
        irrigation_demand,
        daily_basin_water,
        runoff_mm: runoff_total / n as f64,
        snowfall_mm: snowfall_total / n as f64,
    })
}

/// Mean irrigation demand (mm) over pixels of each crop, from an output.
pub fn demand_by_crop(world: &Landscape, output: &PrometOutput) -> Vec<(LandClass, f64)> {
    let mut sums = [0.0f64; 10];
    let mut counts = [0usize; 10];
    for (c, r, v) in output.irrigation_demand.iter() {
        let class = world.class_at(c, r);
        sums[class.as_index()] += v as f64;
        counts[class.as_index()] += 1;
    }
    LandClass::CROPS
        .iter()
        .filter(|c| counts[c.as_index()] > 0)
        .map(|&c| (c, sums[c.as_index()] / counts[c.as_index()] as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_datasets::landscape::LandscapeConfig;

    fn world() -> Landscape {
        Landscape::generate(LandscapeConfig {
            size: 32,
            parcels_per_side: 4,
            ..LandscapeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn weather_has_seasons() {
        let mut gen = WeatherGenerator::new(1);
        let winter: f64 = (1..60).map(|d| gen.day(d).temp_mean).sum::<f64>() / 59.0;
        let mut gen2 = WeatherGenerator::new(1);
        for d in 1..180 {
            gen2.day(d);
        }
        let summer: f64 = (180..240).map(|d| gen2.day(d).temp_mean).sum::<f64>() / 60.0;
        assert!(summer > winter + 10.0, "summer {summer} vs winter {winter}");
    }

    #[test]
    fn weather_is_deterministic_and_rainy_enough() {
        let a: Vec<f64> = {
            let mut g = WeatherGenerator::new(5);
            (1..=365).map(|d| g.day(d).precip_mm).collect()
        };
        let b: Vec<f64> = {
            let mut g = WeatherGenerator::new(5);
            (1..=365).map(|d| g.day(d).precip_mm).collect()
        };
        assert_eq!(a, b);
        let annual: f64 = a.iter().sum();
        assert!(
            (300.0..1500.0).contains(&annual),
            "annual precipitation {annual} mm"
        );
    }

    #[test]
    fn reference_et_peaks_in_summer() {
        let summer = reference_et(180, 20.0, 10.0);
        let winter = reference_et(10, 2.0, 6.0);
        assert!(summer > 2.0 * winter, "ET0 summer {summer} vs winter {winter}");
        assert!(reference_et(180, -30.0, 10.0) == 0.0, "no ET below -17.8 °C");
    }

    #[test]
    fn full_year_run_is_sane() {
        let w = world();
        let out = run(&w, &w.truth, PrometConfig::default()).unwrap();
        assert_eq!(out.daily_basin_water.len(), 365);
        assert!(out.daily_basin_water.iter().all(|&f| (0.0..=1.0).contains(&f)));
        let (lo, hi) = out.water_availability.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(out.runoff_mm > 0.0, "a temperate year produces runoff");
        assert!(out.snowfall_mm > 0.0, "some winter precipitation is snow");
        // Summer is drier than early spring in the basin mean.
        let spring = out.daily_basin_water[90];
        let late_summer = out.daily_basin_water[230];
        assert!(late_summer < spring, "seasonal drawdown {spring} → {late_summer}");
    }

    #[test]
    fn crop_specific_kc_changes_demand() {
        let w = world();
        let specific = run(&w, &w.truth, PrometConfig::default()).unwrap();
        let constant = run(
            &w,
            &w.truth,
            PrometConfig {
                crop_specific_kc: false,
                ..PrometConfig::default()
            },
        )
        .unwrap();
        let by_crop = demand_by_crop(&w, &specific);
        let by_crop_const = demand_by_crop(&w, &constant);
        assert!(!by_crop.is_empty());
        // With a constant Kc all crops look alike; with crop-specific Kc
        // the spread across crops is wider.
        let spread = |v: &[(LandClass, f64)]| -> f64 {
            let vals: Vec<f64> = v.iter().map(|(_, d)| *d).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        if by_crop.len() >= 2 && by_crop_const.len() >= 2 {
            assert!(
                spread(&by_crop) > spread(&by_crop_const),
                "crop-specific Kc differentiates crops: {:?} vs {:?}",
                by_crop,
                by_crop_const
            );
        }
    }

    #[test]
    fn wrong_map_shape_rejected() {
        let w = world();
        let wrong: Raster<u8> = Raster::zeros(8, 8, w.truth.transform());
        assert!(run(&w, &wrong, PrometConfig::default()).is_err());
    }

    #[test]
    fn determinism() {
        let w = world();
        let a = run(&w, &w.truth, PrometConfig::default()).unwrap();
        let b = run(&w, &w.truth, PrometConfig::default()).unwrap();
        assert_eq!(a.water_availability, b.water_availability);
        assert_eq!(a.runoff_mm, b.runoff_mm);
    }
}
