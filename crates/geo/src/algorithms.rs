//! Computational-geometry algorithms over the types in [`crate::geometry`].
//!
//! These are the kernels behind the GeoSPARQL functions of `ee-rdf`
//! (`sfIntersects`, `sfContains`, `sfWithin`, `geof:distance`) and the
//! rasterisation / field-boundary code in the applications.

use crate::geometry::{Envelope, Geometry, LineString, Point, Polygon};

/// Twice the signed area of the triangle (a, b, c); positive when the turn
/// a→b→c is counter-clockwise.
#[inline]
pub fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Signed area of a ring by the shoelace formula (positive if CCW).
pub fn ring_signed_area(ring: &LineString) -> f64 {
    let pts = &ring.points;
    let mut acc = 0.0;
    for w in pts.windows(2) {
        acc += w[0].x * w[1].y - w[1].x * w[0].y;
    }
    acc / 2.0
}

/// Area of a polygon: |exterior| minus the sum of |holes|.
pub fn polygon_area(poly: &Polygon) -> f64 {
    let ext = ring_signed_area(&poly.exterior).abs();
    let holes: f64 = poly
        .interiors
        .iter()
        .map(|r| ring_signed_area(r).abs())
        .sum();
    (ext - holes).max(0.0)
}

/// Area of any geometry (0 for points and linestrings).
pub fn area(geom: &Geometry) -> f64 {
    match geom {
        Geometry::Point(_) | Geometry::LineString(_) => 0.0,
        Geometry::Polygon(p) => polygon_area(p),
        Geometry::MultiPolygon(m) => m.polygons.iter().map(polygon_area).sum(),
    }
}

/// Centroid of a polygon's exterior ring (area-weighted; holes ignored,
/// which is adequate for the blocking/labelling uses in this workspace).
pub fn polygon_centroid(poly: &Polygon) -> Point {
    let pts = &poly.exterior.points;
    let a = ring_signed_area(&poly.exterior);
    if a.abs() < f64::EPSILON {
        // Degenerate ring: average the vertices.
        let n = (pts.len() - 1).max(1) as f64;
        let (sx, sy) = pts[..pts.len() - 1]
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        return Point::new(sx / n, sy / n);
    }
    let mut cx = 0.0;
    let mut cy = 0.0;
    for w in pts.windows(2) {
        let f = w[0].x * w[1].y - w[1].x * w[0].y;
        cx += (w[0].x + w[1].x) * f;
        cy += (w[0].y + w[1].y) * f;
    }
    Point::new(cx / (6.0 * a), cy / (6.0 * a))
}

/// Centroid of any geometry.
pub fn centroid(geom: &Geometry) -> Point {
    match geom {
        Geometry::Point(p) => *p,
        Geometry::LineString(l) => {
            // Length-weighted midpoint.
            let total = l.length();
            if total < f64::EPSILON {
                return l.points[0];
            }
            let (mut cx, mut cy) = (0.0, 0.0);
            for (a, b) in l.segments() {
                let len = a.distance(b);
                cx += (a.x + b.x) / 2.0 * len;
                cy += (a.y + b.y) / 2.0 * len;
            }
            Point::new(cx / total, cy / total)
        }
        Geometry::Polygon(p) => polygon_centroid(p),
        Geometry::MultiPolygon(m) => {
            // Area-weighted combination of member centroids.
            let total: f64 = m.polygons.iter().map(polygon_area).sum();
            if total < f64::EPSILON || m.polygons.is_empty() {
                return m
                    .polygons
                    .first()
                    .map(polygon_centroid)
                    .unwrap_or_default();
            }
            let (mut cx, mut cy) = (0.0, 0.0);
            for p in &m.polygons {
                let a = polygon_area(p);
                let c = polygon_centroid(p);
                cx += c.x * a;
                cy += c.y * a;
            }
            Point::new(cx / total, cy / total)
        }
    }
}

/// Is `p` inside the ring (boundary counts as inside)? Ray-casting with
/// careful handling of vertices on the ray.
pub fn point_in_ring(p: &Point, ring: &LineString) -> bool {
    let pts = &ring.points;
    // Boundary check first: on-segment counts as inside.
    for w in pts.windows(2) {
        if point_on_segment(p, &w[0], &w[1]) {
            return true;
        }
    }
    let mut inside = false;
    for w in pts.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let intersects_ray = (a.y > p.y) != (b.y > p.y);
        if intersects_ray {
            let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_at {
                inside = !inside;
            }
        }
    }
    inside
}

/// Is `p` within distance `1e-12`-ish of the closed segment (a, b)?
#[inline]
pub fn point_on_segment(p: &Point, a: &Point, b: &Point) -> bool {
    let d = cross(a, b, p).abs();
    let len = a.distance(b);
    if len < f64::EPSILON {
        return p.distance(a) < 1e-12;
    }
    if d / len > 1e-9 {
        return false;
    }
    let t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / (len * len);
    (-1e-12..=1.0 + 1e-12).contains(&t)
}

/// Is `p` inside the polygon (in the exterior, outside every hole)?
/// Points on any boundary count as inside (OGC "covers" semantics, which is
/// what the GeoSPARQL filters in this workspace use).
pub fn point_in_polygon(p: &Point, poly: &Polygon) -> bool {
    if !point_in_ring(p, &poly.exterior) {
        return false;
    }
    for hole in &poly.interiors {
        // On the hole boundary still counts as inside the polygon.
        let on_boundary = hole
            .points
            .windows(2)
            .any(|w| point_on_segment(p, &w[0], &w[1]));
        if !on_boundary && point_in_ring(p, hole) {
            return false;
        }
    }
    true
}

/// Do the closed segments (p1, p2) and (p3, p4) intersect (touching counts)?
pub fn segments_intersect(p1: &Point, p2: &Point, p3: &Point, p4: &Point) -> bool {
    let d1 = cross(p3, p4, p1);
    let d2 = cross(p3, p4, p2);
    let d3 = cross(p1, p2, p3);
    let d4 = cross(p1, p2, p4);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && point_on_segment(p1, p3, p4))
        || (d2 == 0.0 && point_on_segment(p2, p3, p4))
        || (d3 == 0.0 && point_on_segment(p3, p1, p2))
        || (d4 == 0.0 && point_on_segment(p4, p1, p2))
}

/// Distance from a point to the closed segment (a, b).
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    let len2 = (b.x - a.x).powi(2) + (b.y - a.y).powi(2);
    if len2 < f64::EPSILON {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len2).clamp(0.0, 1.0);
    let proj = Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
    p.distance(&proj)
}

fn rings_of(geom: &Geometry) -> Vec<&LineString> {
    match geom {
        Geometry::Point(_) => Vec::new(),
        Geometry::LineString(l) => vec![l],
        Geometry::Polygon(p) => {
            let mut v = vec![&p.exterior];
            v.extend(p.interiors.iter());
            v
        }
        Geometry::MultiPolygon(m) => {
            let mut v = Vec::new();
            for p in &m.polygons {
                v.push(&p.exterior);
                v.extend(p.interiors.iter());
            }
            v
        }
    }
}

fn boundaries_cross(a: &Geometry, b: &Geometry) -> bool {
    let ra = rings_of(a);
    let rb = rings_of(b);
    for la in &ra {
        for lb in &rb {
            // Envelope prefilter per ring pair keeps this sub-quadratic in
            // practice for multipolygons spread over space.
            if !la.envelope().intersects(&lb.envelope()) {
                continue;
            }
            for (a1, a2) in la.segments() {
                for (b1, b2) in lb.segments() {
                    if segments_intersect(a1, a2, b1, b2) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn any_point_of(geom: &Geometry) -> Point {
    match geom {
        Geometry::Point(p) => *p,
        Geometry::LineString(l) => l.points[0],
        Geometry::Polygon(p) => interior_probe(p),
        Geometry::MultiPolygon(m) => m
            .polygons
            .first()
            .map(interior_probe)
            .unwrap_or_default(),
    }
}

/// A point guaranteed to lie inside the polygon (centroid if it is inside,
/// otherwise a scanline probe).
fn interior_probe(poly: &Polygon) -> Point {
    let c = polygon_centroid(poly);
    if point_in_polygon(&c, poly) {
        return c;
    }
    // Scan a horizontal line through the envelope middle.
    let env = poly.envelope();
    let y = (env.min_y + env.max_y) / 2.0;
    let steps = 64;
    for i in 0..steps {
        let x = env.min_x + env.width() * (i as f64 + 0.5) / steps as f64;
        let p = Point::new(x, y);
        if point_in_polygon(&p, poly) {
            return p;
        }
    }
    poly.exterior.points[0]
}

/// Does `geom` contain the point (boundary counts)?
pub fn geometry_contains_point(geom: &Geometry, p: &Point) -> bool {
    match geom {
        Geometry::Point(q) => q.distance(p) < 1e-12,
        Geometry::LineString(l) => l
            .points
            .windows(2)
            .any(|w| point_on_segment(p, &w[0], &w[1])),
        Geometry::Polygon(poly) => point_in_polygon(p, poly),
        Geometry::MultiPolygon(m) => m.polygons.iter().any(|poly| point_in_polygon(p, poly)),
    }
}

/// OGC `sfIntersects`: do the geometries share at least one point?
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    match (a, b) {
        (Geometry::Point(p), _) => geometry_contains_point(b, p),
        (_, Geometry::Point(q)) => geometry_contains_point(a, q),
        _ => {
            if boundaries_cross(a, b) {
                return true;
            }
            // No boundary crossing: either disjoint or one inside the other.
            geometry_contains_point(a, &any_point_of(b))
                || geometry_contains_point(b, &any_point_of(a))
        }
    }
}

/// OGC `sfContains` (approximate): every point of `b` is in `a`.
///
/// For areal `a`: true iff the boundaries do not cross (touching allowed)
/// and a representative point of every component of `b` lies inside `a`,
/// with all of `b`'s vertices inside too. This matches the OGC relation on
/// the non-pathological geometries the workspace generates.
pub fn contains(a: &Geometry, b: &Geometry) -> bool {
    if !a.envelope().contains_envelope(&b.envelope()) {
        return false;
    }
    match b {
        Geometry::Point(p) => geometry_contains_point(a, p),
        Geometry::LineString(l) => l.points.iter().all(|p| geometry_contains_point(a, p)),
        Geometry::Polygon(_) | Geometry::MultiPolygon(_) => {
            let vertices_inside = rings_of(b)
                .iter()
                .flat_map(|r| r.points.iter())
                .all(|p| geometry_contains_point(a, p));
            if !vertices_inside {
                return false;
            }
            // Guard against a hole of `a` being strictly inside `b`: a hole
            // boundary must not cross or be contained by b's interior.
            if let Geometry::Polygon(pa) = a {
                for hole in &pa.interiors {
                    let hp = &hole.points[0];
                    if geometry_contains_point(b, hp) {
                        return false;
                    }
                }
            }
            true
        }
    }
}

/// OGC `sfWithin`: `a` within `b` ⇔ `b` contains `a`.
pub fn within(a: &Geometry, b: &Geometry) -> bool {
    contains(b, a)
}

/// Minimum Euclidean distance between two geometries (0 if they intersect).
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    if intersects(a, b) {
        return 0.0;
    }
    let pa = all_vertices(a);
    let pb = all_vertices(b);
    let mut best = f64::INFINITY;
    // Point-vs-segments in both directions dominates for disjoint shapes.
    for ring in rings_of(b) {
        for (s1, s2) in ring.segments() {
            for p in &pa {
                best = best.min(point_segment_distance(p, s1, s2));
            }
        }
    }
    for ring in rings_of(a) {
        for (s1, s2) in ring.segments() {
            for p in &pb {
                best = best.min(point_segment_distance(p, s1, s2));
            }
        }
    }
    if best.is_infinite() {
        // Both are points (no rings).
        for p in &pa {
            for q in &pb {
                best = best.min(p.distance(q));
            }
        }
    }
    best
}

fn all_vertices(geom: &Geometry) -> Vec<Point> {
    match geom {
        Geometry::Point(p) => vec![*p],
        _ => rings_of(geom)
            .iter()
            .flat_map(|r| r.points.iter().copied())
            .collect(),
    }
}

/// Convex hull by Andrew's monotone chain. Returns the hull as a closed
/// ring (CCW). Inputs with fewer than 3 distinct points yield `None`.
pub fn convex_hull(points: &[Point]) -> Option<LineString> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|a, b| a.distance(b) < 1e-12);
    if pts.len() < 3 {
        return None;
    }
    let hull = monotone_chain(&pts);
    if hull.len() < 3 {
        return None;
    }
    let mut ring = hull;
    ring.push(ring[0]);
    Some(LineString { points: ring })
}

fn monotone_chain(pts: &[Point]) -> Vec<Point> {
    let n = pts.len();
    let mut lower: Vec<Point> = Vec::with_capacity(n);
    for p in pts {
        while lower.len() >= 2 && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(*p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(n);
    for p in pts.iter().rev() {
        while upper.len() >= 2 && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(*p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// Douglas–Peucker polyline simplification with tolerance `epsilon`.
/// Always keeps the endpoints. Rings keep their closure.
pub fn simplify(line: &LineString, epsilon: f64) -> LineString {
    let pts = &line.points;
    if pts.len() <= 2 {
        return line.clone();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut max_d, mut max_i) = (0.0, lo);
        for i in lo + 1..hi {
            let d = point_segment_distance(&pts[i], &pts[lo], &pts[hi]);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > epsilon {
            keep[max_i] = true;
            stack.push((lo, max_i));
            stack.push((max_i, hi));
        }
    }
    let kept: Vec<Point> = pts
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect();
    LineString { points: kept }
}

/// Clip a polygon's exterior to an axis-aligned rectangle
/// (Sutherland–Hodgman). Holes are dropped; returns `None` when the result
/// is empty. Used for tiling footprints in the catalogue.
pub fn clip_to_envelope(poly: &Polygon, env: &Envelope) -> Option<Polygon> {
    #[derive(Clone, Copy)]
    enum Edge {
        Left(f64),
        Right(f64),
        Bottom(f64),
        Top(f64),
    }
    fn inside(p: &Point, e: Edge) -> bool {
        match e {
            Edge::Left(x) => p.x >= x,
            Edge::Right(x) => p.x <= x,
            Edge::Bottom(y) => p.y >= y,
            Edge::Top(y) => p.y <= y,
        }
    }
    fn intersect(a: &Point, b: &Point, e: Edge) -> Point {
        match e {
            Edge::Left(x) | Edge::Right(x) => {
                let t = (x - a.x) / (b.x - a.x);
                Point::new(x, a.y + t * (b.y - a.y))
            }
            Edge::Bottom(y) | Edge::Top(y) => {
                let t = (y - a.y) / (b.y - a.y);
                Point::new(a.x + t * (b.x - a.x), y)
            }
        }
    }
    let mut output: Vec<Point> = poly.exterior.points[..poly.exterior.points.len() - 1].to_vec();
    for edge in [
        Edge::Left(env.min_x),
        Edge::Right(env.max_x),
        Edge::Bottom(env.min_y),
        Edge::Top(env.max_y),
    ] {
        if output.is_empty() {
            return None;
        }
        let input = std::mem::take(&mut output);
        for i in 0..input.len() {
            let cur = input[i];
            let prev = input[(i + input.len() - 1) % input.len()];
            let cur_in = inside(&cur, edge);
            let prev_in = inside(&prev, edge);
            if cur_in {
                if !prev_in {
                    output.push(intersect(&prev, &cur, edge));
                }
                output.push(cur);
            } else if prev_in {
                output.push(intersect(&prev, &cur, edge));
            }
        }
    }
    if output.len() < 3 {
        return None;
    }
    Polygon::from_exterior(output).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(0.0, 0.0, 1.0, 1.0)
    }

    fn square_with_hole() -> Polygon {
        Polygon::new(
            LineString::closed(vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ]),
            vec![LineString::closed(vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(4.0, 6.0),
            ])],
        )
        .unwrap()
    }

    #[test]
    fn shoelace_area() {
        assert_eq!(polygon_area(&unit_square()), 1.0);
        assert_eq!(polygon_area(&square_with_hole()), 96.0);
        let tri = Polygon::from_exterior(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        assert_eq!(polygon_area(&tri), 6.0);
    }

    #[test]
    fn centroid_of_square() {
        let c = polygon_centroid(&unit_square());
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_orientation_independent() {
        let mut rev = unit_square();
        rev.exterior.points.reverse();
        let c = polygon_centroid(&rev);
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_in_polygon_basics() {
        let sq = unit_square();
        assert!(point_in_polygon(&Point::new(0.5, 0.5), &sq));
        assert!(!point_in_polygon(&Point::new(1.5, 0.5), &sq));
        assert!(point_in_polygon(&Point::new(0.0, 0.5), &sq), "boundary");
        assert!(point_in_polygon(&Point::new(1.0, 1.0), &sq), "corner");
    }

    #[test]
    fn point_in_polygon_respects_holes() {
        let p = square_with_hole();
        assert!(point_in_polygon(&Point::new(1.0, 1.0), &p));
        assert!(!point_in_polygon(&Point::new(5.0, 5.0), &p), "inside hole");
        assert!(point_in_polygon(&Point::new(4.0, 5.0), &p), "hole boundary counts");
    }

    #[test]
    fn segment_intersection_cases() {
        let o = Point::new(0.0, 0.0);
        assert!(segments_intersect(
            &o,
            &Point::new(2.0, 2.0),
            &Point::new(0.0, 2.0),
            &Point::new(2.0, 0.0)
        ));
        assert!(!segments_intersect(
            &o,
            &Point::new(1.0, 0.0),
            &Point::new(0.0, 1.0),
            &Point::new(1.0, 1.0)
        ));
        // Touching at an endpoint counts.
        assert!(segments_intersect(
            &o,
            &Point::new(1.0, 0.0),
            &Point::new(1.0, 0.0),
            &Point::new(2.0, 5.0)
        ));
        // Collinear overlapping.
        assert!(segments_intersect(
            &o,
            &Point::new(2.0, 0.0),
            &Point::new(1.0, 0.0),
            &Point::new(3.0, 0.0)
        ));
        // Collinear disjoint.
        assert!(!segments_intersect(
            &o,
            &Point::new(1.0, 0.0),
            &Point::new(2.0, 0.0),
            &Point::new(3.0, 0.0)
        ));
    }

    #[test]
    fn intersects_polygons() {
        let a: Geometry = Polygon::rectangle(0.0, 0.0, 2.0, 2.0).into();
        let b: Geometry = Polygon::rectangle(1.0, 1.0, 3.0, 3.0).into();
        let c: Geometry = Polygon::rectangle(5.0, 5.0, 6.0, 6.0).into();
        assert!(intersects(&a, &b));
        assert!(!intersects(&a, &c));
        // Containment without boundary crossing still intersects.
        let inner: Geometry = Polygon::rectangle(0.5, 0.5, 0.7, 0.7).into();
        assert!(intersects(&a, &inner));
        assert!(intersects(&inner, &a));
    }

    #[test]
    fn intersects_point_cases() {
        let sq: Geometry = unit_square().into();
        assert!(intersects(&sq, &Point::new(0.5, 0.5).into()));
        assert!(!intersects(&sq, &Point::new(2.0, 2.0).into()));
        let p1: Geometry = Point::new(1.0, 1.0).into();
        let p2: Geometry = Point::new(1.0, 1.0).into();
        let p3: Geometry = Point::new(1.0, 1.1).into();
        assert!(intersects(&p1, &p2));
        assert!(!intersects(&p1, &p3));
    }

    #[test]
    fn intersects_hole_excludes() {
        // A small polygon entirely inside the hole does NOT intersect.
        let donut: Geometry = square_with_hole().into();
        let in_hole: Geometry = Polygon::rectangle(4.5, 4.5, 5.5, 5.5).into();
        assert!(!intersects(&donut, &in_hole));
        assert!(!intersects(&in_hole, &donut));
    }

    #[test]
    fn contains_and_within() {
        let big: Geometry = Polygon::rectangle(0.0, 0.0, 10.0, 10.0).into();
        let small: Geometry = Polygon::rectangle(2.0, 2.0, 3.0, 3.0).into();
        let straddle: Geometry = Polygon::rectangle(8.0, 8.0, 12.0, 12.0).into();
        assert!(contains(&big, &small));
        assert!(within(&small, &big));
        assert!(!contains(&big, &straddle));
        assert!(!contains(&small, &big));
        assert!(contains(&big, &Point::new(5.0, 5.0).into()));
        assert!(!contains(&big, &Point::new(50.0, 5.0).into()));
    }

    #[test]
    fn contains_respects_holes() {
        let donut: Geometry = square_with_hole().into();
        // A polygon that covers the hole is not contained.
        let over_hole: Geometry = Polygon::rectangle(3.0, 3.0, 7.0, 7.0).into();
        assert!(!contains(&donut, &over_hole));
        // A polygon in solid area is contained.
        let solid: Geometry = Polygon::rectangle(1.0, 1.0, 3.0, 3.0).into();
        assert!(contains(&donut, &solid));
    }

    #[test]
    fn distance_between_geometries() {
        let a: Geometry = Polygon::rectangle(0.0, 0.0, 1.0, 1.0).into();
        let b: Geometry = Polygon::rectangle(4.0, 0.0, 5.0, 1.0).into();
        assert!((distance(&a, &b) - 3.0).abs() < 1e-12);
        assert_eq!(distance(&a, &a), 0.0);
        let p: Geometry = Point::new(1.0, 5.0).into();
        assert!((distance(&a, &p) - 4.0).abs() < 1e-12);
        let q: Geometry = Point::new(4.0, 5.0).into();
        assert!((distance(&p, &q) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn convex_hull_square_cloud() {
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        // Interior points must not appear on the hull.
        pts.push(Point::new(2.0, 2.0));
        pts.push(Point::new(1.0, 3.0));
        let hull = convex_hull(&pts).unwrap();
        assert!(hull.is_ring());
        assert_eq!(hull.points.len(), 5, "4 corners + closure");
        let poly = Polygon::new(hull, vec![]).unwrap();
        assert_eq!(polygon_area(&poly), 16.0);
    }

    #[test]
    fn convex_hull_degenerate() {
        assert!(convex_hull(&[Point::new(0.0, 0.0)]).is_none());
        assert!(convex_hull(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_none());
        // Collinear points have no 2-D hull.
        assert!(convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0)
        ])
        .is_none());
    }

    #[test]
    fn simplify_keeps_shape() {
        // A noisy straight line collapses to its endpoints.
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new(i as f64, if i % 2 == 0 { 0.001 } else { -0.001 }))
            .collect();
        let line = LineString::new(pts).unwrap();
        let simple = simplify(&line, 0.01);
        assert_eq!(simple.points.len(), 2);
        // A right angle keeps its corner.
        let corner = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 5.0),
        ])
        .unwrap();
        let s = simplify(&corner, 0.01);
        assert_eq!(s.points.len(), 3);
    }

    #[test]
    fn clip_polygon_to_rectangle() {
        let tri = Polygon::from_exterior(vec![
            Point::new(-5.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let env = Envelope::new(-1.0, -1.0, 1.0, 1.0);
        let clipped = clip_to_envelope(&tri, &env).unwrap();
        let a = polygon_area(&clipped);
        // The clip window's upper half intersects the triangle fully; lower
        // half is cut by y=0. Area = width 2 * height 1 = 2.
        assert!((a - 2.0).abs() < 1e-9, "area {a}");
        // Disjoint clip yields None.
        let far = Envelope::new(100.0, 100.0, 101.0, 101.0);
        assert!(clip_to_envelope(&tri, &far).is_none());
        // Fully-inside polygon is unchanged in area.
        let env_big = Envelope::new(-10.0, -10.0, 10.0, 20.0);
        let same = clip_to_envelope(&tri, &env_big).unwrap();
        assert!((polygon_area(&same) - polygon_area(&tri)).abs() < 1e-9);
    }
}
