//! Core geometry types.
//!
//! Coordinates are `f64` pairs in an arbitrary planar CRS; the workspace
//! uses WGS84 longitude/latitude degrees for catalogue footprints and local
//! metric coordinates for the synthetic worlds. All types are immutable
//! value types; operations live in [`crate::algorithms`].

use crate::GeoError;

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate (longitude or easting).
    pub x: f64,
    /// Y coordinate (latitude or northing).
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// The degenerate envelope containing only this point.
    pub fn envelope(&self) -> Envelope {
        Envelope::new(self.x, self.y, self.x, self.y)
    }
}

/// An axis-aligned bounding rectangle. Always non-degenerate in the sense
/// `min_x <= max_x && min_y <= max_y` (enforced at construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Minimum X.
    pub min_x: f64,
    /// Minimum Y.
    pub min_y: f64,
    /// Maximum X.
    pub max_x: f64,
    /// Maximum Y.
    pub max_y: f64,
}

impl Envelope {
    /// Construct from corner coordinates; coordinates are re-ordered so the
    /// invariant holds regardless of argument order.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Self {
            min_x: x1.min(x2),
            min_y: y1.min(y2),
            max_x: x1.max(x2),
            max_y: y1.max(y2),
        }
    }

    /// The "impossible" envelope used as a fold identity: expanding it by
    /// any point yields that point's envelope.
    pub fn empty() -> Self {
        Self {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// True if this is the fold identity (no points accumulated).
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x
    }

    /// Width (`0` for empty envelopes).
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height (`0` for empty envelopes).
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter, the R-tree node cost metric.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// Does this envelope intersect `other` (boundaries touching counts)?
    #[inline]
    pub fn intersects(&self, other: &Envelope) -> bool {
        self.min_x <= other.max_x
            && self.max_x >= other.min_x
            && self.min_y <= other.max_y
            && self.max_y >= other.min_y
    }

    /// Does this envelope fully contain `other`?
    #[inline]
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    /// Does this envelope contain the point (boundary inclusive)?
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Smallest envelope covering both.
    pub fn union(&self, other: &Envelope) -> Envelope {
        Envelope {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grow to include a point.
    pub fn expand(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Area increase needed to include `other` (R-tree insertion cost).
    pub fn enlargement(&self, other: &Envelope) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance between the envelopes (0 if they intersect).
    pub fn distance(&self, other: &Envelope) -> f64 {
        let dx = (other.min_x - self.max_x).max(self.min_x - other.max_x).max(0.0);
        let dy = (other.min_y - self.max_y).max(self.min_y - other.max_y).max(0.0);
        dx.hypot(dy)
    }

    /// The envelope as a closed counter-clockwise polygon.
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(
            LineString::closed(vec![
                Point::new(self.min_x, self.min_y),
                Point::new(self.max_x, self.min_y),
                Point::new(self.max_x, self.max_y),
                Point::new(self.min_x, self.max_y),
            ]),
            Vec::new(),
        )
        .expect("rectangle ring is valid")
    }
}

/// An ordered sequence of at least two points.
#[derive(Debug, Clone, PartialEq)]
pub struct LineString {
    /// The vertices, in order.
    pub points: Vec<Point>,
}

impl LineString {
    /// Construct; requires at least two points.
    pub fn new(points: Vec<Point>) -> Result<Self, GeoError> {
        if points.len() < 2 {
            return Err(GeoError::InvalidGeometry(format!(
                "linestring needs >= 2 points, got {}",
                points.len()
            )));
        }
        Ok(Self { points })
    }

    /// Construct a ring, appending the first point at the end if the input
    /// is not already closed. Requires at least three distinct positions.
    pub fn closed(mut points: Vec<Point>) -> Self {
        if points.first() != points.last() {
            if let Some(&first) = points.first() {
                points.push(first);
            }
        }
        Self { points }
    }

    /// Is this a closed ring (first == last, length >= 4)?
    pub fn is_ring(&self) -> bool {
        self.points.len() >= 4 && self.points.first() == self.points.last()
    }

    /// Total length of the segments.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum()
    }

    /// Bounding envelope.
    pub fn envelope(&self) -> Envelope {
        let mut env = Envelope::empty();
        for p in &self.points {
            env.expand(p);
        }
        env
    }

    /// Iterate over the segments as point pairs.
    pub fn segments(&self) -> impl Iterator<Item = (&Point, &Point)> {
        self.points.windows(2).map(|w| (&w[0], &w[1]))
    }
}

/// A polygon: one exterior ring plus zero or more interior rings (holes).
///
/// Invariant: every ring is closed with at least four points. Ring
/// orientation is not enforced; algorithms use absolute areas.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    /// The outer boundary.
    pub exterior: LineString,
    /// Holes.
    pub interiors: Vec<LineString>,
}

impl Polygon {
    /// Construct, validating ring structure.
    pub fn new(exterior: LineString, interiors: Vec<LineString>) -> Result<Self, GeoError> {
        if !exterior.is_ring() {
            return Err(GeoError::InvalidGeometry(
                "polygon exterior must be a closed ring with >= 4 points".into(),
            ));
        }
        for (i, ring) in interiors.iter().enumerate() {
            if !ring.is_ring() {
                return Err(GeoError::InvalidGeometry(format!(
                    "polygon interior ring {i} is not a closed ring"
                )));
            }
        }
        Ok(Self { exterior, interiors })
    }

    /// Convenience: a polygon from exterior coordinates with no holes;
    /// the ring is closed automatically.
    pub fn from_exterior(points: Vec<Point>) -> Result<Self, GeoError> {
        Self::new(LineString::closed(points), Vec::new())
    }

    /// Axis-aligned rectangle polygon.
    pub fn rectangle(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Envelope::new(min_x, min_y, max_x, max_y).to_polygon()
    }

    /// Bounding envelope (exterior only; holes cannot extend it).
    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }

    /// Number of vertices across all rings (counting ring closure points).
    pub fn num_vertices(&self) -> usize {
        self.exterior.points.len() + self.interiors.iter().map(|r| r.points.len()).sum::<usize>()
    }
}

/// A collection of polygons.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPolygon {
    /// Member polygons. May be empty (the OGC empty multipolygon).
    pub polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Construct from members.
    pub fn new(polygons: Vec<Polygon>) -> Self {
        Self { polygons }
    }

    /// Bounding envelope of all members.
    pub fn envelope(&self) -> Envelope {
        self.polygons
            .iter()
            .fold(Envelope::empty(), |acc, p| acc.union(&p.envelope()))
    }

    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        self.polygons.iter().map(Polygon::num_vertices).sum()
    }
}

/// Any geometry this crate understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A point.
    Point(Point),
    /// A polyline.
    LineString(LineString),
    /// A polygon with optional holes.
    Polygon(Polygon),
    /// A set of polygons.
    MultiPolygon(MultiPolygon),
}

impl Geometry {
    /// Bounding envelope.
    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => p.envelope(),
            Geometry::LineString(l) => l.envelope(),
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPolygon(m) => m.envelope(),
        }
    }

    /// Number of coordinate pairs in the geometry.
    pub fn num_vertices(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.points.len(),
            Geometry::Polygon(p) => p.num_vertices(),
            Geometry::MultiPolygon(m) => m.num_vertices(),
        }
    }

    /// The OGC geometry-type name (upper case, as WKT uses).
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "POINT",
            Geometry::LineString(_) => "LINESTRING",
            Geometry::Polygon(_) => "POLYGON",
            Geometry::MultiPolygon(_) => "MULTIPOLYGON",
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

impl From<MultiPolygon> for Geometry {
    fn from(m: MultiPolygon) -> Self {
        Geometry::MultiPolygon(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_normalises_corner_order() {
        let e = Envelope::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(e.min_x, 1.0);
        assert_eq!(e.max_y, 7.0);
        assert_eq!(e.width(), 4.0);
        assert_eq!(e.height(), 5.0);
        assert_eq!(e.area(), 20.0);
    }

    #[test]
    fn envelope_empty_identity() {
        let mut e = Envelope::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        e.expand(&Point::new(3.0, 4.0));
        assert!(!e.is_empty());
        assert_eq!(e, Envelope::new(3.0, 4.0, 3.0, 4.0));
    }

    #[test]
    fn envelope_predicates() {
        let a = Envelope::new(0.0, 0.0, 10.0, 10.0);
        let b = Envelope::new(5.0, 5.0, 15.0, 15.0);
        let c = Envelope::new(11.0, 11.0, 12.0, 12.0);
        let inner = Envelope::new(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains_envelope(&inner));
        assert!(!a.contains_envelope(&b));
        assert!(a.contains_point(&Point::new(10.0, 10.0)), "boundary inclusive");
        assert!(!a.contains_point(&Point::new(10.1, 10.0)));
        // Touching boundaries intersect.
        let d = Envelope::new(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn envelope_distance() {
        let a = Envelope::new(0.0, 0.0, 1.0, 1.0);
        let b = Envelope::new(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.distance(&b), 5.0, "3-4-5 triangle");
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn linestring_validation_and_length() {
        assert!(LineString::new(vec![Point::new(0.0, 0.0)]).is_err());
        let l = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 0.0),
        ])
        .unwrap();
        assert_eq!(l.length(), 9.0);
        assert!(!l.is_ring());
    }

    #[test]
    fn closed_ring_auto_closure() {
        let ring = LineString::closed(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ]);
        assert!(ring.is_ring());
        assert_eq!(ring.points.len(), 4);
        // Already-closed input is left alone.
        let ring2 = LineString::closed(ring.points.clone());
        assert_eq!(ring2.points.len(), 4);
    }

    #[test]
    fn polygon_validation() {
        assert!(Polygon::from_exterior(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_err());
        let p = Polygon::rectangle(0.0, 0.0, 2.0, 3.0);
        assert_eq!(p.envelope(), Envelope::new(0.0, 0.0, 2.0, 3.0));
        assert_eq!(p.num_vertices(), 5);
    }

    #[test]
    fn multipolygon_envelope_spans_members() {
        let m = MultiPolygon::new(vec![
            Polygon::rectangle(0.0, 0.0, 1.0, 1.0),
            Polygon::rectangle(5.0, 5.0, 6.0, 7.0),
        ]);
        assert_eq!(m.envelope(), Envelope::new(0.0, 0.0, 6.0, 7.0));
        assert_eq!(m.num_vertices(), 10);
        assert!(MultiPolygon::new(vec![]).envelope().is_empty());
    }

    #[test]
    fn geometry_enum_dispatch() {
        let g: Geometry = Point::new(1.0, 2.0).into();
        assert_eq!(g.type_name(), "POINT");
        assert_eq!(g.num_vertices(), 1);
        let g: Geometry = Polygon::rectangle(0.0, 0.0, 1.0, 1.0).into();
        assert_eq!(g.type_name(), "POLYGON");
    }
}
