//! Regular grids over a bounded region.
//!
//! [`Grid`] maps between continuous coordinates and discrete cells. It is
//! used for equigrid blocking in `ee-interlink`, for rasterising vector
//! layers in `ee-datasets`, and for the spatial histograms of
//! `ee-federation`'s source selector.

use crate::geometry::{Envelope, Point};

/// A `cols x rows` grid of equal cells covering an envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// The covered region.
    pub extent: Envelope,
    /// Number of columns (x direction).
    pub cols: usize,
    /// Number of rows (y direction).
    pub rows: usize,
}

impl Grid {
    /// Construct. Panics if `cols` or `rows` is zero or the extent is empty.
    pub fn new(extent: Envelope, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        Self { extent, cols, rows }
    }

    /// Construct with a target cell size; the cell count is rounded up so
    /// cells are never larger than requested.
    pub fn with_cell_size(extent: Envelope, cell_w: f64, cell_h: f64) -> Self {
        assert!(cell_w > 0.0 && cell_h > 0.0);
        let cols = (extent.width() / cell_w).ceil().max(1.0) as usize;
        let rows = (extent.height() / cell_h).ceil().max(1.0) as usize;
        Self::new(extent, cols, rows)
    }

    /// Cell width.
    pub fn cell_width(&self) -> f64 {
        self.extent.width() / self.cols as f64
    }

    /// Cell height.
    pub fn cell_height(&self) -> f64 {
        self.extent.height() / self.rows as f64
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// The (col, row) of the cell containing `p`, or `None` if outside.
    /// Points on the max edges map to the last cell.
    pub fn locate(&self, p: &Point) -> Option<(usize, usize)> {
        if !self.extent.contains_point(p) {
            return None;
        }
        let col = (((p.x - self.extent.min_x) / self.cell_width()) as usize).min(self.cols - 1);
        let row = (((p.y - self.extent.min_y) / self.cell_height()) as usize).min(self.rows - 1);
        Some((col, row))
    }

    /// Flattened index of a (col, row) pair (row-major).
    pub fn index(&self, col: usize, row: usize) -> usize {
        debug_assert!(col < self.cols && row < self.rows);
        row * self.cols + col
    }

    /// Envelope of a cell.
    pub fn cell_envelope(&self, col: usize, row: usize) -> Envelope {
        let w = self.cell_width();
        let h = self.cell_height();
        let x0 = self.extent.min_x + col as f64 * w;
        let y0 = self.extent.min_y + row as f64 * h;
        Envelope::new(x0, y0, x0 + w, y0 + h)
    }

    /// Inclusive (col, row) ranges of the cells intersecting an envelope,
    /// or `None` when disjoint from the grid.
    pub fn cells_overlapping(&self, env: &Envelope) -> Option<(usize, usize, usize, usize)> {
        if !self.extent.intersects(env) {
            return None;
        }
        let clamp_x = |x: f64| x.clamp(self.extent.min_x, self.extent.max_x);
        let clamp_y = |y: f64| y.clamp(self.extent.min_y, self.extent.max_y);
        let c0 = (((clamp_x(env.min_x) - self.extent.min_x) / self.cell_width()) as usize)
            .min(self.cols - 1);
        let c1 = (((clamp_x(env.max_x) - self.extent.min_x) / self.cell_width()) as usize)
            .min(self.cols - 1);
        let r0 = (((clamp_y(env.min_y) - self.extent.min_y) / self.cell_height()) as usize)
            .min(self.rows - 1);
        let r1 = (((clamp_y(env.max_y) - self.extent.min_y) / self.cell_height()) as usize)
            .min(self.rows - 1);
        Some((c0, r0, c1, r1))
    }

    /// Iterate the flattened indices of the cells intersecting an envelope.
    pub fn overlapping_indices(&self, env: &Envelope) -> Vec<usize> {
        match self.cells_overlapping(env) {
            None => Vec::new(),
            Some((c0, r0, c1, r1)) => {
                let mut out = Vec::with_capacity((c1 - c0 + 1) * (r1 - r0 + 1));
                for row in r0..=r1 {
                    for col in c0..=c1 {
                        out.push(self.index(col, row));
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(Envelope::new(0.0, 0.0, 10.0, 5.0), 10, 5)
    }

    #[test]
    fn geometry_of_cells() {
        let g = grid();
        assert_eq!(g.cell_width(), 1.0);
        assert_eq!(g.cell_height(), 1.0);
        assert_eq!(g.num_cells(), 50);
        assert_eq!(g.cell_envelope(0, 0), Envelope::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(g.cell_envelope(9, 4), Envelope::new(9.0, 4.0, 10.0, 5.0));
    }

    #[test]
    fn locate_points() {
        let g = grid();
        assert_eq!(g.locate(&Point::new(0.5, 0.5)), Some((0, 0)));
        assert_eq!(g.locate(&Point::new(9.9, 4.9)), Some((9, 4)));
        assert_eq!(g.locate(&Point::new(10.0, 5.0)), Some((9, 4)), "max edge maps inward");
        assert_eq!(g.locate(&Point::new(-0.1, 0.0)), None);
        assert_eq!(g.locate(&Point::new(0.0, 5.1)), None);
    }

    #[test]
    fn overlap_ranges() {
        let g = grid();
        let q = Envelope::new(1.5, 0.5, 3.5, 2.5);
        assert_eq!(g.cells_overlapping(&q), Some((1, 0, 3, 2)));
        assert_eq!(g.overlapping_indices(&q).len(), 9);
        // Query larger than the grid clamps to all cells.
        let all = Envelope::new(-100.0, -100.0, 100.0, 100.0);
        assert_eq!(g.overlapping_indices(&all).len(), 50);
        // Disjoint query.
        assert!(g.cells_overlapping(&Envelope::new(20.0, 20.0, 30.0, 30.0)).is_none());
    }

    #[test]
    fn with_cell_size_rounds_up() {
        let g = Grid::with_cell_size(Envelope::new(0.0, 0.0, 10.0, 10.0), 3.0, 3.0);
        assert_eq!(g.cols, 4);
        assert_eq!(g.rows, 4);
        assert!(g.cell_width() <= 3.0);
    }

    #[test]
    fn index_roundtrip() {
        let g = grid();
        assert_eq!(g.index(0, 0), 0);
        assert_eq!(g.index(9, 4), 49);
        assert_eq!(g.index(3, 2), 23);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        Grid::new(Envelope::new(0.0, 0.0, 1.0, 1.0), 0, 5);
    }
}
