#![warn(missing_docs)]
//! Geometry substrate for ExtremeEarth-rs.
//!
//! Implements the vector-geometry layer that the Strabon-like RDF store
//! (`ee-rdf`), the semantic catalogue (`ee-catalogue`), the interlinker
//! (`ee-interlink`) and the application pipelines share:
//!
//! * [`geometry`] — points, envelopes, linestrings, polygons (with holes)
//!   and multipolygons, in planar coordinates (we treat WGS84 lon/lat as
//!   planar, which is what Strabon-style stores do for index filtering);
//! * [`wkt`] — OGC Well-Known-Text parsing and serialisation, the geometry
//!   literal format of GeoSPARQL;
//! * [`algorithms`] — area, centroid, point-in-polygon, segment
//!   intersection, distance, convex hull, Douglas–Peucker simplification
//!   and rectangle clipping;
//! * [`rtree`] — an R-tree (STR bulk load + quadratic-split inserts) used
//!   for spatial-selection pushdown;
//! * [`grid`] — regular lon/lat grids used for rasterisation and blocking.

pub mod algorithms;
pub mod geometry;
pub mod grid;
pub mod rtree;
pub mod wkt;

pub use geometry::{Envelope, Geometry, LineString, MultiPolygon, Point, Polygon};
pub use rtree::RTree;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// WKT text could not be parsed; the message pinpoints the issue.
    WktParse(String),
    /// A geometry failed a structural invariant (e.g. unclosed ring).
    InvalidGeometry(String),
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::WktParse(msg) => write!(f, "WKT parse error: {msg}"),
            GeoError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for GeoError {}
