//! An R-tree over envelope-keyed items.
//!
//! Two construction paths:
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing, used when a store
//!   indexes a batch of geometries at once (catalogue ingest, E2/E3 data
//!   loads). Produces near-100% node utilisation.
//! * [`RTree::insert`] — classic Guttman insertion with quadratic split,
//!   used for incremental updates (streaming product ingest in E9).
//!
//! Queries: envelope intersection search and k-nearest-neighbour by
//! best-first traversal. The tree stores `(Envelope, T)` pairs; `T` is the
//! caller's identifier (a dictionary id in `ee-rdf`, a product id in the
//! catalogue).

use crate::geometry::{Envelope, Point};

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = MAX_ENTRIES / 4;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf {
        entries: Vec<(Envelope, T)>,
    },
    Inner {
        children: Vec<(Envelope, Box<Node<T>>)>,
    },
}

impl<T> Node<T> {
    fn envelope(&self) -> Envelope {
        match self {
            Node::Leaf { entries } => entries
                .iter()
                .fold(Envelope::empty(), |acc, (e, _)| acc.union(e)),
            Node::Inner { children } => children
                .iter()
                .fold(Envelope::empty(), |acc, (e, _)| acc.union(e)),
        }
    }

}

/// A spatial index over items of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    size: usize,
    height: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf { entries: Vec::new() },
            size: 0,
            height: 1,
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

}

impl<T: Clone> RTree<T> {
    /// Bulk-load with Sort-Tile-Recursive packing.
    pub fn bulk_load(mut items: Vec<(Envelope, T)>) -> Self {
        let size = items.len();
        if size == 0 {
            return Self::new();
        }
        // STR: sort by centre x, slice into vertical strips, sort each strip
        // by centre y, pack runs of MAX_ENTRIES.
        items.sort_by(|a, b| {
            a.0.center()
                .x
                .partial_cmp(&b.0.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let leaf_count = size.div_ceil(MAX_ENTRIES);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let strip_size = size.div_ceil(strip_count);
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        for strip in items.chunks_mut(strip_size.max(1)) {
            strip.sort_by(|a, b| {
                a.0.center()
                    .y
                    .partial_cmp(&b.0.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for run in strip.chunks(MAX_ENTRIES) {
                leaves.push(Node::Leaf {
                    entries: run.to_vec(),
                });
            }
        }
        let mut height = 1;
        let mut level = leaves;
        while level.len() > 1 {
            let mut parents: Vec<Node<T>> = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            // Pack siblings by x-order of their envelopes (they are already
            // spatially coherent from the STR pass).
            let mut nodes: Vec<(Envelope, Box<Node<T>>)> = level
                .into_iter()
                .map(|n| (n.envelope(), Box::new(n)))
                .collect();
            nodes.sort_by(|a, b| {
                a.0.center()
                    .x
                    .partial_cmp(&b.0.center().x)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for run in nodes.chunks(MAX_ENTRIES) {
                parents.push(Node::Inner {
                    children: run.to_vec(),
                });
            }
            level = parents;
            height += 1;
        }
        Self {
            root: level.pop().expect("non-empty input yields a root"),
            size,
            height,
        }
    }

    /// Insert one item (Guttman, quadratic split).
    pub fn insert(&mut self, env: Envelope, item: T) {
        self.size += 1;
        if let Some((e1, n1, e2, n2)) = insert_rec(&mut self.root, env, item) {
            // Root split: grow the tree.
            let old = std::mem::replace(&mut self.root, Node::Inner { children: Vec::new() });
            drop(old); // placeholder swap; rebuild root below
            self.root = Node::Inner {
                children: vec![(e1, n1), (e2, n2)],
            };
            self.height += 1;
        }
    }

}

impl<T> RTree<T> {
    /// All items whose envelope intersects `query`.
    pub fn search(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        self.visit(query, &mut |item| out.push(item));
        out
    }

    /// Visit each item whose envelope intersects `query` without
    /// materialising a result vector (the hot path in the RDF store).
    pub fn visit<'a, F: FnMut(&'a T)>(&'a self, query: &Envelope, f: &mut F) {
        fn rec<'a, T, F: FnMut(&'a T)>(node: &'a Node<T>, query: &Envelope, f: &mut F) {
            match node {
                Node::Leaf { entries } => {
                    for (e, item) in entries {
                        if e.intersects(query) {
                            f(item);
                        }
                    }
                }
                Node::Inner { children } => {
                    for (e, child) in children {
                        if e.intersects(query) {
                            rec(child, query, f);
                        }
                    }
                }
            }
        }
        rec(&self.root, query, f);
    }

    /// Count of items whose envelope intersects `query` (no allocation).
    pub fn count(&self, query: &Envelope) -> usize {
        let mut n = 0;
        self.visit(query, &mut |_| n += 1);
        n
    }

    /// The `k` items nearest to `point` (by envelope distance), closest
    /// first. Ties are broken arbitrarily but deterministically.
    pub fn nearest(&self, point: &Point, k: usize) -> Vec<(f64, &T)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        struct Cand<'a, T> {
            dist: f64,
            node: Option<&'a Node<T>>,
            item: Option<&'a T>,
        }
        impl<T> Eq for Cand<'_, T> {}
        impl<T> PartialOrd for Cand<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Cand<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.dist
                    .partial_cmp(&other.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        impl<T> PartialEq for Cand<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }

        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let pe = point.envelope();
        let mut heap: BinaryHeap<Reverse<Cand<T>>> = BinaryHeap::new();
        heap.push(Reverse(Cand {
            dist: self.root.envelope().distance(&pe),
            node: Some(&self.root),
            item: None,
        }));
        let mut out = Vec::with_capacity(k);
        while let Some(Reverse(c)) = heap.pop() {
            if let Some(item) = c.item {
                out.push((c.dist, item));
                if out.len() == k {
                    break;
                }
                continue;
            }
            match c.node.expect("candidate is node or item") {
                Node::Leaf { entries } => {
                    for (e, item) in entries {
                        heap.push(Reverse(Cand {
                            dist: e.distance(&pe),
                            node: None,
                            item: Some(item),
                        }));
                    }
                }
                Node::Inner { children } => {
                    for (e, child) in children {
                        heap.push(Reverse(Cand {
                            dist: e.distance(&pe),
                            node: Some(child),
                            item: None,
                        }));
                    }
                }
            }
        }
        out
    }
}

/// Recursive insert; returns the two halves if the node split.
#[allow(clippy::type_complexity)]
fn insert_rec<T: Clone>(
    node: &mut Node<T>,
    env: Envelope,
    item: T,
) -> Option<(Envelope, Box<Node<T>>, Envelope, Box<Node<T>>)> {
    match node {
        Node::Leaf { entries } => {
            entries.push((env, item));
            if entries.len() > MAX_ENTRIES {
                let (a, b) = quadratic_split(std::mem::take(entries));
                let ea = a.iter().fold(Envelope::empty(), |acc, (e, _)| acc.union(e));
                let eb = b.iter().fold(Envelope::empty(), |acc, (e, _)| acc.union(e));
                return Some((
                    ea,
                    Box::new(Node::Leaf { entries: a }),
                    eb,
                    Box::new(Node::Leaf { entries: b }),
                ));
            }
            None
        }
        Node::Inner { children } => {
            // Choose the child needing least enlargement (ties: least area).
            let mut best = 0usize;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, (e, _)) in children.iter().enumerate() {
                let enl = e.enlargement(&env);
                let area = e.area();
                if enl < best_enl || (enl == best_enl && area < best_area) {
                    best = i;
                    best_enl = enl;
                    best_area = area;
                }
            }
            let split = insert_rec(&mut children[best].1, env, item);
            // Refresh the chosen child's envelope.
            children[best].0 = children[best].1.envelope();
            if let Some((e1, n1, e2, n2)) = split {
                children[best] = (e1, n1);
                children.push((e2, n2));
                if children.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split_nodes(std::mem::take(children));
                    let ea = a.iter().fold(Envelope::empty(), |acc, (e, _)| acc.union(e));
                    let eb = b.iter().fold(Envelope::empty(), |acc, (e, _)| acc.union(e));
                    return Some((
                        ea,
                        Box::new(Node::Inner { children: a }),
                        eb,
                        Box::new(Node::Inner { children: b }),
                    ));
                }
            }
            None
        }
    }
}

/// Two halves of a split node.
type Split<V> = (Vec<(Envelope, V)>, Vec<(Envelope, V)>);

/// Guttman's quadratic split over leaf entries.
fn quadratic_split<T>(entries: Vec<(Envelope, T)>) -> Split<T> {
    split_generic(entries)
}

fn quadratic_split_nodes<T>(children: Vec<(Envelope, Box<Node<T>>)>) -> Split<Box<Node<T>>> {
    split_generic(children)
}

fn split_generic<V>(mut items: Vec<(Envelope, V)>) -> Split<V> {
    debug_assert!(items.len() >= 2);
    // Pick seeds: the pair wasting the most area if grouped together.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let waste = items[i].0.union(&items[j].0).area() - items[i].0.area() - items[j].0.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Move seeds out (remove higher index first).
    let seed2 = items.remove(s2);
    let seed1 = items.remove(s1);
    let mut g1 = vec![seed1];
    let mut g2 = vec![seed2];
    let mut e1 = g1[0].0;
    let mut e2 = g2[0].0;
    while let Some(next) = items.pop() {
        let remaining = items.len() + 1;
        // Force assignment if a group must take everything left to reach MIN.
        if g1.len() + remaining <= MIN_ENTRIES {
            e1 = e1.union(&next.0);
            g1.push(next);
            continue;
        }
        if g2.len() + remaining <= MIN_ENTRIES {
            e2 = e2.union(&next.0);
            g2.push(next);
            continue;
        }
        let d1 = e1.enlargement(&next.0);
        let d2 = e2.enlargement(&next.0);
        if d1 < d2 || (d1 == d2 && e1.area() <= e2.area()) {
            e1 = e1.union(&next.0);
            g1.push(next);
        } else {
            e2 = e2.union(&next.0);
            g2.push(next);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    fn random_envelopes(n: usize, seed: u64) -> Vec<(Envelope, usize)> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|i| {
                let x = rng.range_f64(0.0, 1000.0);
                let y = rng.range_f64(0.0, 1000.0);
                let w = rng.range_f64(0.0, 5.0);
                let h = rng.range_f64(0.0, 5.0);
                (Envelope::new(x, y, x + w, y + h), i)
            })
            .collect()
    }

    fn brute_force(items: &[(Envelope, usize)], q: &Envelope) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(e, _)| e.intersects(q))
            .map(|(_, i)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.search(&Envelope::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(t.nearest(&Point::new(0.0, 0.0), 3).is_empty());
        let t2: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t2.is_empty());
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let items = random_envelopes(2000, 42);
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 2000);
        let mut rng = Rng::seed_from(7);
        for _ in 0..50 {
            let x = rng.range_f64(0.0, 1000.0);
            let y = rng.range_f64(0.0, 1000.0);
            let q = Envelope::new(x, y, x + rng.range_f64(0.0, 100.0), y + rng.range_f64(0.0, 100.0));
            let mut got: Vec<usize> = tree.search(&q).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn insert_matches_brute_force() {
        let items = random_envelopes(500, 99);
        let mut tree = RTree::new();
        for (e, i) in items.iter() {
            tree.insert(*e, *i);
        }
        assert_eq!(tree.len(), 500);
        let mut rng = Rng::seed_from(3);
        for _ in 0..50 {
            let x = rng.range_f64(0.0, 1000.0);
            let y = rng.range_f64(0.0, 1000.0);
            let q = Envelope::new(x, y, x + 80.0, y + 80.0);
            let mut got: Vec<usize> = tree.search(&q).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&items, &q));
        }
    }

    #[test]
    fn mixed_bulk_then_insert() {
        let items = random_envelopes(300, 5);
        let (a, b) = items.split_at(150);
        let mut tree = RTree::bulk_load(a.to_vec());
        for (e, i) in b {
            tree.insert(*e, *i);
        }
        let q = Envelope::new(0.0, 0.0, 1000.0, 1000.0);
        assert_eq!(tree.count(&q), 300);
    }

    #[test]
    fn tree_height_is_logarithmic() {
        let tree = RTree::bulk_load(random_envelopes(10_000, 1));
        // 10k items, fanout 16 → height around ceil(log16(10000/16))+1 = 4.
        assert!(tree.height() <= 5, "height {}", tree.height());
    }

    #[test]
    fn nearest_neighbours_match_brute_force() {
        let items = random_envelopes(800, 21);
        let tree = RTree::bulk_load(items.clone());
        let mut rng = Rng::seed_from(77);
        for _ in 0..20 {
            let p = Point::new(rng.range_f64(0.0, 1000.0), rng.range_f64(0.0, 1000.0));
            let got = tree.nearest(&p, 5);
            assert_eq!(got.len(), 5);
            // Distances must be non-decreasing.
            for w in got.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
            // First result must equal brute-force minimum distance.
            let best = items
                .iter()
                .map(|(e, _)| e.distance(&p.envelope()))
                .fold(f64::INFINITY, f64::min);
            assert!((got[0].0 - best).abs() < 1e-9);
        }
    }

    #[test]
    fn count_equals_search_len() {
        let items = random_envelopes(400, 13);
        let tree = RTree::bulk_load(items);
        let q = Envelope::new(100.0, 100.0, 400.0, 400.0);
        assert_eq!(tree.count(&q), tree.search(&q).len());
    }
}
