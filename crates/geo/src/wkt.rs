//! OGC Well-Known Text parsing and serialisation.
//!
//! This is the geometry-literal syntax used by GeoSPARQL (`geo:wktLiteral`)
//! and therefore the wire format between `ee-geotriples`, `ee-rdf` and the
//! catalogue. Supported types: `POINT`, `LINESTRING`, `POLYGON`,
//! `MULTIPOLYGON` and `EMPTY` variants thereof. An optional leading CRS
//! IRI in angle brackets (as GeoSPARQL literals carry) is accepted and
//! ignored — the workspace is single-CRS.

use crate::geometry::{Geometry, LineString, MultiPolygon, Point, Polygon};
use crate::GeoError;

/// Serialise a geometry to WKT.
pub fn to_wkt(geom: &Geometry) -> String {
    let mut out = String::with_capacity(geom.num_vertices() * 16 + 16);
    write_geometry(geom, &mut out);
    out
}

fn write_coord(p: &Point, out: &mut String) {
    // Shortest round-trip float formatting keeps literals compact.
    use std::fmt::Write;
    let _ = write!(out, "{} {}", p.x, p.y);
}

fn write_ring(ring: &LineString, out: &mut String) {
    out.push('(');
    for (i, p) in ring.points.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_coord(p, out);
    }
    out.push(')');
}

fn write_polygon_body(poly: &Polygon, out: &mut String) {
    out.push('(');
    write_ring(&poly.exterior, out);
    for hole in &poly.interiors {
        out.push_str(", ");
        write_ring(hole, out);
    }
    out.push(')');
}

fn write_geometry(geom: &Geometry, out: &mut String) {
    match geom {
        Geometry::Point(p) => {
            out.push_str("POINT (");
            write_coord(p, out);
            out.push(')');
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING ");
            write_ring(l, out);
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON ");
            write_polygon_body(p, out);
        }
        Geometry::MultiPolygon(m) => {
            if m.polygons.is_empty() {
                out.push_str("MULTIPOLYGON EMPTY");
                return;
            }
            out.push_str("MULTIPOLYGON (");
            for (i, p) in m.polygons.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_polygon_body(p, out);
            }
            out.push(')');
        }
    }
}

/// Parse a WKT string (optionally prefixed by a `<crs-iri>`), e.g.
/// `"<http://www.opengis.net/def/crs/EPSG/0/4326> POINT (23.7 37.9)"`.
pub fn parse_wkt(input: &str) -> Result<Geometry, GeoError> {
    let mut p = Parser::new(input);
    p.skip_crs()?;
    let geom = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after geometry"));
    }
    Ok(geom)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> GeoError {
        GeoError::WktParse(format!("{msg} at byte {} in {:?}", self.pos, truncate(self.input)))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn skip_crs(&mut self) -> Result<(), GeoError> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b'<' {
            match self.input[self.pos..].find('>') {
                Some(rel) => {
                    self.pos += rel + 1;
                    Ok(())
                }
                None => Err(self.error("unterminated CRS IRI")),
            }
        } else {
            Ok(())
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<(), GeoError> {
        self.skip_ws();
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", ch as char)))
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    fn try_empty(&mut self) -> bool {
        let save = self.pos;
        if self.keyword() == "EMPTY" {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn number(&mut self) -> Result<f64, GeoError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|e| self.error(&format!("bad number: {e}")))
    }

    fn coord(&mut self) -> Result<Point, GeoError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    fn coord_list(&mut self) -> Result<Vec<Point>, GeoError> {
        self.expect(b'(')?;
        let mut pts = vec![self.coord()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    pts.push(self.coord()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok(pts);
                }
                _ => return Err(self.error("expected ',' or ')' in coordinate list")),
            }
        }
    }

    fn ring(&mut self) -> Result<LineString, GeoError> {
        let pts = self.coord_list()?;
        let ls = LineString::new(pts)?;
        if !ls.is_ring() {
            return Err(GeoError::WktParse(
                "polygon ring is not closed or has < 4 points".into(),
            ));
        }
        Ok(ls)
    }

    fn polygon_body(&mut self) -> Result<Polygon, GeoError> {
        self.expect(b'(')?;
        let exterior = self.ring()?;
        let mut interiors = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    interiors.push(self.ring()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    return Polygon::new(exterior, interiors);
                }
                _ => return Err(self.error("expected ',' or ')' in polygon body")),
            }
        }
    }

    fn parse_geometry(&mut self) -> Result<Geometry, GeoError> {
        match self.keyword().as_str() {
            "POINT" => {
                if self.try_empty() {
                    return Err(self.error("POINT EMPTY is not representable"));
                }
                self.expect(b'(')?;
                let p = self.coord()?;
                self.expect(b')')?;
                Ok(Geometry::Point(p))
            }
            "LINESTRING" => {
                let pts = self.coord_list()?;
                Ok(Geometry::LineString(LineString::new(pts)?))
            }
            "POLYGON" => Ok(Geometry::Polygon(self.polygon_body()?)),
            "MULTIPOLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPolygon(MultiPolygon::new(vec![])));
                }
                self.expect(b'(')?;
                let mut polys = vec![self.polygon_body()?];
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            polys.push(self.polygon_body()?);
                        }
                        Some(b')') => {
                            self.pos += 1;
                            return Ok(Geometry::MultiPolygon(MultiPolygon::new(polys)));
                        }
                        _ => return Err(self.error("expected ',' or ')' in multipolygon")),
                    }
                }
            }
            "" => Err(self.error("expected a geometry keyword")),
            other => Err(GeoError::WktParse(format!(
                "unsupported geometry type {other:?}"
            ))),
        }
    }
}

fn truncate(s: &str) -> &str {
    if s.len() > 80 {
        &s[..80]
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let g = parse_wkt("POINT (23.7275 37.9838)").unwrap();
        match &g {
            Geometry::Point(p) => {
                assert_eq!(p.x, 23.7275);
                assert_eq!(p.y, 37.9838);
            }
            _ => panic!("not a point"),
        }
        let wkt = to_wkt(&g);
        assert_eq!(parse_wkt(&wkt).unwrap(), g);
    }

    #[test]
    fn crs_prefix_accepted() {
        let g = parse_wkt("<http://www.opengis.net/def/crs/EPSG/0/4326> POINT (1 2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
    }

    #[test]
    fn linestring_roundtrip() {
        let g = parse_wkt("LINESTRING (0 0, 1 1, 2 0.5)").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(parse_wkt(&to_wkt(&g)).unwrap(), g);
    }

    #[test]
    fn polygon_with_hole_roundtrip() {
        let wkt = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))";
        let g = parse_wkt(wkt).unwrap();
        match &g {
            Geometry::Polygon(p) => {
                assert_eq!(p.interiors.len(), 1);
                assert_eq!(p.exterior.points.len(), 5);
            }
            _ => panic!("not a polygon"),
        }
        assert_eq!(parse_wkt(&to_wkt(&g)).unwrap(), g);
    }

    #[test]
    fn multipolygon_roundtrip() {
        let wkt = "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))";
        let g = parse_wkt(wkt).unwrap();
        match &g {
            Geometry::MultiPolygon(m) => assert_eq!(m.polygons.len(), 2),
            _ => panic!("not a multipolygon"),
        }
        assert_eq!(parse_wkt(&to_wkt(&g)).unwrap(), g);
    }

    #[test]
    fn empty_multipolygon() {
        let g = parse_wkt("MULTIPOLYGON EMPTY").unwrap();
        assert_eq!(g, Geometry::MultiPolygon(MultiPolygon::new(vec![])));
        assert_eq!(to_wkt(&g), "MULTIPOLYGON EMPTY");
    }

    #[test]
    fn scientific_and_negative_numbers() {
        let g = parse_wkt("POINT (-1.5e2 +3.25)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(-150.0, 3.25)));
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse_wkt("point (1 2)").is_ok());
        assert!(parse_wkt("Polygon ((0 0, 1 0, 1 1, 0 0))").is_ok());
    }

    #[test]
    fn parse_errors_are_informative() {
        for bad in [
            "",
            "CIRCLE (1 2)",
            "POINT (1)",
            "POINT (1 2",
            "POLYGON ((0 0, 1 0, 1 1))",     // unclosed ring
            "POINT (1 2) garbage",           // trailing
            "<http://unterminated POINT (1 2)",
            "LINESTRING (0 0)",              // too few points
            "POINT (a b)",
        ] {
            let err = parse_wkt(bad).unwrap_err();
            assert!(
                matches!(err, GeoError::WktParse(_) | GeoError::InvalidGeometry(_)),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let g = parse_wkt("  POLYGON  ( ( 0 0 ,10 0, 10 10 ,0 10, 0 0 ) ) ").unwrap();
        assert_eq!(g.num_vertices(), 5);
    }
}
