//! Property-based tests over the geometry kernels.

use ee_geo::{algorithms, wkt, Envelope, Geometry, LineString, Point, Polygon};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// A random simple polygon: a star-shaped ring around a centre.
fn arb_star_polygon() -> impl Strategy<Value = Polygon> {
    (
        -50.0f64..50.0,
        -50.0f64..50.0,
        3usize..24,
        proptest::collection::vec(0.5f64..5.0, 24),
    )
        .prop_map(|(cx, cy, vertices, radii)| {
            let pts: Vec<Point> = (0..vertices)
                .map(|k| {
                    let theta = k as f64 / vertices as f64 * std::f64::consts::TAU;
                    let r = radii[k % radii.len()];
                    Point::new(cx + r * theta.cos(), cy + r * theta.sin())
                })
                .collect();
            Polygon::from_exterior(pts).expect("star ring is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rect_point_containment_matches_envelope(p in arb_point(),
                                               x0 in -80.0f64..80.0,
                                               y0 in -80.0f64..80.0,
                                               w in 0.1f64..40.0,
                                               h in 0.1f64..40.0) {
        let rect = Polygon::rectangle(x0, y0, x0 + w, y0 + h);
        let env = Envelope::new(x0, y0, x0 + w, y0 + h);
        prop_assert_eq!(
            algorithms::point_in_polygon(&p, &rect),
            env.contains_point(&p)
        );
    }

    #[test]
    fn intersects_is_symmetric(a in arb_star_polygon(), b in arb_star_polygon()) {
        let ga: Geometry = a.into();
        let gb: Geometry = b.into();
        prop_assert_eq!(algorithms::intersects(&ga, &gb), algorithms::intersects(&gb, &ga));
    }

    #[test]
    fn distance_is_symmetric_and_zero_iff_intersecting(
        a in arb_star_polygon(),
        b in arb_star_polygon(),
    ) {
        let ga: Geometry = a.into();
        let gb: Geometry = b.into();
        let dab = algorithms::distance(&ga, &gb);
        let dba = algorithms::distance(&gb, &ga);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert_eq!(dab == 0.0, algorithms::intersects(&ga, &gb));
        prop_assert!(dab >= 0.0);
    }

    #[test]
    fn contains_implies_intersects_and_envelope_containment(
        a in arb_star_polygon(),
        b in arb_star_polygon(),
    ) {
        let ga: Geometry = a.clone().into();
        let gb: Geometry = b.clone().into();
        if algorithms::contains(&ga, &gb) {
            prop_assert!(algorithms::intersects(&ga, &gb));
            prop_assert!(a.envelope().contains_envelope(&b.envelope()));
            prop_assert!(algorithms::area(&ga) >= algorithms::area(&gb) - 1e-9);
        }
    }

    #[test]
    fn convex_hull_contains_every_input_point(
        pts in proptest::collection::vec(arb_point(), 3..60),
    ) {
        if let Some(hull) = algorithms::convex_hull(&pts) {
            let poly = Polygon::new(hull, vec![]).expect("hull ring");
            for p in &pts {
                prop_assert!(
                    algorithms::point_in_polygon(p, &poly),
                    "hull must contain {p:?}"
                );
            }
        }
    }

    #[test]
    fn simplify_keeps_endpoints_and_never_grows(
        pts in proptest::collection::vec(arb_point(), 2..40),
        eps in 0.0f64..10.0,
    ) {
        let line = LineString::new(pts.clone()).expect(">= 2 points");
        let s = algorithms::simplify(&line, eps);
        prop_assert!(s.points.len() <= line.points.len());
        prop_assert_eq!(s.points.first(), line.points.first());
        prop_assert_eq!(s.points.last(), line.points.last());
        // Zero tolerance keeps everything.
        let exact = algorithms::simplify(&line, 0.0);
        prop_assert!(exact.points.len() >= s.points.len());
    }

    #[test]
    fn wkt_roundtrip_star_polygons(poly in arb_star_polygon()) {
        let g: Geometry = poly.into();
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).expect("roundtrip");
        prop_assert_eq!(back, g);
    }

    #[test]
    fn polygon_area_is_translation_invariant(
        poly in arb_star_polygon(),
        dx in -30.0f64..30.0,
        dy in -30.0f64..30.0,
    ) {
        let moved = Polygon::from_exterior(
            poly.exterior.points[..poly.exterior.points.len() - 1]
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        )
        .expect("ring still valid");
        prop_assert!((algorithms::polygon_area(&poly) - algorithms::polygon_area(&moved)).abs() < 1e-6);
    }
}
