//! Property-based tests over the geometry kernels.
//!
//! Each property is exercised over 128 deterministic random cases drawn
//! from a seeded [`ee_util::Rng`] (no external property-test framework,
//! so the workspace builds offline). Failures print the case index so a
//! failing draw can be replayed exactly.

use ee_geo::{algorithms, wkt, Envelope, Geometry, LineString, Point, Polygon};
use ee_util::Rng;

const CASES: usize = 128;

fn random_point(rng: &mut Rng) -> Point {
    Point::new(rng.range_f64(-100.0, 100.0), rng.range_f64(-100.0, 100.0))
}

/// A random simple polygon: a star-shaped ring around a centre.
fn random_star_polygon(rng: &mut Rng) -> Polygon {
    let cx = rng.range_f64(-50.0, 50.0);
    let cy = rng.range_f64(-50.0, 50.0);
    let vertices = rng.range(3, 24);
    let radii: Vec<f64> = (0..24).map(|_| rng.range_f64(0.5, 5.0)).collect();
    let pts: Vec<Point> = (0..vertices)
        .map(|k| {
            let theta = k as f64 / vertices as f64 * std::f64::consts::TAU;
            let r = radii[k % radii.len()];
            Point::new(cx + r * theta.cos(), cy + r * theta.sin())
        })
        .collect();
    Polygon::from_exterior(pts).expect("star ring is valid")
}

#[test]
fn rect_point_containment_matches_envelope() {
    let mut rng = Rng::seed_from(0xEE01);
    for case in 0..CASES {
        let p = random_point(&mut rng);
        let x0 = rng.range_f64(-80.0, 80.0);
        let y0 = rng.range_f64(-80.0, 80.0);
        let w = rng.range_f64(0.1, 40.0);
        let h = rng.range_f64(0.1, 40.0);
        let rect = Polygon::rectangle(x0, y0, x0 + w, y0 + h);
        let env = Envelope::new(x0, y0, x0 + w, y0 + h);
        assert_eq!(
            algorithms::point_in_polygon(&p, &rect),
            env.contains_point(&p),
            "case {case}: point {p:?} rect ({x0},{y0})+({w},{h})"
        );
    }
}

#[test]
fn intersects_is_symmetric() {
    let mut rng = Rng::seed_from(0xEE02);
    for case in 0..CASES {
        let ga: Geometry = random_star_polygon(&mut rng).into();
        let gb: Geometry = random_star_polygon(&mut rng).into();
        assert_eq!(
            algorithms::intersects(&ga, &gb),
            algorithms::intersects(&gb, &ga),
            "case {case}"
        );
    }
}

#[test]
fn distance_is_symmetric_and_zero_iff_intersecting() {
    let mut rng = Rng::seed_from(0xEE03);
    for case in 0..CASES {
        let ga: Geometry = random_star_polygon(&mut rng).into();
        let gb: Geometry = random_star_polygon(&mut rng).into();
        let dab = algorithms::distance(&ga, &gb);
        let dba = algorithms::distance(&gb, &ga);
        assert!((dab - dba).abs() < 1e-9, "case {case}: {dab} vs {dba}");
        assert_eq!(dab == 0.0, algorithms::intersects(&ga, &gb), "case {case}");
        assert!(dab >= 0.0, "case {case}");
    }
}

#[test]
fn contains_implies_intersects_and_envelope_containment() {
    let mut rng = Rng::seed_from(0xEE04);
    for case in 0..CASES {
        let a = random_star_polygon(&mut rng);
        let b = random_star_polygon(&mut rng);
        let ga: Geometry = a.clone().into();
        let gb: Geometry = b.clone().into();
        if algorithms::contains(&ga, &gb) {
            assert!(algorithms::intersects(&ga, &gb), "case {case}");
            assert!(
                a.envelope().contains_envelope(&b.envelope()),
                "case {case}"
            );
            assert!(
                algorithms::area(&ga) >= algorithms::area(&gb) - 1e-9,
                "case {case}"
            );
        }
    }
}

#[test]
fn convex_hull_contains_every_input_point() {
    let mut rng = Rng::seed_from(0xEE05);
    for case in 0..CASES {
        let n = rng.range(3, 60);
        let pts: Vec<Point> = (0..n).map(|_| random_point(&mut rng)).collect();
        if let Some(hull) = algorithms::convex_hull(&pts) {
            let poly = Polygon::new(hull, vec![]).expect("hull ring");
            for p in &pts {
                assert!(
                    algorithms::point_in_polygon(p, &poly),
                    "case {case}: hull must contain {p:?}"
                );
            }
        }
    }
}

#[test]
fn simplify_keeps_endpoints_and_never_grows() {
    let mut rng = Rng::seed_from(0xEE06);
    for case in 0..CASES {
        let n = rng.range(2, 40);
        let pts: Vec<Point> = (0..n).map(|_| random_point(&mut rng)).collect();
        let eps = rng.range_f64(0.0, 10.0);
        let line = LineString::new(pts).expect(">= 2 points");
        let s = algorithms::simplify(&line, eps);
        assert!(s.points.len() <= line.points.len(), "case {case}");
        assert_eq!(s.points.first(), line.points.first(), "case {case}");
        assert_eq!(s.points.last(), line.points.last(), "case {case}");
        // Zero tolerance keeps everything.
        let exact = algorithms::simplify(&line, 0.0);
        assert!(exact.points.len() >= s.points.len(), "case {case}");
    }
}

#[test]
fn wkt_roundtrip_star_polygons() {
    let mut rng = Rng::seed_from(0xEE07);
    for case in 0..CASES {
        let g: Geometry = random_star_polygon(&mut rng).into();
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).expect("roundtrip");
        assert_eq!(back, g, "case {case}: {text}");
    }
}

#[test]
fn polygon_area_is_translation_invariant() {
    let mut rng = Rng::seed_from(0xEE08);
    for case in 0..CASES {
        let poly = random_star_polygon(&mut rng);
        let dx = rng.range_f64(-30.0, 30.0);
        let dy = rng.range_f64(-30.0, 30.0);
        let moved = Polygon::from_exterior(
            poly.exterior.points[..poly.exterior.points.len() - 1]
                .iter()
                .map(|p| Point::new(p.x + dx, p.y + dy))
                .collect(),
        )
        .expect("ring still valid");
        assert!(
            (algorithms::polygon_area(&poly) - algorithms::polygon_area(&moved)).abs() < 1e-6,
            "case {case}"
        );
    }
}
