//! A minimal delimited-text table reader (the RML "logical table" source).
//!
//! Handles the workspace's own exports: comma separation, double-quote
//! quoting with `""` escapes, a mandatory header row. Not a general CSV
//! implementation — it exists so the mapping engine has a tabular source.

use crate::MapError;

/// A parsed table: header + rows of equal arity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: &str) -> Option<&str> {
        let ci = self.column(col)?;
        self.rows.get(row).map(|r| r[ci].as_str())
    }
}

/// Parse delimited text with a header row.
pub fn parse_csv(text: &str) -> Result<Table, MapError> {
    let mut lines = split_records(text);
    if lines.is_empty() {
        return Err(MapError::BadSource("empty input".into()));
    }
    let header = lines.remove(0);
    let arity = header.len();
    for (i, row) in lines.iter().enumerate() {
        if row.len() != arity {
            return Err(MapError::BadSource(format!(
                "row {} has {} fields, header has {arity}",
                i + 1,
                row.len()
            )));
        }
    }
    Ok(Table {
        header,
        rows: lines,
    })
}

/// Split into records honouring quotes (which may contain newlines).
fn split_records(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    // Skip blank lines.
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                '\r' => {}
                other => field.push(other),
            }
        }
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        if !(record.len() == 1 && record[0].is_empty()) {
            records.push(record);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_table() {
        let t = parse_csv("id,name\n1,alpha\n2,beta\n").unwrap();
        assert_eq!(t.header, vec!["id", "name"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.cell(1, "name"), Some("beta"));
        assert_eq!(t.column("id"), Some(0));
        assert_eq!(t.column("nope"), None);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let t = parse_csv("a,b\n\"x,y\",\"line1\nline2\"\n").unwrap();
        assert_eq!(t.rows[0][0], "x,y");
        assert_eq!(t.rows[0][1], "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let t = parse_csv("a\n\"she said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows[0][0], "she said \"hi\"");
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let t = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.rows[0], vec!["1", "2"]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(matches!(
            parse_csv("a,b\n1\n"),
            Err(MapError::BadSource(_))
        ));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = parse_csv("a,b\n1,2\n\n3,4\n").unwrap();
        assert_eq!(t.rows.len(), 2);
    }
}
