//! An in-memory vector feature collection (the GeoJSON-like source).

use ee_geo::Geometry;
use std::collections::BTreeMap;

/// A property value on a feature.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// Text.
    Str(String),
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl PropValue {
    /// Lexical form used in templates.
    pub fn lexical(&self) -> String {
        match self {
            PropValue::Str(s) => s.clone(),
            PropValue::Int(i) => i.to_string(),
            PropValue::Float(f) => format!("{f}"),
            PropValue::Bool(b) => b.to_string(),
        }
    }
}

/// One vector feature: geometry + properties.
#[derive(Debug, Clone)]
pub struct Feature {
    /// The geometry.
    pub geometry: Geometry,
    /// Named properties.
    pub properties: BTreeMap<String, PropValue>,
}

impl Feature {
    /// Construct with empty properties.
    pub fn new(geometry: Geometry) -> Self {
        Self {
            geometry,
            properties: BTreeMap::new(),
        }
    }

    /// Builder-style property insertion.
    pub fn with(mut self, key: &str, value: PropValue) -> Self {
        self.properties.insert(key.to_string(), value);
        self
    }

    /// Property lookup.
    pub fn get(&self, key: &str) -> Option<&PropValue> {
        self.properties.get(key)
    }
}

/// A collection of features (one "layer").
#[derive(Debug, Clone, Default)]
pub struct FeatureCollection {
    /// The features.
    pub features: Vec<Feature>,
}

impl FeatureCollection {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a feature.
    pub fn push(&mut self, f: Feature) {
        self.features.push(f);
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_geo::Point;

    #[test]
    fn builder_and_lookup() {
        let f = Feature::new(Point::new(1.0, 2.0).into())
            .with("name", PropValue::Str("Field 7".into()))
            .with("area", PropValue::Float(1.25));
        assert_eq!(f.get("name"), Some(&PropValue::Str("Field 7".into())));
        assert_eq!(f.get("area").unwrap().lexical(), "1.25");
        assert!(f.get("missing").is_none());
    }

    #[test]
    fn lexical_forms() {
        assert_eq!(PropValue::Int(-3).lexical(), "-3");
        assert_eq!(PropValue::Bool(true).lexical(), "true");
        assert_eq!(PropValue::Str("x y".into()).lexical(), "x y");
    }

    #[test]
    fn collection_basics() {
        let mut fc = FeatureCollection::new();
        assert!(fc.is_empty());
        fc.push(Feature::new(Point::new(0.0, 0.0).into()));
        assert_eq!(fc.len(), 1);
    }
}
