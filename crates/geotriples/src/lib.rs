#![warn(missing_docs)]
//! GeoTriples-analogue: mapping tabular and vector geodata into RDF
//! (Challenge C3, ref \[16\]).
//!
//! GeoTriples transforms geospatial data into RDF graphs driven by
//! R2RML/RML mappings. This crate implements the same architecture at the
//! scale this workspace needs: an *RML-lite* mapping model ([`mapping`])
//! executed over two source kinds — delimited text tables ([`csv`]) and a
//! GeoJSON-like in-memory feature collection ([`features`]) — emitting
//! triples straight into an `ee-rdf` [`ee_rdf::TripleStore`].
//!
//! A mapping is a set of `TriplesMap`s: a subject template plus
//! predicate-object maps whose objects are column references (typed),
//! constants, or the feature geometry serialised as a GeoSPARQL WKT
//! literal — exactly GeoTriples' `rml:reference`/`rr:template` core.

pub mod csv;
pub mod features;
pub mod mapping;

pub use features::{Feature, FeatureCollection};
pub use mapping::{ObjectMap, TermType, TriplesMap};

/// Errors from the mapping engine.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// A template referenced a missing column/property.
    MissingField(String),
    /// Malformed template string.
    BadTemplate(String),
    /// Source parse failure (CSV structure).
    BadSource(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::MissingField(c) => write!(f, "missing field {c:?}"),
            MapError::BadTemplate(t) => write!(f, "bad template {t:?}"),
            MapError::BadSource(m) => write!(f, "bad source: {m}"),
        }
    }
}

impl std::error::Error for MapError {}
