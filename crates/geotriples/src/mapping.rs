//! The RML-lite mapping model and its executor.

use crate::csv::Table;
use crate::features::{FeatureCollection, PropValue};
use crate::MapError;
use ee_rdf::term::{Term, GEO_WKT, XSD_DOUBLE, XSD_INTEGER};
use ee_rdf::TripleStore;

/// How an object map produces its term.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectMap {
    /// A column/property reference with a datatype.
    Reference {
        /// Source field name.
        field: String,
        /// Produced term type.
        term_type: TermType,
    },
    /// A template producing an IRI, e.g. `http://ex/field/{id}`.
    TemplateIri(String),
    /// A constant term.
    Constant(Term),
    /// The feature geometry as a `geo:wktLiteral` (feature sources only).
    Geometry,
}

/// Target datatype of a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermType {
    /// `xsd:string`
    String,
    /// `xsd:integer`
    Integer,
    /// `xsd:double`
    Double,
    /// An IRI minted from the raw value.
    Iri,
}

/// One triples map: a subject template plus predicate–object maps.
#[derive(Debug, Clone)]
pub struct TriplesMap {
    /// Subject IRI template with `{field}` placeholders.
    pub subject_template: String,
    /// Optional `rdf:type` to assert for every subject.
    pub class: Option<String>,
    /// (predicate IRI, object map) pairs.
    pub predicate_objects: Vec<(String, ObjectMap)>,
}

/// Expand `{field}` placeholders from a lookup function.
fn expand_template(
    template: &str,
    lookup: &dyn Fn(&str) -> Option<String>,
) -> Result<String, MapError> {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    loop {
        match rest.find('{') {
            None => {
                if rest.contains('}') {
                    return Err(MapError::BadTemplate(template.to_string()));
                }
                out.push_str(rest);
                return Ok(out);
            }
            Some(open) => {
                out.push_str(&rest[..open]);
                let after = &rest[open + 1..];
                let close = after
                    .find('}')
                    .ok_or_else(|| MapError::BadTemplate(template.to_string()))?;
                let field = &after[..close];
                if field.is_empty() {
                    return Err(MapError::BadTemplate(template.to_string()));
                }
                let value =
                    lookup(field).ok_or_else(|| MapError::MissingField(field.to_string()))?;
                out.push_str(&value);
                rest = &after[close + 1..];
            }
        }
    }
}

fn reference_term(raw: &str, tt: TermType) -> Term {
    match tt {
        TermType::String => Term::string(raw),
        TermType::Integer => Term::Literal {
            lexical: raw.trim().to_string(),
            datatype: XSD_INTEGER.to_string(),
        },
        TermType::Double => Term::Literal {
            lexical: raw.trim().to_string(),
            datatype: XSD_DOUBLE.to_string(),
        },
        TermType::Iri => Term::iri(raw),
    }
}

impl TriplesMap {
    /// Execute over a CSV table, inserting triples into `store`.
    /// Returns the number of triples emitted.
    pub fn run_table(&self, table: &Table, store: &mut TripleStore) -> Result<usize, MapError> {
        let mut emitted = 0;
        for row in 0..table.rows.len() {
            let lookup = |field: &str| table.cell(row, field).map(|s| s.to_string());
            emitted += self.emit_one(&lookup, None, store)?;
        }
        Ok(emitted)
    }

    /// Execute over a feature collection.
    pub fn run_features(
        &self,
        fc: &FeatureCollection,
        store: &mut TripleStore,
    ) -> Result<usize, MapError> {
        let mut emitted = 0;
        for feature in &fc.features {
            let lookup = |field: &str| feature.get(field).map(PropValue::lexical);
            let wkt = ee_geo::wkt::to_wkt(&feature.geometry);
            emitted += self.emit_one(&lookup, Some(&wkt), store)?;
        }
        Ok(emitted)
    }

    fn emit_one(
        &self,
        lookup: &dyn Fn(&str) -> Option<String>,
        geometry_wkt: Option<&str>,
        store: &mut TripleStore,
    ) -> Result<usize, MapError> {
        let subject = Term::iri(expand_template(&self.subject_template, lookup)?);
        let mut emitted = 0;
        if let Some(class) = &self.class {
            store.insert(
                &subject,
                &Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                &Term::iri(class.clone()),
            );
            emitted += 1;
        }
        for (predicate, om) in &self.predicate_objects {
            let object = match om {
                ObjectMap::Reference { field, term_type } => {
                    let raw = lookup(field)
                        .ok_or_else(|| MapError::MissingField(field.clone()))?;
                    reference_term(&raw, *term_type)
                }
                ObjectMap::TemplateIri(t) => Term::iri(expand_template(t, lookup)?),
                ObjectMap::Constant(t) => t.clone(),
                ObjectMap::Geometry => {
                    let wkt = geometry_wkt.ok_or_else(|| {
                        MapError::BadTemplate("geometry map on a non-spatial source".into())
                    })?;
                    Term::Literal {
                        lexical: wkt.to_string(),
                        datatype: GEO_WKT.to_string(),
                    }
                }
            };
            store.insert(&subject, &Term::iri(predicate.clone()), &object);
            emitted += 1;
        }
        Ok(emitted)
    }
}

/// The standard "feature with geometry" mapping used across the
/// workspace: subject from an id property, `rdf:type`, a WKT geometry via
/// the GeoSPARQL vocabulary and the listed literal properties.
pub fn feature_mapping(
    base_iri: &str,
    id_field: &str,
    class: &str,
    literal_props: &[(&str, &str, TermType)],
) -> TriplesMap {
    let mut predicate_objects = vec![(
        "http://www.opengis.net/ont/geosparql#asWKT".to_string(),
        ObjectMap::Geometry,
    )];
    for (predicate, field, tt) in literal_props {
        predicate_objects.push((
            predicate.to_string(),
            ObjectMap::Reference {
                field: field.to_string(),
                term_type: *tt,
            },
        ));
    }
    TriplesMap {
        subject_template: format!("{base_iri}{{{id_field}}}"),
        class: Some(class.to_string()),
        predicate_objects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;
    use crate::features::Feature;
    use ee_geo::Point;
    use ee_rdf::store::IndexMode;

    #[test]
    fn template_expansion() {
        let lookup = |f: &str| match f {
            "id" => Some("42".to_string()),
            "name" => Some("x".to_string()),
            _ => None,
        };
        assert_eq!(
            expand_template("http://e/f/{id}/{name}", &lookup).unwrap(),
            "http://e/f/42/x"
        );
        assert_eq!(expand_template("no-placeholders", &lookup).unwrap(), "no-placeholders");
        assert!(matches!(
            expand_template("{missing}", &lookup),
            Err(MapError::MissingField(_))
        ));
        assert!(matches!(
            expand_template("{unclosed", &lookup),
            Err(MapError::BadTemplate(_))
        ));
        assert!(matches!(
            expand_template("{}", &lookup),
            Err(MapError::BadTemplate(_))
        ));
        assert!(matches!(
            expand_template("orphan } brace", &lookup),
            Err(MapError::BadTemplate(_))
        ));
    }

    #[test]
    fn csv_mapping_end_to_end() {
        let table = parse_csv("id,name,yield\nf1,North Field,4.2\nf2,South Field,3.9\n").unwrap();
        let map = TriplesMap {
            subject_template: "http://farm.example/field/{id}".into(),
            class: Some("http://farm.example/Field".into()),
            predicate_objects: vec![
                (
                    "http://farm.example/name".into(),
                    ObjectMap::Reference {
                        field: "name".into(),
                        term_type: TermType::String,
                    },
                ),
                (
                    "http://farm.example/yield".into(),
                    ObjectMap::Reference {
                        field: "yield".into(),
                        term_type: TermType::Double,
                    },
                ),
            ],
        };
        let mut store = TripleStore::new(IndexMode::Full);
        let n = map.run_table(&table, &mut store).unwrap();
        assert_eq!(n, 6, "2 rows x (type + 2 properties)");
        assert_eq!(store.len(), 6);
        let sol = ee_rdf::exec::query(
            &store,
            "PREFIX f: <http://farm.example/> SELECT ?n WHERE { ?s a f:Field ; f:name ?n . FILTER(?n = \"North Field\") }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn feature_mapping_emits_wkt() {
        let mut fc = FeatureCollection::new();
        fc.push(
            Feature::new(Point::new(23.7, 37.9).into())
                .with("id", PropValue::Str("athens".into()))
                .with("pop", PropValue::Int(3_750_000)),
        );
        let map = feature_mapping(
            "http://geo.example/place/",
            "id",
            "http://geo.example/Place",
            &[("http://geo.example/population", "pop", TermType::Integer)],
        );
        let mut store = TripleStore::new(IndexMode::Full);
        let n = map.run_features(&fc, &mut store).unwrap();
        assert_eq!(n, 3);
        store.build_spatial_index();
        let sol = ee_rdf::exec::query(
            &store,
            "PREFIX g: <http://geo.example/> SELECT ?s WHERE { ?s a g:Place ; geo:asWKT ?w . \
             FILTER(geof:sfWithin(?w, \"POLYGON ((23 37, 24 37, 24 38, 23 38, 23 37))\"^^geo:wktLiteral)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1, "GeoTriples output is queryable spatially");
    }

    #[test]
    fn geometry_map_needs_spatial_source() {
        let table = parse_csv("id\n1\n").unwrap();
        let map = TriplesMap {
            subject_template: "http://e/{id}".into(),
            class: None,
            predicate_objects: vec![(
                "http://www.opengis.net/ont/geosparql#asWKT".into(),
                ObjectMap::Geometry,
            )],
        };
        let mut store = TripleStore::new(IndexMode::Full);
        assert!(map.run_table(&table, &mut store).is_err());
    }

    #[test]
    fn constant_and_template_iri_objects() {
        let table = parse_csv("id\n7\n").unwrap();
        let map = TriplesMap {
            subject_template: "http://e/s/{id}".into(),
            class: None,
            predicate_objects: vec![
                (
                    "http://e/status".into(),
                    ObjectMap::Constant(Term::string("active")),
                ),
                (
                    "http://e/detail".into(),
                    ObjectMap::TemplateIri("http://e/detail/{id}".into()),
                ),
            ],
        };
        let mut store = TripleStore::new(IndexMode::Full);
        map.run_table(&table, &mut store).unwrap();
        assert!(store.contains(
            &Term::iri("http://e/s/7"),
            &Term::iri("http://e/detail"),
            &Term::iri("http://e/detail/7"),
        ));
    }

    #[test]
    fn duplicate_rows_do_not_duplicate_triples() {
        let table = parse_csv("id\n1\n1\n").unwrap();
        let map = TriplesMap {
            subject_template: "http://e/{id}".into(),
            class: Some("http://e/C".into()),
            predicate_objects: vec![],
        };
        let mut store = TripleStore::new(IndexMode::Full);
        map.run_table(&table, &mut store).unwrap();
        assert_eq!(store.len(), 1, "store dedups");
    }
}
