//! The block-storage path (datanode analogue).
//!
//! Large file payloads are chunked into blocks held by this store; reading
//! them costs extra round trips compared to the inline small-file path
//! (ref \[17\], "Size Matters"). The store counts round trips so experiment
//! E10 can report the latency model without wall-clock noise.

use std::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::FsError;

/// In-memory datanode pool.
pub struct BlockStore {
    blocks: Mutex<HashMap<u64, Vec<u8>>>,
    next_id: AtomicU64,
    round_trips: AtomicU64,
    /// Block size in bytes; files are chunked at this boundary.
    pub block_size: usize,
}

impl BlockStore {
    /// A block store with the given block size (HDFS-style, but smaller:
    /// the default 1 MiB keeps test files multi-block).
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0);
        Self {
            blocks: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            round_trips: AtomicU64::new(0),
            block_size,
        }
    }

    /// Write a payload as blocks; returns the block ids in order.
    pub fn write(&self, data: &[u8]) -> Vec<u64> {
        let mut ids = Vec::with_capacity(data.len().div_ceil(self.block_size));
        let mut blocks = self.blocks.lock().expect("block store mutex poisoned");
        for chunk in data.chunks(self.block_size) {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            blocks.insert(id, chunk.to_vec());
            ids.push(id);
            self.round_trips.fetch_add(1, Ordering::Relaxed);
        }
        // Zero-length files still store one empty block for simplicity.
        if ids.is_empty() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            blocks.insert(id, Vec::new());
            ids.push(id);
            self.round_trips.fetch_add(1, Ordering::Relaxed);
        }
        ids
    }

    /// Read blocks back in order.
    pub fn read(&self, ids: &[u64]) -> Result<Vec<u8>, FsError> {
        let blocks = self.blocks.lock().expect("block store mutex poisoned");
        let mut out = Vec::new();
        for id in ids {
            let chunk = blocks.get(id).ok_or(FsError::BlockMissing(*id))?;
            out.extend_from_slice(chunk);
            self.round_trips.fetch_add(1, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Drop blocks (file deletion).
    pub fn free(&self, ids: &[u64]) {
        let mut blocks = self.blocks.lock().expect("block store mutex poisoned");
        for id in ids {
            blocks.remove(id);
        }
    }

    /// Datanode round trips so far (one per block written or read).
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Number of live blocks.
    pub fn len(&self) -> usize {
        self.blocks.lock().expect("block store mutex poisoned").len()
    }

    /// No live blocks?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_roundtrip() {
        let bs = BlockStore::new(4);
        let data = b"hello world!!".to_vec(); // 13 bytes → 4 blocks
        let ids = bs.write(&data);
        assert_eq!(ids.len(), 4);
        assert_eq!(bs.read(&ids).unwrap(), data);
        assert_eq!(bs.round_trips(), 8, "4 writes + 4 reads");
    }

    #[test]
    fn empty_file_gets_one_block() {
        let bs = BlockStore::new(1024);
        let ids = bs.write(&[]);
        assert_eq!(ids.len(), 1);
        assert_eq!(bs.read(&ids).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn free_releases_blocks() {
        let bs = BlockStore::new(2);
        let ids = bs.write(b"abcdef");
        assert_eq!(bs.len(), 3);
        bs.free(&ids);
        assert!(bs.is_empty());
        assert_eq!(bs.read(&ids), Err(FsError::BlockMissing(ids[0])));
    }

    #[test]
    fn missing_block_is_an_error() {
        let bs = BlockStore::new(8);
        assert!(matches!(bs.read(&[999]), Err(FsError::BlockMissing(999))));
    }
}
