#![warn(missing_docs)]
//! A HopsFS-analogue: hierarchical filesystem metadata in a sharded,
//! transactional store.
//!
//! The paper (Challenge C5, refs \[9\], \[13\], \[17\]) builds on HopsFS, which
//! moves HDFS namenode metadata into a distributed NewSQL database (NDB)
//! so that metadata throughput scales with database shards, and serves
//! *small files* directly from the metadata layer instead of the block
//! layer. This crate reproduces both architectural properties:
//!
//! * [`store`] — a sharded key-value store with optimistic multi-key
//!   transactions and two-phase commit across shards. Single-shard
//!   transactions take the fast path (one shard lock); cross-shard
//!   transactions pay prepare+commit on every participant, exactly the
//!   trade HopsFS engineers around with its partition-key design.
//! * [`namespace`] — the inode layer: directory entries are partitioned by
//!   parent inode (HopsFS's partition-pruned index scans), so `ls` and
//!   path resolution stay single-shard while `rename` across directories
//!   is the slow cross-shard case.
//! * [`blocks`] — the block-storage path with a simulated datanode
//!   round-trip, and the inline small-file path that skips it (ref \[17\]).
//! * [`load`] — multi-threaded load generator reproducing the op mix of
//!   the HopsFS evaluation (reads dominate), used by experiment E10.

pub mod blocks;
pub mod load;
pub mod namespace;
pub mod store;

pub use namespace::{FileSystem, FsConfig};
pub use store::{ShardedStore, Tx};

/// Errors from the metadata store and filesystem layers.
#[derive(Debug, Clone, PartialEq)]
pub enum FsError {
    /// Optimistic-concurrency conflict: a read or written key changed
    /// under the transaction. Retry.
    Conflict,
    /// Path component missing.
    NotFound(String),
    /// Tried to create something that exists.
    AlreadyExists(String),
    /// Operation on the wrong kind of inode (e.g. `ls` of a file).
    NotADirectory(String),
    /// Directory not empty on delete.
    NotEmpty(String),
    /// Malformed path.
    BadPath(String),
    /// Block layer failure.
    BlockMissing(u64),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Conflict => write!(f, "transaction conflict; retry"),
            FsError::NotFound(p) => write!(f, "not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
            FsError::BlockMissing(b) => write!(f, "block {b} missing"),
        }
    }
}

impl std::error::Error for FsError {}
