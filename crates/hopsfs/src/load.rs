//! Multi-threaded metadata load generator (experiment E10).
//!
//! Reproduces the shape of the HopsFS evaluation (refs \[9\], \[13\]): a
//! read-dominated industrial op mix driven by many concurrent clients,
//! with throughput reported against the number of store shards. Real
//! threads (one `ee_util::par::fan_out` worker per client) hit the real
//! store; wall-clock time is measured by [`run_load`] itself for the
//! harness tables.

use crate::namespace::{FileSystem, FsConfig};
use crate::FsError;
use ee_util::Rng;

/// Relative weights of the op mix (read-heavy, as in the HopsFS papers).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// `stat` weight.
    pub stat: f64,
    /// Directory listing weight.
    pub list: f64,
    /// Small-file read weight.
    pub read: f64,
    /// File create weight.
    pub create: f64,
    /// File delete weight.
    pub delete: f64,
    /// Rename weight.
    pub rename: f64,
}

impl Default for OpMix {
    fn default() -> Self {
        // Modelled on the Spotify HDFS trace the HopsFS paper replays.
        Self {
            stat: 0.40,
            list: 0.10,
            read: 0.25,
            create: 0.18,
            delete: 0.04,
            rename: 0.03,
        }
    }
}

/// Result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations completed (including retried ones once).
    pub ops: u64,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Transactions that hit the single-shard fast path.
    pub single_shard_commits: u64,
    /// Transactions that needed cross-shard 2PC.
    pub multi_shard_commits: u64,
    /// Optimistic conflicts encountered (internally retried).
    pub conflicts: u64,
}

/// Pre-populate a filesystem: `dirs` directories under `/bench`, each with
/// `files_per_dir` small files. Returns the directory paths.
pub fn populate(fs: &FileSystem, dirs: usize, files_per_dir: usize) -> Vec<String> {
    let mut paths = Vec::with_capacity(dirs);
    for d in 0..dirs {
        let dir = format!("/bench/d{d:04}");
        fs.mkdir_p(&dir).expect("populate mkdir");
        for f in 0..files_per_dir {
            fs.create(&format!("{dir}/f{f:04}"), b"seed-payload")
                .expect("populate create");
        }
        paths.push(dir);
    }
    paths
}

/// Run `threads` clients, each performing `ops_per_thread` operations of
/// the given mix against `fs`. Deterministic per (seed, thread).
pub fn run_load(
    fs: &FileSystem,
    dirs: &[String],
    mix: OpMix,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> LoadReport {
    assert!(!dirs.is_empty());
    let before = fs.store().stats();
    let start = std::time::Instant::now();
    let per_worker_ops: Vec<u64> = ee_util::par::fan_out(threads.max(1), |t| {
        let mut completed = 0u64;
        {
            let mut rng = Rng::seed_from(seed ^ (t as u64).wrapping_mul(0x9E37));
            let weights = [
                mix.stat, mix.list, mix.read, mix.create, mix.delete, mix.rename,
            ];
            // Per-thread private namespace for mutations avoids
            // artificial hot-spots on one directory.
            let own_dir = format!("/bench/t{t:02}");
            fs.mkdir_p(&own_dir).expect("thread dir");
            let mut created: Vec<String> = Vec::new();
            let mut next_file = 0u64;
            for _ in 0..ops_per_thread {
                let dir = &dirs[rng.range(0, dirs.len())];
                match rng.weighted_index(&weights).unwrap_or(0) {
                    0 => {
                        let _ = fs.stat(&format!("{dir}/f0000"));
                    }
                    1 => {
                        let _ = fs.list(dir);
                    }
                    2 => {
                        let _ = fs.read(&format!("{dir}/f0001"));
                    }
                    3 => {
                        let path = format!("{own_dir}/n{next_file}");
                        next_file += 1;
                        if fs.create(&path, b"new-file-payload").is_ok() {
                            created.push(path);
                        }
                    }
                    4 => {
                        if let Some(path) = created.pop() {
                            let _ = fs.delete(&path);
                        } else {
                            let _ = fs.stat(&format!("{dir}/f0002"));
                        }
                    }
                    _ => {
                        if let Some(path) = created.pop() {
                            let to = format!("{own_dir}/r{next_file}");
                            next_file += 1;
                            if fs.rename(&path, &to).is_ok() {
                                created.push(to);
                            }
                        } else {
                            let _ = fs.list(dir);
                        }
                    }
                }
                completed += 1;
            }
        }
        completed
    });
    let wall = start.elapsed().as_secs_f64();
    let after = fs.store().stats();
    let ops: u64 = per_worker_ops.iter().sum();
    LoadReport {
        ops,
        wall_secs: wall,
        ops_per_sec: ops as f64 / wall.max(1e-9),
        single_shard_commits: after.0 - before.0,
        multi_shard_commits: after.1 - before.1,
        conflicts: after.2 - before.2,
    }
}

/// Convenience: build a filesystem with `shards`, populate it, run the
/// default mix, and report. Used by the E10 shard sweep.
pub fn shard_sweep_point(
    shards: usize,
    threads: usize,
    ops_per_thread: u64,
    seed: u64,
) -> LoadReport {
    let fs = FileSystem::new(FsConfig {
        shards,
        ..FsConfig::default()
    });
    let dirs = populate(&fs, 16, 4);
    run_load(&fs, &dirs, OpMix::default(), threads, ops_per_thread, seed)
}

/// Round-trip cost of reading one file of `size` bytes: `(metadata_trips,
/// datanode_trips)`. Small files need metadata only (ref \[17\]).
pub fn read_cost(size: usize, config: FsConfig) -> Result<(u64, u64), FsError> {
    let fs = FileSystem::new(config);
    let payload = vec![7u8; size];
    fs.create("/probe", &payload)?;
    let dn_before = fs.block_store().round_trips();
    let got = fs.read("/probe")?;
    assert_eq!(got.len(), size);
    let dn = fs.block_store().round_trips() - dn_before;
    // Metadata trips for a read: resolve (1 per component) + inode = 2.
    Ok((2, dn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_builds_expected_tree() {
        let fs = FileSystem::new(FsConfig::default());
        let dirs = populate(&fs, 3, 2);
        assert_eq!(dirs.len(), 3);
        assert_eq!(fs.list("/bench").unwrap().len(), 3);
        assert_eq!(fs.list(&dirs[0]).unwrap().len(), 2);
    }

    #[test]
    fn load_run_completes_all_ops() {
        let fs = FileSystem::new(FsConfig::default());
        let dirs = populate(&fs, 4, 4);
        let report = run_load(&fs, &dirs, OpMix::default(), 4, 200, 99);
        assert_eq!(report.ops, 800);
        assert!(report.ops_per_sec > 0.0);
        assert!(report.single_shard_commits > 0);
    }

    #[test]
    fn read_cost_inline_vs_blocks() {
        let config = FsConfig {
            inline_threshold: 1024,
            block_size: 1024,
            ..FsConfig::default()
        };
        let (meta_small, dn_small) = read_cost(512, config).unwrap();
        let (meta_large, dn_large) = read_cost(8 * 1024, config).unwrap();
        assert_eq!(dn_small, 0, "small file served from metadata layer");
        assert_eq!(meta_small, meta_large);
        assert_eq!(dn_large, 8, "one trip per block");
    }

    #[test]
    fn sweep_point_runs() {
        let r = shard_sweep_point(2, 2, 50, 7);
        assert_eq!(r.ops, 100);
        assert_eq!(r.conflicts, 0, "disjoint namespaces should not conflict");
    }
}
