//! The inode/namespace layer over the sharded store.
//!
//! Key design (the heart of HopsFS's scalability, refs \[9\], \[13\]):
//!
//! * `Dirent(parent, name) → child inode id` — partitioned by **parent**;
//! * `Inode(parent, id) → metadata` — *also* partitioned by parent, so a
//!   file's directory entry and inode record live on the same shard.
//!
//! With that layout `create`, `stat`, `read`, `delete` and `list` are
//! single-shard fast-path transactions, while `rename` across directories
//! must move both records to another partition — the cross-shard 2PC slow
//! path the HopsFS papers engineer around. Ancestor path resolution is
//! read-committed (the analogue of HopsFS's path component cache); the
//! final operation target is read transactionally and validated at commit.
//!
//! Small files (≤ `inline_threshold`) keep their payload inside the inode
//! record (ref \[17\]), skipping the block layer entirely.

use crate::blocks::BlockStore;
use crate::store::{ShardedStore, Tx};
use crate::FsError;
use std::sync::atomic::{AtomicU64, Ordering};

/// Namespace keys. Ordering keeps all entries of one directory contiguous
/// so a directory listing is a single range scan.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Key {
    /// Directory entry: (parent inode, child name).
    Dirent(u64, String),
    /// Inode record: (parent inode, inode id).
    Inode(u64, u64),
}

fn mix(x: u64) -> u64 {
    // splitmix64 finaliser as the shard hash.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shard partition function: everything by parent inode id.
pub fn partition(key: &Key) -> u64 {
    match key {
        Key::Dirent(parent, _) | Key::Inode(parent, _) => mix(*parent),
    }
}

/// What an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// A directory.
    Dir,
    /// A regular file.
    File,
}

/// Inode metadata record.
#[derive(Debug, Clone, PartialEq)]
pub struct Inode {
    /// Inode id.
    pub id: u64,
    /// Directory or file.
    pub kind: InodeKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Inline payload for small files.
    pub inline: Option<Vec<u8>>,
    /// Block ids for large files.
    pub blocks: Vec<u64>,
}

/// Store values.
#[derive(Debug, Clone, PartialEq)]
pub enum Meta {
    /// An inode record.
    Inode(Inode),
    /// A directory entry pointing at a child inode.
    Dirent(u64),
}

/// Filesystem tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FsConfig {
    /// Shard count of the metadata store.
    pub shards: usize,
    /// Files at or below this size live inline in the inode (ref \[17\]).
    pub inline_threshold: usize,
    /// Block size of the block layer.
    pub block_size: usize,
    /// Commit retries before surfacing a conflict.
    pub max_retries: usize,
}

impl Default for FsConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            inline_threshold: 64 * 1024,
            block_size: 1 << 20,
            max_retries: 16,
        }
    }
}

/// The filesystem facade.
pub struct FileSystem {
    store: ShardedStore<Key, Meta>,
    blocks: BlockStore,
    next_id: AtomicU64,
    config: FsConfig,
}

/// Root directory inode id (its "parent" is the pseudo-id 0).
pub const ROOT: u64 = 1;

impl FileSystem {
    /// An empty filesystem containing only `/`.
    pub fn new(config: FsConfig) -> Self {
        let store = ShardedStore::new(config.shards, partition);
        let mut tx = store.begin();
        store.put(
            &mut tx,
            Key::Inode(0, ROOT),
            Meta::Inode(Inode {
                id: ROOT,
                kind: InodeKind::Dir,
                size: 0,
                inline: None,
                blocks: Vec::new(),
            }),
        );
        store.commit(tx).expect("empty store cannot conflict");
        Self {
            store,
            blocks: BlockStore::new(config.block_size),
            next_id: AtomicU64::new(ROOT + 1),
            config,
        }
    }

    /// The underlying store (for stats in experiments).
    pub fn store(&self) -> &ShardedStore<Key, Meta> {
        &self.store
    }

    /// The block layer (for stats in experiments).
    pub fn block_store(&self) -> &BlockStore {
        &self.blocks
    }

    fn split(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::BadPath(path.to_string()));
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.iter().any(|c| *c == "." || *c == "..") {
            return Err(FsError::BadPath(path.to_string()));
        }
        Ok(comps)
    }

    /// Read-committed path walk (the path-cache analogue): resolves the
    /// components to `(parent_of_last, id_of_last)`. For the root path
    /// (no components) returns `(0, ROOT)`.
    fn resolve(&self, comps: &[&str]) -> Result<(u64, u64), FsError> {
        let mut parent = 0u64;
        let mut cur = ROOT;
        for comp in comps {
            match self.store.read(&Key::Dirent(cur, comp.to_string())) {
                Some(Meta::Dirent(child)) => {
                    parent = cur;
                    cur = child;
                }
                _ => return Err(FsError::NotFound(comp.to_string())),
            }
        }
        Ok((parent, cur))
    }

    fn read_inode(&self, parent: u64, id: u64) -> Result<Inode, FsError> {
        match self.store.read(&Key::Inode(parent, id)) {
            Some(Meta::Inode(inode)) => Ok(inode),
            _ => Err(FsError::NotFound(format!("inode {id}"))),
        }
    }

    fn inode_tx(&self, tx: &mut Tx<Key, Meta>, parent: u64, id: u64) -> Result<Inode, FsError> {
        match self.store.get(tx, &Key::Inode(parent, id)) {
            Some(Meta::Inode(inode)) => Ok(inode),
            _ => Err(FsError::NotFound(format!("inode {id}"))),
        }
    }

    fn with_retry<T>(&self, mut f: impl FnMut() -> Result<T, FsError>) -> Result<T, FsError> {
        let mut last = FsError::Conflict;
        for _ in 0..self.config.max_retries {
            match f() {
                Err(FsError::Conflict) => last = FsError::Conflict,
                other => return other,
            }
        }
        Err(last)
    }

    /// `mkdir -p`: create the directory and any missing ancestors.
    /// Returns the inode id of the (possibly pre-existing) directory.
    /// Each missing level is its own single-shard transaction.
    pub fn mkdir_p(&self, path: &str) -> Result<u64, FsError> {
        let comps = Self::split(path)?;
        let mut cur = ROOT;
        for comp in &comps {
            match self.store.read(&Key::Dirent(cur, comp.to_string())) {
                Some(Meta::Dirent(child)) => match self.read_inode(cur, child)?.kind {
                    InodeKind::Dir => cur = child,
                    InodeKind::File => return Err(FsError::NotADirectory(comp.to_string())),
                },
                _ => {
                    let parent = cur;
                    cur = self.with_retry(|| {
                        let mut tx = self.store.begin();
                        // Re-check under the transaction (another client may
                        // have created it meanwhile).
                        if let Some(Meta::Dirent(child)) = self
                            .store
                            .get(&mut tx, &Key::Dirent(parent, comp.to_string()))
                        {
                            return Ok(child);
                        }
                        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                        self.store.put(
                            &mut tx,
                            Key::Dirent(parent, comp.to_string()),
                            Meta::Dirent(id),
                        );
                        self.store.put(
                            &mut tx,
                            Key::Inode(parent, id),
                            Meta::Inode(Inode {
                                id,
                                kind: InodeKind::Dir,
                                size: 0,
                                inline: None,
                                blocks: Vec::new(),
                            }),
                        );
                        self.store.commit(tx)?;
                        Ok(id)
                    })?;
                }
            }
        }
        Ok(cur)
    }

    /// Create a file with the given payload. Fails if it exists or the
    /// parent is missing. Small payloads are stored inline. Single-shard.
    pub fn create(&self, path: &str, data: &[u8]) -> Result<u64, FsError> {
        let comps = Self::split(path)?;
        let (name, parents) = comps
            .split_last()
            .ok_or_else(|| FsError::BadPath(path.to_string()))?;
        let (grandparent, parent) = self.resolve(parents)?;
        if self.read_inode(grandparent, parent)?.kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        // Write blocks outside the metadata transaction (as HDFS does);
        // orphan blocks on abort would be garbage-collected in reality.
        let (inline, block_ids, size) = if data.len() <= self.config.inline_threshold {
            (Some(data.to_vec()), Vec::new(), data.len() as u64)
        } else {
            (None, self.blocks.write(data), data.len() as u64)
        };
        self.with_retry(|| {
            let mut tx = self.store.begin();
            let dirent = Key::Dirent(parent, name.to_string());
            if self.store.get(&mut tx, &dirent).is_some() {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            self.store.put(&mut tx, dirent, Meta::Dirent(id));
            self.store.put(
                &mut tx,
                Key::Inode(parent, id),
                Meta::Inode(Inode {
                    id,
                    kind: InodeKind::File,
                    size,
                    inline: inline.clone(),
                    blocks: block_ids.clone(),
                }),
            );
            self.store.commit(tx)?;
            Ok(id)
        })
    }

    /// Stat a path. Single-shard (the target's parent partition).
    pub fn stat(&self, path: &str) -> Result<Inode, FsError> {
        let comps = Self::split(path)?;
        if comps.is_empty() {
            return self.read_inode(0, ROOT);
        }
        let (name, parents) = comps.split_last().expect("non-empty");
        let (_, parent) = self.resolve(parents)?;
        self.with_retry(|| {
            let mut tx = self.store.begin();
            let id = match self
                .store
                .get(&mut tx, &Key::Dirent(parent, name.to_string()))
            {
                Some(Meta::Dirent(id)) => id,
                _ => return Err(FsError::NotFound(path.to_string())),
            };
            let inode = self.inode_tx(&mut tx, parent, id)?;
            self.store.commit(tx)?;
            Ok(inode)
        })
    }

    /// Read a file's full contents.
    pub fn read(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let inode = self.stat(path)?;
        if inode.kind != InodeKind::File {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        match inode.inline {
            Some(data) => Ok(data),
            None => self.blocks.read(&inode.blocks),
        }
    }

    /// List a directory: (name, child inode id), name-ordered. One
    /// partition-pruned range scan.
    pub fn list(&self, path: &str) -> Result<Vec<(String, u64)>, FsError> {
        let comps = Self::split(path)?;
        let (parent, id) = self.resolve(&comps)?;
        let kind = if comps.is_empty() {
            InodeKind::Dir
        } else {
            self.read_inode(parent, id)?.kind
        };
        if kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        let lo = Key::Dirent(id, String::new());
        let hi = Key::Inode(id, 0); // Dirent(id, *) < Inode(id, *) in Key order
        Ok(self
            .store
            .scan_shard(&lo, &hi)
            .into_iter()
            .filter_map(|(k, v)| match (k, v) {
                (Key::Dirent(p, name), Meta::Dirent(child)) if p == id => Some((name, child)),
                _ => None,
            })
            .collect())
    }

    /// Delete a file, or an *empty* directory. Single-shard.
    pub fn delete(&self, path: &str) -> Result<(), FsError> {
        let comps = Self::split(path)?;
        let (name, parents) = comps
            .split_last()
            .ok_or_else(|| FsError::BadPath(path.to_string()))?;
        let (_, parent) = self.resolve(parents)?;
        let freed = self.with_retry(|| {
            let mut tx = self.store.begin();
            let dirent = Key::Dirent(parent, name.to_string());
            let id = match self.store.get(&mut tx, &dirent) {
                Some(Meta::Dirent(id)) => id,
                _ => return Err(FsError::NotFound(path.to_string())),
            };
            let inode = self.inode_tx(&mut tx, parent, id)?;
            if inode.kind == InodeKind::Dir && !self.dir_is_empty(id) {
                return Err(FsError::NotEmpty(path.to_string()));
            }
            self.store.delete(&mut tx, dirent);
            self.store.delete(&mut tx, Key::Inode(parent, id));
            self.store.commit(tx)?;
            Ok(inode.blocks)
        })?;
        self.blocks.free(&freed);
        Ok(())
    }

    fn dir_is_empty(&self, id: u64) -> bool {
        let lo = Key::Dirent(id, String::new());
        let hi = Key::Inode(id, 0);
        self.store.scan_shard(&lo, &hi).is_empty()
    }

    /// Rename a file or empty-or-not directory. Moving between different
    /// parent directories relocates both the dirent and the inode record
    /// to another partition — the cross-shard 2PC slow path.
    pub fn rename(&self, from: &str, to: &str) -> Result<(), FsError> {
        let fc = Self::split(from)?;
        let tc = Self::split(to)?;
        let (fname, fparents) = fc
            .split_last()
            .ok_or_else(|| FsError::BadPath(from.to_string()))?;
        let (tname, tparents) = tc
            .split_last()
            .ok_or_else(|| FsError::BadPath(to.to_string()))?;
        let (_, fparent) = self.resolve(fparents)?;
        let (tgrand, tparent) = self.resolve(tparents)?;
        if self.read_inode(tgrand, tparent)?.kind != InodeKind::Dir {
            return Err(FsError::NotADirectory(to.to_string()));
        }
        self.with_retry(|| {
            let mut tx = self.store.begin();
            let fkey = Key::Dirent(fparent, fname.to_string());
            let id = match self.store.get(&mut tx, &fkey) {
                Some(Meta::Dirent(id)) => id,
                _ => return Err(FsError::NotFound(from.to_string())),
            };
            let inode = self.inode_tx(&mut tx, fparent, id)?;
            let tkey = Key::Dirent(tparent, tname.to_string());
            if self.store.get(&mut tx, &tkey).is_some() {
                return Err(FsError::AlreadyExists(to.to_string()));
            }
            self.store.delete(&mut tx, fkey);
            self.store.delete(&mut tx, Key::Inode(fparent, id));
            self.store.put(&mut tx, tkey, Meta::Dirent(id));
            self.store
                .put(&mut tx, Key::Inode(tparent, id), Meta::Inode(inode));
            self.store.commit(tx)?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FileSystem {
        FileSystem::new(FsConfig {
            shards: 4,
            inline_threshold: 16,
            block_size: 8,
            max_retries: 8,
        })
    }

    #[test]
    fn mkdir_p_builds_hierarchy() {
        let fs = fs();
        let id = fs.mkdir_p("/a/b/c").unwrap();
        assert!(id > ROOT);
        let again = fs.mkdir_p("/a/b/c").unwrap();
        assert_eq!(id, again, "idempotent");
        assert_eq!(fs.stat("/a/b").unwrap().kind, InodeKind::Dir);
    }

    #[test]
    fn create_and_read_small_file_is_inline() {
        let fs = fs();
        fs.mkdir_p("/data").unwrap();
        fs.create("/data/tiny", b"hello").unwrap();
        let inode = fs.stat("/data/tiny").unwrap();
        assert!(inode.inline.is_some(), "≤ threshold stays inline");
        assert!(inode.blocks.is_empty());
        assert_eq!(fs.read("/data/tiny").unwrap(), b"hello");
        assert_eq!(fs.block_store().round_trips(), 0, "no datanode involved");
    }

    #[test]
    fn create_and_read_large_file_uses_blocks() {
        let fs = fs();
        fs.mkdir_p("/data").unwrap();
        let payload: Vec<u8> = (0..100).map(|i| i as u8).collect();
        fs.create("/data/big", &payload).unwrap();
        let inode = fs.stat("/data/big").unwrap();
        assert!(inode.inline.is_none());
        assert_eq!(inode.blocks.len(), 100usize.div_ceil(8));
        assert_eq!(fs.read("/data/big").unwrap(), payload);
        assert!(fs.block_store().round_trips() > 0);
    }

    #[test]
    fn fast_path_ops_are_single_shard() {
        let fs = fs();
        fs.mkdir_p("/d").unwrap();
        let before = fs.store().stats();
        fs.create("/d/f", b"x").unwrap();
        fs.stat("/d/f").unwrap();
        fs.read("/d/f").unwrap();
        fs.delete("/d/f").unwrap();
        let after = fs.store().stats();
        assert!(
            after.0 - before.0 >= 4,
            "create/stat/read/delete all fast path"
        );
        assert_eq!(after.1, before.1, "no cross-shard commits");
    }

    #[test]
    fn create_requires_parent() {
        let fs = fs();
        assert!(matches!(
            fs.create("/nope/x", b""),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = fs();
        fs.create("/f", b"1").unwrap();
        assert!(matches!(
            fs.create("/f", b"2"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn list_directory_sorted() {
        let fs = fs();
        fs.mkdir_p("/d").unwrap();
        for name in ["zeta", "alpha", "mid"] {
            fs.create(&format!("/d/{name}"), b"x").unwrap();
        }
        let names: Vec<String> = fs.list("/d").unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert!(matches!(
            fs.list("/d/alpha"),
            Err(FsError::NotADirectory(_))
        ));
        assert_eq!(fs.list("/").unwrap().len(), 1, "root listing works");
    }

    #[test]
    fn delete_file_and_empty_dir() {
        let fs = fs();
        fs.mkdir_p("/d").unwrap();
        fs.create("/d/f", &[0u8; 100]).unwrap();
        assert!(matches!(fs.delete("/d"), Err(FsError::NotEmpty(_))));
        fs.delete("/d/f").unwrap();
        assert!(fs.block_store().is_empty(), "blocks freed");
        fs.delete("/d").unwrap();
        assert!(matches!(fs.stat("/d"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn rename_across_directories_is_cross_shard() {
        let fs = fs();
        fs.mkdir_p("/a").unwrap();
        fs.mkdir_p("/b").unwrap();
        fs.create("/a/f", b"payload").unwrap();
        let before = fs.store().stats();
        fs.rename("/a/f", "/b/g").unwrap();
        let after = fs.store().stats();
        assert!(matches!(fs.stat("/a/f"), Err(FsError::NotFound(_))));
        assert_eq!(fs.read("/b/g").unwrap(), b"payload");
        // /a and /b have different parent partitions (with high probability
        // under the splitmix hash and 4 shards; these fixed ids do differ).
        assert!(
            after.1 > before.1 || after.0 > before.0,
            "rename committed somewhere"
        );
        // Rename onto an existing name fails.
        fs.create("/a/f", b"2").unwrap();
        assert!(matches!(
            fs.rename("/a/f", "/b/g"),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn renamed_file_remains_readable_after_parent_moves() {
        let fs = fs();
        fs.mkdir_p("/x").unwrap();
        fs.mkdir_p("/y").unwrap();
        let big: Vec<u8> = (0..50).collect();
        fs.create("/x/big", &big).unwrap();
        fs.rename("/x/big", "/y/big").unwrap();
        assert_eq!(
            fs.read("/y/big").unwrap(),
            big,
            "inode record moved with dirent"
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let fs = fs();
        for bad in ["relative", "/a/../b", "/a/./b", ""] {
            assert!(
                matches!(fs.mkdir_p(bad), Err(FsError::BadPath(_))),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn mkdir_over_file_fails() {
        let fs = fs();
        fs.create("/f", b"x").unwrap();
        assert!(matches!(
            fs.mkdir_p("/f/sub"),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn stat_root() {
        let fs = fs();
        let r = fs.stat("/").unwrap();
        assert_eq!(r.id, ROOT);
        assert_eq!(r.kind, InodeKind::Dir);
    }

    #[test]
    fn concurrent_creates_in_one_directory() {
        use std::sync::Arc;
        let fs = Arc::new(fs());
        fs.mkdir_p("/shared").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let fs = Arc::clone(&fs);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        fs.create(&format!("/shared/f{t}_{i}"), b"x").unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fs.list("/shared").unwrap().len(), 400);
    }

    #[test]
    fn concurrent_mkdir_same_path_converges() {
        use std::sync::Arc;
        let fs = Arc::new(fs());
        let ids: Vec<u64> = {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let fs = Arc::clone(&fs);
                    std::thread::spawn(move || fs.mkdir_p("/race/deep/path").unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "all threads agree: {ids:?}"
        );
    }
}
