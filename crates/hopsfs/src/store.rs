//! A sharded key-value store with optimistic transactions and two-phase
//! commit across shards — the "NewSQL database" under the namespace layer.
//!
//! Concurrency model (NDB-inspired, simplified):
//!
//! * Each shard is a `BTreeMap` of `key → (version, Option<value>)` behind
//!   its own mutex. Deletions leave versioned tombstones so optimistic
//!   validation never suffers ABA on delete/re-insert.
//! * A transaction buffers reads (with the version observed) and writes.
//! * Commit locks the participating shards in ascending shard order (a
//!   global order, so commits cannot deadlock), validates every read
//!   version, then applies the writes. One participating shard is the
//!   *fast path* (HopsFS's partition-pruned transactions); several shards
//!   are the 2PC slow path, and the store counts both so experiments can
//!   report the ratio.
//! * Scans are read-committed snapshots of one shard (directory listings
//!   are partitioned so a scan never crosses shards).

use std::sync::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::FsError;

/// Versioned cell: tombstones (`None`) keep their version to preserve
/// optimistic validation across delete/re-insert cycles.
type Cell<V> = (u64, Option<V>);

struct Shard<K, V> {
    data: BTreeMap<K, Cell<V>>,
}

/// The sharded store. `K` must order (for scans) and hash via the caller's
/// partition function; `V` is cloned out on read.
pub struct ShardedStore<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    partition: fn(&K) -> u64,
    single_shard_commits: AtomicU64,
    multi_shard_commits: AtomicU64,
    conflicts: AtomicU64,
}

/// A buffered transaction. Obtain with [`ShardedStore::begin`], finish
/// with [`ShardedStore::commit`].
pub struct Tx<K, V> {
    reads: Vec<(K, u64)>,
    writes: BTreeMap<K, Option<V>>,
}

impl<K, V> Default for Tx<K, V> {
    fn default() -> Self {
        Self {
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Clone, V: Clone> ShardedStore<K, V> {
    /// Create a store with `num_shards` shards and a partition function
    /// mapping keys to shards (`partition(k) % num_shards`).
    pub fn new(num_shards: usize, partition: fn(&K) -> u64) -> Self {
        assert!(num_shards > 0, "store needs at least one shard");
        Self {
            shards: (0..num_shards)
                .map(|_| {
                    Mutex::new(Shard {
                        data: BTreeMap::new(),
                    })
                })
                .collect(),
            partition,
            single_shard_commits: AtomicU64::new(0),
            multi_shard_commits: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &K) -> usize {
        ((self.partition)(key) % self.shards.len() as u64) as usize
    }

    /// Start a transaction.
    pub fn begin(&self) -> Tx<K, V> {
        Tx::default()
    }

    /// Transactional read: sees the transaction's own writes, otherwise
    /// the committed state (recording the version for validation).
    pub fn get(&self, tx: &mut Tx<K, V>, key: &K) -> Option<V> {
        if let Some(buffered) = tx.writes.get(key) {
            return buffered.clone();
        }
        let shard = self.shards[self.shard_of(key)].lock().expect("shard mutex poisoned");
        match shard.data.get(key) {
            Some((version, value)) => {
                tx.reads.push((key.clone(), *version));
                value.clone()
            }
            None => {
                tx.reads.push((key.clone(), 0));
                None
            }
        }
    }

    /// Buffer a write.
    pub fn put(&self, tx: &mut Tx<K, V>, key: K, value: V) {
        tx.writes.insert(key, Some(value));
    }

    /// Buffer a delete.
    pub fn delete(&self, tx: &mut Tx<K, V>, key: K) {
        tx.writes.insert(key, None);
    }

    /// Commit: validate all reads, apply all writes, atomically across the
    /// participating shards. Returns the number of participating shards.
    pub fn commit(&self, tx: Tx<K, V>) -> Result<usize, FsError> {
        // Collect participating shard indices in ascending order.
        let mut shard_ids: Vec<usize> = tx
            .reads
            .iter()
            .map(|(k, _)| self.shard_of(k))
            .chain(tx.writes.keys().map(|k| self.shard_of(k)))
            .collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        if shard_ids.is_empty() {
            return Ok(0); // read-nothing, write-nothing
        }
        // Phase 1: lock in global order (deadlock-free), validate reads.
        let mut guards: Vec<_> = Vec::with_capacity(shard_ids.len());
        for &sid in &shard_ids {
            guards.push((sid, self.shards[sid].lock().expect("shard mutex poisoned")));
        }
        let guard_of =
            |sid: usize, guards: &mut [(usize, std::sync::MutexGuard<Shard<K, V>>)]| {
                guards
                    .iter_mut()
                    .position(|(s, _)| *s == sid)
                    .expect("shard locked")
            };
        for (key, seen_version) in &tx.reads {
            // A key both read and later written validates against the read
            // version as usual.
            let sid = self.shard_of(key);
            let gi = guard_of(sid, &mut guards);
            let current = guards[gi].1.data.get(key).map(|(v, _)| *v).unwrap_or(0);
            if current != *seen_version {
                self.conflicts.fetch_add(1, Ordering::Relaxed);
                return Err(FsError::Conflict);
            }
        }
        // Phase 2: apply writes with version bump.
        for (key, value) in tx.writes {
            let sid = self.shard_of(&key);
            let gi = guard_of(sid, &mut guards);
            let entry = guards[gi].1.data.entry(key).or_insert((0, None));
            entry.0 += 1;
            entry.1 = value;
        }
        let n = shard_ids.len();
        if n == 1 {
            self.single_shard_commits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.multi_shard_commits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(n)
    }

    /// Read-committed point read outside any transaction.
    pub fn read(&self, key: &K) -> Option<V> {
        let shard = self.shards[self.shard_of(key)].lock().expect("shard mutex poisoned");
        shard.data.get(key).and_then(|(_, v)| v.clone())
    }

    /// Read-committed scan of `[lo, hi)` **within the shard of `lo`**.
    /// The caller's key design must keep the range on one shard (directory
    /// entries partitioned by parent id do).
    pub fn scan_shard(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let shard = self.shards[self.shard_of(lo)].lock().expect("shard mutex poisoned");
        shard
            .data
            .range(lo.clone()..hi.clone())
            .filter_map(|(k, (_, v))| v.clone().map(|v| (k.clone(), v)))
            .collect()
    }

    /// (single-shard commits, multi-shard commits, conflicts) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.single_shard_commits.load(Ordering::Relaxed),
            self.multi_shard_commits.load(Ordering::Relaxed),
            self.conflicts.load(Ordering::Relaxed),
        )
    }

    /// Total live (non-tombstone) keys; O(total), for tests and reports.
    pub fn live_keys(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard mutex poisoned").data.values().filter(|(_, v)| v.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(shards: usize) -> ShardedStore<u64, String> {
        ShardedStore::new(shards, |k| *k)
    }

    #[test]
    fn put_get_roundtrip() {
        let s = store(4);
        let mut tx = s.begin();
        s.put(&mut tx, 1, "a".into());
        s.put(&mut tx, 2, "b".into());
        s.commit(tx).unwrap();
        assert_eq!(s.read(&1), Some("a".into()));
        assert_eq!(s.read(&2), Some("b".into()));
        assert_eq!(s.read(&3), None);
        assert_eq!(s.live_keys(), 2);
    }

    #[test]
    fn tx_sees_own_writes() {
        let s = store(2);
        let mut tx = s.begin();
        s.put(&mut tx, 7, "x".into());
        assert_eq!(s.get(&mut tx, &7), Some("x".into()));
        s.delete(&mut tx, 7);
        assert_eq!(s.get(&mut tx, &7), None);
    }

    #[test]
    fn single_vs_multi_shard_commit_counted() {
        let s = store(4);
        let mut tx = s.begin();
        s.put(&mut tx, 0, "a".into()); // shard 0
        assert_eq!(s.commit(tx).unwrap(), 1);
        let mut tx = s.begin();
        s.put(&mut tx, 0, "b".into()); // shard 0
        s.put(&mut tx, 1, "c".into()); // shard 1
        assert_eq!(s.commit(tx).unwrap(), 2);
        let (single, multi, _) = s.stats();
        assert_eq!((single, multi), (1, 1));
    }

    #[test]
    fn write_write_conflict_detected() {
        let s = store(2);
        let mut t0 = s.begin();
        s.put(&mut t0, 5, "v0".into());
        s.commit(t0).unwrap();

        // Two racers read the same version...
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        assert_eq!(s.get(&mut t1, &5), Some("v0".into()));
        assert_eq!(s.get(&mut t2, &5), Some("v0".into()));
        s.put(&mut t1, 5, "v1".into());
        s.put(&mut t2, 5, "v2".into());
        // ...first commit wins, second aborts.
        assert!(s.commit(t1).is_ok());
        assert_eq!(s.commit(t2), Err(FsError::Conflict));
        let (_, _, conflicts) = s.stats();
        assert_eq!(conflicts, 1);
        assert_eq!(s.read(&5), Some("v1".into()));
    }

    #[test]
    fn read_only_tx_validates() {
        let s = store(2);
        let mut seed = s.begin();
        s.put(&mut seed, 9, "a".into());
        s.commit(seed).unwrap();

        let mut reader = s.begin();
        assert_eq!(s.get(&mut reader, &9), Some("a".into()));
        // Concurrent writer bumps the version.
        let mut writer = s.begin();
        s.put(&mut writer, 9, "b".into());
        s.commit(writer).unwrap();
        assert_eq!(s.commit(reader), Err(FsError::Conflict));
    }

    #[test]
    fn absent_key_read_is_validated() {
        // Phantom-insert on a key the tx read as absent must abort it.
        let s = store(2);
        let mut t1 = s.begin();
        assert_eq!(s.get(&mut t1, &42), None);
        s.put(&mut t1, 43, "y".into());
        let mut t2 = s.begin();
        s.put(&mut t2, 42, "x".into());
        s.commit(t2).unwrap();
        assert_eq!(s.commit(t1), Err(FsError::Conflict));
    }

    #[test]
    fn delete_reinsert_keeps_version_monotonic() {
        let s = store(1);
        let mut t = s.begin();
        s.put(&mut t, 1, "a".into());
        s.commit(t).unwrap(); // version 1
                              // Reader observes version 1.
        let mut reader = s.begin();
        assert_eq!(s.get(&mut reader, &1), Some("a".into()));
        // Delete and re-insert elsewhere.
        let mut t = s.begin();
        s.delete(&mut t, 1);
        s.commit(t).unwrap(); // version 2 (tombstone)
        let mut t = s.begin();
        s.put(&mut t, 1, "a".into());
        s.commit(t).unwrap(); // version 3 — same value, higher version
                              // Reader must still fail: no ABA.
        assert_eq!(s.commit(reader), Err(FsError::Conflict));
    }

    #[test]
    fn scan_shard_range() {
        // All keys on one shard (single-shard store).
        let s = store(1);
        let mut t = s.begin();
        for k in [10u64, 11, 12, 20, 21] {
            s.put(&mut t, k, format!("v{k}"));
        }
        s.delete(&mut t, 11); // tombstone before it ever existed: no-op write
        s.commit(t).unwrap();
        let got = s.scan_shard(&10, &13);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12]);
    }

    #[test]
    fn empty_commit_is_ok() {
        let s = store(4);
        let tx = s.begin();
        assert_eq!(s.commit(tx).unwrap(), 0);
    }

    #[test]
    fn concurrent_commits_do_not_deadlock() {
        use std::sync::Arc;
        let s = Arc::new(store(8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut committed = 0;
                    for i in 0..200u64 {
                        // Touch two shards in "random" order to stress ordering.
                        let a = (t * 37 + i) % 64;
                        let b = (t * 91 + i * 3) % 64;
                        let mut tx = s.begin();
                        s.put(&mut tx, a, format!("{t}-{i}"));
                        s.put(&mut tx, b, format!("{t}-{i}b"));
                        if s.commit(tx).is_ok() {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        let total: u64 = threads.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 8 * 200, "blind writes never conflict");
    }
}
