//! Concurrency stress tests for the metadata store and namespace.

use ee_hopsfs::{FileSystem, FsConfig};
use std::sync::Arc;

fn fs(shards: usize) -> Arc<FileSystem> {
    Arc::new(FileSystem::new(FsConfig {
        shards,
        inline_threshold: 64,
        block_size: 32,
        max_retries: 32,
    }))
}

#[test]
fn concurrent_mixed_operations_preserve_invariants() {
    let fs = fs(8);
    fs.mkdir_p("/work").unwrap();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || {
                let dir = format!("/work/t{t}");
                fs.mkdir_p(&dir).unwrap();
                for i in 0..60 {
                    let path = format!("{dir}/f{i}");
                    fs.create(&path, format!("payload-{t}-{i}").as_bytes())
                        .unwrap();
                    // Every third file is renamed, every fifth deleted.
                    if i % 3 == 0 {
                        fs.rename(&path, &format!("{dir}/r{i}")).unwrap();
                    }
                    if i % 5 == 0 && i % 3 != 0 {
                        fs.delete(&path).unwrap();
                    }
                }
                // The thread's own view must be consistent.
                let listing = fs.list(&dir).unwrap();
                for (name, _) in &listing {
                    let full = format!("{dir}/{name}");
                    let data = fs.read(&full).unwrap();
                    assert!(data.starts_with(format!("payload-{t}-").as_bytes()));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Global invariants: 4 thread dirs; per-dir counts match the op mix.
    assert_eq!(fs.list("/work").unwrap().len(), 4);
    for t in 0..4 {
        let listing = fs.list(&format!("/work/t{t}")).unwrap();
        // 60 created, 8 deleted (i % 5 == 0 && i % 3 != 0 → 5,10,20,25,35,40,50,55).
        assert_eq!(listing.len(), 52, "thread {t}: {listing:?}");
    }
    // No conflicts should have leaked as user-visible failures, and block
    // accounting must match live large files (every payload here is inline).
    assert!(fs.block_store().is_empty());
}

#[test]
fn rename_storm_between_two_directories_loses_nothing() {
    let fs = fs(4);
    fs.mkdir_p("/a").unwrap();
    fs.mkdir_p("/b").unwrap();
    for i in 0..40 {
        fs.create(&format!("/a/f{i}"), b"x").unwrap();
    }
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || {
                // Each thread owns a disjoint slice of files.
                for i in (t..40).step_by(4) {
                    fs.rename(&format!("/a/f{i}"), &format!("/b/g{i}")).unwrap();
                    fs.rename(&format!("/b/g{i}"), &format!("/a/f{i}")).unwrap();
                    fs.rename(&format!("/a/f{i}"), &format!("/b/h{i}")).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(fs.list("/a").unwrap().len(), 0);
    let b = fs.list("/b").unwrap();
    assert_eq!(b.len(), 40);
    for (name, _) in &b {
        assert!(name.starts_with('h'));
    }
}

#[test]
fn contended_creates_on_same_name_yield_exactly_one_winner() {
    let fs = fs(2);
    fs.mkdir_p("/race").unwrap();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || {
                fs.create("/race/target", format!("w{t}").as_bytes())
                    .is_ok()
            })
        })
        .collect();
    let winners = threads
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|&ok| ok)
        .count();
    assert_eq!(winners, 1, "exactly one create must win");
    assert_eq!(fs.list("/race").unwrap().len(), 1);
}
