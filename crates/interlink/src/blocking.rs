//! Equigrid blocking: entities → grid cells → candidate pairs.

use crate::entity::SpatialEntity;
use ee_geo::grid::Grid;
use ee_geo::Envelope;

/// Block assignments for one dataset: `blocks[cell] = entity indexes`.
#[derive(Debug, Clone)]
pub struct Blocks {
    /// Per-cell entity index lists (indexes into the input slice).
    pub cells: Vec<Vec<u32>>,
    /// The grid used.
    pub grid: Grid,
}

/// Compute the common extent of two datasets, padded by `slack`.
pub fn common_extent(a: &[SpatialEntity], b: &[SpatialEntity], slack: f64) -> Envelope {
    let mut env = Envelope::empty();
    for e in a.iter().chain(b) {
        env = env.union(&e.geometry.envelope());
    }
    if env.is_empty() {
        return env;
    }
    Envelope::new(
        env.min_x - slack - 1e-9,
        env.min_y - slack - 1e-9,
        env.max_x + slack + 1e-9,
        env.max_y + slack + 1e-9,
    )
}

/// Assign entities to the grid cells their (slack-padded) envelope
/// overlaps.
pub fn assign(entities: &[SpatialEntity], grid: &Grid, slack: f64) -> Blocks {
    let mut cells = vec![Vec::new(); grid.num_cells()];
    for (i, e) in entities.iter().enumerate() {
        let env = e.geometry.envelope();
        let padded = Envelope::new(
            env.min_x - slack,
            env.min_y - slack,
            env.max_x + slack,
            env.max_y + slack,
        );
        for cell in grid.overlapping_indices(&padded) {
            cells[cell].push(i as u32);
        }
    }
    Blocks {
        cells,
        grid: grid.clone(),
    }
}

/// Candidate (source, target) index pairs: pairs co-occurring in at least
/// one cell, deduplicated, each annotated with its co-occurrence count
/// (the CBS weight used by meta-blocking).
pub fn candidates(source: &Blocks, target: &Blocks) -> Vec<(u32, u32, u32)> {
    use std::collections::HashMap;
    debug_assert_eq!(source.cells.len(), target.cells.len());
    let mut weights: HashMap<(u32, u32), u32> = HashMap::new();
    for (s_cell, t_cell) in source.cells.iter().zip(&target.cells) {
        for &si in s_cell {
            for &ti in t_cell {
                *weights.entry((si, ti)).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<(u32, u32, u32)> = weights
        .into_iter()
        .map(|((s, t), w)| (s, t, w))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_geo::{Point, Polygon};

    fn pt(id: u64, x: f64, y: f64) -> SpatialEntity {
        SpatialEntity::new(id, Point::new(x, y).into())
    }

    #[test]
    fn extent_covers_both_sets() {
        let a = vec![pt(1, 0.0, 0.0)];
        let b = vec![pt(2, 10.0, 5.0)];
        let env = common_extent(&a, &b, 0.0);
        assert!(env.contains_point(&Point::new(0.0, 0.0)));
        assert!(env.contains_point(&Point::new(10.0, 5.0)));
        let padded = common_extent(&a, &b, 2.0);
        assert!(padded.contains_point(&Point::new(-1.9, -1.9)));
    }

    #[test]
    fn assignment_is_local() {
        let grid = Grid::new(Envelope::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        let ents = vec![pt(1, 0.5, 0.5), pt(2, 9.5, 9.5)];
        let blocks = assign(&ents, &grid, 0.0);
        let non_empty: Vec<usize> = blocks
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(non_empty.len(), 2);
    }

    #[test]
    fn large_geometry_spans_cells() {
        let grid = Grid::new(Envelope::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        let big = SpatialEntity::new(1, Polygon::rectangle(0.0, 0.0, 3.0, 3.0).into());
        let blocks = assign(&[big], &grid, 0.0);
        let count = blocks.cells.iter().filter(|c| !c.is_empty()).count();
        assert!(count >= 9, "3x3 world units over 1x1 cells: {count} cells");
    }

    #[test]
    fn slack_expands_assignment() {
        let grid = Grid::new(Envelope::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        let e = vec![pt(1, 5.5, 5.5)];
        let tight = assign(&e, &grid, 0.0);
        let slacked = assign(&e, &grid, 1.0);
        let n_tight = tight.cells.iter().filter(|c| !c.is_empty()).count();
        let n_slack = slacked.cells.iter().filter(|c| !c.is_empty()).count();
        assert!(n_slack > n_tight);
    }

    #[test]
    fn candidates_only_from_shared_cells() {
        let grid = Grid::new(Envelope::new(0.0, 0.0, 10.0, 10.0), 10, 10);
        let src = vec![pt(1, 0.5, 0.5), pt(2, 9.5, 9.5)];
        let tgt = vec![pt(1, 0.6, 0.6), pt(2, 5.0, 5.0)];
        let sb = assign(&src, &grid, 0.0);
        let tb = assign(&tgt, &grid, 0.0);
        let cands = candidates(&sb, &tb);
        assert_eq!(cands, vec![(0, 0, 1)], "only the co-located pair");
    }

    #[test]
    fn cbs_weight_counts_shared_cells() {
        let grid = Grid::new(Envelope::new(0.0, 0.0, 4.0, 4.0), 2, 2);
        // Both cover the whole grid → share 4 cells.
        let src = vec![SpatialEntity::new(1, Polygon::rectangle(0.0, 0.0, 4.0, 4.0).into())];
        let tgt = vec![SpatialEntity::new(2, Polygon::rectangle(0.0, 0.0, 4.0, 4.0).into())];
        let cands = candidates(&assign(&src, &grid, 0.0), &assign(&tgt, &grid, 0.0));
        assert_eq!(cands, vec![(0, 0, 4)]);
    }
}
