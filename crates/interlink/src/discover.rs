//! The end-to-end link-discovery driver.

use crate::blocking;
use crate::entity::{LinkRule, SpatialEntity};
use crate::meta::{prune, Pruning};
use crate::LinkError;
use ee_geo::grid::Grid;

/// Configuration of a discovery run.
#[derive(Debug, Clone, Copy)]
pub struct DiscoverConfig {
    /// Grid cells per axis for blocking.
    pub grid_cells: usize,
    /// Worker threads for verification.
    pub threads: usize,
    /// Meta-blocking pruning scheme.
    pub pruning: Pruning,
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        Self {
            grid_cells: 64,
            threads: 1,
            pruning: Pruning::WeightedEdge,
        }
    }
}

/// Outcome of a discovery run.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Discovered links as (source id, target id).
    pub links: Vec<(u64, u64)>,
    /// Candidate pairs before pruning.
    pub candidates_before: usize,
    /// Candidate pairs actually verified.
    pub comparisons: usize,
    /// The exhaustive comparison count (|source| × |target|).
    pub exhaustive_comparisons: usize,
}

impl LinkReport {
    /// Fraction of the all-pairs work avoided.
    pub fn savings(&self) -> f64 {
        if self.exhaustive_comparisons == 0 {
            return 0.0;
        }
        1.0 - self.comparisons as f64 / self.exhaustive_comparisons as f64
    }

    /// Recall against a reference link set.
    pub fn recall_against(&self, truth: &[(u64, u64)]) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let set: std::collections::HashSet<(u64, u64)> = self.links.iter().copied().collect();
        truth.iter().filter(|l| set.contains(l)).count() as f64 / truth.len() as f64
    }
}

/// Exhaustive all-pairs discovery (the baseline).
pub fn exhaustive(
    source: &[SpatialEntity],
    target: &[SpatialEntity],
    rule: LinkRule,
) -> LinkReport {
    let mut links = Vec::new();
    for s in source {
        for t in target {
            if rule.verify(s, t) {
                links.push((s.id, t.id));
            }
        }
    }
    let n = source.len() * target.len();
    LinkReport {
        links,
        candidates_before: n,
        comparisons: n,
        exhaustive_comparisons: n,
    }
}

/// Blocked (and optionally meta-blocked) multi-core discovery.
pub fn discover(
    source: &[SpatialEntity],
    target: &[SpatialEntity],
    rule: LinkRule,
    config: DiscoverConfig,
) -> Result<LinkReport, LinkError> {
    if config.grid_cells == 0 || config.threads == 0 {
        return Err(LinkError::Config("grid_cells and threads must be > 0".into()));
    }
    let exhaustive_comparisons = source.len() * target.len();
    if source.is_empty() || target.is_empty() {
        return Ok(LinkReport {
            links: Vec::new(),
            candidates_before: 0,
            comparisons: 0,
            exhaustive_comparisons,
        });
    }
    let slack = rule.blocking_slack();
    let extent = blocking::common_extent(source, target, slack);
    let grid = Grid::new(extent, config.grid_cells, config.grid_cells);
    let source_blocks = blocking::assign(source, &grid, slack);
    let target_blocks = blocking::assign(target, &grid, 0.0);
    let weighted = blocking::candidates(&source_blocks, &target_blocks);
    let candidates_before = weighted.len();
    // Jaccard-normalise the CBS weights: shared / (|cells(s)| + |cells(t)| - shared).
    let mut s_cells = vec![0u32; source.len()];
    for cell in &source_blocks.cells {
        for &i in cell {
            s_cells[i as usize] += 1;
        }
    }
    let mut t_cells = vec![0u32; target.len()];
    for cell in &target_blocks.cells {
        for &i in cell {
            t_cells[i as usize] += 1;
        }
    }
    let weighted: Vec<(u32, u32, f64)> = weighted
        .into_iter()
        .map(|(si, ti, shared)| {
            let union = s_cells[si as usize] + t_cells[ti as usize] - shared;
            (si, ti, shared as f64 / union.max(1) as f64)
        })
        .collect();
    let pruned = prune(weighted, config.pruning);
    let comparisons = pruned.len();

    // Verify on `threads` workers, chunked contiguously; per-chunk
    // results concatenate in chunk order, so the final (sorted) link set
    // is identical for any thread count.
    let results: Vec<Vec<(u64, u64)>> =
        ee_util::par::map_chunks(&pruned, config.threads, |_, chunk| {
            verify_chunk(chunk, source, target, rule)
        });
    let mut links: Vec<(u64, u64)> = results.into_iter().flatten().collect();
    links.sort_unstable();
    Ok(LinkReport {
        links,
        candidates_before,
        comparisons,
        exhaustive_comparisons,
    })
}

fn verify_chunk(
    pairs: &[(u32, u32, f64)],
    source: &[SpatialEntity],
    target: &[SpatialEntity],
    rule: LinkRule,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for &(si, ti, _) in pairs {
        let s = &source[si as usize];
        let t = &target[ti as usize];
        if rule.verify(s, t) {
            out.push((s.id, t.id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::SpatialRelation;
    use ee_geo::{Point, Polygon};
    use ee_util::Rng;

    /// Random rectangles in [0,100)²; source ids 0.., target ids 1000..
    fn random_sets(n: usize, seed: u64) -> (Vec<SpatialEntity>, Vec<SpatialEntity>) {
        let mut rng = Rng::seed_from(seed);
        let mk = |base: u64, i: usize, rng: &mut Rng| {
            let x = rng.range_f64(0.0, 97.0);
            let y = rng.range_f64(0.0, 97.0);
            let w = rng.range_f64(0.2, 3.0);
            let h = rng.range_f64(0.2, 3.0);
            SpatialEntity::new(base + i as u64, Polygon::rectangle(x, y, x + w, y + h).into())
        };
        let source = (0..n).map(|i| mk(0, i, &mut rng)).collect();
        let target = (0..n).map(|i| mk(1000, i, &mut rng)).collect();
        (source, target)
    }

    #[test]
    fn blocked_matches_exhaustive_without_pruning() {
        let (src, tgt) = random_sets(150, 3);
        let rule = LinkRule::spatial(SpatialRelation::Intersects);
        let truth = exhaustive(&src, &tgt, rule);
        let blocked = discover(
            &src,
            &tgt,
            rule,
            DiscoverConfig {
                grid_cells: 32,
                threads: 1,
                pruning: Pruning::None,
            },
        )
        .unwrap();
        let mut t = truth.links.clone();
        t.sort_unstable();
        assert_eq!(blocked.links, t, "blocking alone must be lossless");
        assert!(
            blocked.comparisons < truth.exhaustive_comparisons / 10,
            "{} vs {}",
            blocked.comparisons,
            truth.exhaustive_comparisons
        );
    }

    #[test]
    fn near_within_rule_is_lossless_with_slack() {
        let (src, tgt) = random_sets(100, 4);
        let rule = LinkRule::spatial(SpatialRelation::NearWithin(2.0));
        let truth = exhaustive(&src, &tgt, rule);
        let blocked = discover(
            &src,
            &tgt,
            rule,
            DiscoverConfig {
                grid_cells: 24,
                threads: 2,
                pruning: Pruning::None,
            },
        )
        .unwrap();
        let mut t = truth.links.clone();
        t.sort_unstable();
        assert_eq!(blocked.links, t);
    }

    #[test]
    fn meta_blocking_trades_recall_for_comparisons() {
        let (src, tgt) = random_sets(200, 5);
        let rule = LinkRule::spatial(SpatialRelation::Intersects);
        let truth = exhaustive(&src, &tgt, rule);
        // Finer grids give true matches more shared blocks, which is what
        // the CBS weighting rewards.
        let plain = discover(
            &src,
            &tgt,
            rule,
            DiscoverConfig {
                grid_cells: 96,
                threads: 1,
                pruning: Pruning::None,
            },
        )
        .unwrap();
        let pruned = discover(
            &src,
            &tgt,
            rule,
            DiscoverConfig {
                grid_cells: 96,
                threads: 1,
                pruning: Pruning::WeightedEdge,
            },
        )
        .unwrap();
        assert!(pruned.comparisons < plain.comparisons);
        let recall = pruned.recall_against(&truth.links);
        assert!(recall > 0.6, "meta-blocking keeps the strong edges: recall {recall}");
        assert!(pruned.savings() > plain.savings());
    }

    #[test]
    fn multicore_equals_single_core() {
        let (src, tgt) = random_sets(150, 6);
        let rule = LinkRule::spatial(SpatialRelation::Intersects);
        let base = DiscoverConfig {
            grid_cells: 32,
            threads: 1,
            pruning: Pruning::WeightedEdge,
        };
        let one = discover(&src, &tgt, rule, base).unwrap();
        for threads in [2, 4, 8] {
            let multi = discover(&src, &tgt, rule, DiscoverConfig { threads, ..base }).unwrap();
            assert_eq!(multi.links, one.links, "threads={threads}");
            assert_eq!(multi.comparisons, one.comparisons);
        }
    }

    #[test]
    fn empty_inputs() {
        let rule = LinkRule::spatial(SpatialRelation::Intersects);
        let (src, _) = random_sets(5, 7);
        let r = discover(&src, &[], rule, DiscoverConfig::default()).unwrap();
        assert!(r.links.is_empty());
        assert_eq!(r.comparisons, 0);
        let r2 = discover(&[], &src, rule, DiscoverConfig::default()).unwrap();
        assert!(r2.links.is_empty());
    }

    #[test]
    fn config_validation() {
        let (src, tgt) = random_sets(5, 8);
        let rule = LinkRule::spatial(SpatialRelation::Intersects);
        assert!(discover(
            &src,
            &tgt,
            rule,
            DiscoverConfig {
                grid_cells: 0,
                ..DiscoverConfig::default()
            }
        )
        .is_err());
        assert!(discover(
            &src,
            &tgt,
            rule,
            DiscoverConfig {
                threads: 0,
                ..DiscoverConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn point_in_polygon_linking() {
        // The A1 use case: link farm sensors (points) to parcels (polygons).
        let parcels: Vec<SpatialEntity> = (0..10)
            .map(|i| {
                let x = (i % 5) as f64 * 10.0;
                let y = (i / 5) as f64 * 10.0;
                SpatialEntity::new(i, Polygon::rectangle(x, y, x + 9.0, y + 9.0).into())
            })
            .collect();
        let sensors = vec![
            SpatialEntity::new(100, Point::new(4.0, 4.0).into()),
            SpatialEntity::new(101, Point::new(14.0, 4.0).into()),
            SpatialEntity::new(102, Point::new(44.0, 14.0).into()),
        ];
        let rule = LinkRule::spatial(SpatialRelation::Within);
        let r = discover(&sensors, &parcels, rule, DiscoverConfig {
            pruning: Pruning::None,
            ..DiscoverConfig::default()
        })
        .unwrap();
        assert_eq!(r.links, vec![(100, 0), (101, 1), (102, 9)]);
    }
}
