//! Entities and link rules.

use ee_geo::{algorithms, Geometry};

/// A closed time interval in epoch days (matching `ee-rdf` date values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Start day (inclusive).
    pub start: i64,
    /// End day (inclusive, >= start).
    pub end: i64,
}

impl Interval {
    /// Construct; panics if end < start.
    pub fn new(start: i64, end: i64) -> Self {
        assert!(end >= start, "interval end before start");
        Self { start, end }
    }

    /// Allen-ish relations used by the rules.
    pub fn before(&self, other: &Interval) -> bool {
        self.end < other.start
    }

    /// Is `self` fully inside `other`?
    pub fn during(&self, other: &Interval) -> bool {
        self.start >= other.start && self.end <= other.end
    }

    /// Do the intervals share at least one day?
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// An entity participating in link discovery.
#[derive(Debug, Clone)]
pub struct SpatialEntity {
    /// Caller-chosen identifier (e.g. a dictionary id or product index).
    pub id: u64,
    /// The geometry.
    pub geometry: Geometry,
    /// Optional validity interval (for spatio-temporal rules).
    pub interval: Option<Interval>,
}

impl SpatialEntity {
    /// An entity without temporal extent.
    pub fn new(id: u64, geometry: Geometry) -> Self {
        Self {
            id,
            geometry,
            interval: None,
        }
    }

    /// Attach a validity interval.
    pub fn with_interval(mut self, interval: Interval) -> Self {
        self.interval = Some(interval);
        self
    }
}

/// Spatial component of a link rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialRelation {
    /// Geometries share a point.
    Intersects,
    /// Source within target.
    Within,
    /// Source contains target.
    Contains,
    /// Distance below a threshold.
    NearWithin(f64),
}

/// Temporal component of a link rule (source relative to target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalRelation {
    /// Source interval entirely before target's.
    Before,
    /// Source interval inside target's.
    During,
    /// Intervals overlap.
    Overlaps,
}

/// A complete link rule: spatial relation plus optional temporal one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRule {
    /// Spatial predicate.
    pub spatial: SpatialRelation,
    /// Optional temporal predicate (entities without intervals fail it).
    pub temporal: Option<TemporalRelation>,
}

impl LinkRule {
    /// Spatial-only rule.
    pub fn spatial(rel: SpatialRelation) -> Self {
        Self {
            spatial: rel,
            temporal: None,
        }
    }

    /// Exact (expensive) verification of the rule on a pair.
    pub fn verify(&self, source: &SpatialEntity, target: &SpatialEntity) -> bool {
        let spatial_ok = match self.spatial {
            SpatialRelation::Intersects => {
                algorithms::intersects(&source.geometry, &target.geometry)
            }
            SpatialRelation::Within => algorithms::within(&source.geometry, &target.geometry),
            SpatialRelation::Contains => {
                algorithms::contains(&source.geometry, &target.geometry)
            }
            SpatialRelation::NearWithin(d) => {
                algorithms::distance(&source.geometry, &target.geometry) <= d
            }
        };
        if !spatial_ok {
            return false;
        }
        match self.temporal {
            None => true,
            Some(rel) => match (source.interval, target.interval) {
                (Some(a), Some(b)) => match rel {
                    TemporalRelation::Before => a.before(&b),
                    TemporalRelation::During => a.during(&b),
                    TemporalRelation::Overlaps => a.overlaps(&b),
                },
                _ => false,
            },
        }
    }

    /// The envelope expansion needed so blocking never misses a true
    /// link: `NearWithin(d)` must look `d` beyond the envelope.
    pub fn blocking_slack(&self) -> f64 {
        match self.spatial {
            SpatialRelation::NearWithin(d) => d,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_geo::{Point, Polygon};

    fn poly(x0: f64, y0: f64, x1: f64, y1: f64) -> Geometry {
        Polygon::rectangle(x0, y0, x1, y1).into()
    }

    #[test]
    fn interval_relations() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        let c = Interval::new(20, 30);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.before(&c));
        assert!(!a.before(&b));
        assert!(Interval::new(6, 9).during(&a));
        assert!(!b.during(&a));
        // Touching intervals overlap (closed intervals).
        assert!(Interval::new(10, 12).overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "end before start")]
    fn inverted_interval_panics() {
        Interval::new(5, 1);
    }

    #[test]
    fn spatial_rules_verify() {
        let src = SpatialEntity::new(1, poly(0.0, 0.0, 2.0, 2.0));
        let inside = SpatialEntity::new(2, poly(0.5, 0.5, 1.0, 1.0));
        let apart = SpatialEntity::new(3, poly(10.0, 10.0, 11.0, 11.0));
        assert!(LinkRule::spatial(SpatialRelation::Intersects).verify(&src, &inside));
        assert!(LinkRule::spatial(SpatialRelation::Contains).verify(&src, &inside));
        assert!(LinkRule::spatial(SpatialRelation::Within).verify(&inside, &src));
        assert!(!LinkRule::spatial(SpatialRelation::Intersects).verify(&src, &apart));
        assert!(LinkRule::spatial(SpatialRelation::NearWithin(15.0)).verify(&src, &apart));
        assert!(!LinkRule::spatial(SpatialRelation::NearWithin(5.0)).verify(&src, &apart));
    }

    #[test]
    fn temporal_rules_verify() {
        let rule = LinkRule {
            spatial: SpatialRelation::Intersects,
            temporal: Some(TemporalRelation::During),
        };
        let a = SpatialEntity::new(1, Point::new(0.0, 0.0).into())
            .with_interval(Interval::new(5, 8));
        let b = SpatialEntity::new(2, Point::new(0.0, 0.0).into())
            .with_interval(Interval::new(0, 10));
        assert!(rule.verify(&a, &b));
        assert!(!rule.verify(&b, &a), "during is directional");
        // Missing interval fails a temporal rule.
        let no_time = SpatialEntity::new(3, Point::new(0.0, 0.0).into());
        assert!(!rule.verify(&no_time, &b));
    }

    #[test]
    fn blocking_slack() {
        assert_eq!(LinkRule::spatial(SpatialRelation::Intersects).blocking_slack(), 0.0);
        assert_eq!(
            LinkRule::spatial(SpatialRelation::NearWithin(3.5)).blocking_slack(),
            3.5
        );
    }
}
