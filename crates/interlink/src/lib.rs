#![warn(missing_docs)]
//! Link discovery for big geospatial RDF sources — the JedAI / geospatial
//! Silk analogue of Challenge C3 (refs \[19\], \[21\]).
//!
//! Pipeline (the architecture of multi-core meta-blocking):
//!
//! 1. **Blocking** ([`blocking`]): every entity is assigned to the
//!    equigrid cells its envelope overlaps; only pairs sharing a cell are
//!    candidates. This turns the quadratic all-pairs problem into one
//!    proportional to local density.
//! 2. **Meta-blocking** ([`meta`]): candidate pairs are weighted by the
//!    number of blocks they co-occur in (CBS) and edges below the mean
//!    weight are pruned (weighted-edge pruning) — ref \[19\]'s trade of a
//!    little recall for a large cut in comparisons.
//! 3. **Verification** ([`mod@discover`]): surviving pairs are checked with
//!    exact geometry predicates (and optional temporal relations),
//!    partitioned across real threads (multi-core execution).
//!
//! [`discover::exhaustive`] is the all-pairs baseline every experiment
//! compares against.

pub mod blocking;
pub mod discover;
pub mod entity;
pub mod meta;

pub use discover::{discover, exhaustive, DiscoverConfig, LinkReport};
pub use entity::{Interval, LinkRule, SpatialEntity, SpatialRelation, TemporalRelation};

/// Errors from the interlinker.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// Configuration mistake (zero threads/cells, empty inputs).
    Config(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Config(m) => write!(f, "interlink config error: {m}"),
        }
    }
}

impl std::error::Error for LinkError {}
