//! Meta-blocking: prune the candidate graph by edge weight.
//!
//! The blocking graph's nodes are entities; edges are candidate pairs
//! weighted by co-occurrence count (CBS). Weighted-edge pruning keeps the
//! edges at or above the mean weight — ref \[19\]'s observation is that
//! low-weight edges are overwhelmingly non-matches, so discarding them
//! removes most comparisons at a small recall cost.

/// Pruning scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pruning {
    /// Keep everything (plain blocking).
    None,
    /// Weighted-edge pruning: keep weight ≥ mean weight.
    WeightedEdge,
    /// Keep weight ≥ `t`.
    Threshold(f64),
}

/// Apply a pruning scheme to weighted candidates `(source, target, w)`.
/// The workspace uses Jaccard-normalised block overlap as the weight
/// (shared cells / union of cells), which — unlike raw CBS counts — does
/// not penalise small geometries.
pub fn prune(candidates: Vec<(u32, u32, f64)>, scheme: Pruning) -> Vec<(u32, u32, f64)> {
    match scheme {
        Pruning::None => candidates,
        Pruning::Threshold(t) => candidates.into_iter().filter(|(_, _, w)| *w >= t).collect(),
        Pruning::WeightedEdge => {
            if candidates.is_empty() {
                return candidates;
            }
            let mean =
                candidates.iter().map(|(_, _, w)| *w).sum::<f64>() / candidates.len() as f64;
            candidates
                .into_iter()
                .filter(|(_, _, w)| *w >= mean)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u32, u32, f64)> {
        vec![(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.0), (2, 2, 4.0)]
    }

    #[test]
    fn none_keeps_all() {
        assert_eq!(prune(sample(), Pruning::None).len(), 5);
    }

    #[test]
    fn weighted_edge_keeps_at_or_above_mean() {
        // Mean = (1+4+2+1+4)/5 = 2.4 → keep 4, 4.
        let kept = prune(sample(), Pruning::WeightedEdge);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|(_, _, w)| *w == 4.0));
    }

    #[test]
    fn threshold_pruning() {
        let kept = prune(sample(), Pruning::Threshold(2.0));
        assert_eq!(kept.len(), 3);
        assert_eq!(prune(sample(), Pruning::Threshold(100.0)).len(), 0);
        assert_eq!(prune(sample(), Pruning::Threshold(0.0)).len(), 5);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(prune(Vec::new(), Pruning::WeightedEdge).is_empty());
    }

    #[test]
    fn uniform_weights_all_survive_wep() {
        let uniform = vec![(0, 0, 2.0), (1, 1, 2.0), (2, 2, 2.0)];
        assert_eq!(prune(uniform.clone(), Pruning::WeightedEdge), uniform);
    }
}
