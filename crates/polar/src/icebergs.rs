//! Iceberg detection and tracking.
//!
//! Detection is CFAR-style: a pixel fires when its VV backscatter exceeds
//! the local background median by a contrast margin; adjacent detections
//! cluster into one target. Tracking is day-to-day nearest-neighbour
//! assignment with a gating radius, maintaining stable track identities —
//! the source of the "icebergs observed on date D" records the semantic
//! catalogue serves.

use crate::PolarError;
use ee_raster::{Band, Raster, Scene};

/// One detected target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Centroid column (pixel space).
    pub x: f64,
    /// Centroid row.
    pub y: f64,
    /// Member pixel count.
    pub pixels: usize,
    /// Peak backscatter, dB.
    pub peak_db: f32,
}

/// Detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Contrast over the local background median, dB.
    pub contrast_db: f32,
    /// Background window half-size in pixels.
    pub window: usize,
    /// Minimum / maximum cluster size in pixels.
    pub min_pixels: usize,
    /// Maximum cluster size (bigger = not a point target).
    pub max_pixels: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            contrast_db: 8.0,
            window: 7,
            min_pixels: 1,
            max_pixels: 40,
        }
    }
}

/// Local median of a window around (c, r).
fn local_median(vv: &Raster<f32>, c: usize, r: usize, half: usize) -> f32 {
    let (cols, rows) = vv.shape();
    let c0 = c.saturating_sub(half);
    let r0 = r.saturating_sub(half);
    let c1 = (c + half).min(cols - 1);
    let r1 = (r + half).min(rows - 1);
    let mut vals = Vec::with_capacity((c1 - c0 + 1) * (r1 - r0 + 1));
    for rr in r0..=r1 {
        for cc in c0..=c1 {
            vals.push(vv.at(cc, rr));
        }
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN backscatter"));
    vals[vals.len() / 2]
}

/// Detect bright point targets in a SAR scene.
pub fn detect(scene: &Scene, config: DetectorConfig) -> Result<Vec<Detection>, PolarError> {
    let vv = scene.band(Band::VV)?;
    let (cols, rows) = vv.shape();
    // CFAR mask.
    let mut mask = vec![false; cols * rows];
    for r in 0..rows {
        for c in 0..cols {
            let bg = local_median(vv, c, r, config.window);
            if vv.at(c, r) > bg + config.contrast_db {
                mask[r * cols + c] = true;
            }
        }
    }
    // Cluster 8-connected detections.
    let mut visited = vec![false; cols * rows];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for start in 0..cols * rows {
        if !mask[start] || visited[start] {
            continue;
        }
        stack.push(start);
        visited[start] = true;
        let mut members = Vec::new();
        while let Some(i) = stack.pop() {
            members.push(i);
            let (c, r) = (i % cols, i / cols);
            for dr in -1i64..=1 {
                for dc in -1i64..=1 {
                    let cc = c as i64 + dc;
                    let rr = r as i64 + dr;
                    if cc >= 0 && rr >= 0 && (cc as usize) < cols && (rr as usize) < rows {
                        let j = rr as usize * cols + cc as usize;
                        if mask[j] && !visited[j] {
                            visited[j] = true;
                            stack.push(j);
                        }
                    }
                }
            }
        }
        if members.len() < config.min_pixels || members.len() > config.max_pixels {
            continue;
        }
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut peak = f32::NEG_INFINITY;
        for &i in &members {
            let (c, r) = (i % cols, i / cols);
            sx += c as f64;
            sy += r as f64;
            peak = peak.max(vv.at(c, r));
        }
        out.push(Detection {
            x: sx / members.len() as f64,
            y: sy / members.len() as f64,
            pixels: members.len(),
            peak_db: peak,
        });
    }
    Ok(out)
}

/// A maintained track.
#[derive(Debug, Clone)]
pub struct Track {
    /// Track identity.
    pub id: u32,
    /// (day, detection) history.
    pub history: Vec<(usize, Detection)>,
}

impl Track {
    /// Last known position.
    pub fn last(&self) -> (f64, f64) {
        let d = &self.history.last().expect("tracks are never empty").1;
        (d.x, d.y)
    }
}

/// Day-to-day tracker with a gating radius (pixels/day).
pub struct Tracker {
    /// Completed + active tracks.
    pub tracks: Vec<Track>,
    gate: f64,
    next_id: u32,
}

impl Tracker {
    /// New tracker; `gate` is the max displacement per day.
    pub fn new(gate: f64) -> Self {
        Self {
            tracks: Vec::new(),
            gate,
            next_id: 0,
        }
    }

    /// Feed one day's detections; greedy nearest-neighbour assignment.
    pub fn step(&mut self, day: usize, detections: &[Detection]) {
        // Active = tracks updated on the previous day.
        let mut candidate_pairs: Vec<(f64, usize, usize)> = Vec::new(); // (dist, track, det)
        for (ti, track) in self.tracks.iter().enumerate() {
            let (last_day, _) = track.history.last().expect("non-empty");
            if day != last_day + 1 {
                continue;
            }
            let (tx, ty) = track.last();
            for (di, det) in detections.iter().enumerate() {
                let dist = ((det.x - tx).powi(2) + (det.y - ty).powi(2)).sqrt();
                if dist <= self.gate {
                    candidate_pairs.push((dist, ti, di));
                }
            }
        }
        candidate_pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut track_used = vec![false; self.tracks.len()];
        let mut det_used = vec![false; detections.len()];
        for (_, ti, di) in candidate_pairs {
            if !track_used[ti] && !det_used[di] {
                track_used[ti] = true;
                det_used[di] = true;
                self.tracks[ti].history.push((day, detections[di]));
            }
        }
        // Unmatched detections start new tracks.
        for (di, det) in detections.iter().enumerate() {
            if !det_used[di] {
                self.tracks.push(Track {
                    id: self.next_id,
                    history: vec![(day, *det)],
                });
                self.next_id += 1;
            }
        }
    }

    /// Tracks observed on at least `min_days` days.
    pub fn confirmed(&self, min_days: usize) -> Vec<&Track> {
        self.tracks
            .iter()
            .filter(|t| t.history.len() >= min_days)
            .collect()
    }
}

/// Score detections against truth positions: a detection matches a truth
/// target if within `radius` pixels. Returns (true positives, false
/// positives, false negatives).
pub fn score_detections(
    detections: &[Detection],
    truth: &[(u32, f64, f64)],
    radius: f64,
) -> (usize, usize, usize) {
    let mut det_used = vec![false; detections.len()];
    let mut tp = 0;
    for &(_, tx, ty) in truth {
        let best = detections
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                !det_used[*i] && ((d.x - tx).powi(2) + (d.y - ty).powi(2)).sqrt() <= radius
            })
            .min_by(|(_, a), (_, b)| {
                let da = (a.x - tx).powi(2) + (a.y - ty).powi(2);
                let db = (b.x - tx).powi(2) + (b.y - ty).powi(2);
                da.partial_cmp(&db).expect("finite")
            });
        if let Some((i, _)) = best {
            det_used[i] = true;
            tp += 1;
        }
    }
    let fp = det_used.iter().filter(|&&u| !u).count();
    let fnn = truth.len() - tp;
    (tp, fp, fnn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_datasets::seaice::{IceWorld, IceWorldConfig};
    use ee_util::timeline::Date;

    fn world() -> IceWorld {
        IceWorld::generate(IceWorldConfig {
            size: 96,
            days: 8,
            icebergs: 6,
            ..IceWorldConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn detector_finds_most_icebergs() {
        let w = world();
        let scene = w
            .simulate_sar(0, Date::new(2017, 2, 10).unwrap(), 3)
            .unwrap();
        let detections = detect(&scene, DetectorConfig::default()).unwrap();
        let truth = w.iceberg_positions(0);
        let (tp, _fp, fnn) = score_detections(&detections, &truth, 3.0);
        assert!(
            tp >= truth.len() - 2,
            "detected {tp}/{} (missed {fnn})",
            truth.len()
        );
    }

    #[test]
    fn tracker_maintains_identities() {
        let w = world();
        let mut tracker = Tracker::new(6.0);
        for day in 0..8 {
            let scene = w
                .simulate_sar(day, Date::new(2017, 2, 10).unwrap(), 3)
                .unwrap();
            let detections = detect(&scene, DetectorConfig::default()).unwrap();
            tracker.step(day, &detections);
        }
        let confirmed = tracker.confirmed(5);
        assert!(
            confirmed.len() >= 3,
            "at least half the bergs tracked ≥5 days: {}",
            confirmed.len()
        );
        // Track displacement per day must respect the gate.
        for t in confirmed {
            for w2 in t.history.windows(2) {
                let (d0, a) = &w2[0];
                let (d1, b) = &w2[1];
                assert_eq!(d1 - d0, 1);
                let step = ((b.x - a.x).powi(2) + (b.y - a.y).powi(2)).sqrt();
                assert!(step <= 6.0 + 1e-9);
            }
        }
    }

    #[test]
    fn tracker_starts_new_tracks_for_new_targets() {
        let mut tracker = Tracker::new(3.0);
        let d1 = Detection {
            x: 10.0,
            y: 10.0,
            pixels: 2,
            peak_db: 0.0,
        };
        tracker.step(0, &[d1]);
        // A far-away detection the next day exceeds the gate → new track.
        let d2 = Detection {
            x: 50.0,
            y: 50.0,
            pixels: 2,
            peak_db: 0.0,
        };
        tracker.step(1, &[d2]);
        assert_eq!(tracker.tracks.len(), 2);
        // A nearby one continues the second track.
        let d3 = Detection {
            x: 51.5,
            y: 50.5,
            pixels: 2,
            peak_db: 0.0,
        };
        tracker.step(2, &[d3]);
        assert_eq!(tracker.tracks.len(), 2);
        assert_eq!(tracker.tracks[1].history.len(), 2);
    }

    #[test]
    fn score_counts_fp_and_fn() {
        let detections = vec![
            Detection { x: 10.0, y: 10.0, pixels: 1, peak_db: 0.0 },
            Detection { x: 90.0, y: 90.0, pixels: 1, peak_db: 0.0 }, // false positive
        ];
        let truth = vec![(0u32, 10.5, 10.5), (1u32, 40.0, 40.0)]; // second missed
        let (tp, fp, fnn) = score_detections(&detections, &truth, 2.0);
        assert_eq!((tp, fp, fnn), (1, 1, 1));
    }

    #[test]
    fn empty_inputs() {
        let (tp, fp, fnn) = score_detections(&[], &[], 2.0);
        assert_eq!((tp, fp, fnn), (0, 0, 0));
        let mut tracker = Tracker::new(3.0);
        tracker.step(0, &[]);
        assert!(tracker.tracks.is_empty());
    }
}
