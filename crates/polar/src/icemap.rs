//! Sea-ice classification and the 1 km WMO product suite.
//!
//! Per-pixel features from the SAR scene: VV, VH, the cross-pol ratio and
//! a local 3×3 texture (standard deviation of VV) — texture is what
//! separates smooth new ice from wind-roughened water. The classifier is
//! an MLP trained on labelled pixels of *other* days (temporal holdout).

use crate::PolarError;
use ee_datasets::seaice::{IceClass, IceWorld};
use ee_dl::model::{mlp, Sequential};
use ee_dl::optim::{LrSchedule, Sgd};
use ee_dl::Dataset;
use ee_raster::resample;
use ee_raster::{Band, Raster, Scene};
use ee_tensor::Tensor;
use ee_util::stats::ConfusionMatrix;
use ee_util::Rng;

/// Width of the per-pixel feature vector.
pub const FEATURES: usize = 4;

/// Extract (VV, VH, VH−VV, local σ(VV)) at a pixel.
fn pixel_features(vv: &Raster<f32>, vh: &Raster<f32>, c: usize, r: usize) -> [f32; FEATURES] {
    let (cols, rows) = vv.shape();
    let v = vv.at(c, r);
    let h = vh.at(c, r);
    // 3×3 std-dev of VV.
    let mut sum = 0.0f32;
    let mut sum2 = 0.0f32;
    let mut n = 0.0f32;
    for dr in -1i64..=1 {
        for dc in -1i64..=1 {
            let cc = c as i64 + dc;
            let rr = r as i64 + dr;
            if cc >= 0 && rr >= 0 && (cc as usize) < cols && (rr as usize) < rows {
                let x = vv.at(cc as usize, rr as usize);
                sum += x;
                sum2 += x * x;
                n += 1.0;
            }
        }
    }
    let mean = sum / n;
    let var = (sum2 / n - mean * mean).max(0.0);
    [v, h, h - v, var.sqrt()]
}

/// Build a labelled dataset from a SAR scene + truth raster.
pub fn feature_dataset(
    scene: &Scene,
    truth: &Raster<u8>,
    max_samples: usize,
    seed: u64,
) -> Result<Dataset, PolarError> {
    let vv = scene.band(Band::VV)?;
    let vh = scene.band(Band::VH)?;
    let (cols, rows) = vv.shape();
    let mut rng = Rng::seed_from(seed);
    let take = rng.sample_indices(cols * rows, max_samples.min(cols * rows));
    let mut data = Vec::with_capacity(take.len() * FEATURES);
    let mut labels = Vec::with_capacity(take.len());
    for &i in &take {
        let (c, r) = (i % cols, i / cols);
        data.extend(pixel_features(vv, vh, c, r));
        labels.push(truth.at(c, r) as usize);
    }
    let x = Tensor::from_vec(&[take.len(), FEATURES], data)
        .map_err(|e| PolarError::Model(e.to_string()))?;
    Dataset::new(x, labels).map_err(|e| PolarError::Model(e.to_string()))
}

/// A trained WMO-stage classifier.
pub struct IceMapper {
    model: Sequential,
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl IceMapper {
    /// Train on one or more labelled (scene, truth) days.
    pub fn train(
        days: &[(&Scene, &Raster<u8>)],
        samples_per_day: usize,
        epochs: usize,
        seed: u64,
    ) -> Result<IceMapper, PolarError> {
        if days.is_empty() {
            return Err(PolarError::Config("no training days".into()));
        }
        // Concatenate per-day datasets.
        let mut all_x = Vec::new();
        let mut all_y = Vec::new();
        for (i, (scene, truth)) in days.iter().enumerate() {
            let d = feature_dataset(scene, truth, samples_per_day, seed ^ (i as u64 * 0x77))?;
            all_x.extend_from_slice(d.x.data());
            all_y.extend_from_slice(&d.labels);
        }
        let n = all_y.len();
        let x = Tensor::from_vec(&[n, FEATURES], all_x)
            .map_err(|e| PolarError::Model(e.to_string()))?;
        let mut data = Dataset::new(x, all_y).map_err(|e| PolarError::Model(e.to_string()))?;
        let (mean, std) = data.feature_stats();
        data.standardize(&mean, &std);
        let mut rng = Rng::seed_from(seed ^ 0x1ce);
        let mut model = mlp(FEATURES, 32, IceClass::ALL.len(), &mut rng);
        let mut opt = Sgd::new(LrSchedule::Constant(0.2), 0.9);
        for epoch in 0..epochs {
            for idx in ee_dl::data::BatchIter::new(data.len(), 256, seed ^ epoch as u64) {
                let batch = data.take(&idx).map_err(|e| PolarError::Model(e.to_string()))?;
                model
                    .compute_gradients(&batch.x, &batch.labels)
                    .map_err(|e| PolarError::Model(e.to_string()))?;
                opt.step(&mut model).map_err(|e| PolarError::Model(e.to_string()))?;
            }
        }
        Ok(IceMapper { model, mean, std })
    }

    /// Classify every pixel of a scene.
    pub fn predict_map(&mut self, scene: &Scene) -> Result<Raster<u8>, PolarError> {
        let vv = scene.band(Band::VV)?;
        let vh = scene.band(Band::VH)?;
        let (cols, rows) = vv.shape();
        let mut out: Raster<u8> = Raster::zeros(cols, rows, vv.transform());
        for r in 0..rows {
            let mut data = Vec::with_capacity(cols * FEATURES);
            for c in 0..cols {
                let mut f = pixel_features(vv, vh, c, r);
                for (v, (m, s)) in f.iter_mut().zip(self.mean.iter().zip(&self.std)) {
                    *v = (*v - m) / s;
                }
                data.extend(f);
            }
            let x = Tensor::from_vec(&[cols, FEATURES], data)
                .map_err(|e| PolarError::Model(e.to_string()))?;
            let preds = self
                .model
                .predict(&x)
                .map_err(|e| PolarError::Model(e.to_string()))?;
            for (c, p) in preds.into_iter().enumerate() {
                out.put(c, r, p as u8);
            }
        }
        Ok(out)
    }
}

/// The 1 km product suite for one day.
pub struct IceProducts {
    /// Ice concentration (0..1) per 1 km cell.
    pub concentration: Raster<f32>,
    /// Dominant WMO stage per 1 km cell (class index).
    pub stage: Raster<u8>,
    /// Lead fraction per cell.
    pub lead_fraction: Raster<f32>,
    /// Ridge fraction per cell.
    pub ridge_fraction: Raster<f32>,
}

/// Aggregate a 40 m class map to the 1 km product suite. `factor` is the
/// aggregation ratio (25 for 40 m → 1 km).
pub fn products_from_map(
    class_map: &Raster<u8>,
    lead_mask: &Raster<u8>,
    ridge_mask: &Raster<u8>,
    factor: usize,
) -> IceProducts {
    let ice_mask = class_map.map(|v| u8::from(v != IceClass::OpenWater.as_index() as u8));
    let concentration = resample::fraction_of(&ice_mask, factor, 1u8);
    let lead_fraction = resample::fraction_of(lead_mask, factor, 1u8);
    let ridge_fraction = resample::fraction_of(ridge_mask, factor, 1u8);
    // Dominant stage by majority vote per block.
    let (cols, rows) = class_map.shape();
    let out_cols = cols.div_ceil(factor).max(1);
    let out_rows = rows.div_ceil(factor).max(1);
    let t = class_map.transform();
    let stage = Raster::from_fn(
        out_cols,
        out_rows,
        ee_raster::raster::GeoTransform::new(t.origin_x, t.origin_y, t.pixel_size * factor as f64),
        |bc, br| {
            let mut votes = [0u32; 8];
            for dr in 0..factor {
                for dc in 0..factor {
                    let (c, r) = (bc * factor + dc, br * factor + dr);
                    if c < cols && r < rows {
                        votes[class_map.at(c, r) as usize] += 1;
                    }
                }
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i as u8)
                .expect("non-empty")
        },
    );
    IceProducts {
        concentration,
        stage,
        lead_fraction,
        ridge_fraction,
    }
}

/// Truth masks for a world/day, for product evaluation.
pub fn truth_masks(world: &IceWorld, day: usize) -> (Raster<u8>, Raster<u8>, Raster<u8>) {
    let truth = world.truth(day);
    let n = world.config.size;
    let lead = Raster::from_fn(n, n, world.transform(), |c, r| {
        u8::from(world.in_lead(c, r, day) && world.thickness(c, r, day) > 0.0)
    });
    let ridge = Raster::from_fn(n, n, world.transform(), |c, r| {
        u8::from(world.on_ridge(c, r, day))
    });
    (truth, lead, ridge)
}

/// Mean absolute error between two same-shape f32 rasters.
pub fn mae(a: &Raster<f32>, b: &Raster<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape());
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs() as f64)
        .sum::<f64>()
        / a.data().len() as f64
}

/// Confusion matrix of a predicted class map against truth.
pub fn stage_confusion(predicted: &Raster<u8>, truth: &Raster<u8>) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new(IceClass::ALL.len());
    for ((_, _, p), (_, _, t)) in predicted.iter().zip(truth.iter()) {
        cm.record(t as usize, p as usize);
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_datasets::seaice::IceWorldConfig;
    use ee_util::timeline::Date;

    fn world() -> IceWorld {
        IceWorld::generate(IceWorldConfig {
            size: 80,
            days: 6,
            icebergs: 4,
            ..IceWorldConfig::default()
        })
        .unwrap()
    }

    fn date(day: usize) -> Date {
        Date::from_ordinal(2017, 40 + day as u16).unwrap()
    }

    #[test]
    fn classifier_beats_chance_on_held_out_day() {
        let w = world();
        let train_days: Vec<(Scene, Raster<u8>)> = (0..3)
            .map(|d| {
                let s = w.simulate_sar(d, date(d), 100 + d as u64).unwrap();
                (s, w.truth(d))
            })
            .collect();
        let refs: Vec<(&Scene, &Raster<u8>)> =
            train_days.iter().map(|(s, t)| (s, t)).collect();
        let mut mapper = IceMapper::train(&refs, 2000, 25, 7).unwrap();
        // Held-out day 5.
        let test_scene = w.simulate_sar(5, date(5), 999).unwrap();
        let test_truth = w.truth(5);
        let map = mapper.predict_map(&test_scene).unwrap();
        let cm = stage_confusion(&map, &test_truth);
        assert!(
            cm.accuracy() > 0.55,
            "5-class SAR stage accuracy {} (chance ~0.3)",
            cm.accuracy()
        );
        // Water vs ice (binary collapse) should be strong.
        let binary_correct: u64 = map
            .iter()
            .zip(test_truth.iter())
            .filter(|((_, _, p), (_, _, t))| (*p == 0) == (*t == 0))
            .count() as u64;
        let binary_acc = binary_correct as f64 / (80.0 * 80.0);
        assert!(binary_acc > 0.8, "ice/water accuracy {binary_acc}");
    }

    #[test]
    fn products_aggregate_correctly() {
        let w = world();
        let (truth, lead, ridge) = truth_masks(&w, 0);
        let products = products_from_map(&truth, &lead, &ridge, 20);
        assert_eq!(products.concentration.shape(), (4, 4));
        assert_eq!(products.stage.shape(), (4, 4));
        for (_, _, v) in products.concentration.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
        for (_, _, v) in products.stage.iter() {
            assert!((v as usize) < IceClass::ALL.len());
        }
        // Perfect input → concentration equals the truth aggregation.
        let ice_mask = w.ice_mask(0);
        let expected = resample::fraction_of(&ice_mask, 20, 1u8);
        assert!(mae(&products.concentration, &expected) < 1e-6);
    }

    #[test]
    fn product_resolution_is_1km_or_better() {
        let w = world();
        let (truth, lead, ridge) = truth_masks(&w, 0);
        // 40 m * 25 = 1000 m.
        let products = products_from_map(&truth, &lead, &ridge, 25);
        assert!(products.concentration.transform().pixel_size <= 1000.0);
    }

    #[test]
    fn mae_basics() {
        let t = ee_raster::raster::GeoTransform::new(0.0, 2.0, 1.0);
        let a: Raster<f32> = Raster::filled(2, 2, t, 0.5);
        let b: Raster<f32> = Raster::filled(2, 2, t, 0.75);
        assert!((mae(&a, &b) - 0.25).abs() < 1e-9);
        assert_eq!(mae(&a, &a), 0.0);
    }

    #[test]
    fn training_requires_days() {
        assert!(IceMapper::train(&[], 10, 1, 1).is_err());
    }
}
