#![warn(missing_docs)]
//! The Polar application (Challenge A2).
//!
//! "To produce high resolution ice maps from massive volumes of
//! heterogeneous Copernicus data [...] sea ice concentration and type
//! maps, displaying stage of development (in accordance with the WMO Sea
//! Ice Nomenclature), including fraction of leads and ridges, over the
//! Polar Regions, at a resolution of 1 km or better."
//!
//! * [`icemap`] — SAR-based per-pixel WMO stage classification and the
//!   1 km product suite: concentration, dominant stage, lead and ridge
//!   fractions, with accuracy metrics against the ice-world truth;
//! * [`icebergs`] — CFAR-style iceberg detection in SAR backscatter and
//!   day-to-day nearest-neighbour tracking with identity maintenance;
//! * [`pcdss`] — the Polar Code Decision Support System delivery path:
//!   products encoded for "restricted communication links", with byte
//!   budgets and progressive degradation;
//! * [`service`] — the near-real-time budget: acquisition → downlink →
//!   processing (on-demand scalable compute, priced by `ee-cluster`) →
//!   delivery, against the timeliness requirement of maritime users;
//! * [`linked`] — iceberg observations and ice-feature extents published
//!   into the semantic catalogue, closing the loop with Challenge C4's
//!   "icebergs embedded in the ice barrier" query.

pub mod icebergs;
pub mod icemap;
pub mod linked;
pub mod pcdss;
pub mod service;

pub use icemap::{IceMapper, IceProducts};

/// Errors from the Polar pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PolarError {
    /// Data generation failure.
    Data(String),
    /// Model failure.
    Model(String),
    /// Configuration problem.
    Config(String),
}

impl From<ee_datasets::DataGenError> for PolarError {
    fn from(e: ee_datasets::DataGenError) -> Self {
        PolarError::Data(e.to_string())
    }
}

impl From<ee_dl::DlError> for PolarError {
    fn from(e: ee_dl::DlError) -> Self {
        PolarError::Model(e.to_string())
    }
}

impl From<ee_raster::RasterError> for PolarError {
    fn from(e: ee_raster::RasterError) -> Self {
        PolarError::Data(e.to_string())
    }
}

impl std::fmt::Display for PolarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolarError::Data(m) => write!(f, "data error: {m}"),
            PolarError::Model(m) => write!(f, "model error: {m}"),
            PolarError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for PolarError {}
