//! Publish Polar products as linked data into the semantic catalogue.
//!
//! "The maps will be made available as linked data and will be combined
//! with other information [...] for informing maritime users." Iceberg
//! tracks become dated observations; the ice edge becomes a named
//! feature's extent series — which is exactly the knowledge the C4
//! catalogue needs to answer the Norske Øer question.

use crate::icebergs::Track;
use crate::PolarError;
use ee_catalogue::SemanticCatalogue;
use ee_datasets::seaice::IceWorld;
use ee_geo::{Point, Polygon};
use ee_raster::raster::GeoTransform;
use ee_util::timeline::Date;

/// Publish iceberg tracks as per-day observations. Pixel coordinates are
/// mapped to world coordinates through the product geotransform.
pub fn publish_tracks(
    catalogue: &mut SemanticCatalogue,
    tracks: &[&Track],
    transform: GeoTransform,
    day0: Date,
) -> Result<usize, PolarError> {
    let mut published = 0;
    for track in tracks {
        for &(day, det) in &track.history {
            let world_point = transform.pixel_center(det.x as usize, det.y as usize);
            let date = day0.plus_days(day as u32);
            catalogue.add_iceberg_observation(track.id, date, world_point);
            published += 1;
        }
    }
    Ok(published)
}

/// Publish the ice-covered extent for a named feature, one observation
/// per day, derived from the world's ice mask envelope.
pub fn publish_ice_extents(
    catalogue: &mut SemanticCatalogue,
    world: &IceWorld,
    feature: &str,
    day0: Date,
) -> Result<usize, PolarError> {
    let n = world.config.size;
    let mut published = 0;
    for day in 0..world.config.days {
        // The extent polygon: bounding box of all ice pixels that day.
        let mask = world.ice_mask(day);
        let mut min_c = usize::MAX;
        let mut min_r = usize::MAX;
        let mut max_c = 0usize;
        let mut max_r = 0usize;
        for (c, r, v) in mask.iter() {
            if v == 1 {
                min_c = min_c.min(c);
                min_r = min_r.min(r);
                max_c = max_c.max(c);
                max_r = max_r.max(r);
            }
        }
        if min_c == usize::MAX {
            continue; // ice-free day
        }
        let t = world.transform();
        let p0 = t.pixel_center(min_c, max_r);
        let p1 = t.pixel_center(max_c, min_r);
        let extent = Polygon::from_exterior(vec![
            Point::new(p0.x, p0.y),
            Point::new(p1.x, p0.y),
            Point::new(p1.x, p1.y),
            Point::new(p0.x, p1.y),
        ])
        .map_err(|e| PolarError::Data(e.to_string()))?;
        catalogue.add_feature_extent(feature, day0.plus_days(day as u32), &extent);
        published += 1;
    }
    let _ = n;
    Ok(published)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icebergs::{detect, DetectorConfig, Tracker};
    use ee_datasets::seaice::IceWorldConfig;

    #[test]
    fn pipeline_feeds_the_iceberg_question() {
        // Full loop: simulate → detect → track → publish → ask C4's query.
        let world = IceWorld::generate(IceWorldConfig {
            size: 80,
            days: 6,
            icebergs: 5,
            ..IceWorldConfig::default()
        })
        .unwrap();
        let day0 = Date::new(2017, 2, 10).unwrap();
        let mut tracker = Tracker::new(6.0);
        for day in 0..world.config.days {
            let scene = world
                .simulate_sar(day, day0.plus_days(day as u32), 5)
                .unwrap();
            let detections = detect(&scene, DetectorConfig::default()).unwrap();
            tracker.step(day, &detections);
        }
        let confirmed = tracker.confirmed(3);
        let mut catalogue = SemanticCatalogue::new();
        let published =
            publish_tracks(&mut catalogue, &confirmed, world.transform(), day0).unwrap();
        assert!(published > 0);
        let extents = publish_ice_extents(&mut catalogue, &world, "SyntheticBarrier", day0).unwrap();
        assert_eq!(extents, world.config.days);
        catalogue.finish_ingest();
        let (count, when) = catalogue.iceberg_question("SyntheticBarrier", 2017).unwrap();
        assert!(when.year() == 2017);
        // The extent covers most of the scene, so most tracked bergs count.
        assert!(count >= 1, "at least one embedded iceberg: {count}");
    }

    #[test]
    fn publishing_empty_tracks_is_fine() {
        let mut catalogue = SemanticCatalogue::new();
        let t = GeoTransform::new(0.0, 100.0, 40.0);
        let n = publish_tracks(&mut catalogue, &[], t, Date::new(2017, 1, 1).unwrap()).unwrap();
        assert_eq!(n, 0);
        assert!(catalogue.is_empty());
    }
}
