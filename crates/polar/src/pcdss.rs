//! PCDSS delivery: ice products over restricted communication links.
//!
//! "PCDSS is designed to be used over restricted communication links, to
//! bridge between the service production and users onboard ships in the
//! Polar Regions." Ships sail with kilobit satellite links, so the 1 km
//! product suite is quantised to bytes, RLE-compressed with the raster
//! codec, and — when still over budget — progressively downsampled until
//! it fits. The decoder restores a usable (if coarser) product.

use crate::icemap::IceProducts;
use crate::PolarError;
use ee_raster::{codec, resample, Raster};

/// A delivery-ready product bundle.
#[derive(Debug, Clone)]
pub struct PcdssBundle {
    /// Encoded concentration (percent, u8).
    pub concentration: Vec<u8>,
    /// Encoded stage map.
    pub stage: Vec<u8>,
    /// Encoded lead fraction (percent, u8).
    pub leads: Vec<u8>,
    /// Downsampling applied (1 = full resolution).
    pub downsample: usize,
}

impl PcdssBundle {
    /// Total payload bytes.
    pub fn bytes(&self) -> usize {
        self.concentration.len() + self.stage.len() + self.leads.len()
    }
}

/// Quantise a 0..1 fraction raster to integer percent.
fn to_percent(r: &Raster<f32>) -> Raster<u8> {
    r.map(|v| (v * 100.0).round().clamp(0.0, 100.0) as u8)
}

/// Encode products within `budget_bytes`, degrading resolution if needed.
/// Fails only if even a 1-pixel product cannot fit.
pub fn encode_bundle(products: &IceProducts, budget_bytes: usize) -> Result<PcdssBundle, PolarError> {
    let mut downsample = 1usize;
    loop {
        let conc = if downsample == 1 {
            to_percent(&products.concentration)
        } else {
            to_percent(&resample::aggregate(&products.concentration, downsample))
        };
        let stage = if downsample == 1 {
            products.stage.clone()
        } else {
            resample::resample(
                &products.stage,
                products.stage.cols().div_ceil(downsample).max(1),
                products.stage.rows().div_ceil(downsample).max(1),
                resample::Method::Nearest,
            )
        };
        let leads = if downsample == 1 {
            to_percent(&products.lead_fraction)
        } else {
            to_percent(&resample::aggregate(&products.lead_fraction, downsample))
        };
        let bundle = PcdssBundle {
            concentration: codec::encode(&conc),
            stage: codec::encode(&stage),
            leads: codec::encode(&leads),
            downsample,
        };
        if bundle.bytes() <= budget_bytes {
            return Ok(bundle);
        }
        if conc.cols() <= 1 && conc.rows() <= 1 {
            return Err(PolarError::Config(format!(
                "budget {budget_bytes} B cannot fit even a 1-pixel product ({} B)",
                bundle.bytes()
            )));
        }
        downsample *= 2;
    }
}

/// The decoded product trio: (concentration %, stage, lead fraction %).
pub type DecodedBundle = (Raster<u8>, Raster<u8>, Raster<u8>);

/// Decode a bundle back into usable rasters.
pub fn decode_bundle(bundle: &PcdssBundle) -> Result<DecodedBundle, PolarError> {
    let conc: Raster<u8> =
        codec::decode(&bundle.concentration).map_err(|e| PolarError::Data(e.to_string()))?;
    let stage: Raster<u8> =
        codec::decode(&bundle.stage).map_err(|e| PolarError::Data(e.to_string()))?;
    let leads: Raster<u8> =
        codec::decode(&bundle.leads).map_err(|e| PolarError::Data(e.to_string()))?;
    Ok((conc, stage, leads))
}

/// Seconds to ship `bytes` over a `bits_per_second` link.
pub fn transmission_secs(bytes: usize, bits_per_second: f64) -> f64 {
    (bytes as f64 * 8.0) / bits_per_second
}

/// Raw (uncompressed f32) size of the product suite, for the E12 ratio.
pub fn raw_bytes(products: &IceProducts) -> usize {
    let px = products.concentration.data().len();
    // Three f32 layers + one u8 layer.
    px * 4 * 3 + products.stage.data().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icemap::{products_from_map, truth_masks};
    use ee_datasets::seaice::{IceWorld, IceWorldConfig};

    fn products() -> IceProducts {
        let w = IceWorld::generate(IceWorldConfig {
            size: 100,
            days: 2,
            ..IceWorldConfig::default()
        })
        .unwrap();
        let (truth, lead, ridge) = truth_masks(&w, 0);
        products_from_map(&truth, &lead, &ridge, 5) // 20x20 product
    }

    #[test]
    fn bundle_fits_generous_budget_at_full_resolution() {
        let p = products();
        let bundle = encode_bundle(&p, 100_000).unwrap();
        assert_eq!(bundle.downsample, 1);
        assert!(bundle.bytes() < raw_bytes(&p), "compressed beats raw");
        let (conc, stage, leads) = decode_bundle(&bundle).unwrap();
        assert_eq!(conc.shape(), (20, 20));
        assert_eq!(stage.shape(), (20, 20));
        assert_eq!(leads.shape(), (20, 20));
        for (_, _, v) in conc.iter() {
            assert!(v <= 100);
        }
    }

    #[test]
    fn tight_budget_forces_downsampling() {
        let p = products();
        let generous = encode_bundle(&p, 100_000).unwrap();
        let tight = encode_bundle(&p, generous.bytes() / 3).unwrap();
        assert!(tight.downsample > 1, "resolution degraded to fit");
        assert!(tight.bytes() < generous.bytes());
        let (conc, _, _) = decode_bundle(&tight).unwrap();
        assert!(conc.cols() < 20);
    }

    #[test]
    fn impossible_budget_errors() {
        let p = products();
        assert!(encode_bundle(&p, 10).is_err());
    }

    #[test]
    fn quantisation_error_is_small() {
        let p = products();
        let bundle = encode_bundle(&p, 1_000_000).unwrap();
        let (conc, _, _) = decode_bundle(&bundle).unwrap();
        // Percent quantisation: within 0.5% of the f32 value.
        for ((_, _, q), (_, _, f)) in conc.iter().zip(p.concentration.iter()) {
            assert!((q as f32 / 100.0 - f).abs() <= 0.005 + 1e-6);
        }
    }

    #[test]
    fn iridium_link_timing() {
        // A 2.4 kbps link: 3 kB should take ~10 s.
        let secs = transmission_secs(3_000, 2400.0);
        assert!((secs - 10.0).abs() < 1e-9);
        let p = products();
        let bundle = encode_bundle(&p, 100_000).unwrap();
        let t = transmission_secs(bundle.bytes(), 2400.0);
        assert!(t < 60.0 * 30.0, "product delivers within half an hour on Iridium: {t} s");
    }
}
