//! The near-real-time service budget.
//!
//! "Since this is potentially going to be a significant processing load,
//! but for limited periods of time as data is acquired and becomes
//! available, then processing resources will need to be on demand and
//! scalable to ensure efficiency." This module prices the end-to-end
//! chain — downlink, on-demand processing (via the cluster scheduler),
//! PCDSS delivery — against the timeliness requirement of maritime users.

use crate::PolarError;
use ee_cluster::scheduler::{ContainerRequest, JobRequest, Scheduler};
use ee_cluster::topology::ClusterSpec;
use ee_util::timeline::{SimDuration, SimTime};

/// Parameters of one NRT product cycle.
#[derive(Debug, Clone, Copy)]
pub struct NrtConfig {
    /// Scene payload in bytes (a Sentinel-1 EW scene ≈ 1 GB).
    pub scene_bytes: u64,
    /// Ground-station downlink rate, bytes/s.
    pub downlink_rate: f64,
    /// Per-scene processing FLOPs (classification + products).
    pub processing_flops: f64,
    /// Scenes arriving in the burst (a polar pass).
    pub scenes: usize,
    /// Processing nodes available on demand.
    pub nodes: usize,
    /// PCDSS bundle bytes.
    pub bundle_bytes: usize,
    /// Ship link rate, bits/s.
    pub ship_link_bps: f64,
}

impl Default for NrtConfig {
    fn default() -> Self {
        Self {
            scene_bytes: 1_000_000_000,
            downlink_rate: 60_000_000.0, // ~480 Mbit X-band
            processing_flops: 2.0e13,
            scenes: 6,
            nodes: 4,
            bundle_bytes: 6_000,
            ship_link_bps: 2400.0,
        }
    }
}

/// Breakdown of the product-cycle latency.
#[derive(Debug, Clone, Copy)]
pub struct NrtReport {
    /// Downlink time for the burst, seconds.
    pub downlink_secs: f64,
    /// Processing makespan (scheduler), seconds.
    pub processing_secs: f64,
    /// Delivery time to the ship, seconds.
    pub delivery_secs: f64,
}

impl NrtReport {
    /// Total end-to-end latency in seconds.
    pub fn total_secs(&self) -> f64 {
        self.downlink_secs + self.processing_secs + self.delivery_secs
    }

    /// Does the cycle meet a deadline (seconds)?
    pub fn meets(&self, deadline_secs: f64) -> bool {
        self.total_secs() <= deadline_secs
    }
}

/// Price one NRT cycle.
pub fn nrt_cycle(config: NrtConfig) -> Result<NrtReport, PolarError> {
    if config.scenes == 0 || config.nodes == 0 {
        return Err(PolarError::Config("scenes and nodes must be positive".into()));
    }
    // Downlink: the pass's scenes arrive serially on the station link.
    let downlink_secs = config.scenes as f64 * config.scene_bytes as f64 / config.downlink_rate;
    // Processing: one 1-GPU container per scene on the on-demand cluster.
    let spec = ClusterSpec::flat(config.nodes);
    let per_scene_secs = config.processing_flops / spec.node.gpu_flops;
    let mut scheduler = Scheduler::new(spec);
    for i in 0..config.scenes {
        scheduler
            .submit(
                SimTime::ZERO,
                JobRequest {
                    name: format!("scene-{i}"),
                    containers: 1,
                    each: ContainerRequest {
                        cpus: 4,
                        gpus: 1,
                        runtime: SimDuration::from_secs(per_scene_secs),
                    },
                    gang: false,
                },
            )
            .map_err(|e| PolarError::Config(e.to_string()))?;
    }
    let reports = scheduler.run();
    let processing_secs = reports
        .iter()
        .map(|r| r.finished.as_secs())
        .fold(0.0, f64::max);
    let delivery_secs = config.bundle_bytes as f64 * 8.0 / config.ship_link_bps;
    Ok(NrtReport {
        downlink_secs,
        processing_secs,
        delivery_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cycle_meets_three_hours() {
        let r = nrt_cycle(NrtConfig::default()).unwrap();
        assert!(r.meets(3.0 * 3600.0), "total {} s", r.total_secs());
        assert!(r.downlink_secs > 0.0 && r.processing_secs > 0.0 && r.delivery_secs > 0.0);
    }

    #[test]
    fn more_nodes_shrink_processing() {
        let slow = nrt_cycle(NrtConfig {
            nodes: 1,
            ..NrtConfig::default()
        })
        .unwrap();
        let fast = nrt_cycle(NrtConfig {
            nodes: 6,
            ..NrtConfig::default()
        })
        .unwrap();
        assert!(
            fast.processing_secs < slow.processing_secs / 3.0,
            "on-demand scale-out: {} vs {}",
            slow.processing_secs,
            fast.processing_secs
        );
        // Downlink and delivery are unchanged.
        assert_eq!(fast.downlink_secs, slow.downlink_secs);
        assert_eq!(fast.delivery_secs, slow.delivery_secs);
    }

    #[test]
    fn slow_ship_link_dominates_small_bundles() {
        let r = nrt_cycle(NrtConfig {
            bundle_bytes: 60_000, // too big for the link
            ..NrtConfig::default()
        })
        .unwrap();
        assert!(r.delivery_secs > 100.0, "delivery {} s", r.delivery_secs);
    }

    #[test]
    fn config_validation() {
        assert!(nrt_cycle(NrtConfig {
            scenes: 0,
            ..NrtConfig::default()
        })
        .is_err());
        assert!(nrt_cycle(NrtConfig {
            nodes: 0,
            ..NrtConfig::default()
        })
        .is_err());
    }
}
