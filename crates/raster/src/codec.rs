//! Compact binary raster encoding.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   u32   0x45455254  ("EERT")
//! version u8    1
//! dtype   u8    Pixel::TYPE_TAG
//! flags   u8    bit0 = RLE-compressed payload
//! _pad    u8
//! cols    u32
//! rows    u32
//! origin_x f64 | origin_y f64 | pixel_size f64
//! payload  ...  raw row-major pixels, or RLE runs of (count u16, pixel)
//! ```
//!
//! RLE pays off on label rasters (large uniform fields / ice classes); the
//! encoder picks whichever representation is smaller. This codec is the
//! payload format for the HopsFS-file experiments (E10) and the PCDSS
//! product encoder (E12).

use crate::raster::{GeoTransform, Pixel, Raster};
use crate::RasterError;

/// Little-endian writes onto a plain `Vec<u8>` (what this codec needs
/// from the former external buffer crate).
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_f64_le(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian reads that advance the slice. The decoder checks
/// lengths before calling these, so out-of-bounds indexing cannot fire.
trait GetLe {
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_f64_le(&mut self) -> f64;
    fn advance(&mut self, n: usize);
}

impl GetLe for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

const MAGIC: u32 = 0x4545_5254;
const VERSION: u8 = 1;
const FLAG_RLE: u8 = 0b0000_0001;

/// Payload bytes emitted per chunk by the incremental encoders (a run may
/// overshoot slightly; runs are never split across chunks).
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Size of the RLE payload in bytes, computed by scanning runs without
/// materialising them — how the encoders choose raw vs RLE up front.
fn rle_size<T: Pixel>(data: &[T]) -> usize {
    let mut runs = 0usize;
    let mut i = 0;
    while i < data.len() {
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < u16::MAX as usize {
            run += 1;
        }
        runs += 1;
        i += run;
    }
    runs * (2 + T::BYTES)
}

/// The 40-byte header for a raster with the given payload `flags`.
fn header_bytes<T: Pixel>(raster: &Raster<T>, flags: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    out.put_u32_le(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(T::TYPE_TAG);
    out.put_u8(flags);
    out.put_u8(0);
    out.put_u32_le(raster.cols() as u32);
    out.put_u32_le(raster.rows() as u32);
    let t = raster.transform();
    out.put_f64_le(t.origin_x);
    out.put_f64_le(t.origin_y);
    out.put_f64_le(t.pixel_size);
    out
}

/// Append payload bytes for pixels starting at `*pos` until `buf` holds
/// at least [`CHUNK_BYTES`] or the data is exhausted. RLE runs are
/// emitted whole, so chunk boundaries never split a run and the
/// concatenated chunks are byte-identical to a one-shot encode.
fn fill_payload<T: Pixel>(data: &[T], rle: bool, pos: &mut usize, buf: &mut Vec<u8>) {
    while *pos < data.len() && buf.len() < CHUNK_BYTES {
        if rle {
            let v = data[*pos];
            let mut run = 1usize;
            while *pos + run < data.len() && data[*pos + run] == v && run < u16::MAX as usize {
                run += 1;
            }
            buf.put_u16_le(run as u16);
            v.write_le(buf);
            *pos += run;
        } else {
            data[*pos].write_le(buf);
            *pos += 1;
        }
    }
}

/// Encode a raster; chooses raw or RLE, whichever is smaller. A
/// `Vec<u8>` wrapper over [`encode_into`].
pub fn encode<T: Pixel>(raster: &Raster<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + raster.data().len() * T::BYTES);
    encode_into(raster, &mut out).expect("writes to a Vec cannot fail");
    out
}

/// Encode a raster into any sink, [`CHUNK_BYTES`]-sized write at a time,
/// without materialising the payload. The representation choice (raw vs
/// RLE) is made up front by scanning run lengths, so the output is
/// byte-identical to [`encode`].
pub fn encode_into<T: Pixel, W: std::io::Write>(
    raster: &Raster<T>,
    w: &mut W,
) -> std::io::Result<()> {
    let data = raster.data();
    let rle = rle_size::<T>(data) < data.len() * T::BYTES;
    w.write_all(&header_bytes(raster, if rle { FLAG_RLE } else { 0 }))?;
    let mut pos = 0usize;
    let mut buf = Vec::with_capacity(CHUNK_BYTES + 2 + T::BYTES);
    while pos < data.len() {
        buf.clear();
        fill_payload(data, rle, &mut pos, &mut buf);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// A pull-based producer of encoded-raster chunks: the first chunk opens
/// with the 40-byte header, then payload flows in ~[`CHUNK_BYTES`]
/// pieces. Owns the raster, so a serving tier can hold one inside a
/// response body without lifetimes. Concatenating every chunk equals
/// [`encode`] byte-for-byte.
pub struct EncodeChunks<T: Pixel> {
    raster: Raster<T>,
    rle: bool,
    pos: usize,
    header_pending: bool,
    buf: Vec<u8>,
}

impl<T: Pixel> EncodeChunks<T> {
    /// Prepare to encode `raster` incrementally (the raw-vs-RLE scan
    /// happens here; no payload bytes are produced yet).
    pub fn new(raster: Raster<T>) -> Self {
        let rle = rle_size::<T>(raster.data()) < raster.data().len() * T::BYTES;
        EncodeChunks {
            raster,
            rle,
            pos: 0,
            header_pending: true,
            buf: Vec::with_capacity(CHUNK_BYTES + 64),
        }
    }

    /// The next chunk of encoded bytes, or `None` once exhausted. The
    /// returned slice is valid until the next call.
    pub fn next_chunk(&mut self) -> Option<&[u8]> {
        self.buf.clear();
        if self.header_pending {
            self.header_pending = false;
            let flags = if self.rle { FLAG_RLE } else { 0 };
            self.buf = header_bytes(&self.raster, flags);
            self.buf.reserve(CHUNK_BYTES + 64);
        }
        fill_payload(self.raster.data(), self.rle, &mut self.pos, &mut self.buf);
        if self.buf.is_empty() {
            None
        } else {
            Some(&self.buf)
        }
    }
}

/// Decode a raster previously produced by [`encode`]. The pixel type must
/// match the encoded `dtype`.
pub fn decode<T: Pixel>(mut buf: &[u8]) -> Result<Raster<T>, RasterError> {
    let fail = |msg: &str| RasterError::Codec(msg.to_string());
    if buf.len() < 40 {
        return Err(fail("buffer shorter than header"));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(RasterError::Codec(format!("unsupported version {version}")));
    }
    let dtype = buf.get_u8();
    if dtype != T::TYPE_TAG {
        return Err(RasterError::Codec(format!(
            "dtype mismatch: encoded {dtype}, requested {}",
            T::TYPE_TAG
        )));
    }
    let flags = buf.get_u8();
    let _pad = buf.get_u8();
    let cols = buf.get_u32_le() as usize;
    let rows = buf.get_u32_le() as usize;
    let origin_x = buf.get_f64_le();
    let origin_y = buf.get_f64_le();
    let pixel_size = buf.get_f64_le();
    if cols == 0 || rows == 0 {
        return Err(fail("zero dimension"));
    }
    if pixel_size.is_nan() || pixel_size <= 0.0 {
        return Err(fail("non-positive pixel size"));
    }
    let n = cols
        .checked_mul(rows)
        .ok_or_else(|| fail("dimension overflow"))?;
    let mut data: Vec<T> = Vec::with_capacity(n);
    if flags & FLAG_RLE != 0 {
        while data.len() < n {
            if buf.len() < 2 + T::BYTES {
                return Err(fail("truncated RLE payload"));
            }
            let run = buf.get_u16_le() as usize;
            if run == 0 {
                return Err(fail("zero-length RLE run"));
            }
            let v = T::read_le(&buf[..T::BYTES]);
            buf.advance(T::BYTES);
            if data.len() + run > n {
                return Err(fail("RLE run overflows raster"));
            }
            data.resize(data.len() + run, v);
        }
        if !buf.is_empty() {
            return Err(fail("trailing bytes after RLE payload"));
        }
    } else {
        if buf.len() != n * T::BYTES {
            return Err(RasterError::Codec(format!(
                "raw payload size {} != expected {}",
                buf.len(),
                n * T::BYTES
            )));
        }
        for i in 0..n {
            data.push(T::read_le(&buf[i * T::BYTES..i * T::BYTES + T::BYTES]));
        }
    }
    Raster::from_vec(cols, rows, GeoTransform::new(origin_x, origin_y, pixel_size), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    fn gt() -> GeoTransform {
        GeoTransform::new(500.0, 4_000.0, 10.0)
    }

    #[test]
    fn roundtrip_f32_noise() {
        let mut rng = Rng::seed_from(1);
        let r: Raster<f32> = Raster::from_fn(37, 23, gt(), |_, _| rng.f32());
        let bytes = encode(&r);
        let back: Raster<f32> = decode(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_u8_labels_compresses() {
        // A label raster with large uniform runs: RLE must win.
        let r: Raster<u8> = Raster::from_fn(128, 128, gt(), |c, _| if c < 100 { 3 } else { 7 });
        let bytes = encode(&r);
        assert!(bytes.len() < 128 * 128 / 4, "RLE should compress well, got {}", bytes.len());
        let back: Raster<u8> = decode(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_u16() {
        let r: Raster<u16> = Raster::from_fn(9, 9, gt(), |c, row| (row * 9 + c) as u16);
        let back: Raster<u16> = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn noise_picks_raw_encoding() {
        let mut rng = Rng::seed_from(2);
        let r: Raster<f32> = Raster::from_fn(64, 64, gt(), |_, _| rng.f32());
        let bytes = encode(&r);
        // Raw payload: 40-byte header + 64*64*4.
        assert_eq!(bytes.len(), 40 + 64 * 64 * 4);
    }

    #[test]
    fn long_runs_split_at_u16_max() {
        // 70_000 identical pixels exceed a single u16 run.
        let r: Raster<u8> = Raster::filled(700, 100, gt(), 5);
        let back: Raster<u8> = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let r: Raster<u8> = Raster::filled(4, 4, gt(), 1);
        let bytes = encode(&r);
        let res: Result<Raster<f32>, _> = decode(&bytes);
        assert!(matches!(res, Err(RasterError::Codec(_))));
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let r: Raster<u8> = Raster::filled(4, 4, gt(), 9);
        let good = encode(&r);
        // Too short.
        assert!(decode::<u8>(&good[..10]).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decode::<u8>(&bad).is_err());
        // Truncated payload.
        let cut = &good[..good.len() - 1];
        assert!(decode::<u8>(cut).is_err());
        // Bad version.
        let mut badv = good.clone();
        badv[4] = 99;
        assert!(decode::<u8>(&badv).is_err());
    }

    #[test]
    fn encode_into_and_chunks_match_encode_bytes() {
        let mut rng = Rng::seed_from(7);
        // Noise f32 (raw payload, > CHUNK_BYTES so several chunks) and a
        // runny u8 label raster (RLE payload).
        let noise: Raster<f32> = Raster::from_fn(200, 150, gt(), |_, _| rng.f32());
        let labels: Raster<u8> =
            Raster::from_fn(300, 300, gt(), |c, r| ((c / 90) + (r / 120)) as u8);
        fn check<T: crate::raster::Pixel>(r: &Raster<T>) {
            let oneshot = encode(r);
            let mut sunk = Vec::new();
            encode_into(r, &mut sunk).unwrap();
            assert_eq!(sunk, oneshot, "encode_into diverged");
            let mut chunks = EncodeChunks::new(r.clone());
            let mut cat = Vec::new();
            let mut n = 0usize;
            while let Some(c) = chunks.next_chunk() {
                assert!(!c.is_empty());
                cat.extend_from_slice(c);
                n += 1;
            }
            assert_eq!(cat, oneshot, "chunk concat diverged");
            if oneshot.len() > CHUNK_BYTES + 40 {
                assert!(n > 1, "large payload must span chunks, got {n}");
            }
            let back: Raster<T> = decode(&cat).unwrap();
            assert_eq!(&back, r);
        }
        check(&noise);
        check(&labels);
    }

    #[test]
    fn encode_into_propagates_sink_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let r: Raster<u8> = Raster::filled(8, 8, gt(), 3);
        assert!(encode_into(&r, &mut Failing).is_err());
    }

    #[test]
    fn transform_roundtrips_exactly() {
        let r: Raster<f32> = Raster::filled(3, 2, GeoTransform::new(-12.345, 67.89, 0.25), 1.0);
        let back: Raster<f32> = decode(&encode(&r)).unwrap();
        assert_eq!(back.transform(), r.transform());
        assert_eq!(back.envelope(), r.envelope());
    }
}
