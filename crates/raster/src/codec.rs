//! Compact binary raster encoding.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   u32   0x45455254  ("EERT")
//! version u8    1
//! dtype   u8    Pixel::TYPE_TAG
//! flags   u8    bit0 = RLE-compressed payload
//! _pad    u8
//! cols    u32
//! rows    u32
//! origin_x f64 | origin_y f64 | pixel_size f64
//! payload  ...  raw row-major pixels, or RLE runs of (count u16, pixel)
//! ```
//!
//! RLE pays off on label rasters (large uniform fields / ice classes); the
//! encoder picks whichever representation is smaller. This codec is the
//! payload format for the HopsFS-file experiments (E10) and the PCDSS
//! product encoder (E12).

use crate::raster::{GeoTransform, Pixel, Raster};
use crate::RasterError;

/// Little-endian writes onto a plain `Vec<u8>` (what this codec needs
/// from the former external buffer crate).
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_f64_le(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian reads that advance the slice. The decoder checks
/// lengths before calling these, so out-of-bounds indexing cannot fire.
trait GetLe {
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_f64_le(&mut self) -> f64;
    fn advance(&mut self, n: usize);
}

impl GetLe for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        *self = &self[2..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        *self = &self[4..];
        v
    }
    fn get_f64_le(&mut self) -> f64 {
        let v = f64::from_le_bytes(self[..8].try_into().unwrap());
        *self = &self[8..];
        v
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

const MAGIC: u32 = 0x4545_5254;
const VERSION: u8 = 1;
const FLAG_RLE: u8 = 0b0000_0001;

/// Encode a raster; chooses raw or RLE, whichever is smaller.
pub fn encode<T: Pixel>(raster: &Raster<T>) -> Vec<u8> {
    let raw = encode_payload_raw(raster);
    let rle = encode_payload_rle(raster);
    let (flags, payload) = if rle.len() < raw.len() {
        (FLAG_RLE, rle)
    } else {
        (0, raw)
    };
    let mut out = Vec::with_capacity(40 + payload.len());
    out.put_u32_le(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(T::TYPE_TAG);
    out.put_u8(flags);
    out.put_u8(0);
    out.put_u32_le(raster.cols() as u32);
    out.put_u32_le(raster.rows() as u32);
    let t = raster.transform();
    out.put_f64_le(t.origin_x);
    out.put_f64_le(t.origin_y);
    out.put_f64_le(t.pixel_size);
    out.extend_from_slice(&payload);
    out
}

fn encode_payload_raw<T: Pixel>(raster: &Raster<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(raster.data().len() * T::BYTES);
    for &v in raster.data() {
        v.write_le(&mut out);
    }
    out
}

fn encode_payload_rle<T: Pixel>(raster: &Raster<T>) -> Vec<u8> {
    let data = raster.data();
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < u16::MAX as usize {
            run += 1;
        }
        out.put_u16_le(run as u16);
        v.write_le(&mut out);
        i += run;
    }
    out
}

/// Decode a raster previously produced by [`encode`]. The pixel type must
/// match the encoded `dtype`.
pub fn decode<T: Pixel>(mut buf: &[u8]) -> Result<Raster<T>, RasterError> {
    let fail = |msg: &str| RasterError::Codec(msg.to_string());
    if buf.len() < 40 {
        return Err(fail("buffer shorter than header"));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(RasterError::Codec(format!("unsupported version {version}")));
    }
    let dtype = buf.get_u8();
    if dtype != T::TYPE_TAG {
        return Err(RasterError::Codec(format!(
            "dtype mismatch: encoded {dtype}, requested {}",
            T::TYPE_TAG
        )));
    }
    let flags = buf.get_u8();
    let _pad = buf.get_u8();
    let cols = buf.get_u32_le() as usize;
    let rows = buf.get_u32_le() as usize;
    let origin_x = buf.get_f64_le();
    let origin_y = buf.get_f64_le();
    let pixel_size = buf.get_f64_le();
    if cols == 0 || rows == 0 {
        return Err(fail("zero dimension"));
    }
    if pixel_size.is_nan() || pixel_size <= 0.0 {
        return Err(fail("non-positive pixel size"));
    }
    let n = cols
        .checked_mul(rows)
        .ok_or_else(|| fail("dimension overflow"))?;
    let mut data: Vec<T> = Vec::with_capacity(n);
    if flags & FLAG_RLE != 0 {
        while data.len() < n {
            if buf.len() < 2 + T::BYTES {
                return Err(fail("truncated RLE payload"));
            }
            let run = buf.get_u16_le() as usize;
            if run == 0 {
                return Err(fail("zero-length RLE run"));
            }
            let v = T::read_le(&buf[..T::BYTES]);
            buf.advance(T::BYTES);
            if data.len() + run > n {
                return Err(fail("RLE run overflows raster"));
            }
            data.resize(data.len() + run, v);
        }
        if !buf.is_empty() {
            return Err(fail("trailing bytes after RLE payload"));
        }
    } else {
        if buf.len() != n * T::BYTES {
            return Err(RasterError::Codec(format!(
                "raw payload size {} != expected {}",
                buf.len(),
                n * T::BYTES
            )));
        }
        for i in 0..n {
            data.push(T::read_le(&buf[i * T::BYTES..i * T::BYTES + T::BYTES]));
        }
    }
    Raster::from_vec(cols, rows, GeoTransform::new(origin_x, origin_y, pixel_size), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ee_util::Rng;

    fn gt() -> GeoTransform {
        GeoTransform::new(500.0, 4_000.0, 10.0)
    }

    #[test]
    fn roundtrip_f32_noise() {
        let mut rng = Rng::seed_from(1);
        let r: Raster<f32> = Raster::from_fn(37, 23, gt(), |_, _| rng.f32());
        let bytes = encode(&r);
        let back: Raster<f32> = decode(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_u8_labels_compresses() {
        // A label raster with large uniform runs: RLE must win.
        let r: Raster<u8> = Raster::from_fn(128, 128, gt(), |c, _| if c < 100 { 3 } else { 7 });
        let bytes = encode(&r);
        assert!(bytes.len() < 128 * 128 / 4, "RLE should compress well, got {}", bytes.len());
        let back: Raster<u8> = decode(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_u16() {
        let r: Raster<u16> = Raster::from_fn(9, 9, gt(), |c, row| (row * 9 + c) as u16);
        let back: Raster<u16> = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn noise_picks_raw_encoding() {
        let mut rng = Rng::seed_from(2);
        let r: Raster<f32> = Raster::from_fn(64, 64, gt(), |_, _| rng.f32());
        let bytes = encode(&r);
        // Raw payload: 40-byte header + 64*64*4.
        assert_eq!(bytes.len(), 40 + 64 * 64 * 4);
    }

    #[test]
    fn long_runs_split_at_u16_max() {
        // 70_000 identical pixels exceed a single u16 run.
        let r: Raster<u8> = Raster::filled(700, 100, gt(), 5);
        let back: Raster<u8> = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let r: Raster<u8> = Raster::filled(4, 4, gt(), 1);
        let bytes = encode(&r);
        let res: Result<Raster<f32>, _> = decode(&bytes);
        assert!(matches!(res, Err(RasterError::Codec(_))));
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let r: Raster<u8> = Raster::filled(4, 4, gt(), 9);
        let good = encode(&r);
        // Too short.
        assert!(decode::<u8>(&good[..10]).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decode::<u8>(&bad).is_err());
        // Truncated payload.
        let cut = &good[..good.len() - 1];
        assert!(decode::<u8>(cut).is_err());
        // Bad version.
        let mut badv = good.clone();
        badv[4] = 99;
        assert!(decode::<u8>(&badv).is_err());
    }

    #[test]
    fn transform_roundtrips_exactly() {
        let r: Raster<f32> = Raster::filled(3, 2, GeoTransform::new(-12.345, 67.89, 0.25), 1.0);
        let back: Raster<f32> = decode(&encode(&r)).unwrap();
        assert_eq!(back.transform(), r.transform());
        assert_eq!(back.envelope(), r.envelope());
    }
}
