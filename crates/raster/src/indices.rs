//! Spectral indices — the band arithmetic the application pipelines use.
//!
//! NDVI drives the crop-phenology features (A1), NDWI the water-availability
//! masks, NDSI the snow detection in the PROMET-lite model, and the VH/VV
//! ratio the sea-ice type discrimination (A2).

use crate::raster::Raster;
use crate::scene::{Band, Scene};
use crate::RasterError;

/// Normalised difference of two bands: `(a - b) / (a + b)`, 0 where the
/// denominator vanishes. Output in `[-1, 1]`.
pub fn normalized_difference(
    a: &Raster<f32>,
    b: &Raster<f32>,
) -> Result<Raster<f32>, RasterError> {
    a.zip_map(b, |x, y| {
        let denom = x + y;
        if denom.abs() < f32::EPSILON {
            0.0
        } else {
            ((x - y) / denom).clamp(-1.0, 1.0)
        }
    })
}

/// NDVI = (NIR − Red) / (NIR + Red) = (B08 − B04) / (B08 + B04).
pub fn ndvi(scene: &Scene) -> Result<Raster<f32>, RasterError> {
    normalized_difference(scene.band(Band::B08)?, scene.band(Band::B04)?)
}

/// NDWI (McFeeters) = (Green − NIR) / (Green + NIR) = (B03 − B08) / (B03 + B08).
pub fn ndwi(scene: &Scene) -> Result<Raster<f32>, RasterError> {
    normalized_difference(scene.band(Band::B03)?, scene.band(Band::B08)?)
}

/// NDSI = (Green − SWIR) / (Green + SWIR) = (B03 − B11) / (B03 + B11).
pub fn ndsi(scene: &Scene) -> Result<Raster<f32>, RasterError> {
    normalized_difference(scene.band(Band::B03)?, scene.band(Band::B11)?)
}

/// SAR cross-pol ratio VH − VV (bands are in dB, so the ratio is a
/// difference). Discriminates ice types by surface roughness.
pub fn sar_ratio(scene: &Scene) -> Result<Raster<f32>, RasterError> {
    scene
        .band(Band::VH)?
        .zip_map(scene.band(Band::VV)?, |vh, vv| vh - vv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::GeoTransform;
    use crate::scene::Mission;
    use ee_util::timeline::Date;

    fn gt() -> GeoTransform {
        GeoTransform::new(0.0, 20.0, 10.0)
    }

    fn scene(pairs: &[(Band, f32)]) -> Scene {
        let mut s = Scene::new("T", Mission::Sentinel2, Date::new(2017, 7, 1).unwrap());
        for &(b, v) in pairs {
            s.add_band(b, Raster::filled(2, 2, gt(), v)).unwrap();
        }
        s
    }

    #[test]
    fn ndvi_of_vegetation_is_high() {
        // Healthy vegetation: NIR 0.5, Red 0.05 → NDVI ≈ 0.818.
        let s = scene(&[(Band::B08, 0.5), (Band::B04, 0.05)]);
        let n = ndvi(&s).unwrap();
        assert!((n.at(0, 0) - 0.8181818).abs() < 1e-5);
    }

    #[test]
    fn ndvi_of_water_is_negative() {
        let s = scene(&[(Band::B08, 0.02), (Band::B04, 0.06)]);
        let n = ndvi(&s).unwrap();
        assert!(n.at(0, 0) < -0.3);
    }

    #[test]
    fn zero_denominator_yields_zero() {
        let s = scene(&[(Band::B08, 0.0), (Band::B04, 0.0)]);
        assert_eq!(ndvi(&s).unwrap().at(0, 0), 0.0);
    }

    #[test]
    fn ndwi_of_water_is_positive() {
        let s = scene(&[(Band::B03, 0.1), (Band::B08, 0.02)]);
        assert!(ndwi(&s).unwrap().at(1, 1) > 0.5);
    }

    #[test]
    fn ndsi_of_snow_is_positive() {
        // Snow: bright green band, dark SWIR.
        let s = scene(&[(Band::B03, 0.8), (Band::B11, 0.1)]);
        assert!(ndsi(&s).unwrap().at(0, 0) > 0.7);
    }

    #[test]
    fn missing_band_is_reported() {
        let s = scene(&[(Band::B08, 0.5)]);
        assert!(matches!(ndvi(&s), Err(RasterError::MissingBand(_))));
    }

    #[test]
    fn sar_ratio_is_db_difference() {
        let mut s = Scene::new("S1", Mission::Sentinel1, Date::new(2017, 2, 1).unwrap());
        s.add_band(Band::VV, Raster::filled(2, 2, gt(), -10.0)).unwrap();
        s.add_band(Band::VH, Raster::filled(2, 2, gt(), -18.0)).unwrap();
        let r = sar_ratio(&s).unwrap();
        assert_eq!(r.at(0, 0), -8.0);
    }

    #[test]
    fn output_is_bounded() {
        let s = scene(&[(Band::B08, 1.0), (Band::B04, -0.5)]);
        let n = ndvi(&s).unwrap();
        for (_, _, v) in n.iter() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
