#![warn(missing_docs)]
//! Raster substrate: multi-band Sentinel-like scenes, tiling, resampling
//! and time series.
//!
//! The paper's analytics (Challenge C1) operate on "long time series of
//! multispectral and SAR images". This crate supplies the raster layer those
//! pipelines run on:
//!
//! * [`raster`] — a typed 2-D grid with a geotransform mapping pixels to
//!   world coordinates;
//! * [`scene`] — a multi-band acquisition (Sentinel-2-like optical with the
//!   13 MSI bands, Sentinel-1-like SAR with VV/VH), with sensing date and
//!   footprint;
//! * [`indices`] — band arithmetic (NDVI, NDWI, NDSI, ratio);
//! * [`tile`] — fixed-size tiling and overview pyramids, the storage layout
//!   of the Copernicus archive analogue;
//! * [`resample`] — nearest / bilinear resampling between resolutions;
//! * [`stack`] — per-pixel time series over a sequence of scenes, and
//!   temporal composites;
//! * [`codec`] — a compact binary encoding used by `ee-hopsfs` file
//!   payloads and the PCDSS product encoder.

pub mod codec;
pub mod indices;
pub mod raster;
pub mod resample;
pub mod scene;
pub mod stack;
pub mod tile;

pub use raster::{GeoTransform, Raster};
pub use scene::{Band, Mission, Scene};

/// Errors produced by the raster layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RasterError {
    /// Two rasters that must share a shape do not.
    ShapeMismatch {
        /// Shape of the first operand.
        expected: (usize, usize),
        /// Shape of the offending operand.
        actual: (usize, usize),
    },
    /// Pixel access outside the raster.
    OutOfBounds {
        /// Requested column.
        col: usize,
        /// Requested row.
        row: usize,
        /// Raster dimensions.
        shape: (usize, usize),
    },
    /// A scene does not carry the requested band.
    MissingBand(String),
    /// Binary decode failure.
    Codec(String),
}

impl std::fmt::Display for RasterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RasterError::ShapeMismatch { expected, actual } => {
                write!(f, "raster shape mismatch: expected {expected:?}, got {actual:?}")
            }
            RasterError::OutOfBounds { col, row, shape } => {
                write!(f, "pixel ({col}, {row}) outside raster of shape {shape:?}")
            }
            RasterError::MissingBand(b) => write!(f, "scene has no band {b}"),
            RasterError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for RasterError {}
