//! The core raster grid type and its geotransform.

use crate::RasterError;
use ee_geo::{Envelope, Point};

/// Pixel types the raster layer supports.
///
/// The trait gives the resampling and codec code a lossless-ish float
/// round-trip; label rasters use `u8`/`u16`, measurements use `f32`.
pub trait Pixel: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// Convert to `f64` for arithmetic.
    fn to_f64(self) -> f64;
    /// Convert back from `f64` (saturating / rounding as appropriate).
    fn from_f64(v: f64) -> Self;
    /// The codec type tag (must be unique per implementation).
    const TYPE_TAG: u8;
    /// Bytes per pixel in the codec.
    const BYTES: usize;
    /// Encode one pixel little-endian.
    fn write_le(self, out: &mut Vec<u8>);
    /// Decode one pixel little-endian; `buf.len() == Self::BYTES`.
    fn read_le(buf: &[u8]) -> Self;
}

impl Pixel for u8 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v.round().clamp(0.0, u8::MAX as f64) as u8
    }
    const TYPE_TAG: u8 = 1;
    const BYTES: usize = 1;
    fn write_le(self, out: &mut Vec<u8>) {
        out.push(self);
    }
    fn read_le(buf: &[u8]) -> Self {
        buf[0]
    }
}

impl Pixel for u16 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v.round().clamp(0.0, u16::MAX as f64) as u16
    }
    const TYPE_TAG: u8 = 2;
    const BYTES: usize = 2;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(buf: &[u8]) -> Self {
        u16::from_le_bytes([buf[0], buf[1]])
    }
}

impl Pixel for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    const TYPE_TAG: u8 = 3;
    const BYTES: usize = 4;
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(buf: &[u8]) -> Self {
        f32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]])
    }
}

/// An affine north-up pixel-to-world mapping.
///
/// World x = `origin_x + col * pixel_size`; world y =
/// `origin_y - row * pixel_size` (row 0 is the *top* of the image, as in
/// GDAL). Square pixels only — Sentinel products are resampled to square
/// grids anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoTransform {
    /// World x of the *outer* edge of the leftmost pixel column.
    pub origin_x: f64,
    /// World y of the *outer* edge of the topmost pixel row.
    pub origin_y: f64,
    /// Pixel edge length in world units (> 0).
    pub pixel_size: f64,
}

impl GeoTransform {
    /// Construct; panics on non-positive pixel size.
    pub fn new(origin_x: f64, origin_y: f64, pixel_size: f64) -> Self {
        assert!(pixel_size > 0.0, "pixel size must be positive");
        Self {
            origin_x,
            origin_y,
            pixel_size,
        }
    }

    /// World coordinates of the centre of pixel (col, row).
    pub fn pixel_center(&self, col: usize, row: usize) -> Point {
        Point::new(
            self.origin_x + (col as f64 + 0.5) * self.pixel_size,
            self.origin_y - (row as f64 + 0.5) * self.pixel_size,
        )
    }

    /// Pixel (col, row) containing the world point, which may be outside
    /// the raster; the caller bounds-checks.
    pub fn world_to_pixel(&self, p: &Point) -> (i64, i64) {
        (
            ((p.x - self.origin_x) / self.pixel_size).floor() as i64,
            ((self.origin_y - p.y) / self.pixel_size).floor() as i64,
        )
    }

    /// The world envelope of a `cols x rows` raster under this transform.
    pub fn envelope(&self, cols: usize, rows: usize) -> Envelope {
        Envelope::new(
            self.origin_x,
            self.origin_y - rows as f64 * self.pixel_size,
            self.origin_x + cols as f64 * self.pixel_size,
            self.origin_y,
        )
    }
}

/// A dense, row-major 2-D grid of pixels with a geotransform.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster<T: Pixel> {
    cols: usize,
    rows: usize,
    transform: GeoTransform,
    data: Vec<T>,
}

impl<T: Pixel> Raster<T> {
    /// A raster filled with the default pixel value.
    pub fn filled(cols: usize, rows: usize, transform: GeoTransform, value: T) -> Self {
        assert!(cols > 0 && rows > 0, "raster must be non-empty");
        Self {
            cols,
            rows,
            transform,
            data: vec![value; cols * rows],
        }
    }

    /// A zero-filled raster.
    pub fn zeros(cols: usize, rows: usize, transform: GeoTransform) -> Self {
        Self::filled(cols, rows, transform, T::default())
    }

    /// Build per-pixel from a function of (col, row).
    pub fn from_fn(
        cols: usize,
        rows: usize,
        transform: GeoTransform,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        assert!(cols > 0 && rows > 0, "raster must be non-empty");
        let mut data = Vec::with_capacity(cols * rows);
        for row in 0..rows {
            for col in 0..cols {
                data.push(f(col, row));
            }
        }
        Self {
            cols,
            rows,
            transform,
            data,
        }
    }

    /// Wrap an existing buffer. `data.len()` must equal `cols * rows`.
    pub fn from_vec(
        cols: usize,
        rows: usize,
        transform: GeoTransform,
        data: Vec<T>,
    ) -> Result<Self, RasterError> {
        if data.len() != cols * rows {
            return Err(RasterError::ShapeMismatch {
                expected: (cols, rows),
                actual: (data.len(), 1),
            });
        }
        Ok(Self {
            cols,
            rows,
            transform,
            data,
        })
    }

    /// Columns (width).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows (height).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// (cols, rows).
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The geotransform.
    pub fn transform(&self) -> GeoTransform {
        self.transform
    }

    /// World-space footprint.
    pub fn envelope(&self) -> Envelope {
        self.transform.envelope(self.cols, self.rows)
    }

    /// Raw pixel slice, row-major.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw pixel slice.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Unchecked-get with bounds assertion in debug builds only: the hot
    /// path for inner loops that already iterate within bounds.
    #[inline]
    pub fn at(&self, col: usize, row: usize) -> T {
        debug_assert!(col < self.cols && row < self.rows);
        self.data[row * self.cols + col]
    }

    /// Checked pixel read.
    pub fn get(&self, col: usize, row: usize) -> Result<T, RasterError> {
        if col >= self.cols || row >= self.rows {
            return Err(RasterError::OutOfBounds {
                col,
                row,
                shape: self.shape(),
            });
        }
        Ok(self.data[row * self.cols + col])
    }

    /// Checked pixel write.
    pub fn set(&mut self, col: usize, row: usize, value: T) -> Result<(), RasterError> {
        if col >= self.cols || row >= self.rows {
            return Err(RasterError::OutOfBounds {
                col,
                row,
                shape: self.shape(),
            });
        }
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// Unchecked-set counterpart of [`Raster::at`].
    #[inline]
    pub fn put(&mut self, col: usize, row: usize, value: T) {
        debug_assert!(col < self.cols && row < self.rows);
        self.data[row * self.cols + col] = value;
    }

    /// Pixel value at a world point, or `None` outside the raster.
    pub fn sample_world(&self, p: &Point) -> Option<T> {
        let (c, r) = self.transform.world_to_pixel(p);
        if c < 0 || r < 0 || c as usize >= self.cols || r as usize >= self.rows {
            return None;
        }
        Some(self.at(c as usize, r as usize))
    }

    /// Apply a function to every pixel, producing a raster of a possibly
    /// different pixel type with the same georeferencing.
    pub fn map<U: Pixel>(&self, mut f: impl FnMut(T) -> U) -> Raster<U> {
        Raster {
            cols: self.cols,
            rows: self.rows,
            transform: self.transform,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combine two same-shaped rasters pixel-wise.
    pub fn zip_map<U: Pixel, V: Pixel>(
        &self,
        other: &Raster<U>,
        mut f: impl FnMut(T, U) -> V,
    ) -> Result<Raster<V>, RasterError> {
        if self.shape() != other.shape() {
            return Err(RasterError::ShapeMismatch {
                expected: self.shape(),
                actual: other.shape(),
            });
        }
        Ok(Raster {
            cols: self.cols,
            rows: self.rows,
            transform: self.transform,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Crop a pixel window (col0, row0, width, height); the geotransform is
    /// shifted so world coordinates are preserved.
    pub fn window(
        &self,
        col0: usize,
        row0: usize,
        width: usize,
        height: usize,
    ) -> Result<Raster<T>, RasterError> {
        if col0 + width > self.cols || row0 + height > self.rows || width == 0 || height == 0 {
            return Err(RasterError::OutOfBounds {
                col: col0 + width,
                row: row0 + height,
                shape: self.shape(),
            });
        }
        let transform = GeoTransform::new(
            self.transform.origin_x + col0 as f64 * self.transform.pixel_size,
            self.transform.origin_y - row0 as f64 * self.transform.pixel_size,
            self.transform.pixel_size,
        );
        let mut data = Vec::with_capacity(width * height);
        for r in row0..row0 + height {
            let start = r * self.cols + col0;
            data.extend_from_slice(&self.data[start..start + width]);
        }
        Ok(Raster {
            cols: width,
            rows: height,
            transform,
            data,
        })
    }

    /// Iterate `(col, row, value)` over all pixels, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i % cols, i / cols, v))
    }

    /// Mean of all pixels (as f64).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|v| v.to_f64()).sum::<f64>() / self.data.len() as f64
    }

    /// (min, max) of all pixels as f64.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in &self.data {
            let x = v.to_f64();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt() -> GeoTransform {
        GeoTransform::new(100.0, 200.0, 10.0)
    }

    #[test]
    fn geotransform_pixel_world_roundtrip() {
        let t = gt();
        let c = t.pixel_center(3, 4);
        assert_eq!(c, Point::new(135.0, 155.0));
        assert_eq!(t.world_to_pixel(&c), (3, 4));
        // Corners of pixel (0,0).
        assert_eq!(t.world_to_pixel(&Point::new(100.0, 199.9)), (0, 0));
        assert_eq!(t.world_to_pixel(&Point::new(99.9, 199.9)), (-1, 0));
    }

    #[test]
    fn envelope_of_raster() {
        let r: Raster<f32> = Raster::zeros(4, 3, gt());
        assert_eq!(r.envelope(), Envelope::new(100.0, 170.0, 140.0, 200.0));
    }

    #[test]
    fn get_set_bounds() {
        let mut r: Raster<u8> = Raster::zeros(4, 3, gt());
        r.set(3, 2, 7).unwrap();
        assert_eq!(r.get(3, 2).unwrap(), 7);
        assert!(matches!(r.get(4, 0), Err(RasterError::OutOfBounds { .. })));
        assert!(matches!(r.set(0, 3, 1), Err(RasterError::OutOfBounds { .. })));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let r: Raster<u16> = Raster::from_fn(3, 2, gt(), |c, row| (row * 10 + c) as u16);
        assert_eq!(r.data(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(r.at(2, 1), 12);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Raster::<u8>::from_vec(2, 2, gt(), vec![1, 2, 3]).is_err());
        assert!(Raster::<u8>::from_vec(2, 2, gt(), vec![1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn sample_world() {
        let r: Raster<u16> = Raster::from_fn(4, 3, gt(), |c, row| (row * 4 + c) as u16);
        assert_eq!(r.sample_world(&Point::new(135.0, 185.0)), Some(7), "pixel (3,1)");
        assert_eq!(r.sample_world(&Point::new(0.0, 0.0)), None);
        // Top-left pixel interior.
        assert_eq!(r.sample_world(&Point::new(101.0, 199.0)), Some(0));
    }

    #[test]
    fn map_and_zip_map() {
        let a: Raster<u8> = Raster::from_fn(2, 2, gt(), |c, r| (c + r) as u8);
        let b = a.map(|v| v as f32 * 2.0);
        assert_eq!(b.at(1, 1), 4.0);
        let c = a.zip_map(&b, |x, y| x as f32 + y).unwrap();
        assert_eq!(c.at(1, 1), 6.0);
        let small: Raster<u8> = Raster::zeros(1, 1, gt());
        assert!(a.zip_map(&small, |x, _| x).is_err());
    }

    #[test]
    fn window_preserves_world_coordinates() {
        let r: Raster<u16> = Raster::from_fn(10, 10, gt(), |c, row| (row * 10 + c) as u16);
        let w = r.window(2, 3, 4, 5).unwrap();
        assert_eq!(w.shape(), (4, 5));
        assert_eq!(w.at(0, 0), 32);
        // World centre of w's (0,0) equals r's (2,3).
        assert_eq!(w.transform().pixel_center(0, 0), r.transform().pixel_center(2, 3));
        assert!(r.window(8, 8, 4, 4).is_err());
        assert!(r.window(0, 0, 0, 1).is_err());
    }

    #[test]
    fn statistics() {
        let r: Raster<f32> = Raster::from_fn(2, 2, gt(), |c, row| (c + row) as f32);
        assert!((r.mean() - 1.0).abs() < 1e-12);
        assert_eq!(r.min_max(), (0.0, 2.0));
    }

    #[test]
    fn pixel_conversions_saturate() {
        assert_eq!(u8::from_f64(300.0), 255);
        assert_eq!(u8::from_f64(-5.0), 0);
        assert_eq!(u16::from_f64(70000.0), u16::MAX);
        assert_eq!(f32::from_f64(1.5), 1.5f32);
    }

    #[test]
    fn iter_yields_all_pixels() {
        let r: Raster<u8> = Raster::from_fn(3, 2, gt(), |c, row| (row * 3 + c) as u8);
        let v: Vec<(usize, usize, u8)> = r.iter().collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], (0, 0, 0));
        assert_eq!(v[5], (2, 1, 5));
    }

    #[test]
    #[should_panic(expected = "pixel size must be positive")]
    fn geotransform_rejects_bad_pixel_size() {
        GeoTransform::new(0.0, 0.0, 0.0);
    }
}
