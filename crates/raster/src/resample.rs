//! Resampling between resolutions.
//!
//! A1 runs the PROMET-lite model at 10 m while some inputs arrive at 20 m
//! or 60 m (as real Sentinel-2 bands do), and A2 composes 40 m SAR scenes
//! into 1 km WMO products; both paths go through these kernels.

use crate::raster::{GeoTransform, Pixel, Raster};

/// Resampling method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Nearest neighbour — categorical rasters (labels, classes).
    Nearest,
    /// Bilinear interpolation — continuous measurements.
    Bilinear,
}

/// Resample `src` onto a new grid of `cols x rows` pixels covering exactly
/// the same world extent.
pub fn resample<T: Pixel>(src: &Raster<T>, cols: usize, rows: usize, method: Method) -> Raster<T> {
    assert!(cols > 0 && rows > 0);
    let env = src.envelope();
    let pixel_size_x = env.width() / cols as f64;
    let pixel_size_y = env.height() / rows as f64;
    // Keep pixels square-ish in the transform by using x size; for the
    // workspace's equal-aspect use this is exact.
    let transform = GeoTransform::new(env.min_x, env.max_y, pixel_size_x);
    let sx = src.cols() as f64 / cols as f64;
    let sy = src.rows() as f64 / rows as f64;
    let _ = pixel_size_y;
    Raster::from_fn(cols, rows, transform, |c, r| {
        // Centre of the destination pixel in source pixel coordinates.
        let fx = (c as f64 + 0.5) * sx - 0.5;
        let fy = (r as f64 + 0.5) * sy - 0.5;
        match method {
            Method::Nearest => {
                let sc = fx.round().clamp(0.0, (src.cols() - 1) as f64) as usize;
                let sr = fy.round().clamp(0.0, (src.rows() - 1) as f64) as usize;
                src.at(sc, sr)
            }
            Method::Bilinear => {
                let x0 = fx.floor().clamp(0.0, (src.cols() - 1) as f64) as usize;
                let y0 = fy.floor().clamp(0.0, (src.rows() - 1) as f64) as usize;
                let x1 = (x0 + 1).min(src.cols() - 1);
                let y1 = (y0 + 1).min(src.rows() - 1);
                let tx = (fx - x0 as f64).clamp(0.0, 1.0);
                let ty = (fy - y0 as f64).clamp(0.0, 1.0);
                let v00 = src.at(x0, y0).to_f64();
                let v10 = src.at(x1, y0).to_f64();
                let v01 = src.at(x0, y1).to_f64();
                let v11 = src.at(x1, y1).to_f64();
                let top = v00 + tx * (v10 - v00);
                let bot = v01 + tx * (v11 - v01);
                T::from_f64(top + ty * (bot - top))
            }
        }
    })
}

/// Block-average `src` down by an integer `factor` (aggregation to coarser
/// products, e.g. 40 m backscatter → 1 km concentration cells).
pub fn aggregate<T: Pixel>(src: &Raster<T>, factor: usize) -> Raster<T> {
    assert!(factor > 0);
    let cols = src.cols().div_ceil(factor).max(1);
    let rows = src.rows().div_ceil(factor).max(1);
    let t = src.transform();
    let transform = GeoTransform::new(t.origin_x, t.origin_y, t.pixel_size * factor as f64);
    Raster::from_fn(cols, rows, transform, |c, r| {
        let mut sum = 0.0;
        let mut n = 0.0;
        for dr in 0..factor {
            for dc in 0..factor {
                let sc = c * factor + dc;
                let sr = r * factor + dr;
                if sc < src.cols() && sr < src.rows() {
                    sum += src.at(sc, sr).to_f64();
                    n += 1.0;
                }
            }
        }
        T::from_f64(sum / n)
    })
}

/// Fraction of pixels in each `factor x factor` block equal to `value`
/// (e.g. lead fraction inside a 1 km cell from a 40 m lead mask).
pub fn fraction_of<T: Pixel>(src: &Raster<T>, factor: usize, value: T) -> Raster<f32> {
    assert!(factor > 0);
    let cols = src.cols().div_ceil(factor).max(1);
    let rows = src.rows().div_ceil(factor).max(1);
    let t = src.transform();
    let transform = GeoTransform::new(t.origin_x, t.origin_y, t.pixel_size * factor as f64);
    Raster::from_fn(cols, rows, transform, |c, r| {
        let mut hits = 0.0f32;
        let mut n = 0.0f32;
        for dr in 0..factor {
            for dc in 0..factor {
                let sc = c * factor + dc;
                let sr = r * factor + dr;
                if sc < src.cols() && sr < src.rows() {
                    if src.at(sc, sr) == value {
                        hits += 1.0;
                    }
                    n += 1.0;
                }
            }
        }
        hits / n
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt() -> GeoTransform {
        GeoTransform::new(0.0, 8.0, 1.0)
    }

    #[test]
    fn nearest_upsample_replicates() {
        let src: Raster<u8> = Raster::from_fn(2, 2, gt(), |c, r| (r * 2 + c) as u8);
        let up = resample(&src, 4, 4, Method::Nearest);
        assert_eq!(up.at(0, 0), 0);
        assert_eq!(up.at(1, 1), 0);
        assert_eq!(up.at(2, 2), 3);
        assert_eq!(up.at(3, 0), 1);
        // World extent preserved.
        assert_eq!(up.envelope(), src.envelope());
    }

    #[test]
    fn bilinear_upsample_is_smooth() {
        let src: Raster<f32> = Raster::from_fn(2, 1, GeoTransform::new(0.0, 1.0, 1.0), |c, _| c as f32);
        let up = resample(&src, 4, 1, Method::Bilinear);
        let v: Vec<f32> = (0..4).map(|c| up.at(c, 0)).collect();
        // Monotone non-decreasing ramp from 0 to 1.
        assert!(v.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(v[0], 0.0);
        assert_eq!(v[3], 1.0);
        assert!((v[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn identity_resample_is_exact() {
        let src: Raster<f32> = Raster::from_fn(5, 5, gt(), |c, r| (r * 5 + c) as f32);
        for m in [Method::Nearest, Method::Bilinear] {
            let same = resample(&src, 5, 5, m);
            assert_eq!(same.data(), src.data(), "{m:?}");
        }
    }

    #[test]
    fn downsample_nearest_picks_centres() {
        let src: Raster<u8> = Raster::from_fn(4, 4, gt(), |c, r| (r * 4 + c) as u8);
        let down = resample(&src, 2, 2, Method::Nearest);
        assert_eq!(down.shape(), (2, 2));
        // Destination (0,0) centre maps to source (1.5, 1.5) → rounds to (2,2)=10? No:
        // fx = 0.5*2-0.5 = 0.5 → rounds to 1 (round-half-even not used; 0.5.round()=1).
        assert_eq!(down.at(0, 0), 5);
    }

    #[test]
    fn aggregate_means_blocks() {
        let src: Raster<f32> = Raster::from_fn(4, 4, gt(), |c, r| (r * 4 + c) as f32);
        let a = aggregate(&src, 2);
        assert_eq!(a.shape(), (2, 2));
        assert_eq!(a.at(0, 0), 2.5);
        assert_eq!(a.at(1, 1), (10.0 + 11.0 + 14.0 + 15.0) / 4.0);
        assert_eq!(a.transform().pixel_size, 2.0);
    }

    #[test]
    fn aggregate_handles_non_divisible() {
        let src: Raster<f32> = Raster::from_fn(5, 5, gt(), |_, _| 3.0);
        let a = aggregate(&src, 2);
        assert_eq!(a.shape(), (3, 3));
        for (_, _, v) in a.iter() {
            assert_eq!(v, 3.0);
        }
    }

    #[test]
    fn fraction_counts_matching_pixels() {
        let src: Raster<u8> = Raster::from_fn(4, 4, gt(), |c, _| if c < 2 { 1 } else { 0 });
        let f = fraction_of(&src, 2, 1u8);
        assert_eq!(f.at(0, 0), 1.0);
        assert_eq!(f.at(1, 0), 0.0);
        let g = fraction_of(&src, 4, 1u8);
        assert_eq!(g.at(0, 0), 0.5);
    }
}
