//! Multi-band scenes modelled on Sentinel-1 and Sentinel-2 acquisitions.

use crate::raster::Raster;
use crate::RasterError;
use ee_geo::Envelope;
use ee_util::timeline::Date;

/// The spectral / polarimetric bands the workspace knows about.
///
/// The 13 `B*` bands mirror the Sentinel-2 MSI instrument (the EuroSat
/// benchmark of Challenge C2 uses all 13); `VV`/`VH` mirror Sentinel-1 IW
/// dual-pol SAR backscatter (in dB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Band {
    B01,
    B02,
    B03,
    B04,
    B05,
    B06,
    B07,
    B08,
    B8A,
    B09,
    B10,
    B11,
    B12,
    VV,
    VH,
}

impl Band {
    /// All 13 Sentinel-2 MSI bands, in instrument order.
    pub const S2_ALL: [Band; 13] = [
        Band::B01,
        Band::B02,
        Band::B03,
        Band::B04,
        Band::B05,
        Band::B06,
        Band::B07,
        Band::B08,
        Band::B8A,
        Band::B09,
        Band::B10,
        Band::B11,
        Band::B12,
    ];

    /// The Sentinel-1 dual-pol SAR bands.
    pub const S1_ALL: [Band; 2] = [Band::VV, Band::VH];

    /// Band name as products label it.
    pub fn name(self) -> &'static str {
        match self {
            Band::B01 => "B01",
            Band::B02 => "B02",
            Band::B03 => "B03",
            Band::B04 => "B04",
            Band::B05 => "B05",
            Band::B06 => "B06",
            Band::B07 => "B07",
            Band::B08 => "B08",
            Band::B8A => "B8A",
            Band::B09 => "B09",
            Band::B10 => "B10",
            Band::B11 => "B11",
            Band::B12 => "B12",
            Band::VV => "VV",
            Band::VH => "VH",
        }
    }

    /// Centre wavelength in nanometres (0 for SAR bands).
    pub fn wavelength_nm(self) -> f64 {
        match self {
            Band::B01 => 443.0,
            Band::B02 => 490.0,
            Band::B03 => 560.0,
            Band::B04 => 665.0,
            Band::B05 => 705.0,
            Band::B06 => 740.0,
            Band::B07 => 783.0,
            Band::B08 => 842.0,
            Band::B8A => 865.0,
            Band::B09 => 945.0,
            Band::B10 => 1375.0,
            Band::B11 => 1610.0,
            Band::B12 => 2190.0,
            Band::VV | Band::VH => 0.0,
        }
    }
}

/// The observing mission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mission {
    /// Sentinel-1-like C-band SAR.
    Sentinel1,
    /// Sentinel-2-like multispectral optical.
    Sentinel2,
}

impl Mission {
    /// Mission name string used in product identifiers.
    pub fn name(self) -> &'static str {
        match self {
            Mission::Sentinel1 => "S1",
            Mission::Sentinel2 => "S2",
        }
    }
}

/// One acquisition: a set of co-registered `f32` bands plus metadata.
///
/// Invariant: all bands share the same shape and geotransform (checked on
/// insertion).
#[derive(Debug, Clone)]
pub struct Scene {
    /// Product identifier, e.g. `S2_T34SGH_20170615_0`.
    pub id: String,
    /// Observing mission.
    pub mission: Mission,
    /// Sensing date.
    pub sensing: Date,
    bands: Vec<(Band, Raster<f32>)>,
}

impl Scene {
    /// An empty scene shell; add bands with [`Scene::add_band`].
    pub fn new(id: impl Into<String>, mission: Mission, sensing: Date) -> Self {
        Self {
            id: id.into(),
            mission,
            sensing,
            bands: Vec::new(),
        }
    }

    /// Add a band; shape/transform must match any existing band and the
    /// band must not already be present.
    pub fn add_band(&mut self, band: Band, raster: Raster<f32>) -> Result<(), RasterError> {
        if let Some((_, first)) = self.bands.first() {
            if first.shape() != raster.shape() {
                return Err(RasterError::ShapeMismatch {
                    expected: first.shape(),
                    actual: raster.shape(),
                });
            }
            if first.transform() != raster.transform() {
                return Err(RasterError::Codec(format!(
                    "band {} geotransform differs from scene", band.name()
                )));
            }
        }
        if self.bands.iter().any(|(b, _)| *b == band) {
            return Err(RasterError::Codec(format!(
                "duplicate band {} in scene {}", band.name(), self.id
            )));
        }
        self.bands.push((band, raster));
        Ok(())
    }

    /// The band raster, if present.
    pub fn band(&self, band: Band) -> Result<&Raster<f32>, RasterError> {
        self.bands
            .iter()
            .find(|(b, _)| *b == band)
            .map(|(_, r)| r)
            .ok_or_else(|| RasterError::MissingBand(band.name().to_string()))
    }

    /// True when the band is present.
    pub fn has_band(&self, band: Band) -> bool {
        self.bands.iter().any(|(b, _)| *b == band)
    }

    /// Bands present, in insertion order.
    pub fn bands(&self) -> impl Iterator<Item = (Band, &Raster<f32>)> {
        self.bands.iter().map(|(b, r)| (*b, r))
    }

    /// Number of bands.
    pub fn num_bands(&self) -> usize {
        self.bands.len()
    }

    /// (cols, rows) of the scene's grid. Zero for an empty shell.
    pub fn shape(&self) -> (usize, usize) {
        self.bands
            .first()
            .map(|(_, r)| r.shape())
            .unwrap_or((0, 0))
    }

    /// World footprint (empty envelope for an empty shell).
    pub fn footprint(&self) -> Envelope {
        self.bands
            .first()
            .map(|(_, r)| r.envelope())
            .unwrap_or_else(Envelope::empty)
    }

    /// Uncompressed size in bytes of the pixel payload.
    pub fn payload_bytes(&self) -> u64 {
        let (c, r) = self.shape();
        (c * r * 4 * self.num_bands()) as u64
    }

    /// Extract the per-band pixel vector at (col, row), ordered as the
    /// scene's bands. The feature vector fed to per-pixel classifiers.
    pub fn pixel_spectrum(&self, col: usize, row: usize) -> Result<Vec<f32>, RasterError> {
        self.bands
            .iter()
            .map(|(_, r)| r.get(col, row))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::GeoTransform;

    fn date() -> Date {
        Date::new(2017, 6, 15).unwrap()
    }

    fn scene_with(bands: &[Band]) -> Scene {
        let mut s = Scene::new("S2_TEST", Mission::Sentinel2, date());
        for &b in bands {
            s.add_band(b, Raster::filled(4, 4, GeoTransform::new(0.0, 40.0, 10.0), 0.5))
                .unwrap();
        }
        s
    }

    #[test]
    fn band_metadata() {
        assert_eq!(Band::S2_ALL.len(), 13, "the 13 MSI bands of EuroSat");
        assert_eq!(Band::B04.name(), "B04");
        assert_eq!(Band::B08.wavelength_nm(), 842.0);
        assert_eq!(Band::VV.wavelength_nm(), 0.0);
        assert_eq!(Mission::Sentinel1.name(), "S1");
    }

    #[test]
    fn add_and_get_bands() {
        let s = scene_with(&[Band::B04, Band::B08]);
        assert_eq!(s.num_bands(), 2);
        assert!(s.has_band(Band::B04));
        assert!(!s.has_band(Band::B02));
        assert!(s.band(Band::B08).is_ok());
        assert!(matches!(s.band(Band::B02), Err(RasterError::MissingBand(_))));
    }

    #[test]
    fn rejects_duplicate_band() {
        let mut s = scene_with(&[Band::B04]);
        let r = Raster::filled(4, 4, GeoTransform::new(0.0, 40.0, 10.0), 0.1);
        assert!(s.add_band(Band::B04, r).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut s = scene_with(&[Band::B04]);
        let r = Raster::filled(5, 4, GeoTransform::new(0.0, 40.0, 10.0), 0.1);
        assert!(matches!(
            s.add_band(Band::B08, r),
            Err(RasterError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_transform_mismatch() {
        let mut s = scene_with(&[Band::B04]);
        let r = Raster::filled(4, 4, GeoTransform::new(5.0, 40.0, 10.0), 0.1);
        assert!(s.add_band(Band::B08, r).is_err());
    }

    #[test]
    fn footprint_and_payload() {
        let s = scene_with(&[Band::B04, Band::B08, Band::B11]);
        assert_eq!(s.footprint(), Envelope::new(0.0, 0.0, 40.0, 40.0));
        assert_eq!(s.payload_bytes(), (4 * 4 * 4 * 3) as u64);
        assert_eq!(s.shape(), (4, 4));
        let empty = Scene::new("X", Mission::Sentinel1, date());
        assert!(empty.footprint().is_empty());
        assert_eq!(empty.payload_bytes(), 0);
    }

    #[test]
    fn pixel_spectrum_order_matches_bands() {
        let mut s = Scene::new("S", Mission::Sentinel2, date());
        let gt = GeoTransform::new(0.0, 20.0, 10.0);
        s.add_band(Band::B02, Raster::filled(2, 2, gt, 0.1)).unwrap();
        s.add_band(Band::B03, Raster::filled(2, 2, gt, 0.2)).unwrap();
        let v = s.pixel_spectrum(1, 1).unwrap();
        assert_eq!(v, vec![0.1, 0.2]);
        assert!(s.pixel_spectrum(2, 0).is_err());
    }
}
