//! Time series of scenes and temporal composites.
//!
//! "The temporal dimension plays a very important role for the
//! characterization of the information content of the image (e.g., land
//! cover or sea ice) and its dynamics" (Challenge C1). The crop classifier
//! consumes per-pixel NDVI *profiles* across a season; the sea-ice pipeline
//! consumes backscatter series. [`TimeStack`] provides both.

use crate::indices;
use crate::raster::Raster;
use crate::scene::{Band, Scene};
use crate::RasterError;
use ee_util::timeline::Date;

/// A date-ordered sequence of co-registered scenes.
#[derive(Debug, Clone, Default)]
pub struct TimeStack {
    scenes: Vec<Scene>,
}

impl TimeStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a scene; the stack stays sorted by sensing date. Scenes must
    /// share the grid of the first inserted scene.
    pub fn push(&mut self, scene: Scene) -> Result<(), RasterError> {
        if let Some(first) = self.scenes.first() {
            if first.shape() != scene.shape() {
                return Err(RasterError::ShapeMismatch {
                    expected: first.shape(),
                    actual: scene.shape(),
                });
            }
        }
        let pos = self
            .scenes
            .partition_point(|s| s.sensing <= scene.sensing);
        self.scenes.insert(pos, scene);
        Ok(())
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// True when no scenes are loaded.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The scenes in date order.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Sensing dates in order.
    pub fn dates(&self) -> Vec<Date> {
        self.scenes.iter().map(|s| s.sensing).collect()
    }

    /// Restrict to scenes within `[from, to]` (inclusive).
    pub fn between(&self, from: Date, to: Date) -> TimeStack {
        TimeStack {
            scenes: self
                .scenes
                .iter()
                .filter(|s| s.sensing >= from && s.sensing <= to)
                .cloned()
                .collect(),
        }
    }

    /// Per-pixel values of one band across time: the temporal profile fed
    /// to the temporal CNN. Errors if any scene lacks the band.
    pub fn pixel_series(&self, band: Band, col: usize, row: usize) -> Result<Vec<f32>, RasterError> {
        self.scenes
            .iter()
            .map(|s| s.band(band)?.get(col, row))
            .collect()
    }

    /// Per-pixel NDVI profile across time (optical scenes).
    pub fn ndvi_series(&self, col: usize, row: usize) -> Result<Vec<f32>, RasterError> {
        self.scenes
            .iter()
            .map(|s| {
                let nir = s.band(Band::B08)?.get(col, row)?;
                let red = s.band(Band::B04)?.get(col, row)?;
                let denom = nir + red;
                Ok(if denom.abs() < f32::EPSILON {
                    0.0
                } else {
                    ((nir - red) / denom).clamp(-1.0, 1.0)
                })
            })
            .collect()
    }

    /// Median composite of a band: the standard cloud-robust temporal
    /// aggregation. Errors on an empty stack or missing band.
    pub fn median_composite(&self, band: Band) -> Result<Raster<f32>, RasterError> {
        let first = self
            .scenes
            .first()
            .ok_or_else(|| RasterError::Codec("median of empty stack".into()))?;
        let template = first.band(band)?;
        let (cols, rows) = template.shape();
        let mut values = Vec::with_capacity(self.scenes.len());
        let mut out = Raster::zeros(cols, rows, template.transform());
        for r in 0..rows {
            for c in 0..cols {
                values.clear();
                for s in &self.scenes {
                    values.push(s.band(band)?.at(c, r));
                }
                values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let m = if values.len() % 2 == 1 {
                    values[values.len() / 2]
                } else {
                    (values[values.len() / 2 - 1] + values[values.len() / 2]) / 2.0
                };
                out.put(c, r, m);
            }
        }
        Ok(out)
    }

    /// Maximum-NDVI composite: for each pixel, the NDVI at its greenest
    /// observation (the classic vegetation compositing rule).
    pub fn max_ndvi_composite(&self) -> Result<Raster<f32>, RasterError> {
        let first = self
            .scenes
            .first()
            .ok_or_else(|| RasterError::Codec("composite of empty stack".into()))?;
        let mut best = indices::ndvi(first)?;
        for s in &self.scenes[1..] {
            let n = indices::ndvi(s)?;
            best = best.zip_map(&n, |a, b| a.max(b))?;
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::GeoTransform;
    use crate::scene::Mission;

    fn gt() -> GeoTransform {
        GeoTransform::new(0.0, 20.0, 10.0)
    }

    fn optical(id: &str, date: Date, nir: f32, red: f32) -> Scene {
        let mut s = Scene::new(id, Mission::Sentinel2, date);
        s.add_band(Band::B08, Raster::filled(2, 2, gt(), nir)).unwrap();
        s.add_band(Band::B04, Raster::filled(2, 2, gt(), red)).unwrap();
        s
    }

    fn d(m: u32, day: u32) -> Date {
        Date::new(2017, m, day).unwrap()
    }

    #[test]
    fn push_keeps_date_order() {
        let mut ts = TimeStack::new();
        ts.push(optical("b", d(6, 1), 0.5, 0.1)).unwrap();
        ts.push(optical("a", d(4, 1), 0.2, 0.1)).unwrap();
        ts.push(optical("c", d(8, 1), 0.4, 0.1)).unwrap();
        let dates = ts.dates();
        assert_eq!(dates, vec![d(4, 1), d(6, 1), d(8, 1)]);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn push_rejects_shape_mismatch() {
        let mut ts = TimeStack::new();
        ts.push(optical("a", d(4, 1), 0.2, 0.1)).unwrap();
        let mut bad = Scene::new("bad", Mission::Sentinel2, d(5, 1));
        bad.add_band(Band::B08, Raster::filled(3, 3, gt(), 0.5)).unwrap();
        assert!(ts.push(bad).is_err());
    }

    #[test]
    fn between_filters_inclusive() {
        let mut ts = TimeStack::new();
        for (i, m) in [4u32, 5, 6, 7].iter().enumerate() {
            ts.push(optical(&format!("s{i}"), d(*m, 1), 0.3, 0.1)).unwrap();
        }
        let sub = ts.between(d(5, 1), d(6, 30));
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn pixel_series_follows_time() {
        let mut ts = TimeStack::new();
        ts.push(optical("a", d(4, 1), 0.1, 0.1)).unwrap();
        ts.push(optical("b", d(6, 1), 0.6, 0.1)).unwrap();
        let series = ts.pixel_series(Band::B08, 0, 0).unwrap();
        assert_eq!(series, vec![0.1, 0.6]);
        let ndvi = ts.ndvi_series(1, 1).unwrap();
        assert!(ndvi[0] < ndvi[1], "greener later in season");
    }

    #[test]
    fn median_composite_is_robust_to_outlier() {
        let mut ts = TimeStack::new();
        ts.push(optical("a", d(4, 1), 0.30, 0.1)).unwrap();
        ts.push(optical("b", d(5, 1), 0.32, 0.1)).unwrap();
        ts.push(optical("cloudy", d(6, 1), 0.95, 0.1)).unwrap(); // outlier
        let m = ts.median_composite(Band::B08).unwrap();
        assert_eq!(m.at(0, 0), 0.32);
        // Even-count median averages the middle pair.
        let mut ts2 = TimeStack::new();
        ts2.push(optical("a", d(4, 1), 0.2, 0.1)).unwrap();
        ts2.push(optical("b", d(5, 1), 0.4, 0.1)).unwrap();
        let m2 = ts2.median_composite(Band::B08).unwrap();
        assert!((m2.at(0, 0) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn max_ndvi_composite_picks_peak() {
        let mut ts = TimeStack::new();
        ts.push(optical("a", d(4, 1), 0.2, 0.2)).unwrap(); // ndvi 0
        ts.push(optical("b", d(6, 1), 0.8, 0.1)).unwrap(); // ndvi high
        ts.push(optical("c", d(9, 1), 0.3, 0.2)).unwrap();
        let c = ts.max_ndvi_composite().unwrap();
        assert!((c.at(0, 0) - (0.8 - 0.1) / (0.8 + 0.1)).abs() < 1e-6);
    }

    #[test]
    fn empty_stack_errors() {
        let ts = TimeStack::new();
        assert!(ts.median_composite(Band::B08).is_err());
        assert!(ts.max_ndvi_composite().is_err());
        assert!(ts.is_empty());
    }
}
