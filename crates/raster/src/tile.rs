//! Fixed-size tiling and overview pyramids.
//!
//! The Copernicus archive analogue stores scenes as fixed-size tiles (the
//! layout HopsFS files carry in E10), and the EuroSat-style patch datasets
//! of Challenge C2 are cut with the same machinery.

use crate::raster::{Pixel, Raster};

/// A tile cut from a parent raster.
#[derive(Debug, Clone)]
pub struct Tile<T: Pixel> {
    /// Tile column index in the tile grid.
    pub tx: usize,
    /// Tile row index in the tile grid.
    pub ty: usize,
    /// The pixel data (edge tiles may be smaller than the tile size).
    pub raster: Raster<T>,
}

/// Cut `raster` into tiles of at most `tile_size x tile_size` pixels.
/// Tiles are returned row-major over the tile grid; edge tiles are clipped,
/// never padded, so pixel data round-trips exactly.
pub fn tile<T: Pixel>(raster: &Raster<T>, tile_size: usize) -> Vec<Tile<T>> {
    assert!(tile_size > 0, "tile size must be positive");
    let tiles_x = raster.cols().div_ceil(tile_size);
    let tiles_y = raster.rows().div_ceil(tile_size);
    let mut out = Vec::with_capacity(tiles_x * tiles_y);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let col0 = tx * tile_size;
            let row0 = ty * tile_size;
            let w = tile_size.min(raster.cols() - col0);
            let h = tile_size.min(raster.rows() - row0);
            let window = raster
                .window(col0, row0, w, h)
                .expect("tile window within parent");
            out.push(Tile {
                tx,
                ty,
                raster: window,
            });
        }
    }
    out
}

/// Reassemble tiles produced by [`tile`] back into the parent raster.
/// Tiles may be given in any order; the parent shape is inferred.
pub fn untile<T: Pixel>(tiles: &[Tile<T>], tile_size: usize) -> Option<Raster<T>> {
    if tiles.is_empty() {
        return None;
    }
    let tiles_x = tiles.iter().map(|t| t.tx).max()? + 1;
    let tiles_y = tiles.iter().map(|t| t.ty).max()? + 1;
    // Total size: full tiles plus the edge tile extents.
    let right_w = tiles
        .iter()
        .find(|t| t.tx == tiles_x - 1)
        .map(|t| t.raster.cols())?;
    let bottom_h = tiles
        .iter()
        .find(|t| t.ty == tiles_y - 1)
        .map(|t| t.raster.rows())?;
    let cols = (tiles_x - 1) * tile_size + right_w;
    let rows = (tiles_y - 1) * tile_size + bottom_h;
    // The parent transform is the (0,0) tile's transform.
    let origin = tiles.iter().find(|t| t.tx == 0 && t.ty == 0)?;
    let mut parent = Raster::zeros(cols, rows, origin.raster.transform());
    for t in tiles {
        let col0 = t.tx * tile_size;
        let row0 = t.ty * tile_size;
        for (c, r, v) in t.raster.iter() {
            parent.put(col0 + c, row0 + r, v);
        }
    }
    Some(parent)
}

/// One level of an overview pyramid: downsample by 2 with box averaging
/// (odd trailing rows/columns average the available pixels).
///
/// Output rows are data-parallel; this runs on [`ee_util::par`] with the
/// default worker count. Each output pixel is a pure function of the
/// input, so the result is identical for every thread count.
pub fn downsample2<T: Pixel + Send + Sync>(raster: &Raster<T>) -> Raster<T> {
    downsample2_with_threads(raster, ee_util::par::available_threads())
}

/// [`downsample2`] with an explicit worker count (1 = serial reference).
pub fn downsample2_with_threads<T: Pixel + Send + Sync>(
    raster: &Raster<T>,
    threads: usize,
) -> Raster<T> {
    let cols = raster.cols().div_ceil(2).max(1);
    let rows = raster.rows().div_ceil(2).max(1);
    let t = raster.transform();
    let transform =
        crate::raster::GeoTransform::new(t.origin_x, t.origin_y, t.pixel_size * 2.0);
    // Small levels are not worth a thread spawn; the top of every pyramid
    // runs inline.
    let threads = if cols * rows < 4096 { 1 } else { threads };
    let mut out = Raster::zeros(cols, rows, transform);
    ee_util::par::for_rows_mut(out.data_mut(), cols, threads, |first_row, band| {
        for (i, out_row) in band.chunks_mut(cols).enumerate() {
            let r = first_row + i;
            for (c, v) in out_row.iter_mut().enumerate() {
                let mut sum = 0.0;
                let mut n = 0.0;
                for dr in 0..2 {
                    for dc in 0..2 {
                        let sc = c * 2 + dc;
                        let sr = r * 2 + dr;
                        if sc < raster.cols() && sr < raster.rows() {
                            sum += raster.at(sc, sr).to_f64();
                            n += 1.0;
                        }
                    }
                }
                *v = T::from_f64(sum / n);
            }
        }
    });
    out
}

/// Build a full overview pyramid: level 0 is the input, each further level
/// halves the resolution, down to a single-ish pixel.
///
/// Levels are built in sequence (each needs the previous), but every
/// level's rows are computed in parallel via [`downsample2`].
pub fn pyramid<T: Pixel + Send + Sync>(raster: &Raster<T>) -> Vec<Raster<T>> {
    let mut levels = vec![raster.clone()];
    while levels.last().expect("non-empty").cols() > 1
        || levels.last().expect("non-empty").rows() > 1
    {
        let next = downsample2(levels.last().expect("non-empty"));
        levels.push(next);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::GeoTransform;

    fn gt() -> GeoTransform {
        GeoTransform::new(0.0, 100.0, 1.0)
    }

    #[test]
    fn tiling_counts_and_shapes() {
        let r: Raster<u16> = Raster::from_fn(100, 70, gt(), |c, row| (row * 100 + c) as u16);
        let tiles = tile(&r, 32);
        assert_eq!(tiles.len(), 4 * 3, "ceil(100/32) x ceil(70/32)");
        // Interior tile is full-size; edge tiles clipped.
        assert_eq!(tiles[0].raster.shape(), (32, 32));
        let last = tiles.last().unwrap();
        assert_eq!(last.raster.shape(), (100 - 96, 70 - 64));
    }

    #[test]
    fn tile_untile_roundtrip() {
        let r: Raster<u16> = Raster::from_fn(50, 37, gt(), |c, row| (row * 50 + c) as u16);
        let tiles = tile(&r, 16);
        let back = untile(&tiles, 16).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn untile_accepts_any_order() {
        let r: Raster<u8> = Raster::from_fn(20, 20, gt(), |c, row| (row + c) as u8);
        let mut tiles = tile(&r, 8);
        tiles.reverse();
        assert_eq!(untile(&tiles, 8).unwrap(), r);
        assert!(untile::<u8>(&[], 8).is_none());
    }

    #[test]
    fn tile_world_coordinates_are_preserved() {
        let r: Raster<f32> = Raster::zeros(64, 64, gt());
        let tiles = tile(&r, 32);
        let t11 = tiles.iter().find(|t| t.tx == 1 && t.ty == 1).unwrap();
        assert_eq!(
            t11.raster.transform().pixel_center(0, 0),
            r.transform().pixel_center(32, 32)
        );
    }

    #[test]
    fn downsample_averages() {
        let r: Raster<f32> = Raster::from_fn(4, 4, gt(), |c, row| (row * 4 + c) as f32);
        let d = downsample2(&r);
        assert_eq!(d.shape(), (2, 2));
        // Top-left 2x2 block: 0,1,4,5 → 2.5.
        assert_eq!(d.at(0, 0), 2.5);
        assert_eq!(d.transform().pixel_size, 2.0);
    }

    #[test]
    fn downsample_odd_edges() {
        let r: Raster<f32> = Raster::from_fn(3, 3, gt(), |_, _| 1.0);
        let d = downsample2(&r);
        assert_eq!(d.shape(), (2, 2));
        for (_, _, v) in d.iter() {
            assert_eq!(v, 1.0, "uniform input stays uniform");
        }
    }

    #[test]
    fn pyramid_reaches_unit_size() {
        let r: Raster<f32> = Raster::zeros(64, 48, gt());
        let levels = pyramid(&r);
        assert_eq!(levels[0].shape(), (64, 48));
        let top = levels.last().unwrap();
        assert_eq!(top.shape(), (1, 1));
        // Each level halves (ceil) the previous.
        for w in levels.windows(2) {
            assert_eq!(w[1].cols(), w[0].cols().div_ceil(2).max(1));
        }
    }

    #[test]
    fn downsample_parallel_identical_to_serial() {
        // The by-row parallel split must be invisible: bit-identical
        // output for every worker count, including sizes above the
        // inline-threshold and ragged odd edges.
        for (cols, rows) in [(129, 97), (200, 200), (64, 3)] {
            let r: Raster<f32> = Raster::from_fn(cols, rows, gt(), |c, row| {
                ((row * cols + c) as f32).sin()
            });
            let serial = downsample2_with_threads(&r, 1);
            for threads in [2usize, 3, 4, 8] {
                let par = downsample2_with_threads(&r, threads);
                assert_eq!(par, serial, "{cols}x{rows} threads={threads}");
            }
        }
    }

    #[test]
    fn pyramid_preserves_mean() {
        // Box-filter pyramids preserve mean for power-of-two sizes.
        let r: Raster<f32> = Raster::from_fn(16, 16, gt(), |c, row| ((row * 16 + c) % 7) as f32);
        let levels = pyramid(&r);
        let m0 = levels[0].mean();
        let mtop = levels.last().unwrap().mean();
        assert!((m0 - mtop).abs() < 1e-5, "{m0} vs {mtop}");
    }
}
