//! Columnar binding batches.
//!
//! A [`Batch`] holds the intermediate solutions of a query as columns of
//! dictionary ids — one column per entry in the plan's variable table —
//! instead of the row-of-`Option<Term>` representation the old evaluator
//! carried through every join step. Ids are 8 bytes, unbound is the
//! [`UNBOUND`] sentinel (the dictionary allocates ids from zero and can
//! never issue `u64::MAX`), and the physical operators read and write
//! rows through a small fixed-width scratch buffer, so a join probe
//! touches contiguous memory rather than chasing `Option` tags.
//!
//! Batches are append-only per operator: parallel operators build one
//! mini-batch per chunk and concatenate them in chunk order, which is
//! what keeps parallel execution bit-identical to serial.

/// The "unbound variable" sentinel. The dictionary allocates ids starting
/// at zero, so `u64::MAX` can never collide with a real term id.
pub const UNBOUND: u64 = u64::MAX;

/// A columnar batch of variable bindings over dictionary ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    len: usize,
    cols: Vec<Vec<u64>>,
}

impl Batch {
    /// An empty batch with `width` columns.
    pub fn new(width: usize) -> Self {
        Self {
            len: 0,
            cols: vec![Vec::new(); width],
        }
    }

    /// A single all-unbound row — the join pipeline's seed.
    pub fn unit(width: usize) -> Self {
        Self {
            len: 1,
            cols: vec![vec![UNBOUND]; width],
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The id at (`row`, `col`); [`UNBOUND`] when unbound.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.cols[col][row]
    }

    /// One full column.
    pub fn col(&self, col: usize) -> &[u64] {
        &self.cols[col]
    }

    /// Append one row given as a width-sized slice.
    pub fn push_row(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, &v) in self.cols.iter_mut().zip(row) {
            c.push(v);
        }
        self.len += 1;
    }

    /// Copy row `row` into `buf` (resized to the batch width).
    pub fn read_row(&self, row: usize, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c[row]));
    }

    /// Append all rows of `other` (same width) after this batch's rows.
    pub fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.width(), other.width());
        for (c, oc) in self.cols.iter_mut().zip(&other.cols) {
            c.extend_from_slice(oc);
        }
        self.len += other.len;
    }

    /// Remove and return the first `n` rows (fewer when the batch is
    /// shorter), preserving order in both halves. The pipelined executor
    /// uses this to hand a bounded slice of a stage's output buffer
    /// downstream while keeping the overflow for the next pull.
    pub fn drain_front(&mut self, n: usize) -> Batch {
        let n = n.min(self.len);
        let mut out = Batch::new(self.width());
        if n == 0 {
            return out;
        }
        for (oc, c) in out.cols.iter_mut().zip(&mut self.cols) {
            oc.extend(c.drain(..n));
        }
        out.len = n;
        self.len -= n;
        out
    }

    /// Keep only rows where `keep[row]` is true, preserving order.
    pub fn retain(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        for c in &mut self.cols {
            let mut i = 0;
            c.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
        self.len = keep.iter().filter(|&&k| k).count();
    }

    /// Number of rows whose value in `col` is bound (not [`UNBOUND`]).
    /// The executor's COUNT fast path calls this per pulled batch, so a
    /// `COUNT(?v)` never materialises row-major `Option` form at all.
    pub fn count_bound(&self, col: usize) -> usize {
        self.cols[col].iter().filter(|&&v| v != UNBOUND).count()
    }

    /// Materialise into row-major `Option` form for the execution tail
    /// (grouping, ordering, projection).
    pub fn into_rows(self) -> Vec<Vec<Option<u64>>> {
        let mut rows = vec![Vec::with_capacity(self.cols.len()); self.len];
        for c in &self.cols {
            for (r, &v) in c.iter().enumerate() {
                rows[r].push(if v == UNBOUND { None } else { Some(v) });
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_read_roundtrip() {
        let mut b = Batch::new(3);
        b.push_row(&[1, UNBOUND, 3]);
        b.push_row(&[4, 5, UNBOUND]);
        assert_eq!(b.len(), 2);
        let mut buf = Vec::new();
        b.read_row(0, &mut buf);
        assert_eq!(buf, vec![1, UNBOUND, 3]);
        assert_eq!(b.get(1, 1), 5);
        assert_eq!(
            b.into_rows(),
            vec![vec![Some(1), None, Some(3)], vec![Some(4), Some(5), None]]
        );
    }

    #[test]
    fn append_preserves_order() {
        let mut a = Batch::new(2);
        a.push_row(&[1, 2]);
        let mut b = Batch::new(2);
        b.push_row(&[3, 4]);
        b.push_row(&[5, 6]);
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.col(0), &[1, 3, 5]);
        assert_eq!(a.col(1), &[2, 4, 6]);
    }

    #[test]
    fn retain_is_order_preserving() {
        let mut b = Batch::new(1);
        for i in 0..6 {
            b.push_row(&[i]);
        }
        b.retain(&[true, false, true, false, true, false]);
        assert_eq!(b.col(0), &[0, 2, 4]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn drain_front_splits_in_order() {
        let mut b = Batch::new(2);
        for i in 0..5 {
            b.push_row(&[i, i + 10]);
        }
        let front = b.drain_front(3);
        assert_eq!(front.len(), 3);
        assert_eq!(front.col(0), &[0, 1, 2]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.col(1), &[13, 14]);
        let rest = b.drain_front(99);
        assert_eq!(rest.len(), 2);
        assert!(b.is_empty());
        assert!(b.drain_front(4).is_empty());
    }

    #[test]
    fn count_bound_skips_unbound_sentinels() {
        let mut b = Batch::new(2);
        b.push_row(&[1, UNBOUND]);
        b.push_row(&[UNBOUND, UNBOUND]);
        b.push_row(&[3, 4]);
        assert_eq!(b.count_bound(0), 2);
        assert_eq!(b.count_bound(1), 1);
    }

    #[test]
    fn unit_row_is_all_unbound() {
        let b = Batch::unit(4);
        assert_eq!(b.len(), 1);
        assert!((0..4).all(|c| b.get(0, c) == UNBOUND));
    }
}
