//! Dictionary encoding: terms ↔ dense `u64` ids.
//!
//! All joins and index operations work on ids; terms (and their decoded
//! typed values, including parsed geometries) are resolved only at the
//! edges. This is the standard RDF-store design and the reason the E2
//! selection stays cheap — no string compares in the join loop.

use crate::term::{decode_non_geometry, Term, Value};
use ee_geo::{wkt, Envelope, Geometry};
use std::collections::HashMap;

/// The term dictionary.
#[derive(Debug, Default)]
pub struct Dictionary {
    by_term: HashMap<Term, u64>,
    terms: Vec<Term>,
    values: Vec<Value>,
    geometries: Vec<Geometry>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (stable across repeat calls).
    /// Geometry literals are parsed once here; malformed WKT interns as
    /// [`Value::Malformed`] (filters then never match it).
    pub fn intern(&mut self, term: &Term) -> u64 {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.terms.len() as u64;
        let value = match decode_non_geometry(term) {
            Some(v) => v,
            None => {
                // A WKT literal: parse into the geometry table.
                let lexical = match term {
                    Term::Literal { lexical, .. } => lexical,
                    Term::Iri(_) => unreachable!("IRIs always decode"),
                };
                match wkt::parse_wkt(lexical) {
                    Ok(g) => {
                        self.geometries.push(g);
                        Value::Geometry(self.geometries.len() - 1)
                    }
                    Err(_) => Value::Malformed,
                }
            }
        };
        self.terms.push(term.clone());
        self.values.push(value);
        self.by_term.insert(term.clone(), id);
        id
    }

    /// Look up an existing term's id without interning.
    pub fn id_of(&self, term: &Term) -> Option<u64> {
        self.by_term.get(term).copied()
    }

    /// The term for an id.
    pub fn term(&self, id: u64) -> &Term {
        &self.terms[id as usize]
    }

    /// The decoded value for an id.
    pub fn value(&self, id: u64) -> &Value {
        &self.values[id as usize]
    }

    /// The geometry behind a [`Value::Geometry`] index.
    pub fn geometry(&self, geom_index: usize) -> &Geometry {
        &self.geometries[geom_index]
    }

    /// If the id is a geometry literal, its geometry.
    pub fn geometry_of(&self, id: u64) -> Option<&Geometry> {
        match self.value(id) {
            Value::Geometry(gi) => Some(self.geometry(*gi)),
            _ => None,
        }
    }

    /// Envelope of a geometry literal id.
    pub fn envelope_of(&self, id: u64) -> Option<Envelope> {
        self.geometry_of(id).map(|g| g.envelope())
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of parsed geometries.
    pub fn num_geometries(&self) -> usize {
        self.geometries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("http://e/a"));
        let b = d.intern(&Term::iri("http://e/b"));
        let a2 = d.intern(&Term::iri("http://e/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.term(a), &Term::iri("http://e/a"));
    }

    #[test]
    fn id_of_does_not_intern() {
        let mut d = Dictionary::new();
        assert_eq!(d.id_of(&Term::iri("x")), None);
        let id = d.intern(&Term::iri("x"));
        assert_eq!(d.id_of(&Term::iri("x")), Some(id));
    }

    #[test]
    fn values_are_decoded_once() {
        let mut d = Dictionary::new();
        let i = d.intern(&Term::integer(7));
        assert_eq!(d.value(i), &Value::Int(7));
        let s = d.intern(&Term::string("hello"));
        assert_eq!(d.value(s), &Value::Str("hello".into()));
    }

    #[test]
    fn geometries_parse_into_table() {
        let mut d = Dictionary::new();
        let g = d.intern(&Term::wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"));
        assert_eq!(d.num_geometries(), 1);
        let env = d.envelope_of(g).unwrap();
        assert_eq!(env, Envelope::new(0.0, 0.0, 4.0, 4.0));
        assert!(d.geometry_of(g).is_some());
        // Non-geometry ids answer None.
        let i = d.intern(&Term::integer(1));
        assert!(d.geometry_of(i).is_none());
    }

    #[test]
    fn malformed_wkt_interns_as_malformed() {
        let mut d = Dictionary::new();
        let id = d.intern(&Term::wkt("POLYGON (not wkt"));
        assert_eq!(d.value(id), &Value::Malformed);
        assert_eq!(d.num_geometries(), 0);
    }
}
