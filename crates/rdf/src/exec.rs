//! The query executor: a thin driver over the staged engine.
//!
//! Pipeline: [`crate::plan::plan`] (constant resolution, static greedy
//! join order, filter placement, spatial pushdown) → [`crate::join`]
//! pull-based physical operators over columnar [`crate::batch::Batch`]es
//! (parallel, bit-identical to serial) → OPTIONAL left-joins → residual
//! filters → grouping / aggregation → DISTINCT / ORDER / LIMIT → term
//! materialisation.
//!
//! The non-aggregate, non-ORDER-BY path is fully pipelined: nothing runs
//! until [`StreamCore::next_batch`] pulls, and producing a batch touches
//! O(batch) probe rows. Grouping/aggregation and ORDER BY are inherently
//! blocking (every input row feeds the result), so those paths drain the
//! pipeline eagerly up front and stream only the drained rows.
//!
//! [`query`] parses + plans + executes at the ambient thread count;
//! [`query_with_threads`] pins the thread count (the E3 speedup sweep and
//! the parallel-identity tests); [`execute_plan`] runs a prepared
//! [`Plan`] directly — the serving tier's plan cache calls this.

use crate::parser::{AggFunc, Query, SelectItem};
use crate::plan::Plan;
use crate::store::TripleStore;
use crate::term::{Term, Value};
use crate::{join, RdfError};
use ee_util::par;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Query solutions: a header of variable names and rows of optional terms
/// (unbound OPTIONAL variables are `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    /// Projected variable names, in order.
    pub vars: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a one-row one-column result (aggregates).
    pub fn scalar(&self) -> Option<&Term> {
        match (self.rows.len(), self.vars.len()) {
            (1, 1) => self.rows[0][0].as_ref(),
            _ => None,
        }
    }

    /// Column index of a variable. Resolve once and index rows directly;
    /// plans resolve their own columns at plan time.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

/// Parse and execute a query against a store at the ambient thread count.
pub fn query(store: &TripleStore, sparql: &str) -> Result<Solutions, RdfError> {
    query_with_threads(store, sparql, par::available_threads())
}

/// Parse and execute a query with an explicit thread count. `threads = 1`
/// is fully serial; any other count produces bit-identical results.
pub fn query_with_threads(
    store: &TripleStore,
    sparql: &str,
    threads: usize,
) -> Result<Solutions, RdfError> {
    let q = crate::parser::parse_query(sparql)?;
    let plan = crate::plan::plan(store, &q)?;
    execute_plan(store, &plan, threads)
}

/// Execute a parsed query (plans first; kept for API compatibility).
pub fn execute(store: &TripleStore, q: &Query) -> Result<Solutions, RdfError> {
    let plan = crate::plan::plan(store, q)?;
    execute_plan(store, &plan, par::available_threads())
}

/// Execute a prepared [`Plan`]. The plan may be reused across calls and
/// shared between threads (the serving tier caches them). A collect
/// wrapper over [`stream_plan`]: pulls every batch and concatenates, so
/// results are identical to the incremental path by construction.
pub fn execute_plan(
    store: &TripleStore,
    plan: &Plan,
    threads: usize,
) -> Result<Solutions, RdfError> {
    let mut core = stream_plan(store, plan, threads)?;
    let mut rows = Vec::new();
    while let Some(batch) = core.next_batch(store) {
        rows.extend(batch);
    }
    Ok(Solutions {
        vars: core.take_vars(),
        rows,
    })
}

/// Rows per batch yielded by [`StreamCore::next_batch`]. Small enough
/// that a `/query` consumer sees the first bytes before the last row is
/// materialised; big enough to amortise the per-batch bookkeeping.
pub const STREAM_BATCH_ROWS: usize = 256;

/// Where a [`StreamCore`] is in its life: pulling id rows straight off
/// the live join pipeline (the fully-streamed path), draining id rows
/// that had to be sorted up front (ORDER BY), or draining term rows that
/// had to be computed eagerly (grouping needs every input row).
enum Phase {
    /// Non-aggregate, non-ORDER path: the pull-based pipeline, with a
    /// small buffer of id rows from the last pull. Nothing has run yet
    /// when a `StreamCore` is built in this phase; each
    /// [`StreamCore::next_batch`] does O(batch) join work.
    Stream {
        pipe: join::Pipeline,
        buf: std::vec::IntoIter<Vec<Option<u64>>>,
    },
    /// ORDER BY path: id rows globally sorted up front (sorting is
    /// blocking), materialised [`STREAM_BATCH_ROWS`] at a time.
    Ids(std::vec::IntoIter<Vec<Option<u64>>>),
    /// Aggregate/grouped path: fully processed term rows, drained in
    /// batches (groups are few — the expensive part was the join).
    Rows(std::vec::IntoIter<Vec<Option<Term>>>),
}

/// Incremental query results. On the non-aggregate, non-ORDER-BY path
/// the join pipeline itself is pull-based: each
/// [`next_batch`](StreamCore::next_batch) call runs only enough probe
/// work to fill one batch, so memory stays O(batch) and a slow consumer
/// pauses the joins instead of buffering them. Grouping and ORDER BY are
/// blocking and run eagerly at build time (documented on [`stream_plan`]).
///
/// Owns no borrows — the store is passed to each `next_batch` call — so
/// a serving tier can park a `StreamCore` inside a response object next
/// to an `Arc` of the store without self-referential lifetimes.
/// Concatenating every batch reproduces [`execute_plan`]'s output
/// exactly: same operation order, same comparators, same DISTINCT keys.
pub struct StreamCore {
    vars: Vec<String>,
    projection: Vec<(String, usize)>,
    phase: Phase,
    /// DISTINCT dedup keys seen so far — projected dictionary ids, not
    /// stringified terms (ids and terms are bijective through the
    /// dictionary, so the semantics are identical and no per-row string
    /// allocation happens). Persistent across batches.
    seen: Option<HashSet<Vec<Option<u64>>>>,
    /// OFFSET rows still to skip (counted after DISTINCT).
    to_skip: usize,
    /// LIMIT rows still to emit (`None` = unlimited).
    remaining: Option<usize>,
    /// Probe rows touched by an eager (aggregate/ORDER) build; the
    /// streamed phase reads its pipeline's live counter instead.
    touched_eager: u64,
    /// Peak resident rows of an eager build (the whole drained set).
    peak_eager: u64,
}

impl StreamCore {
    /// Projected variable names, in order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    fn take_vars(&mut self) -> Vec<String> {
        std::mem::take(&mut self.vars)
    }

    /// Probe rows touched so far: raw seed matches scanned plus rows
    /// consumed by every pipeline stage. On the streamed path this grows
    /// with each pulled batch — the acceptance metric for "first batch
    /// touches O(batch) rows". Eager paths report the full drain.
    pub fn rows_touched(&self) -> u64 {
        match &self.phase {
            Phase::Stream { pipe, .. } => pipe.rows_touched(),
            _ => self.touched_eager,
        }
    }

    /// High-water mark of rows resident in the executor at once: stage
    /// buffers for the streamed path, the whole materialised row set for
    /// the eager (aggregate/ORDER) paths.
    pub fn peak_resident_rows(&self) -> u64 {
        match &self.phase {
            Phase::Stream { pipe, .. } => pipe.peak_resident_rows(),
            _ => self.peak_eager,
        }
    }

    /// Produce the next batch of up to [`STREAM_BATCH_ROWS`] result rows,
    /// or `None` when the stream is exhausted (or LIMIT was reached).
    /// `store` must be the store the stream was built from.
    pub fn next_batch(&mut self, store: &TripleStore) -> Option<Vec<Vec<Option<Term>>>> {
        if self.remaining == Some(0) {
            return None;
        }
        let mut out = Vec::new();
        // Pull input rows until a non-empty output batch forms (DISTINCT
        // and OFFSET may eat whole input chunks) or input runs dry.
        while out.len() < STREAM_BATCH_ROWS {
            // Aggregate rows are already terms; the id phases project,
            // dedup and skip on dictionary ids and materialise terms last.
            let row: Vec<Option<Term>> = match &mut self.phase {
                Phase::Rows(it) => match it.next() {
                    Some(r) => {
                        if self.to_skip > 0 {
                            self.to_skip -= 1;
                            continue;
                        }
                        r
                    }
                    None => break,
                },
                phase => {
                    let ids = match phase {
                        Phase::Ids(it) => it.next(),
                        Phase::Stream { pipe, buf } => loop {
                            if let Some(ids) = buf.next() {
                                break Some(ids);
                            }
                            let b = pipe.next_rows(store, STREAM_BATCH_ROWS);
                            if b.is_empty() {
                                break None;
                            }
                            *buf = b.into_rows().into_iter();
                        },
                        Phase::Rows(_) => unreachable!("handled above"),
                    };
                    let Some(ids) = ids else { break };
                    let key: Vec<Option<u64>> =
                        self.projection.iter().map(|&(_, i)| ids[i]).collect();
                    if let Some(seen) = &mut self.seen {
                        if !seen.insert(key.clone()) {
                            continue;
                        }
                    }
                    if self.to_skip > 0 {
                        self.to_skip -= 1;
                        continue;
                    }
                    key.iter()
                        .map(|id| id.map(|id| store.dict.term(id).clone()))
                        .collect()
                }
            };
            out.push(row);
            if let Some(rem) = &mut self.remaining {
                *rem -= 1;
                if *rem == 0 {
                    break;
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

/// Build a [`StreamCore`] for a prepared [`Plan`] (clones the plan into
/// an `Arc`; callers that already hold one should use
/// [`stream_plan_shared`] to avoid the copy).
pub fn stream_plan(
    store: &TripleStore,
    plan: &Plan,
    threads: usize,
) -> Result<StreamCore, RdfError> {
    stream_plan_shared(store, Arc::new(plan.clone()), threads)
}

/// Build a [`StreamCore`] over a shared prepared [`Plan`].
///
/// Non-aggregate, non-ORDER-BY queries are fully pipelined: **no join
/// work happens here** — each [`StreamCore::next_batch`] pulls just
/// enough probe rows through the operator chain to fill one batch.
/// Grouping/aggregation and ORDER BY are blocking by nature (every input
/// row feeds the output), so those paths drain the pipeline eagerly here
/// and stream only the post-processed rows; this is the documented eager
/// exception.
pub fn stream_plan_shared(
    store: &TripleStore,
    plan: Arc<Plan>,
    threads: usize,
) -> Result<StreamCore, RdfError> {
    if plan.has_agg || !plan.group_by.is_empty() {
        // Blocking path: drain the pipeline, aggregate, then DISTINCT,
        // then alias ORDER BY — the exact op order of the historical
        // collect path. OFFSET and LIMIT stay streaming for uniformity.
        let (raw, touched, peak) = drain_pipeline(store, &plan, threads);
        let (header, mut out_rows) = aggregate(store, &plan, raw)?;
        if plan.distinct {
            let mut seen: HashSet<Vec<Option<Term>>> = HashSet::new();
            out_rows.retain(|row| seen.insert(row.clone()));
        }
        if let Some((ov, asc)) = plan.order_by_name() {
            if let Some(ci) = header.iter().position(|h| h == ov) {
                out_rows.sort_by(|a, b| {
                    let ord = cmp_terms(&a[ci], &b[ci]);
                    if asc {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
            }
        }
        return Ok(StreamCore {
            vars: header,
            projection: Vec::new(),
            phase: Phase::Rows(out_rows.into_iter()),
            seen: None, // already applied eagerly above
            to_skip: plan.offset.unwrap_or(0),
            remaining: plan.limit,
            touched_eager: touched,
            peak_eager: peak,
        });
    }

    let vars: Vec<String> = plan.projection.iter().map(|(n, _)| n.clone()).collect();
    let projection = plan.projection.clone();
    let seen = plan.distinct.then(HashSet::new);
    let to_skip = plan.offset.unwrap_or(0);
    let remaining = plan.limit;

    if let Some((oi, asc)) = plan.order_by {
        // ORDER BY is global: drain and sort the id rows now (same stable
        // sort and key as ever); everything downstream streams.
        let (mut rows, touched, peak) = drain_pipeline(store, &plan, threads);
        rows.sort_by(|a, b| {
            let ka = a[oi].map(|id| order_key(store, id));
            let kb = b[oi].map(|id| order_key(store, id));
            let ord = ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal);
            if asc {
                ord
            } else {
                ord.reverse()
            }
        });
        return Ok(StreamCore {
            vars,
            projection,
            phase: Phase::Ids(rows.into_iter()),
            seen,
            to_skip,
            remaining,
            touched_eager: touched,
            peak_eager: peak,
        });
    }

    // The fully-streamed path: park the un-started pipeline; every
    // next_batch call does O(batch) probe work.
    Ok(StreamCore {
        vars,
        projection,
        phase: Phase::Stream {
            pipe: join::Pipeline::new(store, plan, threads),
            buf: Vec::new().into_iter(),
        },
        seen,
        to_skip,
        remaining,
        touched_eager: 0,
        peak_eager: 0,
    })
}

/// Run a plan's pipeline to exhaustion (the blocking aggregate/ORDER
/// paths). Returns the raw id rows plus the probe-rows-touched and
/// peak-resident instrumentation (here the peak is the whole row set).
fn drain_pipeline(
    store: &TripleStore,
    plan: &Arc<Plan>,
    threads: usize,
) -> (Vec<Vec<Option<u64>>>, u64, u64) {
    let mut pipe = join::Pipeline::new(store, Arc::clone(plan), threads);
    let mut rows = Vec::new();
    loop {
        let b = pipe.next_rows(store, STREAM_BATCH_ROWS);
        if b.is_empty() {
            break;
        }
        rows.extend(b.into_rows());
    }
    let touched = pipe.rows_touched();
    let peak = rows.len() as u64;
    (rows, touched, peak)
}

/// A [`StreamCore`] bundled with its store — the ergonomic form for
/// callers whose store outlives the stream (tests, library use). The
/// serving tier uses [`StreamCore`] directly with a shared-ownership
/// store instead.
pub struct SolutionStream<'a> {
    store: &'a TripleStore,
    core: StreamCore,
}

impl<'a> SolutionStream<'a> {
    /// Plan-driver entry point: run the joins, defer the rest.
    pub fn new(
        store: &'a TripleStore,
        plan: &Plan,
        threads: usize,
    ) -> Result<SolutionStream<'a>, RdfError> {
        Ok(SolutionStream {
            store,
            core: stream_plan(store, plan, threads)?,
        })
    }

    /// Projected variable names, in order.
    pub fn vars(&self) -> &[String] {
        self.core.vars()
    }

    /// Next batch of result rows, or `None` when exhausted.
    pub fn next_batch(&mut self) -> Option<Vec<Vec<Option<Term>>>> {
        self.core.next_batch(self.store)
    }

    /// Drain the remaining batches into a [`Solutions`].
    pub fn collect(mut self) -> Solutions {
        let mut rows = Vec::new();
        while let Some(b) = self.next_batch() {
            rows.extend(b);
        }
        Solutions {
            vars: self.core.take_vars(),
            rows,
        }
    }
}

fn numeric_of(store: &TripleStore, id: u64) -> Option<f64> {
    match store.dict.value(id) {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Sort key for ORDER BY and MIN/MAX: numbers before dates before strings
/// before everything else, each ordered internally.
fn order_key(store: &TripleStore, id: u64) -> (u8, f64, String) {
    match store.dict.value(id) {
        Value::Int(i) => (0, *i as f64, String::new()),
        Value::Float(f) => (0, *f, String::new()),
        Value::Date(d) => (1, *d as f64, String::new()),
        Value::Str(s) => (2, 0.0, s.clone()),
        _ => (3, 0.0, store.dict.term(id).ntriples()),
    }
}

fn cmp_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    let num = |t: &Option<Term>| -> Option<f64> {
        match t {
            Some(Term::Literal { lexical, datatype })
                if datatype == crate::term::XSD_INTEGER || datatype == crate::term::XSD_DOUBLE =>
            {
                lexical.parse::<f64>().ok()
            }
            _ => None,
        }
    };
    match (num(a), num(b)) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => format!("{a:?}").cmp(&format!("{b:?}")),
    }
}

type Grouped = (Vec<String>, Vec<Vec<Option<Term>>>);

fn aggregate(
    store: &TripleStore,
    plan: &Plan,
    rows: Vec<Vec<Option<u64>>>,
) -> Result<Grouped, RdfError> {
    let group_names: Vec<&str> = plan.group_by.iter().map(|&i| plan.vars[i].as_str()).collect();
    let mut groups: HashMap<Vec<Option<u64>>, Vec<Vec<Option<u64>>>> = HashMap::new();
    for row in rows {
        let key: Vec<Option<u64>> = plan.group_by.iter().map(|&i| row[i]).collect();
        groups.entry(key).or_default().push(row);
    }
    // Deterministic group order.
    let mut keys: Vec<Vec<Option<u64>>> = groups.keys().cloned().collect();
    keys.sort();
    let mut header = Vec::new();
    for item in &plan.select {
        match item {
            SelectItem::Var(v) => {
                if !group_names.contains(&v.as_str()) {
                    return Err(RdfError::Eval(format!(
                        "?{v} selected but not in GROUP BY"
                    )));
                }
                header.push(v.clone());
            }
            SelectItem::Agg { alias, .. } => header.push(alias.clone()),
        }
    }
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let members = &groups[&key];
        let mut row: Vec<Option<Term>> = Vec::with_capacity(plan.select.len());
        for item in &plan.select {
            match item {
                SelectItem::Var(v) => {
                    let gi = group_names.iter().position(|x| x == v).expect("checked");
                    row.push(key[gi].map(|id| store.dict.term(id).clone()));
                }
                SelectItem::Agg { func, var, .. } => {
                    let vi = var
                        .as_ref()
                        .map(|v| {
                            plan.vars
                                .iter()
                                .position(|x| x == v)
                                .ok_or_else(|| RdfError::Eval(format!("unknown ?{v}")))
                        })
                        .transpose()?;
                    row.push(Some(agg_value(store, *func, vi, members)));
                }
            }
        }
        out.push(row);
    }
    Ok((header, out))
}

fn agg_value(
    store: &TripleStore,
    func: AggFunc,
    vi: Option<usize>,
    members: &[Vec<Option<u64>>],
) -> Term {
    match func {
        AggFunc::Count => {
            let n = match vi {
                None => members.len(),
                Some(i) => members.iter().filter(|r| r[i].is_some()).count(),
            };
            Term::integer(n as i64)
        }
        AggFunc::Sum | AggFunc::Avg => {
            let vals: Vec<f64> = members
                .iter()
                .filter_map(|r| vi.and_then(|i| r[i]).and_then(|id| numeric_of(store, id)))
                .collect();
            let sum: f64 = vals.iter().sum();
            match func {
                AggFunc::Sum => Term::double(sum),
                _ => Term::double(if vals.is_empty() { 0.0 } else { sum / vals.len() as f64 }),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<(u64, (u8, f64, String))> = None;
            for r in members {
                if let Some(id) = vi.and_then(|i| r[i]) {
                    let k = order_key(store, id);
                    let better = match &best {
                        None => true,
                        Some((_, bk)) => {
                            if func == AggFunc::Min {
                                k < *bk
                            } else {
                                k > *bk
                            }
                        }
                    };
                    if better {
                        best = Some((id, k));
                    }
                }
            }
            best.map(|(id, _)| store.dict.term(id).clone())
                .unwrap_or_else(|| Term::integer(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IndexMode;

    fn e(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn sample_store(mode: IndexMode) -> TripleStore {
        let mut st = TripleStore::new(mode);
        let name = e("name");
        let age = e("age");
        let knows = e("knows");
        let geom = e("hasGeometry");
        for (who, nm, a) in [("alice", "Alice", 30), ("bob", "Bob", 25), ("carol", "Carol", 35)] {
            st.insert(&e(who), &name, &Term::string(nm));
            st.insert(&e(who), &age, &Term::integer(a));
        }
        st.insert(&e("alice"), &knows, &e("bob"));
        st.insert(&e("alice"), &knows, &e("carol"));
        st.insert(&e("bob"), &knows, &e("carol"));
        st.insert(&e("alice"), &geom, &Term::wkt("POINT (1 1)"));
        st.insert(&e("bob"), &geom, &Term::wkt("POINT (5 5)"));
        st.insert(&e("carol"), &geom, &Term::wkt("POINT (20 20)"));
        st.build_spatial_index();
        st
    }

    fn names_of(sol: &Solutions, col: usize) -> Vec<String> {
        let mut v: Vec<String> = sol
            .rows
            .iter()
            .filter_map(|r| r[col].as_ref())
            .map(|t| t.ntriples())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn basic_bgp_join() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
        )
        .unwrap();
        assert_eq!(sol.len(), 3);
        assert_eq!(names_of(&sol, 0), vec!["\"Bob\"", "\"Carol\"", "\"Carol\""]);
    }

    #[test]
    fn filters_apply() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:age ?a . ?x e:name ?n . FILTER(?a >= 30) }",
        )
        .unwrap();
        assert_eq!(names_of(&sol, 0), vec!["\"Alice\"", "\"Carol\""]);
    }

    #[test]
    fn scan_and_full_agree() {
        for q_text in [
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:age ?a . ?x e:name ?n . FILTER(?a < 31) }",
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        ] {
            let full = query(&sample_store(IndexMode::Full), q_text).unwrap();
            let scan = query(&sample_store(IndexMode::Scan), q_text).unwrap();
            let norm = |s: &Solutions| {
                let mut v: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
                v.sort();
                v
            };
            assert_eq!(norm(&full), norm(&scan), "{q_text}");
        }
    }

    #[test]
    fn spatial_selection_with_pushdown() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 2, "alice and bob inside, carol outside");
    }

    #[test]
    fn distance_filter() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . \
             FILTER(geof:distance(?g, \"POINT (0 0)\"^^geo:wktLiteral) < 3) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1, "only alice within distance 3");
    }

    #[test]
    fn optional_left_join() {
        let mut st = sample_store(IndexMode::Full);
        st.insert(&e("dave"), &e("age"), &Term::integer(40));
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x ?n WHERE { ?x e:age ?a . OPTIONAL { ?x e:name ?n } }",
        )
        .unwrap();
        assert_eq!(sol.len(), 4);
        let dave_row = sol
            .rows
            .iter()
            .find(|r| r[0] == Some(e("dave")))
            .expect("dave present");
        assert_eq!(dave_row[1], None, "dave has no name");
    }

    #[test]
    fn aggregates_with_grouping() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x e:knows ?y } GROUP BY ?x ORDER BY DESC(?n)",
        )
        .unwrap();
        assert_eq!(sol.vars, vec!["x", "n"]);
        assert_eq!(sol.rows[0][0], Some(e("alice")));
        assert_eq!(sol.rows[0][1], Some(Term::integer(2)));
        assert_eq!(sol.rows[1][1], Some(Term::integer(1)));
    }

    #[test]
    fn count_star_and_scalar() {
        let st = sample_store(IndexMode::Full);
        let sol = query(&st, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(12)));
    }

    #[test]
    fn sum_avg_min_max() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?m) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x e:age ?a }",
        )
        .unwrap();
        assert_eq!(sol.rows[0][0], Some(Term::double(90.0)));
        assert_eq!(sol.rows[0][1], Some(Term::double(30.0)));
        assert_eq!(sol.rows[0][2], Some(Term::integer(25)));
        assert_eq!(sol.rows[0][3], Some(Term::integer(35)));
    }

    #[test]
    fn distinct_order_limit_offset() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT DISTINCT ?a WHERE { ?x e:age ?a } ORDER BY ?a LIMIT 2 OFFSET 1",
        )
        .unwrap();
        assert_eq!(sol.rows.len(), 2);
        assert_eq!(sol.rows[0][0], Some(Term::integer(30)));
        assert_eq!(sol.rows[1][0], Some(Term::integer(35)));
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:name \"Nobody\" }",
        )
        .unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn select_star_projects_all_vars() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT * WHERE { ?x e:knows ?y }",
        )
        .unwrap();
        assert_eq!(sol.vars, vec!["x", "y"]);
        assert_eq!(sol.len(), 3);
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("p"), &e("a"));
        st.insert(&e("a"), &e("p"), &e("b"));
        let sol = query(&st, "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:p ?x }").unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows[0][0], Some(e("a")));
    }

    #[test]
    fn empty_where_returns_single_empty_row() {
        let st = sample_store(IndexMode::Full);
        let sol = query(&st, "SELECT (COUNT(*) AS ?n) WHERE { }").unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(1)));
    }

    #[test]
    fn variable_variable_spatial_join() {
        // No constant geometry → no pushdown; the filter still evaluates
        // correctly over both bound variables.
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("zone"), &Term::wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"));
        st.insert(&e("b"), &e("poi"), &Term::wkt("POINT (5 5)"));
        st.insert(&e("c"), &e("poi"), &Term::wkt("POINT (50 50)"));
        st.build_spatial_index();
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?p WHERE { ?z e:zone ?zg . ?p e:poi ?pg . \
             FILTER(geof:sfWithin(?pg, ?zg)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows[0][0], Some(e("b")));
    }

    #[test]
    fn order_by_dates() {
        let mut st = TripleStore::new(IndexMode::Full);
        for (who, iso) in [("a", "2017-06-01"), ("b", "2017-01-15"), ("c", "2017-12-30")] {
            st.insert(
                &e(who),
                &e("sensed"),
                &Term::Literal {
                    lexical: iso.into(),
                    datatype: crate::term::XSD_DATE.into(),
                },
            );
        }
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?s ?d WHERE { ?s e:sensed ?d } ORDER BY ?d",
        )
        .unwrap();
        let order: Vec<_> = sol.rows.iter().map(|r| r[0].clone().unwrap()).collect();
        assert_eq!(order, vec![e("b"), e("a"), e("c")]);
    }

    #[test]
    fn offset_beyond_results_is_empty() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:age ?a } OFFSET 100",
        )
        .unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn filter_on_optional_variable() {
        let mut st = sample_store(IndexMode::Full);
        st.insert(&e("dave"), &e("age"), &Term::integer(40));
        // Dave has no name; the filter over ?n drops his row.
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:age ?a . OPTIONAL { ?x e:name ?n } FILTER(?n != \"Bob\") }",
        )
        .unwrap();
        assert_eq!(sol.len(), 2, "alice and carol; bob filtered; dave errors out");
    }

    /// A store big enough that every parallel code path (hash probes,
    /// candidate enumeration, filter masks, optional joins) actually
    /// splits into multiple chunks.
    fn parallel_corpus_store() -> TripleStore {
        let mut st = TripleStore::new(IndexMode::Full);
        let geom = e("hasGeometry");
        let class = e("class");
        let name = e("name");
        let near = e("near");
        let mut rng: u64 = 42;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for i in 0..600 {
            let s = e(&format!("f{i}"));
            let x = next() * 100.0;
            let y = next() * 100.0;
            st.insert(&s, &geom, &Term::wkt(format!("POINT ({x:.4} {y:.4})")));
            st.insert(&s, &class, &e(if i % 3 == 0 { "crop" } else { "urban" }));
            if i % 2 == 0 {
                st.insert(&s, &name, &Term::string(format!("feature {i}")));
            }
            st.insert(&s, &near, &e(&format!("f{}", (i + 7) % 600)));
        }
        st.build_spatial_index();
        st
    }

    /// The tentpole guarantee: t ∈ {1, 2, 4, 8} produce byte-identical
    /// Solutions over the E2/E3-shaped query corpus.
    #[test]
    fn parallel_executor_is_bit_identical_to_serial() {
        let st = parallel_corpus_store();
        let corpus = [
            // E2/E3 shape: spatial selection with pushdown + COUNT.
            "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((10 10, 40 10, 40 40, 10 40, 10 10))\"^^geo:wktLiteral)) }",
            // Spatial selection projecting the feature ids.
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 25 0, 25 25, 0 25, 0 0))\"^^geo:wktLiteral)) }",
            // Multi-pattern join wide enough to trigger hash probes.
            "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t . ?s e:class e:crop . ?t e:class e:urban }",
            // Join + numeric-ish filter + DISTINCT + ORDER.
            "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?s e:class e:crop . ?s e:name ?n } ORDER BY ?n LIMIT 50",
            // OPTIONAL left join at scale.
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:class e:crop . OPTIONAL { ?s e:name ?n } }",
            // Aggregation with grouping over a join.
            "PREFIX e: <http://e/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s e:class ?c . ?s e:near ?t } GROUP BY ?c ORDER BY ?c",
            // Spatial join with pushdown + second pattern.
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:hasGeometry ?g . ?s e:name ?n . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((30 30, 70 30, 70 70, 30 70, 30 30))\"^^geo:wktLiteral)) }",
        ];
        for q_text in corpus {
            let serial = query_with_threads(&st, q_text, 1).unwrap();
            assert!(!serial.vars.is_empty());
            for t in [2, 4, 8] {
                let parallel = query_with_threads(&st, q_text, t).unwrap();
                assert_eq!(serial, parallel, "threads={t} diverged on {q_text}");
            }
        }
    }

    /// Acceptance criterion: batch-at-a-time streaming is identical to
    /// the collect path at t ∈ {1, 4}, across the whole op-order matrix
    /// (DISTINCT, ORDER BY, OFFSET/LIMIT, aggregation, OPTIONAL).
    #[test]
    fn solution_stream_is_identical_to_collect() {
        let st = parallel_corpus_store();
        let corpus = [
            "PREFIX e: <http://e/> SELECT (COUNT(?s) AS ?n) WHERE { ?s e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((10 10, 40 10, 40 40, 10 40, 10 10))\"^^geo:wktLiteral)) }",
            "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t . ?s e:class e:crop . ?t e:class e:urban }",
            "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?s e:class e:crop . ?s e:name ?n } ORDER BY ?n LIMIT 50",
            "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:class e:crop . OPTIONAL { ?s e:name ?n } }",
            "PREFIX e: <http://e/> SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s e:class ?c . ?s e:near ?t } GROUP BY ?c ORDER BY ?c",
            "PREFIX e: <http://e/> SELECT ?s WHERE { ?s e:near ?t } OFFSET 13 LIMIT 40",
            "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c } OFFSET 1",
            // Op-order matrix over the fully pipelined (no ORDER / no agg) path.
            "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c } LIMIT 1",
            "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t } OFFSET 550 LIMIT 100",
            "PREFIX e: <http://e/> SELECT DISTINCT ?n WHERE { ?s e:name ?n } OFFSET 5 LIMIT 20",
            // Dup-heavy DISTINCT over a join: 600 bindings collapse to 2.
            "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c . ?s e:near ?t }",
            // ORDER + OFFSET + LIMIT without DISTINCT (eager sort path).
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?s e:name ?n } ORDER BY DESC(?n) OFFSET 3 LIMIT 7",
        ] ;
        for q_text in corpus {
            for t in [1usize, 4] {
                let collected = query_with_threads(&st, q_text, t).unwrap();
                let q = crate::parser::parse_query(q_text).unwrap();
                let plan = crate::plan::plan(&st, &q).unwrap();
                let mut stream = SolutionStream::new(&st, &plan, t).unwrap();
                assert_eq!(stream.vars(), collected.vars.as_slice(), "{q_text}");
                let mut rows = Vec::new();
                let mut batches = 0usize;
                while let Some(b) = stream.next_batch() {
                    assert!(!b.is_empty(), "empty batches are never yielded");
                    assert!(b.len() <= STREAM_BATCH_ROWS);
                    rows.extend(b);
                    batches += 1;
                }
                assert_eq!(rows, collected.rows, "t={t} stream diverged on {q_text}");
                if collected.rows.len() > STREAM_BATCH_ROWS {
                    assert!(batches > 1, "large result must span batches");
                }
                // The one-shot collector agrees too.
                let again = SolutionStream::new(&st, &plan, t).unwrap().collect();
                assert_eq!(again, collected, "{q_text}");
            }
        }
    }

    /// The tentpole's memory bound: on the non-aggregate, non-ORDER path
    /// the first streamed batch is produced after touching only O(batch)
    /// probe rows — not the full result set — and the resident-row
    /// high-water mark stays O(batch) even after a full drain.
    #[test]
    fn first_batch_touches_o_batch_probe_rows() {
        let mut st = TripleStore::new(IndexMode::Full);
        let near = e("near");
        let poi = e("poi");
        let name = e("name");
        for i in 0..10_000u32 {
            let s = e(&format!("s{i}"));
            st.insert(&s, &near, &e(&format!("s{}", (i + 1) % 10_000)));
            if i < 500 {
                st.insert(&s, &poi, &e("marker"));
            }
            if i < 600 {
                st.insert(&s, &name, &Term::string(format!("site {i}")));
            }
        }
        let cases: [(&str, usize); 2] = [
            // Single-pattern scan over 10k matches.
            ("PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t }", 10_000),
            // Dense two-pattern join (hash-probe eligible: build side < cap).
            (
                "PREFIX e: <http://e/> SELECT ?s ?n WHERE { ?s e:poi ?x . ?s e:name ?n }",
                500,
            ),
        ];
        let bound = (8 * STREAM_BATCH_ROWS) as u64;
        for (q_text, total) in cases {
            let q = crate::parser::parse_query(q_text).unwrap();
            let plan = crate::plan::plan(&st, &q).unwrap();
            for t in [1usize, 4] {
                let mut core = stream_plan(&st, &plan, t).unwrap();
                assert_eq!(core.rows_touched(), 0, "no join work before the first pull");
                let first = core.next_batch(&st).unwrap();
                assert_eq!(first.len(), STREAM_BATCH_ROWS);
                let touched = core.rows_touched();
                assert!(
                    touched <= bound,
                    "t={t} {q_text}: first batch touched {touched} probe rows (> {bound})"
                );
                assert!(
                    core.peak_resident_rows() <= bound,
                    "t={t} {q_text}: peak resident {} rows after first batch",
                    core.peak_resident_rows()
                );
                let mut rows = first.len();
                while let Some(b) = core.next_batch(&st) {
                    rows += b.len();
                }
                assert_eq!(rows, total, "t={t} {q_text}");
                assert!(
                    core.peak_resident_rows() <= bound,
                    "t={t} {q_text}: full drain kept {} rows resident (> {bound})",
                    core.peak_resident_rows()
                );
            }
        }
    }

    /// Satellite: streamed DISTINCT dedups on projected dictionary ids,
    /// so a dup-heavy unordered projection stays identical to collect
    /// and never materialises the non-distinct rows.
    #[test]
    fn distinct_streams_dedup_on_ids() {
        let st = parallel_corpus_store();
        let q_text = "PREFIX e: <http://e/> SELECT DISTINCT ?c WHERE { ?s e:class ?c }";
        for t in [1usize, 4] {
            let collected = query_with_threads(&st, q_text, t).unwrap();
            assert_eq!(collected.len(), 2, "600 class bindings collapse to 2 classes");
            let q = crate::parser::parse_query(q_text).unwrap();
            let plan = crate::plan::plan(&st, &q).unwrap();
            let streamed = SolutionStream::new(&st, &plan, t).unwrap().collect();
            assert_eq!(streamed, collected, "t={t}");
        }
    }

    #[test]
    fn prepared_plan_reuse_matches_one_shot() {
        let st = parallel_corpus_store();
        let q_text = "PREFIX e: <http://e/> SELECT ?s ?t WHERE { ?s e:near ?t . ?s e:class e:crop }";
        let q = crate::parser::parse_query(q_text).unwrap();
        let plan = crate::plan::plan(&st, &q).unwrap();
        let once = query_with_threads(&st, q_text, 4).unwrap();
        for _ in 0..3 {
            assert_eq!(execute_plan(&st, &plan, 4).unwrap(), once);
        }
    }
}
