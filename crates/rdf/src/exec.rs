//! The query evaluator.
//!
//! Pipeline: prepare (resolve constants, parse constant geometries, detect
//! spatial pushdown) → greedy bound-position join ordering → index
//! nested-loop join with eager filters → OPTIONAL left-joins → grouping /
//! aggregation → DISTINCT / ORDER / LIMIT → term materialisation.

use crate::expr::{collect_const_geometries, eval, spatial_pushdown, truth, EvalCtx, Expr};
use crate::parser::{AggFunc, PatternTerm, Query, SelectItem};
use crate::store::TripleStore;
use crate::term::{Term, Value};
use crate::RdfError;
use ee_geo::Geometry;
use std::collections::{HashMap, HashSet};

/// Query solutions: a header of variable names and rows of optional terms
/// (unbound OPTIONAL variables are `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    /// Projected variable names, in order.
    pub vars: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a one-row one-column result (aggregates).
    pub fn scalar(&self) -> Option<&Term> {
        match (self.rows.len(), self.vars.len()) {
            (1, 1) => self.rows[0][0].as_ref(),
            _ => None,
        }
    }

    /// Column index of a variable.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

/// Parse and execute a query against a store.
pub fn query(store: &TripleStore, sparql: &str) -> Result<Solutions, RdfError> {
    let q = crate::parser::parse_query(sparql)?;
    execute(store, &q)
}

/// A pattern with positions resolved to ids; `None` in a const slot means
/// the constant is not in the dictionary (pattern cannot match).
#[derive(Debug, Clone)]
enum Slot {
    Var(usize),
    Const(u64),
    Impossible,
}

fn resolve_slot(
    t: &PatternTerm,
    store: &TripleStore,
    vars: &mut Vec<String>,
) -> Slot {
    match t {
        PatternTerm::Var(name) => Slot::Var(var_index(vars, name)),
        PatternTerm::Const(term) => match store.dict.id_of(term) {
            Some(id) => Slot::Const(id),
            None => Slot::Impossible,
        },
    }
}

fn var_index(vars: &mut Vec<String>, name: &str) -> usize {
    if let Some(i) = vars.iter().position(|v| v == name) {
        i
    } else {
        vars.push(name.to_string());
        vars.len() - 1
    }
}

struct Prepared {
    vars: Vec<String>,
    required: Vec<[Slot; 3]>,
    optionals: Vec<Vec<[Slot; 3]>>,
    filters: Vec<(Expr, Vec<usize>)>,
    const_geoms: Vec<(Term, Geometry)>,
    /// Per-variable candidate id sets from spatial pushdown.
    candidates: HashMap<usize, HashSet<u64>>,
    impossible: bool,
}

fn collect_expr_vars(expr: &Expr, vars: &mut Vec<String>, out: &mut Vec<usize>) {
    match expr {
        Expr::Var(name) => {
            let i = var_index(vars, name);
            if !out.contains(&i) {
                out.push(i);
            }
        }
        Expr::Cmp(a, _, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Spatial(_, a, b)
        | Expr::Distance(a, b)
        | Expr::Arith(a, _, b) => {
            collect_expr_vars(a, vars, out);
            collect_expr_vars(b, vars, out);
        }
        Expr::Not(a) => collect_expr_vars(a, vars, out),
        Expr::Const(_) => {}
    }
}

fn prepare(store: &TripleStore, q: &Query) -> Prepared {
    let mut vars = Vec::new();
    // Select order defines projection order for named vars.
    for item in &q.select {
        if let SelectItem::Var(v) = item {
            var_index(&mut vars, v);
        }
    }
    let mut impossible = false;
    let required: Vec<[Slot; 3]> = q
        .patterns
        .iter()
        .map(|p| {
            let s = [
                resolve_slot(&p.s, store, &mut vars),
                resolve_slot(&p.p, store, &mut vars),
                resolve_slot(&p.o, store, &mut vars),
            ];
            if s.iter().any(|x| matches!(x, Slot::Impossible)) {
                impossible = true;
            }
            s
        })
        .collect();
    let optionals: Vec<Vec<[Slot; 3]>> = q
        .optionals
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|p| {
                    [
                        resolve_slot(&p.s, store, &mut vars),
                        resolve_slot(&p.p, store, &mut vars),
                        resolve_slot(&p.o, store, &mut vars),
                    ]
                })
                .collect()
        })
        .collect();
    let mut const_geoms = Vec::new();
    for f in &q.filters {
        collect_const_geometries(f, &mut const_geoms);
    }
    let mut candidates: HashMap<usize, HashSet<u64>> = HashMap::new();
    for f in &q.filters {
        if let Some((var, env)) = spatial_pushdown(f, &const_geoms) {
            if let Some(ids) = store.spatial_candidates(&env) {
                let vi = var_index(&mut vars, &var);
                let set: HashSet<u64> = ids.into_iter().collect();
                match candidates.entry(vi) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let merged: HashSet<u64> =
                            e.get().intersection(&set).copied().collect();
                        e.insert(merged);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(set);
                    }
                }
            }
        }
    }
    let filters: Vec<(Expr, Vec<usize>)> = q
        .filters
        .iter()
        .map(|f| {
            let mut used = Vec::new();
            collect_expr_vars(f, &mut vars, &mut used);
            (f.clone(), used)
        })
        .collect();
    // Group/order vars must exist in the table too.
    for v in &q.group_by {
        var_index(&mut vars, v);
    }
    if let Some((v, _)) = &q.order_by {
        var_index(&mut vars, v);
    }
    Prepared {
        vars,
        required,
        optionals,
        filters,
        const_geoms,
        candidates,
        impossible,
    }
}

/// Greedy choice of the next pattern: most bound positions, then fewest
/// estimated matches.
fn choose_next(
    store: &TripleStore,
    remaining: &[usize],
    patterns: &[[Slot; 3]],
    bound: &[Option<u64>],
) -> usize {
    let mut best = remaining[0];
    let mut best_key = (usize::MAX, usize::MAX);
    for &pi in remaining {
        let mut bound_count = 0;
        let ids: Vec<Option<u64>> = patterns[pi]
            .iter()
            .map(|s| match s {
                Slot::Const(id) => {
                    bound_count += 1;
                    Some(*id)
                }
                Slot::Var(v) => {
                    if let Some(id) = bound[*v] {
                        bound_count += 1;
                        Some(id)
                    } else {
                        None
                    }
                }
                Slot::Impossible => Some(u64::MAX),
            })
            .collect();
        let est = store.estimate(ids[0], ids[1], ids[2]);
        let key = (3 - bound_count, est);
        if key < best_key {
            best_key = key;
            best = pi;
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn join(
    store: &TripleStore,
    prepared: &Prepared,
    patterns: &[[Slot; 3]],
    remaining: Vec<usize>,
    bound: &mut Vec<Option<u64>>,
    filters_done: &mut Vec<bool>,
    out: &mut Vec<Vec<Option<u64>>>,
) -> Result<(), RdfError> {
    if remaining.is_empty() {
        out.push(bound.clone());
        return Ok(());
    }
    let pi = choose_next(store, &remaining, patterns, bound);
    let rest: Vec<usize> = remaining.into_iter().filter(|&x| x != pi).collect();
    let pat = &patterns[pi];
    let fixed: Vec<Option<u64>> = pat
        .iter()
        .map(|s| match s {
            Slot::Const(id) => Some(*id),
            Slot::Var(v) => bound[*v],
            Slot::Impossible => Some(u64::MAX),
        })
        .collect();
    // Materialise matches first (avoids recursive closures over &mut).
    // Spatial pushdown into the access path: when the object is an unbound
    // variable with an R-tree candidate set, enumerate the candidates
    // through the OSP/POS index instead of scanning the whole pattern —
    // this is the difference between "a few seconds" and a full scan.
    let mut matches: Vec<(u64, u64, u64)> = Vec::new();
    let object_candidates = match (&pat[2], fixed[2]) {
        (Slot::Var(v), None) => prepared.candidates.get(v),
        _ => None,
    };
    match object_candidates {
        Some(cands) if store.mode() == crate::store::IndexMode::Full => {
            let mut ids: Vec<u64> = cands.iter().copied().collect();
            ids.sort_unstable();
            for id in ids {
                store.match_pattern(fixed[0], fixed[1], Some(id), &mut |t| {
                    matches.push(t);
                    true
                });
            }
        }
        _ => {
            store.match_pattern(fixed[0], fixed[1], fixed[2], &mut |t| {
                matches.push(t);
                true
            });
        }
    }
    'next_match: for (s, p, o) in matches {
        let triple = [s, p, o];
        // Unify: bind unbound vars, checking candidate sets.
        let mut newly_bound: Vec<usize> = Vec::new();
        for (slot, &id) in pat.iter().zip(&triple) {
            if let Slot::Var(v) = slot {
                match bound[*v] {
                    Some(existing) => {
                        if existing != id {
                            // same-pattern repeated var mismatch
                            for &nv in &newly_bound {
                                bound[nv] = None;
                            }
                            continue 'next_match;
                        }
                    }
                    None => {
                        if let Some(cands) = prepared.candidates.get(v) {
                            if !cands.contains(&id) {
                                for &nv in &newly_bound {
                                    bound[nv] = None;
                                }
                                continue 'next_match;
                            }
                        }
                        bound[*v] = Some(id);
                        newly_bound.push(*v);
                    }
                }
            }
        }
        // Eager filters: evaluate any filter that just became fully bound.
        let mut newly_filtered: Vec<usize> = Vec::new();
        let mut pass = true;
        for (fi, (expr, used)) in prepared.filters.iter().enumerate() {
            if filters_done[fi] {
                continue;
            }
            if used.iter().all(|&v| bound[v].is_some()) {
                let ctx = EvalCtx {
                    dict: &store.dict,
                    lookup: &|name: &str| {
                        prepared
                            .vars
                            .iter()
                            .position(|v| v == name)
                            .and_then(|i| bound[i])
                    },
                    const_geoms: &prepared.const_geoms,
                };
                if truth(eval(expr, &ctx)) != Some(true) {
                    pass = false;
                    break;
                }
                filters_done[fi] = true;
                newly_filtered.push(fi);
            }
        }
        if pass {
            join(store, prepared, patterns, rest.clone(), bound, filters_done, out)?;
        }
        for &fi in &newly_filtered {
            filters_done[fi] = false;
        }
        for &nv in &newly_bound {
            bound[nv] = None;
        }
    }
    Ok(())
}

/// Left-join the optional groups onto each row.
fn apply_optionals(
    store: &TripleStore,
    prepared: &Prepared,
    rows: Vec<Vec<Option<u64>>>,
) -> Result<Vec<Vec<Option<u64>>>, RdfError> {
    let mut current = rows;
    for group in &prepared.optionals {
        // Optional groups containing unknown constants never match.
        let impossible = group
            .iter()
            .any(|p| p.iter().any(|s| matches!(s, Slot::Impossible)));
        let mut next = Vec::with_capacity(current.len());
        for row in current {
            if impossible {
                next.push(row);
                continue;
            }
            let mut bound = row.clone();
            let mut matches = Vec::new();
            let mut filters_done = vec![true; prepared.filters.len()]; // filters already applied
            join(
                store,
                prepared,
                group,
                (0..group.len()).collect(),
                &mut bound,
                &mut filters_done,
                &mut matches,
            )?;
            if matches.is_empty() {
                next.push(row);
            } else {
                next.extend(matches);
            }
        }
        current = next;
    }
    Ok(current)
}

fn numeric_of(store: &TripleStore, id: u64) -> Option<f64> {
    match store.dict.value(id) {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Sort key for ORDER BY and MIN/MAX: numbers before dates before strings
/// before everything else, each ordered internally.
fn order_key(store: &TripleStore, id: u64) -> (u8, f64, String) {
    match store.dict.value(id) {
        Value::Int(i) => (0, *i as f64, String::new()),
        Value::Float(f) => (0, *f, String::new()),
        Value::Date(d) => (1, *d as f64, String::new()),
        Value::Str(s) => (2, 0.0, s.clone()),
        _ => (3, 0.0, store.dict.term(id).ntriples()),
    }
}

/// Execute a prepared query.
pub fn execute(store: &TripleStore, q: &Query) -> Result<Solutions, RdfError> {
    let prepared = prepare(store, q);
    let mut raw: Vec<Vec<Option<u64>>> = Vec::new();
    if !prepared.impossible {
        let mut bound = vec![None; prepared.vars.len()];
        let mut filters_done = vec![false; prepared.filters.len()];
        if prepared.required.is_empty() {
            raw.push(bound.clone());
        } else {
            join(
                store,
                &prepared,
                &prepared.required,
                (0..prepared.required.len()).collect(),
                &mut bound,
                &mut filters_done,
                &mut raw,
            )?;
        }
        raw = apply_optionals(store, &prepared, raw)?;
        // Residual filters (e.g. over OPTIONAL vars): a filter whose vars
        // are not all bound evaluates to error → row dropped, unless it
        // was already applied during the join.
        let residual: Vec<&(Expr, Vec<usize>)> = prepared
            .filters
            .iter()
            .filter(|(_, used)| {
                // Filters over only-required vars were applied eagerly.
                !used.iter().all(|&v| {
                    prepared.required.iter().any(|p| {
                        p.iter().any(|s| matches!(s, Slot::Var(x) if *x == v))
                    })
                })
            })
            .collect();
        if !residual.is_empty() {
            raw.retain(|row| {
                residual.iter().all(|(expr, _)| {
                    let ctx = EvalCtx {
                        dict: &store.dict,
                        lookup: &|name: &str| {
                            prepared
                                .vars
                                .iter()
                                .position(|v| v == name)
                                .and_then(|i| row[i])
                        },
                        const_geoms: &prepared.const_geoms,
                    };
                    truth(eval(expr, &ctx)) == Some(true)
                })
            });
        }
    }

    // Aggregation?
    let has_agg = q.select.iter().any(|s| matches!(s, SelectItem::Agg { .. }));
    let (header, mut out_rows): (Vec<String>, Vec<Vec<Option<Term>>>) = if has_agg
        || !q.group_by.is_empty()
    {
        aggregate(store, q, &prepared, raw)?
    } else {
        // Plain projection.
        let names: Vec<String> = if q.star {
            prepared.vars.clone()
        } else {
            q.select
                .iter()
                .filter_map(|s| match s {
                    SelectItem::Var(v) => Some(v.clone()),
                    _ => None,
                })
                .collect()
        };
        let idx: Vec<usize> = names
            .iter()
            .map(|n| {
                prepared
                    .vars
                    .iter()
                    .position(|v| v == n)
                    .ok_or_else(|| RdfError::Eval(format!("unknown select variable ?{n}")))
            })
            .collect::<Result<_, _>>()?;
        // ORDER BY before materialisation (on ids).
        let mut rows = raw;
        if let Some((ov, asc)) = &q.order_by {
            let oi = prepared
                .vars
                .iter()
                .position(|v| v == ov)
                .ok_or_else(|| RdfError::Eval(format!("unknown order variable ?{ov}")))?;
            rows.sort_by(|a, b| {
                let ka = a[oi].map(|id| order_key(store, id));
                let kb = b[oi].map(|id| order_key(store, id));
                let ord = ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal);
                if *asc {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        let materialised: Vec<Vec<Option<Term>>> = rows
            .into_iter()
            .map(|row| {
                idx.iter()
                    .map(|&i| row[i].map(|id| store.dict.term(id).clone()))
                    .collect()
            })
            .collect();
        (names, materialised)
    };

    if q.distinct {
        let mut seen = HashSet::new();
        out_rows.retain(|row| {
            let key: Vec<Option<String>> = row
                .iter()
                .map(|t| t.as_ref().map(|t| t.ntriples()))
                .collect();
            seen.insert(key)
        });
    }
    // Aggregated results may still need ORDER BY over the alias.
    if has_agg || !q.group_by.is_empty() {
        if let Some((ov, asc)) = &q.order_by {
            if let Some(ci) = header.iter().position(|h| h == ov) {
                out_rows.sort_by(|a, b| {
                    let ord = cmp_terms(&a[ci], &b[ci]);
                    if *asc {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
            }
        }
    }
    let offset = q.offset.unwrap_or(0);
    if offset > 0 {
        out_rows = out_rows.into_iter().skip(offset).collect();
    }
    if let Some(limit) = q.limit {
        out_rows.truncate(limit);
    }
    Ok(Solutions {
        vars: header,
        rows: out_rows,
    })
}

fn cmp_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    let num = |t: &Option<Term>| -> Option<f64> {
        match t {
            Some(Term::Literal { lexical, datatype })
                if datatype == crate::term::XSD_INTEGER || datatype == crate::term::XSD_DOUBLE =>
            {
                lexical.parse::<f64>().ok()
            }
            _ => None,
        }
    };
    match (num(a), num(b)) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
        _ => format!("{a:?}").cmp(&format!("{b:?}")),
    }
}

type Grouped = (Vec<String>, Vec<Vec<Option<Term>>>);

fn aggregate(
    store: &TripleStore,
    q: &Query,
    prepared: &Prepared,
    rows: Vec<Vec<Option<u64>>>,
) -> Result<Grouped, RdfError> {
    let group_idx: Vec<usize> = q
        .group_by
        .iter()
        .map(|v| {
            prepared
                .vars
                .iter()
                .position(|x| x == v)
                .ok_or_else(|| RdfError::Eval(format!("unknown group variable ?{v}")))
        })
        .collect::<Result<_, _>>()?;
    let mut groups: HashMap<Vec<Option<u64>>, Vec<Vec<Option<u64>>>> = HashMap::new();
    for row in rows {
        let key: Vec<Option<u64>> = group_idx.iter().map(|&i| row[i]).collect();
        groups.entry(key).or_default().push(row);
    }
    // Deterministic group order.
    let mut keys: Vec<Vec<Option<u64>>> = groups.keys().cloned().collect();
    keys.sort();
    let mut header = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Var(v) => {
                if !q.group_by.contains(v) {
                    return Err(RdfError::Eval(format!(
                        "?{v} selected but not in GROUP BY"
                    )));
                }
                header.push(v.clone());
            }
            SelectItem::Agg { alias, .. } => header.push(alias.clone()),
        }
    }
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let members = &groups[&key];
        let mut row: Vec<Option<Term>> = Vec::with_capacity(q.select.len());
        for item in &q.select {
            match item {
                SelectItem::Var(v) => {
                    let gi = q.group_by.iter().position(|x| x == v).expect("checked");
                    row.push(key[gi].map(|id| store.dict.term(id).clone()));
                }
                SelectItem::Agg { func, var, .. } => {
                    let vi = var
                        .as_ref()
                        .map(|v| {
                            prepared
                                .vars
                                .iter()
                                .position(|x| x == v)
                                .ok_or_else(|| RdfError::Eval(format!("unknown ?{v}")))
                        })
                        .transpose()?;
                    row.push(Some(agg_value(store, *func, vi, members)));
                }
            }
        }
        out.push(row);
    }
    Ok((header, out))
}

fn agg_value(
    store: &TripleStore,
    func: AggFunc,
    vi: Option<usize>,
    members: &[Vec<Option<u64>>],
) -> Term {
    match func {
        AggFunc::Count => {
            let n = match vi {
                None => members.len(),
                Some(i) => members.iter().filter(|r| r[i].is_some()).count(),
            };
            Term::integer(n as i64)
        }
        AggFunc::Sum | AggFunc::Avg => {
            let vals: Vec<f64> = members
                .iter()
                .filter_map(|r| vi.and_then(|i| r[i]).and_then(|id| numeric_of(store, id)))
                .collect();
            let sum: f64 = vals.iter().sum();
            match func {
                AggFunc::Sum => Term::double(sum),
                _ => Term::double(if vals.is_empty() { 0.0 } else { sum / vals.len() as f64 }),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<(u64, (u8, f64, String))> = None;
            for r in members {
                if let Some(id) = vi.and_then(|i| r[i]) {
                    let k = order_key(store, id);
                    let better = match &best {
                        None => true,
                        Some((_, bk)) => {
                            if func == AggFunc::Min {
                                k < *bk
                            } else {
                                k > *bk
                            }
                        }
                    };
                    if better {
                        best = Some((id, k));
                    }
                }
            }
            best.map(|(id, _)| store.dict.term(id).clone())
                .unwrap_or_else(|| Term::integer(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IndexMode;

    fn e(n: &str) -> Term {
        Term::iri(format!("http://e/{n}"))
    }

    fn sample_store(mode: IndexMode) -> TripleStore {
        let mut st = TripleStore::new(mode);
        let name = e("name");
        let age = e("age");
        let knows = e("knows");
        let geom = e("hasGeometry");
        for (who, nm, a) in [("alice", "Alice", 30), ("bob", "Bob", 25), ("carol", "Carol", 35)] {
            st.insert(&e(who), &name, &Term::string(nm));
            st.insert(&e(who), &age, &Term::integer(a));
        }
        st.insert(&e("alice"), &knows, &e("bob"));
        st.insert(&e("alice"), &knows, &e("carol"));
        st.insert(&e("bob"), &knows, &e("carol"));
        st.insert(&e("alice"), &geom, &Term::wkt("POINT (1 1)"));
        st.insert(&e("bob"), &geom, &Term::wkt("POINT (5 5)"));
        st.insert(&e("carol"), &geom, &Term::wkt("POINT (20 20)"));
        st.build_spatial_index();
        st
    }

    fn names_of(sol: &Solutions, col: usize) -> Vec<String> {
        let mut v: Vec<String> = sol
            .rows
            .iter()
            .filter_map(|r| r[col].as_ref())
            .map(|t| t.ntriples())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn basic_bgp_join() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
        )
        .unwrap();
        assert_eq!(sol.len(), 3);
        assert_eq!(names_of(&sol, 0), vec!["\"Bob\"", "\"Carol\"", "\"Carol\""]);
    }

    #[test]
    fn filters_apply() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:age ?a . ?x e:name ?n . FILTER(?a >= 30) }",
        )
        .unwrap();
        assert_eq!(names_of(&sol, 0), vec!["\"Alice\"", "\"Carol\""]);
    }

    #[test]
    fn scan_and_full_agree() {
        for q_text in [
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:knows ?y . ?y e:name ?n }",
            "PREFIX e: <http://e/> SELECT ?n WHERE { ?x e:age ?a . ?x e:name ?n . FILTER(?a < 31) }",
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        ] {
            let full = query(&sample_store(IndexMode::Full), q_text).unwrap();
            let scan = query(&sample_store(IndexMode::Scan), q_text).unwrap();
            let norm = |s: &Solutions| {
                let mut v: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
                v.sort();
                v
            };
            assert_eq!(norm(&full), norm(&scan), "{q_text}");
        }
    }

    #[test]
    fn spatial_selection_with_pushdown() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . \
             FILTER(geof:sfWithin(?g, \"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))\"^^geo:wktLiteral)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 2, "alice and bob inside, carol outside");
    }

    #[test]
    fn distance_filter() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:hasGeometry ?g . \
             FILTER(geof:distance(?g, \"POINT (0 0)\"^^geo:wktLiteral) < 3) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1, "only alice within distance 3");
    }

    #[test]
    fn optional_left_join() {
        let mut st = sample_store(IndexMode::Full);
        st.insert(&e("dave"), &e("age"), &Term::integer(40));
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x ?n WHERE { ?x e:age ?a . OPTIONAL { ?x e:name ?n } }",
        )
        .unwrap();
        assert_eq!(sol.len(), 4);
        let dave_row = sol
            .rows
            .iter()
            .find(|r| r[0] == Some(e("dave")))
            .expect("dave present");
        assert_eq!(dave_row[1], None, "dave has no name");
    }

    #[test]
    fn aggregates_with_grouping() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x e:knows ?y } GROUP BY ?x ORDER BY DESC(?n)",
        )
        .unwrap();
        assert_eq!(sol.vars, vec!["x", "n"]);
        assert_eq!(sol.rows[0][0], Some(e("alice")));
        assert_eq!(sol.rows[0][1], Some(Term::integer(2)));
        assert_eq!(sol.rows[1][1], Some(Term::integer(1)));
    }

    #[test]
    fn count_star_and_scalar() {
        let st = sample_store(IndexMode::Full);
        let sol = query(&st, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(12)));
    }

    #[test]
    fn sum_avg_min_max() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?m) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x e:age ?a }",
        )
        .unwrap();
        assert_eq!(sol.rows[0][0], Some(Term::double(90.0)));
        assert_eq!(sol.rows[0][1], Some(Term::double(30.0)));
        assert_eq!(sol.rows[0][2], Some(Term::integer(25)));
        assert_eq!(sol.rows[0][3], Some(Term::integer(35)));
    }

    #[test]
    fn distinct_order_limit_offset() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT DISTINCT ?a WHERE { ?x e:age ?a } ORDER BY ?a LIMIT 2 OFFSET 1",
        )
        .unwrap();
        assert_eq!(sol.rows.len(), 2);
        assert_eq!(sol.rows[0][0], Some(Term::integer(30)));
        assert_eq!(sol.rows[1][0], Some(Term::integer(35)));
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:name \"Nobody\" }",
        )
        .unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn select_star_projects_all_vars() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT * WHERE { ?x e:knows ?y }",
        )
        .unwrap();
        assert_eq!(sol.vars, vec!["x", "y"]);
        assert_eq!(sol.len(), 3);
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("p"), &e("a"));
        st.insert(&e("a"), &e("p"), &e("b"));
        let sol = query(&st, "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:p ?x }").unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows[0][0], Some(e("a")));
    }

    #[test]
    fn empty_where_returns_single_empty_row() {
        let st = sample_store(IndexMode::Full);
        let sol = query(&st, "SELECT (COUNT(*) AS ?n) WHERE { }").unwrap();
        assert_eq!(sol.scalar(), Some(&Term::integer(1)));
    }

    #[test]
    fn variable_variable_spatial_join() {
        // No constant geometry → no pushdown; the filter still evaluates
        // correctly over both bound variables.
        let mut st = TripleStore::new(IndexMode::Full);
        st.insert(&e("a"), &e("zone"), &Term::wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"));
        st.insert(&e("b"), &e("poi"), &Term::wkt("POINT (5 5)"));
        st.insert(&e("c"), &e("poi"), &Term::wkt("POINT (50 50)"));
        st.build_spatial_index();
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?p WHERE { ?z e:zone ?zg . ?p e:poi ?pg . \
             FILTER(geof:sfWithin(?pg, ?zg)) }",
        )
        .unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows[0][0], Some(e("b")));
    }

    #[test]
    fn order_by_dates() {
        let mut st = TripleStore::new(IndexMode::Full);
        for (who, iso) in [("a", "2017-06-01"), ("b", "2017-01-15"), ("c", "2017-12-30")] {
            st.insert(
                &e(who),
                &e("sensed"),
                &Term::Literal {
                    lexical: iso.into(),
                    datatype: crate::term::XSD_DATE.into(),
                },
            );
        }
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?s ?d WHERE { ?s e:sensed ?d } ORDER BY ?d",
        )
        .unwrap();
        let order: Vec<_> = sol.rows.iter().map(|r| r[0].clone().unwrap()).collect();
        assert_eq!(order, vec![e("b"), e("a"), e("c")]);
    }

    #[test]
    fn offset_beyond_results_is_empty() {
        let st = sample_store(IndexMode::Full);
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:age ?a } OFFSET 100",
        )
        .unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn filter_on_optional_variable() {
        let mut st = sample_store(IndexMode::Full);
        st.insert(&e("dave"), &e("age"), &Term::integer(40));
        // Dave has no name; the filter over ?n drops his row.
        let sol = query(
            &st,
            "PREFIX e: <http://e/> SELECT ?x WHERE { ?x e:age ?a . OPTIONAL { ?x e:name ?n } FILTER(?n != \"Bob\") }",
        )
        .unwrap();
        assert_eq!(sol.len(), 2, "alice and carol; bob filtered; dave errors out");
    }
}
